
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_xeonphi_matrix.cpp" "bench/CMakeFiles/bench_table5_xeonphi_matrix.dir/bench_table5_xeonphi_matrix.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_xeonphi_matrix.dir/bench_table5_xeonphi_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orio/CMakeFiles/portatune_orio.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/portatune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/portatune_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/portatune_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/portatune_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/portatune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/portatune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
