# Empty compiler generated dependencies file for bench_table5_xeonphi_matrix.
# This may be replaced when dependencies are built.
