file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sandybridge_to_power7.dir/bench_fig4_sandybridge_to_power7.cpp.o"
  "CMakeFiles/bench_fig4_sandybridge_to_power7.dir/bench_fig4_sandybridge_to_power7.cpp.o.d"
  "bench_fig4_sandybridge_to_power7"
  "bench_fig4_sandybridge_to_power7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sandybridge_to_power7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
