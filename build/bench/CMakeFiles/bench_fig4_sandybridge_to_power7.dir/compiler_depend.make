# Empty compiler generated dependencies file for bench_fig4_sandybridge_to_power7.
# This may be replaced when dependencies are built.
