file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_generalization.dir/bench_ablation_generalization.cpp.o"
  "CMakeFiles/bench_ablation_generalization.dir/bench_ablation_generalization.cpp.o.d"
  "bench_ablation_generalization"
  "bench_ablation_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
