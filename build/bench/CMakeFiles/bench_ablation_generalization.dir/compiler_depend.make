# Empty compiler generated dependencies file for bench_ablation_generalization.
# This may be replaced when dependencies are built.
