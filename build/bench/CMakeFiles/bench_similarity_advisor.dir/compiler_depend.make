# Empty compiler generated dependencies file for bench_similarity_advisor.
# This may be replaced when dependencies are built.
