file(REMOVE_RECURSE
  "CMakeFiles/bench_similarity_advisor.dir/bench_similarity_advisor.cpp.o"
  "CMakeFiles/bench_similarity_advisor.dir/bench_similarity_advisor.cpp.o.d"
  "bench_similarity_advisor"
  "bench_similarity_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_similarity_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
