file(REMOVE_RECURSE
  "CMakeFiles/bench_setup_tables.dir/bench_setup_tables.cpp.o"
  "CMakeFiles/bench_setup_tables.dir/bench_setup_tables.cpp.o.d"
  "bench_setup_tables"
  "bench_setup_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setup_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
