# Empty dependencies file for bench_ablation_pool_forest.
# This may be replaced when dependencies are built.
