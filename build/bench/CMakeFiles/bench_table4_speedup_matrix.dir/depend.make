# Empty dependencies file for bench_table4_speedup_matrix.
# This may be replaced when dependencies are built.
