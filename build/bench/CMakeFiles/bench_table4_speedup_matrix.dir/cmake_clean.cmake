file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_speedup_matrix.dir/bench_table4_speedup_matrix.cpp.o"
  "CMakeFiles/bench_table4_speedup_matrix.dir/bench_table4_speedup_matrix.cpp.o.d"
  "bench_table4_speedup_matrix"
  "bench_table4_speedup_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_speedup_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
