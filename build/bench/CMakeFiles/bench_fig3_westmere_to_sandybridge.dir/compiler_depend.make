# Empty compiler generated dependencies file for bench_fig3_westmere_to_sandybridge.
# This may be replaced when dependencies are built.
