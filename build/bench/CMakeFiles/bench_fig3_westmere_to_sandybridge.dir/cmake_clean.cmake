file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_westmere_to_sandybridge.dir/bench_fig3_westmere_to_sandybridge.cpp.o"
  "CMakeFiles/bench_fig3_westmere_to_sandybridge.dir/bench_fig3_westmere_to_sandybridge.cpp.o.d"
  "bench_fig3_westmere_to_sandybridge"
  "bench_fig3_westmere_to_sandybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_westmere_to_sandybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
