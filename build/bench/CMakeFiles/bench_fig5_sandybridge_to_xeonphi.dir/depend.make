# Empty dependencies file for bench_fig5_sandybridge_to_xeonphi.
# This may be replaced when dependencies are built.
