file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sandybridge_to_xeonphi.dir/bench_fig5_sandybridge_to_xeonphi.cpp.o"
  "CMakeFiles/bench_fig5_sandybridge_to_xeonphi.dir/bench_fig5_sandybridge_to_xeonphi.cpp.o.d"
  "bench_fig5_sandybridge_to_xeonphi"
  "bench_fig5_sandybridge_to_xeonphi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sandybridge_to_xeonphi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
