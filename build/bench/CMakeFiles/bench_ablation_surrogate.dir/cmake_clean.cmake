file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_surrogate.dir/bench_ablation_surrogate.cpp.o"
  "CMakeFiles/bench_ablation_surrogate.dir/bench_ablation_surrogate.cpp.o.d"
  "bench_ablation_surrogate"
  "bench_ablation_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
