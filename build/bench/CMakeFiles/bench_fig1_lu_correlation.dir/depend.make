# Empty dependencies file for bench_fig1_lu_correlation.
# This may be replaced when dependencies are built.
