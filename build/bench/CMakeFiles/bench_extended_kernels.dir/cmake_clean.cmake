file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_kernels.dir/bench_extended_kernels.cpp.o"
  "CMakeFiles/bench_extended_kernels.dir/bench_extended_kernels.cpp.o.d"
  "bench_extended_kernels"
  "bench_extended_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
