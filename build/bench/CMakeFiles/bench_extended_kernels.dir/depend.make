# Empty dependencies file for bench_extended_kernels.
# This may be replaced when dependencies are built.
