file(REMOVE_RECURSE
  "libportatune_ml.a"
)
