file(REMOVE_RECURSE
  "CMakeFiles/portatune_ml.dir/dataset.cpp.o"
  "CMakeFiles/portatune_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/forest.cpp.o"
  "CMakeFiles/portatune_ml.dir/forest.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/knn.cpp.o"
  "CMakeFiles/portatune_ml.dir/knn.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/linear.cpp.o"
  "CMakeFiles/portatune_ml.dir/linear.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/metrics.cpp.o"
  "CMakeFiles/portatune_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/model.cpp.o"
  "CMakeFiles/portatune_ml.dir/model.cpp.o.d"
  "CMakeFiles/portatune_ml.dir/tree.cpp.o"
  "CMakeFiles/portatune_ml.dir/tree.cpp.o.d"
  "libportatune_ml.a"
  "libportatune_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
