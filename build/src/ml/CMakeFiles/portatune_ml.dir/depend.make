# Empty dependencies file for portatune_ml.
# This may be replaced when dependencies are built.
