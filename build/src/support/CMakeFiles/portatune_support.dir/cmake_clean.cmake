file(REMOVE_RECURSE
  "CMakeFiles/portatune_support.dir/correlation.cpp.o"
  "CMakeFiles/portatune_support.dir/correlation.cpp.o.d"
  "CMakeFiles/portatune_support.dir/rng.cpp.o"
  "CMakeFiles/portatune_support.dir/rng.cpp.o.d"
  "CMakeFiles/portatune_support.dir/stats.cpp.o"
  "CMakeFiles/portatune_support.dir/stats.cpp.o.d"
  "CMakeFiles/portatune_support.dir/table.cpp.o"
  "CMakeFiles/portatune_support.dir/table.cpp.o.d"
  "CMakeFiles/portatune_support.dir/thread_pool.cpp.o"
  "CMakeFiles/portatune_support.dir/thread_pool.cpp.o.d"
  "libportatune_support.a"
  "libportatune_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
