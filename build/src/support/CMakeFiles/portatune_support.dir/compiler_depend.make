# Empty compiler generated dependencies file for portatune_support.
# This may be replaced when dependencies are built.
