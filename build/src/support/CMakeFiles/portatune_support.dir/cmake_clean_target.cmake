file(REMOVE_RECURSE
  "libportatune_support.a"
)
