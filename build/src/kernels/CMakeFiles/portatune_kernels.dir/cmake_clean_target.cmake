file(REMOVE_RECURSE
  "libportatune_kernels.a"
)
