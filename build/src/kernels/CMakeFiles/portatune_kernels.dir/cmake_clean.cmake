file(REMOVE_RECURSE
  "CMakeFiles/portatune_kernels.dir/native.cpp.o"
  "CMakeFiles/portatune_kernels.dir/native.cpp.o.d"
  "CMakeFiles/portatune_kernels.dir/sim_evaluator.cpp.o"
  "CMakeFiles/portatune_kernels.dir/sim_evaluator.cpp.o.d"
  "CMakeFiles/portatune_kernels.dir/spapt.cpp.o"
  "CMakeFiles/portatune_kernels.dir/spapt.cpp.o.d"
  "libportatune_kernels.a"
  "libportatune_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
