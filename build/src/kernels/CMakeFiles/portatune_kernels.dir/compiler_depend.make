# Empty compiler generated dependencies file for portatune_kernels.
# This may be replaced when dependencies are built.
