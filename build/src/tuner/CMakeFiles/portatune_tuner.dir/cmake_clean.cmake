file(REMOVE_RECURSE
  "CMakeFiles/portatune_tuner.dir/adaptive.cpp.o"
  "CMakeFiles/portatune_tuner.dir/adaptive.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/experiment.cpp.o"
  "CMakeFiles/portatune_tuner.dir/experiment.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/heuristics.cpp.o"
  "CMakeFiles/portatune_tuner.dir/heuristics.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/metrics.cpp.o"
  "CMakeFiles/portatune_tuner.dir/metrics.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/param.cpp.o"
  "CMakeFiles/portatune_tuner.dir/param.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/persistence.cpp.o"
  "CMakeFiles/portatune_tuner.dir/persistence.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/random_search.cpp.o"
  "CMakeFiles/portatune_tuner.dir/random_search.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/sampler.cpp.o"
  "CMakeFiles/portatune_tuner.dir/sampler.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/similarity.cpp.o"
  "CMakeFiles/portatune_tuner.dir/similarity.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/trace.cpp.o"
  "CMakeFiles/portatune_tuner.dir/trace.cpp.o.d"
  "CMakeFiles/portatune_tuner.dir/transfer.cpp.o"
  "CMakeFiles/portatune_tuner.dir/transfer.cpp.o.d"
  "libportatune_tuner.a"
  "libportatune_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
