# Empty compiler generated dependencies file for portatune_tuner.
# This may be replaced when dependencies are built.
