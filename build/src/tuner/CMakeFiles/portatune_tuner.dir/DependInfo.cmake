
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/adaptive.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/adaptive.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/adaptive.cpp.o.d"
  "/root/repo/src/tuner/experiment.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/experiment.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/experiment.cpp.o.d"
  "/root/repo/src/tuner/heuristics.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/heuristics.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/heuristics.cpp.o.d"
  "/root/repo/src/tuner/metrics.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/metrics.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/metrics.cpp.o.d"
  "/root/repo/src/tuner/param.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/param.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/param.cpp.o.d"
  "/root/repo/src/tuner/persistence.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/persistence.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/persistence.cpp.o.d"
  "/root/repo/src/tuner/random_search.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/random_search.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/random_search.cpp.o.d"
  "/root/repo/src/tuner/sampler.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/sampler.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/sampler.cpp.o.d"
  "/root/repo/src/tuner/similarity.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/similarity.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/similarity.cpp.o.d"
  "/root/repo/src/tuner/trace.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/trace.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/trace.cpp.o.d"
  "/root/repo/src/tuner/transfer.cpp" "src/tuner/CMakeFiles/portatune_tuner.dir/transfer.cpp.o" "gcc" "src/tuner/CMakeFiles/portatune_tuner.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/portatune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/portatune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
