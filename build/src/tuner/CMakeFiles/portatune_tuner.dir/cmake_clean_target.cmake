file(REMOVE_RECURSE
  "libportatune_tuner.a"
)
