# Empty compiler generated dependencies file for portatune_sim.
# This may be replaced when dependencies are built.
