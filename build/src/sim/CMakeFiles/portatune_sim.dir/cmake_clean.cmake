file(REMOVE_RECURSE
  "CMakeFiles/portatune_sim.dir/cache.cpp.o"
  "CMakeFiles/portatune_sim.dir/cache.cpp.o.d"
  "CMakeFiles/portatune_sim.dir/cost_model.cpp.o"
  "CMakeFiles/portatune_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/portatune_sim.dir/loopnest.cpp.o"
  "CMakeFiles/portatune_sim.dir/loopnest.cpp.o.d"
  "CMakeFiles/portatune_sim.dir/machine.cpp.o"
  "CMakeFiles/portatune_sim.dir/machine.cpp.o.d"
  "CMakeFiles/portatune_sim.dir/trace_sim.cpp.o"
  "CMakeFiles/portatune_sim.dir/trace_sim.cpp.o.d"
  "libportatune_sim.a"
  "libportatune_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
