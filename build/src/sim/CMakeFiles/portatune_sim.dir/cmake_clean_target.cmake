file(REMOVE_RECURSE
  "libportatune_sim.a"
)
