
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/portatune_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/portatune_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/portatune_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/portatune_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/loopnest.cpp" "src/sim/CMakeFiles/portatune_sim.dir/loopnest.cpp.o" "gcc" "src/sim/CMakeFiles/portatune_sim.dir/loopnest.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/portatune_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/portatune_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/trace_sim.cpp" "src/sim/CMakeFiles/portatune_sim.dir/trace_sim.cpp.o" "gcc" "src/sim/CMakeFiles/portatune_sim.dir/trace_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/portatune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
