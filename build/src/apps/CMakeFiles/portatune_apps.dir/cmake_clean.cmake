file(REMOVE_RECURSE
  "CMakeFiles/portatune_apps.dir/hpl.cpp.o"
  "CMakeFiles/portatune_apps.dir/hpl.cpp.o.d"
  "CMakeFiles/portatune_apps.dir/raytracer.cpp.o"
  "CMakeFiles/portatune_apps.dir/raytracer.cpp.o.d"
  "CMakeFiles/portatune_apps.dir/registry.cpp.o"
  "CMakeFiles/portatune_apps.dir/registry.cpp.o.d"
  "libportatune_apps.a"
  "libportatune_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
