file(REMOVE_RECURSE
  "libportatune_apps.a"
)
