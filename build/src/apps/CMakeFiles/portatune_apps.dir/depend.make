# Empty dependencies file for portatune_apps.
# This may be replaced when dependencies are built.
