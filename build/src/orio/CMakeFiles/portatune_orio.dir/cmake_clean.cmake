file(REMOVE_RECURSE
  "CMakeFiles/portatune_orio.dir/annotation.cpp.o"
  "CMakeFiles/portatune_orio.dir/annotation.cpp.o.d"
  "CMakeFiles/portatune_orio.dir/codegen.cpp.o"
  "CMakeFiles/portatune_orio.dir/codegen.cpp.o.d"
  "CMakeFiles/portatune_orio.dir/compiled.cpp.o"
  "CMakeFiles/portatune_orio.dir/compiled.cpp.o.d"
  "libportatune_orio.a"
  "libportatune_orio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_orio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
