# Empty compiler generated dependencies file for portatune_orio.
# This may be replaced when dependencies are built.
