file(REMOVE_RECURSE
  "libportatune_orio.a"
)
