file(REMOVE_RECURSE
  "CMakeFiles/portatune_cli.dir/portatune_cli.cpp.o"
  "CMakeFiles/portatune_cli.dir/portatune_cli.cpp.o.d"
  "portatune_cli"
  "portatune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portatune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
