# Empty compiler generated dependencies file for portatune_cli.
# This may be replaced when dependencies are built.
