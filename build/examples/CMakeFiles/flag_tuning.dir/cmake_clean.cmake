file(REMOVE_RECURSE
  "CMakeFiles/flag_tuning.dir/flag_tuning.cpp.o"
  "CMakeFiles/flag_tuning.dir/flag_tuning.cpp.o.d"
  "flag_tuning"
  "flag_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flag_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
