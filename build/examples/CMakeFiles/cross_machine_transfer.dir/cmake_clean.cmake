file(REMOVE_RECURSE
  "CMakeFiles/cross_machine_transfer.dir/cross_machine_transfer.cpp.o"
  "CMakeFiles/cross_machine_transfer.dir/cross_machine_transfer.cpp.o.d"
  "cross_machine_transfer"
  "cross_machine_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_machine_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
