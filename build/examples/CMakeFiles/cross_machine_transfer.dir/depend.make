# Empty dependencies file for cross_machine_transfer.
# This may be replaced when dependencies are built.
