file(REMOVE_RECURSE
  "CMakeFiles/native_autotune.dir/native_autotune.cpp.o"
  "CMakeFiles/native_autotune.dir/native_autotune.cpp.o.d"
  "native_autotune"
  "native_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
