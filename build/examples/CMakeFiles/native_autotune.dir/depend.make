# Empty dependencies file for native_autotune.
# This may be replaced when dependencies are built.
