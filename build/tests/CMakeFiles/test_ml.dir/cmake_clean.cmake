file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_baselines.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_baselines.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_forest.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_forest.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_tree.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_tree.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
