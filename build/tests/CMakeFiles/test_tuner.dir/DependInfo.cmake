
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tuner/test_adaptive_similarity.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_adaptive_similarity.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_adaptive_similarity.cpp.o.d"
  "/root/repo/tests/tuner/test_heuristics.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_heuristics.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_heuristics.cpp.o.d"
  "/root/repo/tests/tuner/test_metrics_experiment.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_metrics_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_metrics_experiment.cpp.o.d"
  "/root/repo/tests/tuner/test_nm_orthogonal.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_nm_orthogonal.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_nm_orthogonal.cpp.o.d"
  "/root/repo/tests/tuner/test_param.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o.d"
  "/root/repo/tests/tuner/test_persistence.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_persistence.cpp.o.d"
  "/root/repo/tests/tuner/test_random_search.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_random_search.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_random_search.cpp.o.d"
  "/root/repo/tests/tuner/test_trace_sampler.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_trace_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_trace_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orio/CMakeFiles/portatune_orio.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/portatune_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/portatune_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/portatune_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/portatune_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/portatune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/portatune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
