file(REMOVE_RECURSE
  "CMakeFiles/test_tuner.dir/tuner/test_adaptive_similarity.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_adaptive_similarity.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_heuristics.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_heuristics.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_metrics_experiment.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_metrics_experiment.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_nm_orthogonal.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_nm_orthogonal.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_persistence.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_persistence.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_random_search.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_random_search.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_trace_sampler.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_trace_sampler.cpp.o.d"
  "test_tuner"
  "test_tuner.pdb"
  "test_tuner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
