# Empty compiler generated dependencies file for test_orio.
# This may be replaced when dependencies are built.
