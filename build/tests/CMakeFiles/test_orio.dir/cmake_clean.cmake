file(REMOVE_RECURSE
  "CMakeFiles/test_orio.dir/orio/test_annotation.cpp.o"
  "CMakeFiles/test_orio.dir/orio/test_annotation.cpp.o.d"
  "CMakeFiles/test_orio.dir/orio/test_codegen.cpp.o"
  "CMakeFiles/test_orio.dir/orio/test_codegen.cpp.o.d"
  "test_orio"
  "test_orio.pdb"
  "test_orio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
