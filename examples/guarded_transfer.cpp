// Guarded transfer on the dissimilar-machine cell.
//
// The paper's Tables IV/V show transfer from an X-Gene source is the
// risky case: its rank correlation with the x86 targets is far below the
// Westmere<->Sandybridge 0.8+, so the transferred surrogate can prune or
// deprioritize exactly the configurations that are fast on the target.
// This driver runs the full Sec. IV-D experiment for that cell twice —
// guard off, then guard on (see src/tuner/guard.hpp) — and reports how
// far each variant's best lands from plain RS at the same budget,
// plus the guard's state-transition timeline. The guarded searches
// bound the worst-case regression: once trust collapses they degenerate
// to plain RS instead of following the misleading model to the end.
//
// Compatibility witness: this example deliberately stays on the legacy
// free-function entry point (tuner::run_transfer_experiment) rather than
// the session API the other examples migrated to. It pins the promise
// that the free functions keep working unchanged — they are thin
// adapters over tuner::ExperimentSession now, and this driver's output
// must not move when that adapter evolves.
#include <cstdio>

#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "sim/machine.hpp"
#include "tuner/experiment.hpp"

int main() {
  using namespace portatune;

  auto problem = kernels::make_lu();

  const auto run = [&](bool guard_on) {
    kernels::SimulatedKernelEvaluator xgene(problem, sim::make_xgene());
    kernels::SimulatedKernelEvaluator sandybridge(problem,
                                                  sim::make_sandybridge());
    tuner::ExperimentSettings s;  // nmax=100, N=10000, delta=20%
    s.guard.enabled = guard_on;
    s.guard.refit_after = 30;  // RS_b rescue refit once 30 target rows exist
    return tuner::run_transfer_experiment(xgene, sandybridge, s);
  };

  const auto off = run(false);
  const auto on = run(true);

  std::printf("LU: X-Gene -> Sandybridge (the dissimilar-machine cell)\n");
  std::printf("run-time correlation over the shared RS configurations:\n");
  std::printf("  pearson %.3f   spearman %.3f   top-20%% overlap %.2f\n\n",
              off.pearson, off.spearman, off.top_overlap);

  const double rs_best = off.target_rs.best_seconds();
  std::printf("plain RS best on target: %.4f s\n\n", rs_best);

  const auto row = [&](const char* name, const tuner::SearchTrace& t) {
    const double gap = (t.best_seconds() - rs_best) / rs_best * 100.0;
    std::printf("%-18s best %.4f s  (%+.1f%% vs RS)\n", name,
                t.best_seconds(), gap);
  };
  std::printf("guard off (trusts the X-Gene surrogate unconditionally):\n");
  row("  RS_p", off.pruned);
  row("  RS_b", off.biased);
  std::printf("guard on (trust-monitored degradation):\n");
  row("  RS_p", on.pruned);
  row("  RS_b", on.biased);

  if (on.guard_log.empty()) {
    std::printf("\nguard timeline: (never fired — the surrogate held up)\n");
  } else {
    std::printf("\nguard timeline:\n");
    for (const auto& line : on.guard_log)
      std::printf("  %s\n", line.c_str());
  }
  return 0;
}
