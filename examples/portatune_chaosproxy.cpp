// portatune_chaosproxy — standalone socket-level fault injector.
//
// Sits between protocol clients and a `portatune_cli serve` daemon,
// injecting the transport failures the exactly-once protocol must
// survive (service/chaos_proxy.hpp): delayed replies, torn replies,
// mid-reply hangups, and blackholed requests. Faults are seeded, so a
// run is replayable.
//
//   portatune_cli serve --socket /tmp/pt.sock --data-dir svc &
//   portatune_chaosproxy --listen /tmp/pt.chaos --upstream /tmp/pt.sock \
//       --seed 42 --tear-rate 0.08 --hangup-rate 0.05 \
//       --blackhole-rate 0.03 --delay-rate 0.1 --delay-seconds 0.02 &
//   portatune_loadgen --socket /tmp/pt.chaos ...
//
// Runs until SIGTERM/SIGINT, then prints the fault tally and exits 0.
// (`portatune_loadgen --chaos` forks one of these in-process instead —
// this tool exists for driving chaos by hand or from shell tests.)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/chaos_proxy.hpp"
#include "support/error.hpp"
#include "support/signal.hpp"

namespace {

void usage() {
  std::printf(
      "usage: portatune_chaosproxy --listen <socket> --upstream <socket>\n"
      "                            [--seed N]\n"
      "                            [--delay-rate R] [--delay-seconds S]\n"
      "                            [--tear-rate R] [--hangup-rate R]\n"
      "                            [--blackhole-rate R]\n"
      "                            [--blackhole-hold-seconds S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace portatune;
  std::string listen, upstream;
  service::ChaosProxyOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return 1;
    }
    const std::string value = argv[++i];
    if (arg == "--listen") listen = value;
    else if (arg == "--upstream") upstream = value;
    else if (arg == "--seed") opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--delay-rate") opt.delay_rate = std::atof(value.c_str());
    else if (arg == "--delay-seconds") opt.delay_seconds = std::atof(value.c_str());
    else if (arg == "--tear-rate") opt.tear_rate = std::atof(value.c_str());
    else if (arg == "--hangup-rate") opt.hangup_rate = std::atof(value.c_str());
    else if (arg == "--blackhole-rate") opt.blackhole_rate = std::atof(value.c_str());
    else if (arg == "--blackhole-hold-seconds")
      opt.blackhole_hold_seconds = std::atof(value.c_str());
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (listen.empty() || upstream.empty()) {
    usage();
    return 1;
  }
  try {
    install_shutdown_signal_handler();
    service::ChaosProxy proxy(listen, upstream, opt);
    std::printf("chaosproxy: %s -> %s (seed %llu)\n", listen.c_str(),
                upstream.c_str(),
                static_cast<unsigned long long>(opt.seed));
    std::fflush(stdout);
    proxy.run(shutdown_token());
    const service::ChaosStats s = proxy.stats();
    std::printf(
        "chaosproxy: %llu connections, %llu requests forwarded, "
        "%llu delays, %llu tears, %llu hangups, %llu blackholes\n",
        static_cast<unsigned long long>(s.connections),
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.delays),
        static_cast<unsigned long long>(s.tears),
        static_cast<unsigned long long>(s.hangups),
        static_cast<unsigned long long>(s.blackholes));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "chaosproxy: %s\n", e.what());
    return 1;
  }
}
