// Autotune a *real* kernel on the host machine — no simulation anywhere.
//
//   1. parse a mini-Orio annotation for matrix multiply at n = 256,
//   2. tune the cache-tile parameters in process with pattern search
//      (NativeKernelEvaluator times the real blocked kernel),
//   3. regenerate the best variant's C source through the mini-Orio code
//      generator, compile it with the host compiler, and time it against
//      the untransformed default — the full Orio pipeline.
#include <cstdio>

#include "kernels/native.hpp"
#include "orio/annotation.hpp"
#include "orio/codegen.hpp"
#include "orio/compiled.hpp"
#include "support/error.hpp"
#include "tuner/heuristics.hpp"

int main() {
  using namespace portatune;

  auto problem = orio::parse_annotation(orio::example_mm_annotation(192));
  kernels::NativeKernelEvaluator host(problem, /*reps=*/1);

  tuner::PatternSearchOptions opt;
  opt.max_evals = 24;
  opt.seed = 11;
  const auto trace = tuner::pattern_search(host, opt);

  std::printf("tuned MM (n=256) on the host: best %.4f s over %zu evals\n",
              trace.best_seconds(), trace.size());
  std::printf("best configuration: %s\n",
              problem->space().describe(trace.best_config()).c_str());

  // Full Orio path: emit, compile, and run the best variant and the
  // default variant as standalone C programs.
  const auto& nest = problem->phases()[0].nest;
  const auto best_t = problem->transforms(trace.best_config(), 1)[0];
  const auto default_t =
      problem->transforms(problem->space().default_config(), 1)[0];

  std::printf("\ngenerated C for the best variant (head):\n");
  const std::string code = orio::generate_c(nest, best_t, "mm_variant");
  std::printf("%.*s...\n", 400, code.c_str());

  try {
    orio::CompileOptions copt;
    copt.reps = 2;
    const double best_s = orio::compile_and_run_variant(nest, best_t, copt);
    const double def_s =
        orio::compile_and_run_variant(nest, default_t, copt);
    std::printf("\ncompiled with the host compiler:\n");
    std::printf("  default variant: %.4f s\n", def_s);
    std::printf("  tuned variant:   %.4f s  (%.2fx)\n", best_s,
                def_s / best_s);
  } catch (const Error& e) {
    std::printf("(compile-and-run step unavailable: %s)\n", e.what());
  }
  return 0;
}
