// portatune_report — offline analysis of a run's observability output.
//
//   portatune_report --log events.jsonl
//       per-phase latency breakdown (self vs child time), per-worker
//       occupancy, per-cell experiment stats, and search convergence
//       summaries (evals-to-best, failures, retries)
//   portatune_report --log events.jsonl --metrics metrics.json
//       additionally summarise the metrics snapshot
//   portatune_report --timeseries run/metrics_timeseries.jsonl
//       summarise a sampler time-series (throughput, queue depth, guard
//       trust over the run; kill+resume segments counted by pid). Can be
//       given alone or alongside --log.
//   portatune_report --log events.jsonl --compare baseline.jsonl
//       phase-by-phase percent deltas against a baseline run; exits 2
//       when any phase's total time regressed by --threshold percent
//       (default 20) or more, so CI can gate on it
//   portatune_report --compare-bench baseline.json --bench current.json
//       the same comparison over google-benchmark JSON output
//       (--benchmark_out), e.g. the checked-in BENCH_4.json baseline
//
// Exit codes: 0 ok, 1 usage/input error, 2 regression detected.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"

using namespace portatune;

namespace {

struct Args {
  std::string log;            ///< JSONL event log to analyse
  std::string metrics;        ///< metrics snapshot to summarise
  std::string timeseries;     ///< sampler time-series to summarise
  std::string compare;        ///< baseline JSONL for regression diff
  std::string compare_bench;  ///< baseline google-benchmark JSON
  std::string bench;          ///< current google-benchmark JSON
  double threshold = 20.0;    ///< regression threshold, percent
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; i += 2) {
    const std::string key = argv[i];
    PT_REQUIRE(i + 1 < argc, "option " + key + " is missing a value");
    const std::string value = argv[i + 1];
    if (key == "--log") a.log = value;
    else if (key == "--metrics") a.metrics = value;
    else if (key == "--timeseries") a.timeseries = value;
    else if (key == "--compare") a.compare = value;
    else if (key == "--compare-bench") a.compare_bench = value;
    else if (key == "--bench") a.bench = value;
    else if (key == "--threshold") a.threshold = std::stod(value);
    else throw Error("unknown option: " + key);
  }
  PT_REQUIRE(!a.log.empty() || !a.compare_bench.empty() ||
                 !a.timeseries.empty(),
             "usage: portatune_report --log events.jsonl "
             "[--metrics metrics.json] [--timeseries series.jsonl] "
             "[--compare baseline.jsonl] [--threshold pct] | "
             "--compare-bench baseline.json --bench current.json | "
             "--timeseries series.jsonl");
  PT_REQUIRE(a.compare_bench.empty() == a.bench.empty(),
             "--compare-bench and --bench must be given together");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    bool regressed = false;

    if (!a.log.empty()) {
      // Lenient read: a crashed run's torn last line is skipped (and
      // counted on the report) instead of poisoning the whole analysis.
      obs::LogReadStats stats;
      const auto events = obs::read_event_log(a.log, &stats);
      if (stats.skipped > 0)
        std::fprintf(stderr,
                     "portatune_report: warning: skipped %zu malformed "
                     "line(s) in %s (first: %s)\n",
                     stats.skipped, a.log.c_str(),
                     stats.first_error.c_str());
      obs::Report report = obs::analyze_events(events);
      report.skipped_lines = stats.skipped;
      obs::write_report(std::cout, report);
      if (!a.metrics.empty()) {
        std::cout << "\n";
        obs::write_metrics_summary(std::cout, a.metrics);
      }
      if (!a.timeseries.empty()) std::cout << "\n";
      if (!a.compare.empty()) {
        obs::LogReadStats base_stats;
        const auto baseline_events =
            obs::read_event_log(a.compare, &base_stats);
        if (base_stats.skipped > 0)
          std::fprintf(stderr,
                       "portatune_report: warning: skipped %zu malformed "
                       "line(s) in %s\n",
                       base_stats.skipped, a.compare.c_str());
        obs::Report baseline = obs::analyze_events(baseline_events);
        baseline.skipped_lines = base_stats.skipped;
        const obs::Comparison c =
            obs::compare_reports(baseline, report, a.threshold);
        std::cout << "\n";
        obs::write_comparison(std::cout, c);
        regressed = regressed || c.regressed();
      }
    }

    if (!a.timeseries.empty())
      obs::write_timeseries_summary(
          std::cout, obs::analyze_timeseries(a.timeseries), a.timeseries);

    if (!a.compare_bench.empty()) {
      const obs::Comparison c =
          obs::compare_bench_json(a.compare_bench, a.bench, a.threshold);
      if (!a.log.empty()) std::cout << "\n";
      obs::write_comparison(std::cout, c);
      regressed = regressed || c.regressed();
    }

    return regressed ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "portatune_report: %s\n", e.what());
    return 1;
  }
}
