// The paper's headline workflow: reuse autotuning data from one machine to
// accelerate the search on another — driven through the session API.
//
//   1. describe the transfer once with apps::TuningConfig (problem,
//      source/target machines, budget, CRN seed),
//   2. open a tuner::ExperimentSession over the two evaluator stacks and
//      run the full Sec. IV-D protocol: RS on the source (-> T_a), a
//      random-forest surrogate fitted on T_a, the surrogate-guided
//      searches RS_p (pruning, Algorithm 1) and RS_b (biasing,
//      Algorithm 2) on the target, and the model-free controls,
//   3. report the performance and search-time speedups of Sec. IV-D.
//
// The legacy free function tuner::run_transfer_experiment() still exists
// and is exactly this: a thin adapter that opens one ExperimentSession
// and runs it (examples/guarded_transfer.cpp keeps using it as the
// compatibility witness).
#include <cstdio>

#include "apps/tuning_config.hpp"
#include "tuner/session.hpp"

int main() {
  using namespace portatune;

  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machines("Westmere", "Sandybridge");
  auto westmere = cfg.make_stack(apps::StackRole::Source);
  auto sandybridge = cfg.make_stack(apps::StackRole::Target);

  // nmax=100, N=10000, delta=20% — the builder's validated defaults.
  const tuner::ExperimentSettings settings = cfg.experiment_settings();
  tuner::ExperimentSession session(*westmere, *sandybridge, settings,
                                   "lu-westmere-to-sandybridge");
  const auto result = session.run();

  std::printf("LU: Westmere -> Sandybridge transfer\n");
  std::printf("run-time correlation over the shared RS configurations:\n");
  std::printf("  pearson %.3f   spearman %.3f   top-20%% overlap %.2f\n\n",
              result.pearson, result.spearman, result.top_overlap);

  std::printf("%-28s %10s %14s\n", "variant", "Prf.Imp", "Srh.Imp");
  const auto row = [](const char* name, const tuner::Speedups& s) {
    std::printf("%-28s %9.2fx %13.2fx%s\n", name, s.performance, s.search,
                s.successful() ? "  (successful)" : "");
  };
  row("RS_p  (model pruning)", result.pruned_speedup);
  row("RS_b  (model biasing)", result.biased_speedup);
  row("RS_pf (model-free pruning)", result.pruned_mf_speedup);
  row("RS_bf (model-free biasing)", result.biased_mf_speedup);

  std::printf("\nRS   best on target: %.3f s (reached at %.1f s)\n",
              result.target_rs.best_seconds(),
              result.target_rs.time_to_best());
  std::printf("RS_b best on target: %.3f s (reached at %.1f s)\n",
              result.biased.best_seconds(), result.biased.time_to_best());
  return 0;
}
