// The paper's headline workflow: reuse autotuning data from one machine to
// accelerate the search on another.
//
//   1. run RS on the source machine (Intel Westmere) -> T_a,
//   2. fit a random-forest surrogate on T_a,
//   3. on the target machine (Intel Sandybridge), run the surrogate-guided
//      searches RS_p (pruning, Algorithm 1) and RS_b (biasing, Algorithm 2)
//      and the model-free controls,
//   4. report the performance and search-time speedups of Sec. IV-D.
#include <cstdio>

#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "sim/machine.hpp"
#include "tuner/experiment.hpp"

int main() {
  using namespace portatune;

  auto problem = kernels::make_lu();
  kernels::SimulatedKernelEvaluator westmere(problem, sim::make_westmere());
  kernels::SimulatedKernelEvaluator sandybridge(problem,
                                                sim::make_sandybridge());

  tuner::ExperimentSettings settings;  // nmax=100, N=10000, delta=20%
  const auto result =
      tuner::run_transfer_experiment(westmere, sandybridge, settings);

  std::printf("LU: Westmere -> Sandybridge transfer\n");
  std::printf("run-time correlation over the shared RS configurations:\n");
  std::printf("  pearson %.3f   spearman %.3f   top-20%% overlap %.2f\n\n",
              result.pearson, result.spearman, result.top_overlap);

  std::printf("%-28s %10s %14s\n", "variant", "Prf.Imp", "Srh.Imp");
  const auto row = [](const char* name, const tuner::Speedups& s) {
    std::printf("%-28s %9.2fx %13.2fx%s\n", name, s.performance, s.search,
                s.successful() ? "  (successful)" : "");
  };
  row("RS_p  (model pruning)", result.pruned_speedup);
  row("RS_b  (model biasing)", result.biased_speedup);
  row("RS_pf (model-free pruning)", result.pruned_mf_speedup);
  row("RS_bf (model-free biasing)", result.biased_mf_speedup);

  std::printf("\nRS   best on target: %.3f s (reached at %.1f s)\n",
              result.target_rs.best_seconds(),
              result.target_rs.time_to_best());
  std::printf("RS_b best on target: %.3f s (reached at %.1f s)\n",
              result.biased.best_seconds(), result.biased.time_to_best());
  return 0;
}
