// Compiler-flag tuning of the raytracer mini-app (paper Sec. IV-C "RT"):
// 143 boolean g++ flags + 104 valued parameters, searched with the
// OpenTuner-style multi-technique bandit ensemble — once cold, and once
// warm-started with a surrogate fitted on another machine's data.
#include <cstdio>

#include "apps/raytracer.hpp"
#include "sim/machine.hpp"
#include "tuner/experiment.hpp"
#include "tuner/heuristics.hpp"
#include "tuner/transfer.hpp"

int main() {
  using namespace portatune;

  apps::SimulatedRaytracerEvaluator westmere(sim::make_westmere());
  apps::SimulatedRaytracerEvaluator sandybridge(sim::make_sandybridge());

  std::printf("RT flag space: %zu tunables, |D| = %.2e\n",
              sandybridge.space().num_params(),
              sandybridge.space().cardinality());

  // Cold ensemble search on Sandybridge.
  tuner::EnsembleOptions cold;
  cold.max_evals = 100;
  cold.seed = 7;
  const auto cold_trace = tuner::ensemble_search(sandybridge, cold);

  // Warm ensemble: fit the surrogate on Westmere RS data, seed with it.
  tuner::ExperimentSettings settings;
  auto source = tuner::run_reference_rs(westmere, settings);
  const auto surrogate = tuner::fit_surrogate(source, westmere.space());

  tuner::EnsembleOptions warm = cold;
  warm.surrogate = surrogate.get();
  const auto warm_trace = tuner::ensemble_search(sandybridge, warm);

  std::printf("default flags (-O3 only):  %.3f s\n",
              sandybridge.evaluate(sandybridge.space().default_config())
                  .seconds);
  std::printf("cold ensemble best:        %.3f s (at %.1f s of search)\n",
              cold_trace.best_seconds(), cold_trace.time_to_best());
  std::printf("warm-started ensemble best: %.3f s (at %.1f s of search)\n",
              warm_trace.best_seconds(), warm_trace.time_to_best());

  // Which flags did the warm search settle on? Print the enabled subset.
  const auto& best = warm_trace.best_config();
  std::printf("enabled flags in the best configuration: ");
  int shown = 0;
  for (std::size_t p = 0; p < 143 && shown < 12; ++p) {
    if (best[p] != 0) {
      std::printf("%sF%zu", shown ? "," : "", p);
      ++shown;
    }
  }
  std::printf(",...\n");
  return 0;
}
