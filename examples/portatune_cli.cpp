// portatune_cli — command-line driver for the transfer workflow.
//
//   portatune_cli list
//       list problems and machines
//   portatune_cli collect --problem LU --machine Westmere --out ta.csv
//       run RS (n_max evals) and save the trace T_a
//       resilience options: --faults <rate> injects transient failures,
//       --retries N / --timeout S configure the resilient evaluator,
//       --checkpoint ck.csv snapshots every --ckpt-every evals, and
//       --resume ck.csv continues an interrupted collection exactly
//   portatune_cli transfer --problem LU --source Westmere --target Sandybridge
//                          [--from ta.csv] [--nmax 100] [--delta 20]
//       run the full Sec. IV-D experiment (optionally reusing a saved T_a)
//   portatune_cli similarity --problem LU --source Westmere --target X-Gene
//       probe-based machine-similarity report and transfer advice
//   portatune_cli experiment --problem LU --pairs W:SB,W:XG --run-dir d
//       journaled experiment fan-out: one Sec. IV-D cell per src:tgt
//       pair, each phase persisted as it completes into <run-dir>. A run
//       killed or interrupted mid-flight is continued exactly with
//       --resume <run-dir> (done cells restored, partial searches resumed
//       from their checkpoints).
//   portatune_cli status --run-dir d [--stale-after 10]
//       read-only live view of a journaled run: journal summary,
//       heartbeat freshness, per-cell progress, throughput/ETA. Safe to
//       invoke while the run is executing (every file it reads is
//       written atomically). Exit 0 = running or complete, 2 = dead
//       (stale/missing heartbeat with unfinished cells; prints the
//       resume hint) or not a run directory at all (no journal.csv).
//   portatune_cli status --socket /tmp/pt.sock [--interval 0.5]
//       live view of a running tuning service instead: issues the
//       `stats` op twice, --interval seconds apart, and renders a
//       per-op table (count, rate/s from the two samples, latency
//       p50/p95/p99, errors) plus a server summary line. Exit 0 on a
//       healthy reply, 2 when the daemon is unreachable — including a
//       daemon that dies *between* the two samples (prints a dead-socket
//       hint, never crashes).
//   portatune_cli serve --socket /tmp/pt.sock [--data-dir d]
//       run the tuning service: multiplexes concurrent tuning sessions
//       over a persistent surrogate store and a shared evaluation cache,
//       speaking line-delimited JSON on a Unix socket (see
//       src/service/protocol.hpp for the ops). SIGTERM checkpoints every
//       open session and exits 3; the shutdown op exits 0. Either way a
//       later serve on the same --data-dir can resume each session.
//       The daemon gets the journaled-run telemetry treatment: unless
//       --telemetry-every 0, it maintains server_status.json,
//       metrics_timeseries.jsonl, and flight_recorder.jsonl under
//       --data-dir, and --log-json/--chrome-trace/--metrics-out emit
//       their artifacts on both exit paths. --slow-request S (default 1)
//       sets the Warn threshold for slow protocol requests.
//       Resilience knobs: --lease-seconds S checkpoints-and-evicts
//       sessions idle past the lease (0 = sessions live forever);
//       --client-rate R / --client-burst B token-bucket each connection
//       (over-budget requests get a typed retry_after error). The
//       protocol's exactly-once reply cache persists to
//       <data-dir>/protocol_state.json across restarts.
//   portatune_cli call --socket /tmp/pt.sock --request '{"op":"status"}'
//       one-shot service client: send one request line, print the reply
//       line. Exit 0 when the reply says ok, 1 otherwise. Rides the
//       resilient client: reconnects and retries (exactly-once via rid
//       stamping on mutating ops) until --deadline seconds (default 10).
//
// Live telemetry (experiment): unless --telemetry-every 0, a journaled
// run continuously maintains three files in <run-dir>:
//   status.json               atomic heartbeat (progress, ETA, gauges)
//   metrics_timeseries.jsonl  one metrics sample appended per period
//   flight_recorder.jsonl     ring of the last events at ALL severities,
//                             dumped on SIGINT/SIGTERM, watchdog hangs,
//                             search aborts, PT_REQUIRE failures, and
//                             every sampler tick (so even SIGKILL leaves
//                             a black box at most one period old)
//
// Graceful shutdown (collect/experiment): SIGINT/SIGTERM requests
// cooperative cancellation — searches stop at the next window boundary,
// checkpoints/journal/logs are flushed, and the process exits with code 3
// so scripts can distinguish "interrupted but resumable" from success (0)
// and failure (1). A second signal force-exits immediately.
//
// Parallel evaluation (collect/transfer): --threads N fans evaluation
// windows out over N worker threads (0 = all hardware threads). Traces
// are bit-identical to --threads 1 runs: windows are processed in draw
// order and the simulated backends are pure functions of (machine,
// config).
//
// Guarded transfer (transfer): --guard enables the surrogate-trust
// monitor inside RS_p / RS_b — a sliding-window rank correlation between
// predicted and observed run times relaxes and ultimately disables
// pruning/biasing when the transferred model turns out to mislead on the
// target machine (see src/tuner/guard.hpp). --guard-floor F (default
// 0.2) and --guard-window N (default 25) tune the trust threshold and
// correlation window. Guard state transitions appear as "guard: ..."
// lines and as guard.state events in the JSONL log.
//
// Fault shaping: --faults takes either a bare rate R (historic spelling:
// transient failures at rate R) or a comma list of seeded channels, e.g.
// --faults "transient:0.05,hang:0.02,hang-stall:30" (see
// tuner::parse_fault_spec for every key). Injected hangs park on the
// cooperative cancellation token and are rescued by the eval watchdog at
// the --timeout deadline, classified Timeout. --slow S makes every
// evaluation sleep S seconds before returning its (unchanged) result — a
// deterministic slow-motion mode the chaos CI step uses to reliably
// SIGKILL a run mid-flight.
//
// Observability (any command):
//   --log-json events.jsonl    structured event log, one JSON object/line
//   --log-level debug|info|warn|error   event threshold (default info)
//   --metrics-out metrics.json counter/gauge/histogram snapshot at exit
//   --chrome-trace trace.json  Trace Event file for chrome://tracing or
//                              https://ui.perfetto.dev
//   --quiet                    suppress the end-of-run summary line
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/evaluator_factory.hpp"
#include "apps/registry.hpp"
#include "apps/tuning_config.hpp"
#include "obs/json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/sink.hpp"
#include "obs/thread_pool_metrics.hpp"
#include "service/resilient_client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "support/signal.hpp"
#include "tuner/experiment.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"
#include "tuner/run_journal.hpp"
#include "tuner/run_status.hpp"
#include "tuner/similarity.hpp"
#include "tuner/transfer.hpp"

using namespace portatune;

namespace {

struct Args {
  std::string command;
  std::string problem = "LU";
  std::string source = "Westmere";
  std::string target = "Sandybridge";
  std::string machine = "Westmere";
  std::string from, out;
  std::string checkpoint, resume;
  std::string pairs;      ///< experiment: src:tgt[,src:tgt...]
  std::string run_dir;    ///< experiment: journaled run directory
  std::size_t ckpt_every = 10;
  std::size_t nmax = 100;
  double delta = 20.0;
  std::string faults;     ///< fault spec (rate or key:value list)
  double slow = 0.0;      ///< per-evaluation sleep, seconds (0 = off)
  std::size_t retries = 2;
  double timeout = 0.0;   ///< per-evaluation deadline, seconds
  std::size_t threads = 1;  ///< evaluation workers (0 = all hardware)
  std::uint64_t seed = 20160401;
  std::string log_json;     ///< JSONL event-log path ("" = off)
  std::string log_level = "info";
  std::string metrics_out;  ///< metrics snapshot path ("" = off)
  std::string chrome_trace; ///< Chrome trace path ("" = off)
  bool quiet = false;       ///< suppress the end-of-run summary
  bool guard = false;       ///< surrogate-trust guard on RS_p / RS_b
  double guard_floor = 0.2; ///< trust floor (GuardOptions::floor)
  std::size_t guard_window = 25;  ///< trust window (GuardOptions::window)
  /// Live-telemetry cadence of journaled runs (status.json heartbeat,
  /// metrics time-series tick, periodic flight-recorder dump). 0
  /// disables all three — no threads, no files.
  double telemetry_every = 1.0;
  /// `status`: heartbeat age beyond which a run counts as dead.
  double stale_after = 10.0;
  /// `status --socket`: gap between the two stats samples rates are
  /// computed from.
  double interval = 0.5;
  /// `serve`: protocol requests slower than this emit a Warn event.
  double slow_request = 1.0;
  /// `serve`: sessions idle past this are checkpointed and evicted
  /// (0 = no lease, sessions live until closed or shutdown).
  double lease_seconds = 0.0;
  /// `serve`: per-connection request rate limit / burst (0 = unlimited).
  double client_rate = 0.0;
  double client_burst = 32.0;
  /// `call` / `status --socket`: overall per-call deadline for the
  /// resilient client's reconnect-and-retry loop.
  double deadline = 10.0;
  std::string socket;    ///< serve/call: Unix socket path
  /// `serve`: root of the service's persistent state (surrogate store,
  /// session checkpoints).
  std::string data_dir = "portatune_service";
  std::string request;   ///< call: one JSON request line

  /// The run directory the experiment/status command operates on
  /// (--resume doubles as the directory for resumed experiments).
  std::string effective_run_dir() const {
    return resume.empty() ? run_dir : resume;
  }
};

Args parse(int argc, char** argv) {
  PT_REQUIRE(argc >= 2, "usage: portatune_cli <list|collect|transfer|"
                        "experiment|status|similarity|serve|call> "
                        "[options]");
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--quiet") {  // flag options take no value
      a.quiet = true;
      --i;
      continue;
    }
    if (key == "--guard") {
      a.guard = true;
      --i;
      continue;
    }
    PT_REQUIRE(i + 1 < argc, "option " + key + " is missing a value");
    const std::string value = argv[i + 1];
    if (key == "--problem") a.problem = value;
    else if (key == "--source") a.source = value;
    else if (key == "--target") a.target = value;
    else if (key == "--machine") a.machine = value;
    else if (key == "--from") a.from = value;
    else if (key == "--out") a.out = value;
    else if (key == "--checkpoint") a.checkpoint = value;
    else if (key == "--resume") a.resume = value;
    else if (key == "--ckpt-every") a.ckpt_every = std::stoul(value);
    else if (key == "--nmax") a.nmax = std::stoul(value);
    else if (key == "--delta") a.delta = std::stod(value);
    else if (key == "--faults") a.faults = value;
    else if (key == "--slow") a.slow = std::stod(value);
    else if (key == "--pairs") a.pairs = value;
    else if (key == "--run-dir") a.run_dir = value;
    else if (key == "--guard-floor") a.guard_floor = std::stod(value);
    else if (key == "--guard-window") a.guard_window = std::stoul(value);
    else if (key == "--retries") a.retries = std::stoul(value);
    else if (key == "--timeout") a.timeout = std::stod(value);
    else if (key == "--threads") a.threads = std::stoul(value);
    else if (key == "--seed") a.seed = std::stoull(value);
    else if (key == "--log-json") a.log_json = value;
    else if (key == "--log-level") a.log_level = value;
    else if (key == "--metrics-out") a.metrics_out = value;
    else if (key == "--chrome-trace") a.chrome_trace = value;
    else if (key == "--telemetry-every") a.telemetry_every = std::stod(value);
    else if (key == "--stale-after") a.stale_after = std::stod(value);
    else if (key == "--interval") a.interval = std::stod(value);
    else if (key == "--slow-request") a.slow_request = std::stod(value);
    else if (key == "--lease-seconds") a.lease_seconds = std::stod(value);
    else if (key == "--client-rate") a.client_rate = std::stod(value);
    else if (key == "--client-burst") a.client_burst = std::stod(value);
    else if (key == "--deadline") a.deadline = std::stod(value);
    else if (key == "--socket") a.socket = value;
    else if (key == "--data-dir") a.data_dir = value;
    else if (key == "--request") a.request = value;
    else throw Error("unknown option: " + key);
  }
  return a;
}

/// Owns the sinks requested on the command line for the duration of one
/// run: installs them as the default sink, and on finish() writes the
/// metrics snapshot and Chrome trace. finish() is idempotent and the
/// destructor invokes it too, so the artifacts are emitted on *every*
/// exit path — success, graceful shutdown (exit 3), and the catch(Error)
/// unwind alike — and an exception cannot leave a dangling sink behind.
///
/// For journaled experiment runs the session additionally composes the
/// live-telemetry trio (unless --telemetry-every 0):
///   * a FlightRecorder ring joins the sink fan-out. The global log
///     level drops to Debug so the recorder sees every severity, and the
///     conventional sinks are re-filtered at the level the user asked
///     for — the hot path and the user-visible log are unchanged.
///   * a ScopedFlightRecorder arms the dump triggers (signals,
///     PT_REQUIRE, watchdog/abort sites).
///   * a MetricsSampler appends the time-series, and its tick piggybacks
///     a periodic recorder dump so even SIGKILL leaves a black box.
class ObsSession {
 public:
  explicit ObsSession(const Args& a) : args_(a) {
    // The directory the telemetry trio lives under: the run directory
    // for journaled experiments, the service data dir for the daemon
    // (whose "run" is its whole lifetime).
    const std::string telemetry_dir =
        a.command == "serve" ? a.data_dir : a.effective_run_dir();
    const bool telemetry =
        (a.command == "experiment" || a.command == "serve") &&
        !telemetry_dir.empty() && a.telemetry_every > 0.0;
    // The run directory must exist before any sink opens a file inside
    // it (the conventional layout puts events.jsonl there too).
    if (telemetry) ensure_directory(telemetry_dir);

    if (!a.log_json.empty())
      jsonl_ = std::make_unique<obs::JsonlSink>(a.log_json);
    if (!a.chrome_trace.empty())
      memory_ = std::make_unique<obs::MemorySink>();
    const obs::Severity user_level =
        obs::severity_from_string(a.log_level);

    std::vector<obs::EventSink*> fanout;
    if (telemetry) {
      recorder_ = std::make_unique<obs::FlightRecorder>();
      recorder_->set_dump_path(telemetry_dir + "/flight_recorder.jsonl");
      // The recorder must retain Debug/Info detail even when the user
      // filtered their log to warn/error: lower the global threshold and
      // push the user's threshold down into per-sink filters.
      for (obs::EventSink* sink :
           {static_cast<obs::EventSink*>(jsonl_.get()),
            static_cast<obs::EventSink*>(memory_.get())})
        if (sink != nullptr) {
          filters_.push_back(
              std::make_unique<obs::FilterSink>(sink, user_level));
          fanout.push_back(filters_.back().get());
        }
      fanout.push_back(recorder_.get());
      obs::set_log_level(obs::Severity::Debug);
    } else {
      if (jsonl_) fanout.push_back(jsonl_.get());
      if (memory_) fanout.push_back(memory_.get());
      obs::set_log_level(user_level);
    }
    if (fanout.size() == 1) {
      active_ = fanout.front();
    } else if (fanout.size() > 1) {
      tee_ = std::make_unique<obs::TeeSink>(fanout);
      active_ = tee_.get();
    }
    if (active_ != nullptr) obs::set_default_sink(active_);
    // Thread-pool telemetry rides along whenever any observability
    // output was asked for; with none, the pools stay fully dormant.
    if (active_ != nullptr || !a.metrics_out.empty())
      pool_metrics_ = std::make_unique<obs::ScopedThreadPoolMetrics>();
    if (telemetry) {
      scoped_recorder_ =
          std::make_unique<obs::ScopedFlightRecorder>(*recorder_);
      obs::MetricsSampler::Options so;
      so.path = telemetry_dir + "/metrics_timeseries.jsonl";
      so.period_seconds = a.telemetry_every;
      so.on_tick = [] { obs::dump_flight_recorder("periodic"); };
      sampler_ = std::make_unique<obs::MetricsSampler>(std::move(so));
    }
  }

  ~ObsSession() {
    try {
      finish();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: observability artifacts not fully "
                           "written: %s\n",
                   e.what());
    }
    obs::set_default_sink(nullptr);  // never leave a dangling sink
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Write the requested output files after the command finished.
  /// Idempotent: the destructor calls it again harmlessly, which is what
  /// makes the artifacts survive the error-unwind path.
  void finish() {
    if (finished_) return;
    finished_ = true;
    // Stop the sampler before tearing the sinks down: its final tick
    // (and final recorder dump) must still see the full chain.
    sampler_.reset();
    obs::set_default_sink(nullptr);
    if (memory_) {
      const auto events = memory_->events();
      obs::write_chrome_trace(args_.chrome_trace, events);
      if (!args_.quiet)
        std::printf("wrote %zu trace events to %s\n", events.size(),
                    args_.chrome_trace.c_str());
    }
    if (!args_.metrics_out.empty()) {
      // Crash-safe like every persistence artifact: an interrupt during
      // the write never leaves a torn snapshot behind.
      atomic_write_file(
          args_.metrics_out,
          obs::MetricsRegistry::current().snapshot().to_json() + "\n");
      if (!args_.quiet)
        std::printf("wrote metrics to %s\n", args_.metrics_out.c_str());
    }
  }

 private:
  const Args& args_;
  std::unique_ptr<obs::JsonlSink> jsonl_;
  std::unique_ptr<obs::MemorySink> memory_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::unique_ptr<obs::FilterSink>> filters_;
  std::unique_ptr<obs::TeeSink> tee_;
  std::unique_ptr<obs::ScopedThreadPoolMetrics> pool_metrics_;
  std::unique_ptr<obs::ScopedFlightRecorder> scoped_recorder_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
  obs::EventSink* active_ = nullptr;
  bool finished_ = false;
};

void print_failure_summary(const tuner::SearchTrace& trace,
                           const tuner::ResilienceStats& stats) {
  const auto& fs = trace.failure_stats();
  if (fs.failures == 0 && stats.retries == 0) return;
  std::printf("resilience: %zu attempts, %zu failures "
              "(%zu transient, %zu deterministic, %zu timeout), "
              "%zu retries, %zu quarantined\n",
              fs.attempts, fs.failures, fs.transient, fs.deterministic,
              fs.timeouts, stats.retries, stats.quarantined);
  if (!trace.stop_reason().empty())
    std::printf("search aborted: %s\n", trace.stop_reason().c_str());
}

/// The one composition point for run configuration: every command that
/// builds evaluator stacks or search settings starts from this validated
/// builder instead of hand-assembling the legacy option structs.
apps::TuningConfig tuning_config_from(const Args& a) {
  apps::TuningConfig cfg;
  cfg.problem(a.problem)
      .machines(a.source, a.target)
      .max_evals(a.nmax)
      .seed(a.seed)
      .delta_percent(a.delta)
      .observe(true)
      .guard_enabled(a.guard)
      .guard_floor(a.guard_floor)
      .guard_window(a.guard_window);
  return cfg;
}

/// Fault profile from --faults / --slow, seeded like every channel.
tuner::FaultProfile fault_profile_from(const Args& a) {
  tuner::FaultProfile profile;
  if (!a.faults.empty()) profile = tuner::parse_fault_spec(a.faults);
  if (a.slow > 0.0) {
    // Deterministic slow motion: every evaluation sleeps a.slow seconds
    // and then returns its normal result, so the chaos CI step can kill
    // the run mid-flight without changing what the trace records.
    profile.delay_rate = 1.0;
    profile.delay_seconds = a.slow;
  }
  profile.seed = a.seed;
  return profile;
}

int cmd_list() {
  std::printf("problems: ");
  for (const auto& p : apps::all_problem_names()) std::printf("%s ", p.c_str());
  std::printf("\nmachines: ");
  for (const auto& m : sim::table2_machines())
    std::printf("%s ", m.name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_collect(const Args& a) {
  // Decorator chain (wired by EvaluatorStack): backend -> faults ->
  // observer -> retry/timeout -> parallel. The observer sits inside the
  // resilient layer so it sees every raw attempt (including injected
  // faults), one event per attempt. The search only sees the outermost
  // layer.
  tuner::RetryPolicy retry;
  retry.max_attempts = a.retries + 1;
  retry.timeout_seconds = a.timeout;
  apps::TuningConfig cfg = tuning_config_from(a);
  cfg.machine(a.machine)
      .faults(fault_profile_from(a))
      .resilient(true)
      .retry(retry)
      .eval_threads(a.threads)
      .cancel(shutdown_token());
  apps::EvaluatorStack eval(cfg.stack_options());

  tuner::RandomSearchOptions opt;
  static_cast<tuner::SearchCommon&>(opt) = cfg.search_common();

  tuner::SearchCheckpoint resumed;
  if (!a.resume.empty()) {
    resumed = tuner::load_checkpoint_csv(a.resume, eval.space());
    opt.resume = &resumed;
    std::printf("resuming from %s: %zu evaluations, %zu draws consumed\n",
                a.resume.c_str(), resumed.trace.size(), resumed.draws);
  }
  if (!a.checkpoint.empty()) {
    opt.checkpoint_every = a.ckpt_every;
    opt.on_checkpoint = [&](const tuner::SearchCheckpoint& snapshot) {
      tuner::save_checkpoint_csv(a.checkpoint, snapshot, eval.space());
    };
  }

  const auto trace = tuner::random_search(eval, opt);
  std::printf("collected %zu evaluations of %s on %s (best %.4f s)\n",
              trace.size(), a.problem.c_str(), a.machine.c_str(),
              trace.best_seconds());
  print_failure_summary(trace, eval.resilient_layer()->stats());
  if (!a.checkpoint.empty())
    std::printf("saved checkpoint to %s\n", a.checkpoint.c_str());
  if (!a.out.empty()) {
    tuner::save_trace_csv(a.out, trace, eval.space());
    std::printf("saved T_a to %s\n", a.out.c_str());
  }
  if (!a.quiet && !trace.empty()) {
    const auto& fs = trace.failure_stats();
    std::printf("summary: best=%s best_seconds=%.6g evals=%zu "
                "failures=%zu/%zu overhead_seconds=%.3g\n",
                eval.space().describe(trace.best_config()).c_str(),
                trace.best_seconds(), trace.size(), fs.failures,
                fs.attempts, fs.overhead_seconds);
  }
  if (trace.stop_reason() == tuner::kCancelledStopReason) {
    std::printf("interrupted by shutdown request after %zu evaluations",
                trace.size());
    if (!a.checkpoint.empty())
      std::printf("; resume with --resume %s", a.checkpoint.c_str());
    std::printf("\n");
    return 3;
  }
  return 0;
}

int cmd_transfer(const Args& a) {
  // Per-evaluation telemetry, tagged by role: eval.source.* / eval.target.*
  // counters and one event per evaluation. Both stacks pick up --threads.
  apps::TuningConfig cfg = tuning_config_from(a);
  cfg.eval_threads(a.threads)
      .cancel(shutdown_token())
      // No resilient layer here, so the parallel layer owns the watchdog
      // deadline: a cooperatively hung evaluation is rescued at --timeout.
      .eval_deadline_seconds(a.timeout);
  const auto source = cfg.make_stack(apps::StackRole::Source);
  const auto target = cfg.make_stack(apps::StackRole::Target);
  const tuner::ExperimentSettings s = cfg.experiment_settings();

  if (!a.from.empty()) {
    // Reuse a previously collected T_a: fit the surrogate and run the
    // guided searches directly.
    const auto ta = tuner::load_trace_csv(a.from, source->space());
    std::printf("loaded T_a: %zu rows from %s\n", ta.size(),
                a.from.c_str());
    const auto model = tuner::fit_surrogate(ta, source->space());
    tuner::BiasedSearchOptions opt;
    opt.max_evals = a.nmax;
    opt.seed = a.seed;
    opt.guard = cfg.guard_options();
    opt.guard.refit_source = &ta;
    opt.guard.on_transition = [](const tuner::GuardTransition& tr) {
      std::printf("guard: RS_b %s->%s @%zu (%s, trust=%.3f)\n",
                  to_string(tr.from), to_string(tr.to), tr.evals,
                  tr.reason.c_str(), tr.trust);
    };
    const auto biased = tuner::biased_random_search(*target, *model, opt);
    std::printf("RS_b on %s: best %.4f s (at %.1f s of search)\n",
                a.target.c_str(), biased.best_seconds(),
                biased.time_to_best());
    std::printf("best configuration: %s\n",
                target->space().describe(biased.best_config()).c_str());
    return 0;
  }

  const auto r = tuner::run_transfer_experiment(*source, *target, s);
  if (r.interrupted) {
    std::printf("interrupted by shutdown request (transfer runs are not "
                "journaled; use the experiment command for resumable "
                "runs)\n");
    return 3;
  }
  std::printf("%s: %s -> %s\n", a.problem.c_str(), a.source.c_str(),
              a.target.c_str());
  std::printf("correlation: pearson %.3f spearman %.3f\n", r.pearson,
              r.spearman);
  const auto row = [](const char* name, const tuner::Speedups& sp) {
    std::printf("  %-6s Prf.Imp %.2f  Srh.Imp %.2f%s\n", name,
                sp.performance, sp.search,
                sp.successful() ? "  (successful)" : "");
  };
  row("RS_p", r.pruned_speedup);
  row("RS_b", r.biased_speedup);
  row("RS_pf", r.pruned_mf_speedup);
  row("RS_bf", r.biased_mf_speedup);
  if (r.failures.failures > 0)
    std::printf("failures: %zu of %zu attempts "
                "(%zu transient, %zu deterministic, %zu timeout)\n",
                r.failures.failures, r.failures.attempts,
                r.failures.transient, r.failures.deterministic,
                r.failures.timeouts);
  for (const auto& g : r.guard_log) std::printf("guard: %s\n", g.c_str());
  for (const auto& aborted : r.aborted_searches)
    std::printf("aborted: %s\n", aborted.c_str());
  return 0;
}

int cmd_experiment(const Args& a) {
  PT_REQUIRE(!a.pairs.empty(),
             "experiment requires --pairs src:tgt[,src:tgt...]");
  tuner::JournaledRunOptions jopt;
  jopt.run_dir = a.effective_run_dir();
  jopt.resume = !a.resume.empty();
  jopt.threads = a.threads;
  jopt.rs_checkpoint_every = a.ckpt_every;
  jopt.cancel = shutdown_token();
  jopt.status_every_seconds = a.telemetry_every;
  PT_REQUIRE(!jopt.run_dir.empty(),
             "experiment requires --run-dir <dir> (or --resume <dir>)");

  std::vector<tuner::ExperimentJob> jobs;
  std::string rest = a.pairs;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string()
                                      : rest.substr(comma + 1);
    const auto colon = pair.find(':');
    PT_REQUIRE(colon != std::string::npos && colon > 0 &&
                   colon + 1 < pair.size(),
               "malformed --pairs entry '" + pair + "' (want src:tgt)");
    const std::string src = pair.substr(0, colon);
    const std::string tgt = pair.substr(colon + 1);

    // One builder per cell; the journaled runner owns cancellation and
    // cross-cell parallelism, so the cell stacks stay single-threaded
    // with no cancel token of their own.
    apps::TuningConfig cell = tuning_config_from(a);
    cell.machines(src, tgt).faults(fault_profile_from(a));

    tuner::ExperimentJob job;
    job.label = a.problem + " " + src + "->" + tgt;
    job.make_source = [cell]() -> tuner::EvaluatorPtr {
      return apps::make_evaluator_stack(
          cell.stack_options(apps::StackRole::Source));
    };
    job.make_target = [cell]() -> tuner::EvaluatorPtr {
      return apps::make_evaluator_stack(
          cell.stack_options(apps::StackRole::Target));
    };
    job.settings = cell.experiment_settings();
    jobs.push_back(std::move(job));
  }

  tuner::JournaledRunSummary sum;
  const auto results =
      tuner::run_transfer_experiments_journaled(jobs, jopt, &sum);
  std::printf("journaled run %s: %zu cells (%zu restored, %zu completed "
              "this run)\n",
              jopt.run_dir.c_str(), sum.cells_total, sum.cells_restored,
              sum.cells_completed);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.source_rs.empty()) continue;  // interrupted before this cell
    std::printf("  %-28s RS_p %.2f/%.2f  RS_b %.2f/%.2f  "
                "pearson %.3f%s\n",
                jobs[i].label.c_str(), r.pruned_speedup.performance,
                r.pruned_speedup.search, r.biased_speedup.performance,
                r.biased_speedup.search, r.pearson,
                r.interrupted ? "  (interrupted)" : "");
  }
  if (sum.interrupted) {
    std::printf("interrupted by shutdown request; resume with: "
                "portatune_cli experiment --resume %s ...\n",
                jopt.run_dir.c_str());
    return 3;
  }
  return 0;
}

/// `status --socket`: render a live view of a running daemon from two
/// `stats` samples taken `--interval` seconds apart — counts and
/// percentiles from the second, rates from the delta.
int cmd_status_socket(const Args& a) {
  obs::json::Value first, second;
  // The resilient client rides out transient hiccups (reconnects and
  // retries until --deadline); the catch below is for a daemon that is
  // genuinely gone — including one that dies *between* the two samples.
  // Catch std::exception, not just Error: a daemon that vanishes
  // mid-conversation can surface as a parse error on a torn reply, and
  // a monitoring command must report "dead", never crash.
  try {
    service::ResilientClientOptions ro;
    ro.call_deadline_seconds = a.deadline;
    service::ResilientClient client(a.socket, ro);
    first = obs::json::Value::parse(client.call("{\"op\":\"stats\"}"));
    std::this_thread::sleep_for(std::chrono::duration<double>(
        a.interval > 0.0 ? a.interval : 0.0));
    second = obs::json::Value::parse(client.call("{\"op\":\"stats\"}"));
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: tuning service unreachable on %s: %s\n"
                 "hint: the socket is dead — the daemon exited or was "
                 "restarted on another path; start one with "
                 "'portatune_cli serve --socket %s'\n",
                 a.socket.c_str(), e.what(), a.socket.c_str());
    return 2;
  }
  const obs::json::Value* ok = second.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    std::fprintf(stderr, "error: stats op failed: %s\n",
                 second.dump().c_str());
    return 2;
  }
  const obs::json::Value& server = second.at("server");
  std::printf("tuning service on %s\n", a.socket.c_str());
  std::printf("  pid %.0f  uptime %.1fs  requests %.0f  sessions open "
              "%.0f  store entries %.0f\n",
              server.at("pid").as_number(),
              server.at("uptime_seconds").as_number(),
              server.at("requests").as_number(),
              server.at("sessions_open").as_number(),
              server.at("store_entries").as_number());
  const obs::json::Value& cache = server.at("cache");
  std::printf("  cache: %.0f hits  %.0f misses  %.0f entries\n",
              cache.at("hits").as_number(), cache.at("misses").as_number(),
              cache.at("size").as_number());

  const auto counter = [](const obs::json::Value& stats,
                          const std::string& name) -> double {
    const obs::json::Value* counters = stats.at("metrics").find("counters");
    const obs::json::Value* v =
        counters != nullptr ? counters->find(name) : nullptr;
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };
  const obs::json::Value* histograms =
      second.at("metrics").find("histograms");
  std::printf("  %-12s %10s %10s %9s %9s %9s %8s\n", "op", "count",
              "rate/s", "p50 ms", "p95 ms", "p99 ms", "errors");
  const std::string prefix = "server.op.", suffix = ".latency";
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, h] : histograms->as_object()) {
      if (name.rfind(prefix, 0) != 0 ||
          name.size() <= prefix.size() + suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
        continue;
      const std::string op = name.substr(
          prefix.size(), name.size() - prefix.size() - suffix.size());
      const double count = counter(second, prefix + op + ".count");
      if (count == 0.0) continue;
      const double rate =
          a.interval > 0.0
              ? (count - counter(first, prefix + op + ".count")) /
                    a.interval
              : 0.0;
      std::printf("  %-12s %10.0f %10.1f %9.3f %9.3f %9.3f %8.0f\n",
                  op.c_str(), count, rate,
                  h.at("p50").as_number() * 1e3,
                  h.at("p95").as_number() * 1e3,
                  h.at("p99").as_number() * 1e3,
                  counter(second, prefix + op + ".errors"));
    }
  }
  return 0;
}

int cmd_status(const Args& a) {
  if (!a.socket.empty()) return cmd_status_socket(a);
  PT_REQUIRE(!a.effective_run_dir().empty(),
             "status requires --run-dir <dir> or --socket <path>");
  // A directory without a journal is not a run directory — report that
  // plainly (exit 2, like a dead run) instead of unwinding through the
  // journal parser with a confusing read error.
  if (!tuner::RunJournal::exists(a.effective_run_dir())) {
    std::fprintf(stderr,
                 "error: %s is not a run directory (no journal.csv); "
                 "expected a directory created by "
                 "'portatune_cli experiment --run-dir'\n",
                 a.effective_run_dir().c_str());
    return 2;
  }
  // Render into a buffer first: a concurrent writer can't interleave
  // with our reads mid-line, and a throwing parse leaves no half-report.
  std::ostringstream os;
  const tuner::RunLiveness liveness =
      tuner::render_run_status(os, a.effective_run_dir(), a.stale_after);
  std::fputs(os.str().c_str(), stdout);
  return liveness == tuner::RunLiveness::Dead ? 2 : 0;
}

int cmd_serve(const Args& a) {
  PT_REQUIRE(!a.socket.empty(), "serve requires --socket <path>");
  service::TuningServiceOptions so;
  so.data_dir = a.data_dir;
  service::TuningService svc(so);
  if (!a.quiet) {
    std::printf("tuning service on %s (data dir %s, %zu stored "
                "surrogate%s)\n",
                a.socket.c_str(), a.data_dir.c_str(), svc.store().size(),
                svc.store().size() == 1 ? "" : "s");
    std::fflush(stdout);
  }
  service::ServeOptions sv;
  sv.status_every_seconds = a.telemetry_every;
  if (a.telemetry_every > 0.0 && !a.data_dir.empty())
    sv.status_path = a.data_dir + "/server_status.json";
  sv.protocol.slow_request_seconds = a.slow_request;
  // Exactly-once survives restarts: the reply cache lives next to the
  // rest of the service state and is reloaded by the next serve.
  if (!a.data_dir.empty())
    sv.protocol.state_path = a.data_dir + "/protocol_state.json";
  sv.lease_seconds = a.lease_seconds;
  sv.client_rate_limit = a.client_rate;
  sv.client_rate_burst = a.client_burst;
  const int rc =
      service::serve_unix_socket(svc, a.socket, shutdown_token(), sv);
  if (rc == 3)
    std::printf("interrupted by shutdown request; open sessions "
                "checkpointed under %s and can be resumed\n",
                a.data_dir.c_str());
  return rc;
}

int cmd_call(const Args& a) {
  PT_REQUIRE(!a.socket.empty(), "call requires --socket <path>");
  PT_REQUIRE(!a.request.empty(), "call requires --request '<json>'");
  // Resilient one-shot: reconnect-and-retry until --deadline, with a
  // rid stamped on mutating ops so a retry after a torn reply replays
  // the server's cached answer instead of executing twice.
  service::ResilientClientOptions ro;
  ro.call_deadline_seconds = a.deadline;
  service::ResilientClient client(a.socket, ro);
  const std::string reply = client.call(a.request);
  std::printf("%s\n", reply.c_str());
  const obs::json::Value v = obs::json::Value::parse(reply);
  const obs::json::Value* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool() ? 0 : 1;
}

int cmd_similarity(const Args& a) {
  auto source = apps::make_simulated_evaluator(a.problem, a.source);
  auto target = apps::make_simulated_evaluator(a.problem, a.target);
  const auto rep = tuner::measure_similarity(*source, *target);
  std::printf("%s: %s vs %s (%zu probes)\n", a.problem.c_str(),
              a.source.c_str(), a.target.c_str(), rep.probes);
  std::printf("  pearson %.3f  spearman %.3f  kendall %.3f\n", rep.pearson,
              rep.spearman, rep.kendall);
  std::printf("  top-20%% overlap %.2f  log-ratio dispersion %.3f\n",
              rep.top_overlap, rep.log_ratio_dispersion);
  std::printf("  advice: %s\n", to_string(tuner::advise(rep)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    // SIGINT/SIGTERM request a graceful shutdown (cooperative
    // cancellation + flush); a second signal force-exits.
    install_shutdown_signal_handler();
    ObsSession obs_session(a);
    int rc = 1;
    if (a.command == "list") rc = cmd_list();
    else if (a.command == "collect") rc = cmd_collect(a);
    else if (a.command == "transfer") rc = cmd_transfer(a);
    else if (a.command == "experiment") rc = cmd_experiment(a);
    else if (a.command == "status") rc = cmd_status(a);
    else if (a.command == "serve") rc = cmd_serve(a);
    else if (a.command == "call") rc = cmd_call(a);
    else if (a.command == "similarity") rc = cmd_similarity(a);
    else throw Error("unknown command: " + a.command);
    obs_session.finish();
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
