// Quickstart: autotune one kernel on one machine with plain random search.
//
// This is the smallest end-to-end use of the library:
//   1. describe an evaluator stack — a SPAPT problem (LU decomposition,
//      Table III) on a simulated machine (Sandybridge, Table II) — and
//      let make_evaluator_stack wire it,
//   2. run random search without replacement for a 100-evaluation budget,
//   3. inspect the best configuration found.
//
// The same options struct adds fault injection, retry/timeout, telemetry,
// or parallel evaluation windows (eval_threads = 0 uses every hardware
// thread; the trace stays bit-identical, the search just finishes
// sooner).
#include <cstdio>

#include "apps/evaluator_factory.hpp"
#include "tuner/random_search.hpp"

int main() {
  using namespace portatune;

  apps::EvaluatorStackOptions options;
  options.problem = "LU";  // 9 parameters, |D| ~ 1e10
  options.machine = "Sandybridge";
  options.eval_threads = 0;  // parallel evaluation windows
  auto sandybridge = apps::make_evaluator_stack(options);
  const tuner::ParamSpace& space = sandybridge->space();

  tuner::RandomSearchOptions opt;
  opt.max_evals = 100;
  opt.seed = 42;
  const tuner::SearchTrace trace = tuner::random_search(*sandybridge, opt);

  std::printf("problem: %s on %s\n", trace.problem().c_str(),
              trace.machine().c_str());
  std::printf("evaluated %zu configurations (search space |D| = %.2e)\n",
              trace.size(), space.cardinality());
  std::printf("default run time: %.3f s\n",
              sandybridge->evaluate(space.default_config()).seconds);
  std::printf("best run time:    %.3f s  (found after %.1f s of search)\n",
              trace.best_seconds(), trace.time_to_best());
  std::printf("best configuration:\n  %s\n",
              space.describe(trace.best_config()).c_str());

  std::printf("\nbest-so-far curve (elapsed search seconds -> best):\n");
  double last = -1.0;
  for (const auto& [elapsed, best] : trace.best_curve()) {
    if (best == last) continue;  // print improvements only
    std::printf("  %8.1f s  ->  %.3f s\n", elapsed, best);
    last = best;
  }
  return 0;
}
