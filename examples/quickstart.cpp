// Quickstart: autotune one kernel on one machine with plain random search.
//
// This is the smallest end-to-end use of the library:
//   1. pick a SPAPT problem (LU decomposition, Table III),
//   2. put it on a simulated machine (Sandybridge, Table II),
//   3. run random search without replacement for a 100-evaluation budget,
//   4. inspect the best configuration found.
#include <cstdio>

#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "sim/machine.hpp"
#include "tuner/random_search.hpp"

int main() {
  using namespace portatune;

  auto problem = kernels::make_lu();  // 9 parameters, |D| ~ 1e10
  kernels::SimulatedKernelEvaluator sandybridge(problem,
                                                sim::make_sandybridge());

  tuner::RandomSearchOptions opt;
  opt.max_evals = 100;
  opt.seed = 42;
  const tuner::SearchTrace trace = tuner::random_search(sandybridge, opt);

  std::printf("problem: %s on %s\n", trace.problem().c_str(),
              trace.machine().c_str());
  std::printf("evaluated %zu configurations (search space |D| = %.2e)\n",
              trace.size(), problem->space().cardinality());
  std::printf("default run time: %.3f s\n",
              sandybridge.evaluate(problem->space().default_config()).seconds);
  std::printf("best run time:    %.3f s  (found after %.1f s of search)\n",
              trace.best_seconds(), trace.time_to_best());
  std::printf("best configuration:\n  %s\n",
              problem->space().describe(trace.best_config()).c_str());

  std::printf("\nbest-so-far curve (elapsed search seconds -> best):\n");
  double last = -1.0;
  for (const auto& [elapsed, best] : trace.best_curve()) {
    if (best == last) continue;  // print improvements only
    std::printf("  %8.1f s  ->  %.3f s\n", elapsed, best);
    last = best;
  }
  return 0;
}
