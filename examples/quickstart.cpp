// Quickstart: autotune one kernel on one machine through the session API.
//
// This is the smallest end-to-end use of the library:
//   1. describe the run once with apps::TuningConfig — a SPAPT problem
//      (LU decomposition, Table III) on a simulated machine (Sandybridge,
//      Table II) — and let it wire the evaluator stack,
//   2. open a tuner::TuningSession and advance it incrementally: step()
//      evaluates a window service-side, suggest()/report() hand
//      candidates out for external measurement and feed results back,
//   3. inspect the best configuration found.
//
// The same builder adds fault injection, retry/timeout, telemetry, or
// parallel evaluation windows (eval_threads(0) uses every hardware
// thread; the trace stays bit-identical, the search just finishes
// sooner). A session's step/suggest/report discipline is exactly what
// `portatune_cli serve` speaks over its socket — this program is the
// in-process version of one service session.
#include <cstdio>

#include "apps/tuning_config.hpp"
#include "tuner/session.hpp"

int main() {
  using namespace portatune;

  const apps::TuningConfig cfg = apps::TuningConfig{}
                                     .problem("LU")  // 9 params, |D| ~ 1e10
                                     .machine("Sandybridge")
                                     .max_evals(100)
                                     .seed(42)
                                     .eval_threads(0);  // parallel windows
  auto sandybridge = cfg.make_stack();
  const tuner::ParamSpace& space = sandybridge->space();

  tuner::TuningSession session(*sandybridge,
                               cfg.session_options("quickstart"));

  // The external-measurement path: pull two candidates out, measure them
  // "elsewhere" (here: the same simulator), and report the results back.
  for (const tuner::ParamConfig& config : session.suggest(2))
    session.report(config, sandybridge->evaluate(config).seconds);

  // Then let the session evaluate the rest of the budget itself, one
  // window at a time (a checkpoint could be persisted between steps).
  while (session.remaining_budget() > 0 && !session.step(25).exhausted) {
  }
  session.close();

  const tuner::SearchTrace& trace = session.trace();
  std::printf("problem: %s on %s\n", trace.problem().c_str(),
              trace.machine().c_str());
  std::printf("evaluated %zu configurations (search space |D| = %.2e)\n",
              trace.size(), space.cardinality());
  std::printf("default run time: %.3f s\n",
              sandybridge->evaluate(space.default_config()).seconds);
  std::printf("best run time:    %.3f s  (found after %.1f s of search)\n",
              trace.best_seconds(), trace.time_to_best());
  std::printf("best configuration:\n  %s\n",
              space.describe(trace.best_config()).c_str());

  std::printf("\nbest-so-far curve (elapsed search seconds -> best):\n");
  double last = -1.0;
  for (const auto& [elapsed, best] : trace.best_curve()) {
    if (best == last) continue;  // print improvements only
    std::printf("  %8.1f s  ->  %.3f s\n", elapsed, best);
    last = best;
  }
  return 0;
}
