// portatune_loadgen — multi-process load harness for the tuning service.
//
//   portatune_loadgen --socket /tmp/pt.sock [--clients 2] [--sessions 2]
//                     [--steps 5] [--step-n 2] [--garbage 0]
//                     [--problem LU] [--machine Westmere]
//                     [--max-evals 40] [--seed 7] [--out dir] [--no-check]
//                     [--chaos spec] [--chaos-seed N] [--deadline S]
//
// Spawns --clients child *processes* (real concurrent connections, not
// threads — the server's poll loop sees genuinely interleaved traffic),
// each opening --sessions tuning sessions over one persistent connection
// and driving every session through open -> K steps (every third
// iteration also a suggest + report round-trip with a synthetic
// measurement) -> close. --garbage N additionally injects N malformed
// lines per client, which the server must answer {"ok":false} without
// dropping the connection.
//
// Every call is timed client-side. Children persist their per-op
// latency samples to --out (default: a fresh directory next to the
// socket); the parent aggregates them into a per-op table (count,
// errors, p50/p95/p99) and overall ops/sec, then cross-checks the
// client-side totals against the server's own `server.op.*` counters via
// two `stats` snapshots (before the fork, after the join): the deltas
// must match *exactly* — every open/step/suggest/report/close the
// clients sent, and nothing else, must appear in the server telemetry,
// and each injected garbage line must surface as one `server.op.invalid`
// count. --no-check skips the comparison (for hammering a server that
// has other traffic).
//
// Every connection rides the ResilientClient (reconnect + retry with rid
// stamping, --deadline seconds per call), so the harness doubles as the
// exactly-once proof: --chaos "tear=0.08,hangup=0.05,blackhole=0.05,
// delay=0.1,delay-s=0.02" forks a seeded ChaosProxy child on
// <socket>.chaos and points every client through it. Torn replies and
// hangups force retries; because retried rids *replay* on the server
// instead of re-executing, the exact client/server counter cross-check
// above must still balance — any at-least-once slip shows up as a
// MISMATCH line. --chaos-seed replays a specific fault schedule. The
// parent's stats snapshots always go to the real socket. --chaos
// requires --garbage 0: a garbage line carries no rid, so a fault-forced
// resend would legitimately count twice.
//
// Exit 0 = all clients succeeded and the cross-check passed; 1 otherwise.
#include <cstdio>
#include <string>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "service/chaos_proxy.hpp"
#include "service/resilient_client.hpp"
#include "service/server.hpp"
#include "support/atomic_file.hpp"
#include "support/signal.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

using namespace portatune;
using obs::json::Value;
using Members = std::vector<std::pair<std::string, Value>>;

namespace {

/// The ops the harness issues itself and cross-checks one-to-one against
/// the server counters. `stats` is deliberately absent: the parent's own
/// snapshot requests ride the same protocol and must not perturb the
/// comparison.
const char* const kTrackedOps[] = {"open", "step", "suggest", "report",
                                   "close"};

struct Args {
  std::string socket;
  std::size_t clients = 2;
  std::size_t sessions = 2;
  std::size_t steps = 5;
  std::size_t step_n = 2;
  std::size_t garbage = 0;
  std::string problem = "LU";
  std::string machine = "Westmere";
  std::size_t max_evals = 40;
  std::uint64_t seed = 7;
  std::string out;
  bool check = true;
  std::string chaos;  ///< fault spec ("" = direct connection, no proxy)
  std::uint64_t chaos_seed = 1;
  /// Per-call budget of the resilient clients. Generous by default so a
  /// daemon SIGTERM -> restart mid-run is ridden out, not failed.
  double deadline = 60.0;
};

/// "tear=0.08,hangup=0.05,blackhole=0.05,delay=0.1,delay-s=0.02" ->
/// ChaosProxyOptions. Keys: delay, delay-s, tear, hangup, blackhole,
/// hold (blackhole_hold_seconds).
service::ChaosProxyOptions parse_chaos_spec(const std::string& spec,
                                            std::uint64_t seed) {
  service::ChaosProxyOptions opt;
  opt.seed = seed;
  std::string rest = spec;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string()
                                      : rest.substr(comma + 1);
    const auto eq = item.find('=');
    PT_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
               "malformed --chaos entry '" + item + "' (want key=value)");
    const std::string key = item.substr(0, eq);
    const double value = std::stod(item.substr(eq + 1));
    if (key == "delay") opt.delay_rate = value;
    else if (key == "delay-s") opt.delay_seconds = value;
    else if (key == "tear") opt.tear_rate = value;
    else if (key == "hangup") opt.hangup_rate = value;
    else if (key == "blackhole") opt.blackhole_rate = value;
    else if (key == "hold") opt.blackhole_hold_seconds = value;
    else throw Error("unknown --chaos key: " + key);
  }
  return opt;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--no-check") {
      a.check = false;
      --i;
      continue;
    }
    PT_REQUIRE(i + 1 < argc, "option " + key + " is missing a value");
    const std::string value = argv[i + 1];
    if (key == "--socket") a.socket = value;
    else if (key == "--clients") a.clients = std::stoul(value);
    else if (key == "--sessions") a.sessions = std::stoul(value);
    else if (key == "--steps") a.steps = std::stoul(value);
    else if (key == "--step-n") a.step_n = std::stoul(value);
    else if (key == "--garbage") a.garbage = std::stoul(value);
    else if (key == "--problem") a.problem = value;
    else if (key == "--machine") a.machine = value;
    else if (key == "--max-evals") a.max_evals = std::stoul(value);
    else if (key == "--seed") a.seed = std::stoull(value);
    else if (key == "--out") a.out = value;
    else if (key == "--chaos") a.chaos = value;
    else if (key == "--chaos-seed") a.chaos_seed = std::stoull(value);
    else if (key == "--deadline") a.deadline = std::stod(value);
    else throw Error("unknown option: " + key);
  }
  PT_REQUIRE(!a.socket.empty(), "loadgen requires --socket <path>");
  PT_REQUIRE(a.clients > 0 && a.sessions > 0, "need >= 1 client/session");
  // Garbage lines are unparseable, so they carry no rid; a fault-forced
  // resend would execute (and count) twice, wrecking the cross-check.
  PT_REQUIRE(a.chaos.empty() || a.garbage == 0,
             "--chaos requires --garbage 0 (garbage lines have no rid)");
  return a;
}

/// Per-op client-side tally: calls made, {"ok":false} replies, and the
/// wall-clock latency of every call.
struct OpTally {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
  std::vector<double> latency_seconds;
};

struct ClientResult {
  std::map<std::string, OpTally> ops;
  std::uint64_t garbage_sent = 0;
  std::uint64_t garbage_rejected = 0;  ///< answered {"ok":false}
};

bool reply_ok(const std::string& reply) {
  const Value v = Value::parse(reply);
  const Value* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

/// One timed protocol call, tallied under `op`. Latency is the whole
/// resilient call — retries and reconnects included — because that is
/// what a protocol user experiences.
std::string timed_call(service::ResilientClient& client,
                       ClientResult& result, const std::string& op,
                       const std::string& line) {
  OpTally& tally = result.ops[op];
  WallTimer timer;
  const std::string reply = client.call(line);
  tally.latency_seconds.push_back(timer.seconds());
  tally.count++;
  if (!reply_ok(reply)) tally.errors++;
  return reply;
}

std::string quoted(const std::string& s) {
  return "\"" + obs::json::escape(s) + "\"";
}

/// The whole life of one client process: --sessions sessions, each
/// open -> steps (with periodic suggest/report) -> close, plus the
/// requested garbage. Returns the tally; throws only when the resilient
/// client's deadline expires (the transport failures a chaos run injects
/// are absorbed by its retry loop).
ClientResult run_client(const Args& a, const std::string& socket,
                        std::size_t client_index, std::uint64_t nonce) {
  service::ResilientClientOptions ro;
  ro.call_deadline_seconds = a.deadline;
  // Distinct rid namespace per child process, distinct (deterministic)
  // jitter per child so retries do not stampede in lockstep.
  ro.client_id = "lg" + std::to_string(nonce) + "c" +
                 std::to_string(client_index);
  ro.jitter_seed = a.seed + client_index;
  service::ResilientClient client(socket, ro);
  ClientResult result;
  for (std::size_t s = 0; s < a.sessions; ++s) {
    const std::string id = "lg-" + std::to_string(nonce) + "-c" +
                           std::to_string(client_index) + "-s" +
                           std::to_string(s);
    timed_call(client, result, "open",
               "{\"op\":\"open\",\"id\":" + quoted(id) +
                   ",\"problem\":" + quoted(a.problem) +
                   ",\"machine\":" + quoted(a.machine) +
                   ",\"max_evals\":" + std::to_string(a.max_evals) +
                   ",\"seed\":" +
                   std::to_string(a.seed + client_index * 1000 + s) + "}");
    for (std::size_t k = 0; k < a.steps; ++k) {
      timed_call(client, result, "step",
                 "{\"op\":\"step\",\"id\":" + quoted(id) +
                     ",\"n\":" + std::to_string(a.step_n) + "}");
      if (k % 3 == 2) {
        // External-measurement round trip: ask for a candidate, report a
        // synthetic (positive, deterministic) run time for it.
        const std::string reply = timed_call(
            client, result, "suggest",
            "{\"op\":\"suggest\",\"id\":" + quoted(id) + ",\"n\":1}");
        const Value v = Value::parse(reply);
        const Value* configs = v.find("configs");
        if (configs != nullptr && configs->is_array() &&
            !configs->as_array().empty()) {
          timed_call(client, result, "report",
                     "{\"op\":\"report\",\"id\":" + quoted(id) +
                         ",\"config\":" +
                         configs->as_array().front().dump() +
                         ",\"seconds\":" +
                         std::to_string(0.01 * static_cast<double>(k + 1)) +
                         "}");
        }
      }
    }
    timed_call(client, result, "close",
               "{\"op\":\"close\",\"id\":" + quoted(id) + "}");
  }
  for (std::size_t g = 0; g < a.garbage; ++g) {
    // Malformed on purpose; the server must reject it and keep talking.
    const std::string reply =
        client.call("this is not json #" + std::to_string(g));
    result.garbage_sent++;
    if (!reply_ok(reply)) result.garbage_rejected++;
  }
  return result;
}

std::string result_to_json(const ClientResult& r) {
  Members ops;
  for (const auto& [op, tally] : r.ops) {
    std::vector<Value> lat;
    lat.reserve(tally.latency_seconds.size());
    for (double v : tally.latency_seconds) lat.push_back(Value::make_number(v));
    Members m;
    m.emplace_back("count",
                   Value::make_number(static_cast<double>(tally.count)));
    m.emplace_back("errors",
                   Value::make_number(static_cast<double>(tally.errors)));
    m.emplace_back("latency_seconds", Value::make_array(std::move(lat)));
    ops.emplace_back(op, Value::make_object(std::move(m)));
  }
  Members top;
  top.emplace_back("ops", Value::make_object(std::move(ops)));
  top.emplace_back(
      "garbage_sent",
      Value::make_number(static_cast<double>(r.garbage_sent)));
  top.emplace_back(
      "garbage_rejected",
      Value::make_number(static_cast<double>(r.garbage_rejected)));
  return Value::make_object(std::move(top)).dump() + "\n";
}

ClientResult result_from_json(const std::string& text) {
  const Value v = Value::parse(text);
  ClientResult r;
  for (const auto& [op, m] : v.at("ops").as_object()) {
    OpTally tally;
    tally.count = static_cast<std::uint64_t>(m.at("count").as_number());
    tally.errors = static_cast<std::uint64_t>(m.at("errors").as_number());
    for (const Value& lat : m.at("latency_seconds").as_array())
      tally.latency_seconds.push_back(lat.as_number());
    r.ops.emplace(op, std::move(tally));
  }
  r.garbage_sent =
      static_cast<std::uint64_t>(v.at("garbage_sent").as_number());
  r.garbage_rejected =
      static_cast<std::uint64_t>(v.at("garbage_rejected").as_number());
  return r;
}

/// server.op.<op>.count / .errors out of a `stats` reply (0 when the
/// server has no such counter yet).
double server_counter(const Value& stats, const std::string& name) {
  const Value* counters = stats.at("metrics").find("counters");
  const Value* v = counters != nullptr ? counters->find(name) : nullptr;
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

int run(const Args& a) {
  const std::uint64_t nonce =
      static_cast<std::uint64_t>(obs::wall_micros_now());
  std::string out = a.out;
  if (out.empty()) out = a.socket + ".loadgen." + std::to_string(nonce);
  ::mkdir(out.c_str(), 0777);

  // Under --chaos every client connection goes through a forked proxy
  // child on <socket>.chaos; the proxy dials the real daemon upstream.
  // Forked (not threaded) so the parent stays thread-free for the client
  // forks below. The clients' retry loops absorb the brief window before
  // the proxy's listen socket exists.
  const std::string client_socket =
      a.chaos.empty() ? a.socket : a.socket + ".chaos";
  pid_t proxy_pid = -1;
  if (!a.chaos.empty()) {
    const service::ChaosProxyOptions copt =
        parse_chaos_spec(a.chaos, a.chaos_seed);
    proxy_pid = ::fork();
    PT_REQUIRE(proxy_pid >= 0, "fork() failed");
    if (proxy_pid == 0) {
      int rc = 0;
      try {
        install_shutdown_signal_handler();
        service::ChaosProxy proxy(client_socket, a.socket, copt);
        proxy.run(shutdown_token());
        const service::ChaosStats cs = proxy.stats();
        std::printf("chaos: %llu connections, %llu delays, %llu tears, "
                    "%llu hangups, %llu blackholes (seed %llu)\n",
                    static_cast<unsigned long long>(cs.connections),
                    static_cast<unsigned long long>(cs.delays),
                    static_cast<unsigned long long>(cs.tears),
                    static_cast<unsigned long long>(cs.hangups),
                    static_cast<unsigned long long>(cs.blackholes),
                    static_cast<unsigned long long>(a.chaos_seed));
        std::fflush(stdout);  // _exit skips the stdio flush
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen chaos proxy: %s\n", e.what());
        rc = 1;
      }
      ::_exit(rc);
    }
  }

  // Baseline snapshot before any client connects; the delta to the
  // after-join snapshot is exactly the traffic this run generated. Both
  // snapshots go straight to the real socket (never through the proxy)
  // and are resilient, so a daemon restarting mid-run is waited out.
  Value before;
  if (a.check) {
    service::ResilientClientOptions ro;
    ro.call_deadline_seconds = a.deadline;
    service::ResilientClient stats_client(a.socket, ro);
    before = Value::parse(stats_client.call("{\"op\":\"stats\"}"));
  }

  // No threads exist in this process yet, so fork() is safe; children
  // open their own connections after the fork.
  WallTimer wall;
  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < a.clients; ++i) {
    const pid_t pid = ::fork();
    PT_REQUIRE(pid >= 0, "fork() failed");
    if (pid == 0) {
      int rc = 0;
      try {
        const ClientResult r = run_client(a, client_socket, i, nonce);
        atomic_write_file(out + "/client" + std::to_string(i) + ".json",
                          result_to_json(r));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen client %zu: %s\n", i, e.what());
        rc = 1;
      }
      ::_exit(rc);  // never unwind into the parent's main
    }
    pids.push_back(pid);
  }
  bool clients_ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) clients_ok = false;
  }
  const double elapsed = wall.seconds();
  if (proxy_pid > 0) {
    ::kill(proxy_pid, SIGTERM);
    int status = 0;
    ::waitpid(proxy_pid, &status, 0);
  }

  ClientResult total;
  for (std::size_t i = 0; i < a.clients; ++i) {
    std::ifstream in(out + "/client" + std::to_string(i) + ".json");
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().empty()) {
      clients_ok = false;
      continue;
    }
    const ClientResult r = result_from_json(buf.str());
    for (const auto& [op, tally] : r.ops) {
      OpTally& t = total.ops[op];
      t.count += tally.count;
      t.errors += tally.errors;
      t.latency_seconds.insert(t.latency_seconds.end(),
                               tally.latency_seconds.begin(),
                               tally.latency_seconds.end());
    }
    total.garbage_sent += r.garbage_sent;
    total.garbage_rejected += r.garbage_rejected;
  }

  std::printf("loadgen: %zu client%s x %zu session%s x %zu steps on %s\n",
              a.clients, a.clients == 1 ? "" : "s", a.sessions,
              a.sessions == 1 ? "" : "s", a.steps, a.socket.c_str());
  std::printf("  %-8s %8s %7s %9s %9s %9s\n", "op", "count", "errors",
              "p50 ms", "p95 ms", "p99 ms");
  std::uint64_t total_ops = 0;
  for (const auto& [op, tally] : total.ops) {
    total_ops += tally.count;
    if (tally.latency_seconds.empty()) continue;
    std::printf("  %-8s %8llu %7llu %9.3f %9.3f %9.3f\n", op.c_str(),
                static_cast<unsigned long long>(tally.count),
                static_cast<unsigned long long>(tally.errors),
                quantile(tally.latency_seconds, 0.50) * 1e3,
                quantile(tally.latency_seconds, 0.95) * 1e3,
                quantile(tally.latency_seconds, 0.99) * 1e3);
  }
  std::printf("client-side: %llu ops (+%llu garbage) in %.2fs = %.1f "
              "ops/s\n",
              static_cast<unsigned long long>(total_ops),
              static_cast<unsigned long long>(total.garbage_sent), elapsed,
              elapsed > 0.0 ? static_cast<double>(total_ops) / elapsed
                            : 0.0);
  if (!clients_ok) {
    std::printf("FAIL: one or more clients failed\n");
    return 1;
  }
  if (total.garbage_rejected != total.garbage_sent) {
    std::printf("FAIL: %llu of %llu garbage lines were not rejected\n",
                static_cast<unsigned long long>(
                    total.garbage_sent - total.garbage_rejected),
                static_cast<unsigned long long>(total.garbage_sent));
    return 1;
  }
  if (!a.check) {
    std::printf("PASS (server cross-check skipped)\n");
    return 0;
  }

  Value after;
  {
    service::ResilientClientOptions ro;
    ro.call_deadline_seconds = a.deadline;
    service::ResilientClient stats_client(a.socket, ro);
    after = Value::parse(stats_client.call("{\"op\":\"stats\"}"));
  }
  bool match = true;
  for (const char* op : kTrackedOps) {
    const std::string name = std::string("server.op.") + op + ".count";
    const double delta =
        server_counter(after, name) - server_counter(before, name);
    const double sent = static_cast<double>(total.ops[op].count);
    if (delta != sent) {
      std::printf("MISMATCH %s: client sent %.0f, server counted %.0f\n",
                  op, sent, delta);
      match = false;
    }
  }
  const double invalid_delta =
      server_counter(after, "server.op.invalid.count") -
      server_counter(before, "server.op.invalid.count");
  if (invalid_delta != static_cast<double>(total.garbage_sent)) {
    std::printf("MISMATCH garbage: client sent %llu, server counted "
                "invalid %.0f\n",
                static_cast<unsigned long long>(total.garbage_sent),
                invalid_delta);
    match = false;
  }
  if (!match) {
    std::printf("FAIL: server-side counters disagree with client-side "
                "totals\n");
    return 1;
  }
  std::printf("PASS: server counters match client totals "
              "(%zu ops, garbage %llu == invalid %.0f)\n",
              static_cast<std::size_t>(total_ops),
              static_cast<unsigned long long>(total.garbage_sent),
              invalid_delta);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#else  // non-UNIX: no AF_UNIX transport to load-test

int main() {
  std::fprintf(stderr,
               "portatune_loadgen requires a UNIX system (AF_UNIX)\n");
  return 1;
}

#endif
