// Autotuning as a service: surrogate-store and eval-cache reuse, in-process.
//
// The service turns the paper's one-shot transfer into an ambient
// capability: every closing session publishes its training trace to a
// persistent store keyed by machine fingerprint, and every opening
// session fingerprints its machine and warm-starts from the most similar
// stored surrogate (when tuner::advise() admits it). This demo shows the
// payoff end to end:
//
//   1. a *cold* baseline session tunes LU on Sandybridge with an empty
//      store — plain RS draw order;
//   2. a session on Westmere runs and closes, publishing T_a;
//   3. a *warm* session on Sandybridge opens: its fingerprint matches
//      Westmere's closely enough to transfer, so it evaluates a
//      surrogate-ranked pool (RS_b) and reaches the cold session's best
//      in measurably fewer evaluations;
//   4. a rerun on the same machine shows the shared EvalCache serving
//      revisited measurements (including the whole re-fingerprint)
//      without touching the backend.
//
// Everything here is also reachable over a socket: `portatune_cli serve`
// exposes open/step/suggest/report/checkpoint/close on these same
// objects (src/service/protocol.hpp).
#include <cstdio>

#include "service/service.hpp"
#include "support/atomic_file.hpp"

using namespace portatune;

namespace {

/// Evaluations until `trace` first reaches `threshold` seconds
/// (trace.size()+1, i.e. "never", when it does not).
std::size_t evals_to_reach(const tuner::SearchTrace& trace,
                           double threshold) {
  for (std::size_t i = 0; i < trace.size(); ++i)
    if (trace.entry(i).seconds <= threshold) return i + 1;
  return trace.size() + 1;
}

tuner::SearchTrace run_to_completion(service::SessionHandle& session) {
  while (!session.step(25).exhausted) {
  }
  return session.close();
}

}  // namespace

int main() {
  const std::string data_dir = "service_demo_data";
  service::TuningServiceOptions opt;
  opt.data_dir = data_dir;
  service::TuningService service(opt);

  const auto config_for = [](const std::string& machine) {
    return apps::TuningConfig{}.problem("LU").machine(machine).max_evals(
        100);
  };

  // 1. Cold baseline: the store is empty, so this session walks the RS
  //    draw stream.
  service::SessionHandle& cold =
      service.open("sandybridge-cold", config_for("Sandybridge"));
  const tuner::SearchTrace cold_trace = run_to_completion(cold);
  std::printf("cold  on Sandybridge: best %.3f s in %zu evals (warm=%s)\n",
              cold_trace.best_seconds(), cold_trace.size(),
              cold.warm() ? "yes" : "no");

  // 2. Tune the source machine and close: its trace becomes a store
  //    entry keyed by Westmere's fingerprint.
  service::SessionHandle& source =
      service.open("westmere-source", config_for("Westmere"));
  const tuner::SearchTrace source_trace = run_to_completion(source);
  std::printf("source on Westmere:   best %.3f s in %zu evals -> "
              "published to store (%zu entries)\n",
              source_trace.best_seconds(), source_trace.size(),
              service.store().size());

  // 3. Warm session on Sandybridge: the fingerprint lookup finds an
  //    admissible neighbor, so the session ranks a candidate pool with
  //    the transferred surrogate (RS_b) instead of sampling cold.
  //    Sandybridge itself is in the store too by now (step 1 closed), so
  //    nearest() prefers the exact match; either entry demonstrates the
  //    mechanism — warm_source() says which won.
  service::SessionHandle& warm =
      service.open("sandybridge-warm", config_for("Sandybridge").seed(7));
  std::printf("warm  on Sandybridge: warm=%s (surrogate from %s)\n",
              warm.warm() ? "yes" : "no", warm.warm_source().c_str());
  const tuner::SearchTrace warm_trace = run_to_completion(warm);

  const double target_best = cold_trace.best_seconds();
  const std::size_t cold_needed = evals_to_reach(cold_trace, target_best);
  const std::size_t warm_needed = evals_to_reach(warm_trace, target_best);
  std::printf("evals to reach the cold session's best (%.3f s):\n",
              target_best);
  std::printf("  cold RS:   %zu\n", cold_needed);
  if (warm_needed > warm_trace.size())
    std::printf("  warm RS_b: not reached (best %.3f s)\n",
                warm_trace.best_seconds());
  else
    std::printf("  warm RS_b: %zu  (%.1fx fewer)\n", warm_needed,
                static_cast<double>(cold_needed) /
                    static_cast<double>(warm_needed));

  // 4. Same machine again: the re-fingerprint and every configuration
  //    this search revisits are served from the shared cache instead of
  //    the backend. (The store entry was republished when the warm
  //    session closed, so the rerun ranks with a fresher surrogate and
  //    legitimately explores some new configurations — those miss.)
  const service::EvalCacheStats before = service.cache().stats();
  service::SessionHandle& replay =
      service.open("sandybridge-warm-replay", config_for("Sandybridge").seed(7));
  run_to_completion(replay);
  const service::EvalCacheStats after = service.cache().stats();
  std::printf("replayed session: %llu cache hits, %llu misses "
              "(cache holds %zu measurements)\n",
              static_cast<unsigned long long>(after.hits - before.hits),
              static_cast<unsigned long long>(after.misses - before.misses),
              after.size);

  std::printf("service state persisted under %s/ "
              "(store + per-session checkpoints)\n",
              data_dir.c_str());
  return 0;
}
