// EvaluatorStack wiring: each layer materializes exactly when requested,
// the ordering contract (faults innermost, parallel outermost) holds, and
// the stack behaves like the hand-assembled chain it replaced.
#include "apps/evaluator_factory.hpp"

#include <gtest/gtest.h>

#include "tuner/random_search.hpp"
#include "tuner/sampler.hpp"

namespace portatune::apps {
namespace {

TEST(EvaluatorFactory, BareBackendHasNoDecorators) {
  EvaluatorStackOptions opt;
  auto stack = make_evaluator_stack(opt);
  EXPECT_EQ(stack->fault_layer(), nullptr);
  EXPECT_EQ(stack->observed_layer(), nullptr);
  EXPECT_EQ(stack->resilient_layer(), nullptr);
  EXPECT_EQ(stack->parallel_layer(), nullptr);
  EXPECT_EQ(stack->problem_name(), "LU");
  EXPECT_EQ(stack->machine_name(), "Westmere");
  // Simulated backends are pure functions: safe to fan out, width 1.
  EXPECT_TRUE(stack->capabilities().thread_safe);
}

TEST(EvaluatorFactory, FullStackMaterializesEveryLayerInOrder) {
  EvaluatorStackOptions opt;
  opt.faults.transient_rate = 0.1;
  opt.observe = true;
  opt.resilient = true;
  opt.eval_threads = 2;
  auto stack = make_evaluator_stack(opt);
  ASSERT_NE(stack->fault_layer(), nullptr);
  ASSERT_NE(stack->observed_layer(), nullptr);
  ASSERT_NE(stack->resilient_layer(), nullptr);
  ASSERT_NE(stack->parallel_layer(), nullptr);

  // find_layer walks the forwarding chain from the stack itself down to
  // the backend: parallel must come before resilient, resilient before
  // the fault injector.
  tuner::Evaluator* top = stack->inner_evaluator();
  EXPECT_EQ(top, stack->parallel_layer());
  EXPECT_EQ(tuner::find_layer<tuner::ResilientEvaluator>(stack.get()),
            stack->resilient_layer());
  EXPECT_EQ(tuner::find_layer<tuner::FaultInjectingEvaluator>(stack.get()),
            stack->fault_layer());
  EXPECT_EQ(stack->parallel_layer()->threads(), 2u);
}

TEST(EvaluatorFactory, StackMatchesBareBackendResults) {
  EvaluatorStackOptions bare;
  bare.problem = "ATAX";
  bare.machine = "Sandybridge";
  auto plain = make_evaluator_stack(bare);

  auto decorated_opt = bare;
  decorated_opt.resilient = true;
  decorated_opt.eval_threads = 4;
  auto decorated = make_evaluator_stack(decorated_opt);

  tuner::ConfigStream stream(plain->space(), 5);
  for (int i = 0; i < 20; ++i) {
    const auto c = *stream.next();
    EXPECT_DOUBLE_EQ(plain->evaluate(c).seconds,
                     decorated->evaluate(c).seconds);
  }
}

TEST(EvaluatorFactory, SearchOverStackIsThreadCountInvariant) {
  tuner::RandomSearchOptions opt;
  opt.max_evals = 25;
  opt.seed = 9;

  EvaluatorStackOptions serial_opt;
  serial_opt.problem = "LU";
  serial_opt.machine = "Power7";
  auto serial = make_evaluator_stack(serial_opt);
  const auto ts = tuner::random_search(*serial, opt);

  auto parallel_opt = serial_opt;
  parallel_opt.eval_threads = 4;
  auto parallel = make_evaluator_stack(parallel_opt);
  const auto tp = tuner::random_search(*parallel, opt);

  ASSERT_EQ(ts.size(), tp.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts.entry(i).config, tp.entry(i).config);
    EXPECT_DOUBLE_EQ(ts.entry(i).seconds, tp.entry(i).seconds);
    EXPECT_EQ(ts.entry(i).draw_index, tp.entry(i).draw_index);
  }
}

}  // namespace
}  // namespace portatune::apps
