#include "apps/raytracer.hpp"

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::apps {
namespace {

TEST(Raytracer, RenderIsDeterministic) {
  const auto scene = demo_scene();
  const auto a = render(scene, 32, 24, 2);
  const auto b = render(scene, 32, 24, 2);
  ASSERT_EQ(a.pixels.size(), b.pixels.size());
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pixels[i].x, b.pixels[i].x);
    EXPECT_DOUBLE_EQ(a.pixels[i].y, b.pixels[i].y);
  }
}

TEST(Raytracer, HitsTheSceneCenter) {
  const auto img = render(demo_scene(), 64, 48, 2);
  // The central sphere is red-dominant; the corner shows background.
  const auto center = img.at(32, 24);
  EXPECT_GT(center.x, center.y);
  const auto corner = img.at(0, 0);
  EXPECT_NEAR(corner.x, 0.1, 0.2);
}

TEST(Raytracer, FloorShowsCheckerContrast) {
  const auto img = render(demo_scene(), 64, 48, 1);
  // Bottom rows hit the checkerboard: neighboring regions must differ.
  double lo = 1e9, hi = -1e9;
  for (int x = 0; x < 64; ++x) {
    const double lum =
        img.at(x, 46).x + img.at(x, 46).y + img.at(x, 46).z;
    lo = std::min(lo, lum);
    hi = std::max(hi, lum);
  }
  EXPECT_GT(hi - lo, 0.3);
}

TEST(Raytracer, ReflectionsChangeTheImage) {
  const auto flat = render(demo_scene(), 48, 32, 0);
  const auto deep = render(demo_scene(), 48, 32, 3);
  double diff = 0.0;
  for (std::size_t i = 0; i < flat.pixels.size(); ++i)
    diff += std::abs(flat.pixels[i].x - deep.pixels[i].x);
  EXPECT_GT(diff, 0.5);
}

TEST(Raytracer, PpmSerializationWellFormed) {
  const auto img = render(demo_scene(), 8, 4, 1);
  const auto ppm = img.to_ppm();
  const std::string header(ppm.begin(), ppm.begin() + 11);
  EXPECT_EQ(header.substr(0, 3), "P6\n");
  EXPECT_EQ(ppm.size(), 11u + 3u * 8u * 4u);  // "P6\n8 4\n255\n" + RGB
}

TEST(Raytracer, RejectsBadDimensions) {
  EXPECT_THROW(render(demo_scene(), 0, 10), Error);
}

TEST(FlagSpace, Has247Tunables) {
  const auto s = raytracer_flag_space();
  EXPECT_EQ(s.num_params(), 247u);
  EXPECT_EQ(s.param(0).name, "F0");
  EXPECT_EQ(s.param(143).name, "P0");
}

TEST(FlagModel, ImpactfulFlagBeatsNeutralFlag) {
  SimulatedRaytracerEvaluator sb(sim::make_sandybridge(), 0.0);
  const auto base = sb.evaluate(sb.space().default_config()).seconds;
  // F2 (-finline-functions): ~10% speedup.
  auto with_inline = sb.space().default_config();
  with_inline[2] = 1;
  const double inline_gain =
      base / sb.evaluate(with_inline).seconds;
  EXPECT_GT(inline_gain, 1.05);
  // A long-tail flag moves the needle by at most ~2%.
  auto with_neutral = sb.space().default_config();
  with_neutral[100] = 1;
  const double neutral_gain = base / sb.evaluate(with_neutral).seconds;
  EXPECT_LT(std::abs(neutral_gain - 1.0), 0.02);
}

TEST(FlagModel, IntelMachinesShareFlagPreferences) {
  SimulatedRaytracerEvaluator wm(sim::make_westmere(), 0.0);
  SimulatedRaytracerEvaluator sb(sim::make_sandybridge(), 0.0);
  SimulatedRaytracerEvaluator p7(sim::make_power7(), 0.0);
  Rng rng(5);
  int wm_sb_agree = 0, wm_p7_agree = 0;
  constexpr int kPairs = 60;
  for (int i = 0; i < kPairs; ++i) {
    const auto c1 = wm.space().random_config(rng);
    const auto c2 = wm.space().random_config(rng);
    const bool wm1 = wm.evaluate(c1).seconds < wm.evaluate(c2).seconds;
    const bool sb1 = sb.evaluate(c1).seconds < sb.evaluate(c2).seconds;
    const bool p71 = p7.evaluate(c1).seconds < p7.evaluate(c2).seconds;
    wm_sb_agree += (wm1 == sb1);
    wm_p7_agree += (wm1 == p71);
  }
  EXPECT_GE(wm_sb_agree, wm_p7_agree);  // same-vendor agreement dominates
  EXPECT_GT(wm_sb_agree, kPairs * 6 / 10);
}

TEST(Registry, CreatesEveryPaperProblem) {
  for (const auto& prob : all_problem_names()) {
    auto eval = make_simulated_evaluator(prob, "Sandybridge");
    ASSERT_NE(eval, nullptr) << prob;
    EXPECT_EQ(eval->problem_name(), prob);
    EXPECT_EQ(eval->machine_name(), "Sandybridge");
    const auto r = eval->evaluate(eval->space().default_config());
    EXPECT_TRUE(r.ok) << prob;
    EXPECT_GT(r.seconds, 0.0) << prob;
  }
}

TEST(Registry, UnknownNamesThrow) {
  EXPECT_THROW(make_simulated_evaluator("NOPE", "Sandybridge"), Error);
  EXPECT_THROW(make_simulated_evaluator("MM", "NOPE"), Error);
}

}  // namespace
}  // namespace portatune::apps
