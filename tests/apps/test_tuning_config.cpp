// TuningConfig: the single composition point for a run. Validation must
// reject impossible configurations loudly, and every producer must
// assemble its legacy struct exactly as the hand-wired drivers used to.
#include "apps/tuning_config.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tuner/random_search.hpp"

namespace portatune::apps {
namespace {

TEST(TuningConfigTest, DefaultsValidateAndMatchThePaperProtocol) {
  const TuningConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  const tuner::ExperimentSettings s = cfg.experiment_settings();
  // Sec. IV-D: nmax=100, N=10000, delta=20%, shared CRN seed.
  EXPECT_EQ(s.nmax, 100u);
  EXPECT_EQ(s.pool_size, 10000u);
  EXPECT_DOUBLE_EQ(s.delta_percent, 20.0);
  EXPECT_EQ(s.seed, 20160401u);
}

TEST(TuningConfigTest, ValidationNamesTheOffendingField) {
  const auto expect_rejects = [](const TuningConfig& cfg,
                                 const std::string& needle) {
    try {
      cfg.validate();
      FAIL() << "expected validation to reject (" << needle << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_rejects(TuningConfig{}.problem(""), "problem");
  expect_rejects(TuningConfig{}.machine(""), "machine");
  expect_rejects(TuningConfig{}.max_evals(0), "max_evals");
  expect_rejects(TuningConfig{}.pool_size(0), "pool_size");
  expect_rejects(TuningConfig{}.delta_percent(0.0), "delta_percent");
  expect_rejects(TuningConfig{}.delta_percent(100.0), "delta_percent");
  expect_rejects(TuningConfig{}.kernel_threads(0), "kernel_threads");
  expect_rejects(TuningConfig{}.eval_deadline_seconds(-1.0),
                 "eval_deadline");
  expect_rejects(TuningConfig{}.failure_budget({0, 0}), "failure budget");

  // Guard invariants only bind when the guard is on.
  tuner::GuardOptions inverted;
  inverted.enabled = true;
  inverted.floor = -0.5;  // below the default disable_floor of -0.2
  expect_rejects(TuningConfig{}.guard(inverted), "floor");
  inverted.enabled = false;
  EXPECT_NO_THROW(TuningConfig{}.guard(inverted).validate());
}

TEST(TuningConfigTest, ProducersAssembleTheLegacyStructsConsistently) {
  tuner::FailureBudget budget;
  budget.max_consecutive = 5;
  budget.max_total = 17;
  const TuningConfig cfg = TuningConfig{}
                               .problem("ATAX")
                               .machines("Power7", "Sandybridge")
                               .max_evals(64)
                               .seed(99)
                               .pool_size(512)
                               .delta_percent(15.0)
                               .failure_budget(budget)
                               .eval_threads(4);

  const tuner::SearchCommon common = cfg.search_common();
  EXPECT_EQ(common.max_evals, 64u);
  EXPECT_EQ(common.seed, 99u);
  EXPECT_EQ(common.failure_budget.max_consecutive, 5u);
  EXPECT_EQ(common.failure_budget.max_total, 17u);

  const tuner::ExperimentSettings s = cfg.experiment_settings();
  EXPECT_EQ(s.nmax, 64u);
  EXPECT_EQ(s.pool_size, 512u);
  EXPECT_DOUBLE_EQ(s.delta_percent, 15.0);
  EXPECT_EQ(s.seed, 99u);

  const tuner::ParallelOptions p = cfg.parallel_options();
  EXPECT_EQ(p.threads, 4u);

  const tuner::SessionOptions so = cfg.session_options("svc-1");
  EXPECT_EQ(so.id, "svc-1");
  EXPECT_EQ(so.max_evals, 64u);
  EXPECT_EQ(so.seed, 99u);
  EXPECT_EQ(so.pool_size, 512u);
  EXPECT_EQ(so.warm_model, nullptr);
  EXPECT_EQ(so.resume, nullptr);
}

TEST(TuningConfigTest, StackRolesPickTheRightMachineAndLabel) {
  const TuningConfig cfg = TuningConfig{}
                               .problem("LU")
                               .machines("Westmere", "Sandybridge")
                               .observe(true);

  const EvaluatorStackOptions single = cfg.stack_options();
  EXPECT_EQ(single.machine, "Sandybridge");
  EXPECT_EQ(single.observe_label, "eval");

  const EvaluatorStackOptions source =
      cfg.stack_options(StackRole::Source);
  EXPECT_EQ(source.machine, "Westmere");
  EXPECT_EQ(source.observe_label, "eval.source");

  const EvaluatorStackOptions target =
      cfg.stack_options(StackRole::Target);
  EXPECT_EQ(target.machine, "Sandybridge");
  EXPECT_EQ(target.observe_label, "eval.target");

  // An explicit label wins over the role-derived default.
  const EvaluatorStackOptions labelled =
      TuningConfig(cfg).observe_label("bench").stack_options(
          StackRole::Source);
  EXPECT_EQ(labelled.observe_label, "bench");
}

TEST(TuningConfigTest, MakeStackMatchesHandAssembledOptions) {
  const TuningConfig cfg = TuningConfig{}
                               .problem("LU")
                               .machine("Power7")
                               .max_evals(25)
                               .seed(3);
  auto built = cfg.make_stack();
  EXPECT_EQ(built->problem_name(), "LU");
  EXPECT_EQ(built->machine_name(), "Power7");

  EvaluatorStackOptions hand;
  hand.problem = "LU";
  hand.machine = "Power7";
  auto legacy = make_evaluator_stack(hand);

  tuner::RandomSearchOptions opt;
  static_cast<tuner::SearchCommon&>(opt) = cfg.search_common();
  const tuner::SearchTrace a = tuner::random_search(*built, opt);
  const tuner::SearchTrace b = tuner::random_search(*legacy, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entry(i).config, b.entry(i).config);
    EXPECT_DOUBLE_EQ(a.entry(i).seconds, b.entry(i).seconds);
  }
}

}  // namespace
}  // namespace portatune::apps
