#include "apps/hpl.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::apps {
namespace {

class HplBlockSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HplBlockSizes, FactorSolveResidualPassesHplCheck) {
  const std::int64_t block = GetParam();
  constexpr std::int64_t n = 96;
  const auto original = random_system(n, 1);
  auto lu = original;
  const auto piv = lu_factor(lu, block);

  Rng rng(2);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = lu_solve(lu, piv, b);
  // The canonical HPL acceptance threshold is 16.
  EXPECT_LT(hpl_residual(original, x, b), 16.0);
}

INSTANTIATE_TEST_SUITE_P(Blocks, HplBlockSizes,
                         ::testing::Values(1, 3, 8, 32, 96, 200));

TEST(HplSolver, BlockingDoesNotChangeTheFactorization) {
  constexpr std::int64_t n = 40;
  const auto m0 = random_system(n, 3);
  auto a = m0, b = m0;
  const auto pa = lu_factor(a, 1);
  const auto pb = lu_factor(b, 8);
  ASSERT_EQ(pa, pb);  // same pivots
  for (std::size_t i = 0; i < a.a.size(); ++i)
    EXPECT_NEAR(a.a[i], b.a[i], 1e-9);
}

TEST(HplSolver, PivotingHandlesZeroDiagonal) {
  DenseMatrix m;
  m.n = 2;
  m.a = {0.0, 1.0,
         1.0, 0.0};
  const auto piv = lu_factor(m, 1);
  const auto x = lu_solve(m, piv, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(HplSolver, SingularMatrixThrows) {
  DenseMatrix m;
  m.n = 2;
  m.a = {1.0, 2.0,
         2.0, 4.0};  // rank 1
  EXPECT_THROW(lu_factor(m, 1), Error);
}

TEST(HplSolver, BadArgumentsThrow) {
  DenseMatrix m;
  EXPECT_THROW(lu_factor(m, 1), Error);  // empty
  auto ok = random_system(4, 4);
  EXPECT_THROW(lu_factor(ok, 0), Error);  // bad block
  auto lu = random_system(4, 5);
  const auto piv = lu_factor(lu, 2);
  EXPECT_THROW(lu_solve(lu, piv, std::vector<double>{1.0}), Error);
}

TEST(HplSpace, HasFifteenParameters) {
  const auto s = hpl_param_space();
  EXPECT_EQ(s.num_params(), 15u);
  EXPECT_EQ(s.param(0).name, "NB");
  EXPECT_GT(s.cardinality(), 1e6);
}

TEST(HplEvaluator, DeterministicPerMachine) {
  SimulatedHplEvaluator sb(sim::make_sandybridge());
  const auto c = sb.space().default_config();
  EXPECT_DOUBLE_EQ(sb.evaluate(c).seconds, sb.evaluate(c).seconds);
  EXPECT_GT(sb.evaluate(c).seconds, 0.0);
  EXPECT_EQ(sb.problem_name(), "HPL");
}

TEST(HplEvaluator, MachinesDisagreeOnAlgorithmicChoices) {
  // The defining HPL property in the paper: weak cross-machine
  // correlation. Count how often the better of two configs flips between
  // two machines.
  SimulatedHplEvaluator sb(sim::make_sandybridge());
  SimulatedHplEvaluator p7(sim::make_power7());
  Rng rng(7);
  int flips = 0;
  constexpr int kPairs = 60;
  for (int i = 0; i < kPairs; ++i) {
    const auto c1 = sb.space().random_config(rng);
    const auto c2 = sb.space().random_config(rng);
    const bool sb_prefers_1 =
        sb.evaluate(c1).seconds < sb.evaluate(c2).seconds;
    const bool p7_prefers_1 =
        p7.evaluate(c1).seconds < p7.evaluate(c2).seconds;
    flips += (sb_prefers_1 != p7_prefers_1);
  }
  EXPECT_GT(flips, kPairs / 5);  // far from perfectly correlated
}

TEST(HplEvaluator, PeakGflopsOrderingHolds) {
  // With everything else idiosyncratic, the best achievable time on a
  // much faster machine should beat the slowest machine's best.
  SimulatedHplEvaluator sb(sim::make_sandybridge());
  SimulatedHplEvaluator xg(sim::make_xgene());
  Rng rng(8);
  double best_sb = 1e300, best_xg = 1e300;
  for (int i = 0; i < 50; ++i) {
    const auto c = sb.space().random_config(rng);
    best_sb = std::min(best_sb, sb.evaluate(c).seconds);
    best_xg = std::min(best_xg, xg.evaluate(c).seconds);
  }
  EXPECT_LT(best_sb, best_xg);
}

}  // namespace
}  // namespace portatune::apps
