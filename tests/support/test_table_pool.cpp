#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace portatune {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os, "Title");
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num_or_dash(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::num_or_dash(
                std::numeric_limits<double>::infinity()),
            "-");
  EXPECT_EQ(TextTable::num_or_dash(std::nan("")), "-");
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(2);
  std::atomic<int> v{0};
  auto f = pool.submit([&] { v = 42; });
  f.wait();
  EXPECT_EQ(v.load(), 42);
}

TEST(ThreadPool, GlobalIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.seconds(), b + 1.0);
}

}  // namespace
}  // namespace portatune
