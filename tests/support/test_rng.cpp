#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace portatune {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroIsSafe) {
  Rng rng(9);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b)
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
}

TEST(Rng, RangeInclusive) {
  Rng rng(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values show up
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, PermutationCoversRange) {
  Rng rng(15);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SpawnProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.spawn();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

class SampleWithoutReplacement
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(SampleWithoutReplacement, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), k) << "duplicates in the sample";
  for (auto s : sample) EXPECT_LT(s, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SampleWithoutReplacement,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{10, 0},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{1000, 5},
                      std::pair<std::size_t, std::size_t>{1000000, 20},
                      std::pair<std::size_t, std::size_t>{64, 64}));

TEST(Rng, SampleMoreThanPopulationThrows) {
  Rng rng(18);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Hash, Mix64IsStable) {
  // Pinned values guard cross-platform reproducibility of everything
  // keyed by these hashes (noise, idiosyncrasies).
  EXPECT_EQ(mix64(0), 16294208416658607535ULL);
  EXPECT_EQ(mix64(1), 10451216379200822465ULL);
}

TEST(Hash, HashBytesMatchesFnv1a) {
  EXPECT_EQ(hash_bytes(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(hash_bytes("a"), hash_bytes("b"));
}

TEST(Hash, HashIntsOrderSensitive) {
  const std::vector<int> ab{1, 2}, ba{2, 1};
  EXPECT_NE(hash_ints(ab), hash_ints(ba));
  EXPECT_EQ(hash_ints(ab), hash_ints(ab));
  EXPECT_NE(hash_ints(ab, 1), hash_ints(ab, 2));
}

TEST(Hash, HashToUnitInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = hash_to_unit(mix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace portatune
