#include "support/cancellation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/thread_pool.hpp"

namespace portatune {
namespace {

TEST(Cancellation, DefaultTokenIsInertButSleeps) {
  CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(token.wait_for(0.02));  // degrades to a plain sleep
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(waited, 0.02);
}

TEST(Cancellation, TokenObservesItsSource) {
  CancellationSource source;
  const CancellationToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  source.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
  // Idempotent.
  source.request_cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, WaitForWakesImmediatelyOnCancel) {
  CancellationSource source;
  const CancellationToken token = source.token();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.request_cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(token.wait_for(30.0));  // returns long before 30 s
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);
  canceller.join();
}

TEST(Cancellation, WaitForOnAlreadyCancelledReturnsAtOnce) {
  CancellationSource source;
  source.request_cancel();
  EXPECT_TRUE(source.token().wait_for(30.0));
}

TEST(Cancellation, ScopeInstallsAndRestoresAmbientToken) {
  EXPECT_FALSE(current_cancellation_token().valid());
  CancellationSource source;
  {
    CancellationScope scope(source.token());
    EXPECT_TRUE(current_cancellation_token().valid());
    source.request_cancel();
    EXPECT_TRUE(current_cancellation_token().cancelled());
    {
      CancellationScope inner(CancellationToken{});  // nested override
      EXPECT_FALSE(current_cancellation_token().valid());
    }
    EXPECT_TRUE(current_cancellation_token().cancelled());
  }
  EXPECT_FALSE(current_cancellation_token().valid());
}

TEST(Cancellation, ThreadPoolPropagatesAmbientToken) {
  // The submitter's ambient token must ride across the thread hop, so
  // work deep inside a pooled task observes the caller's cancellation
  // domain (exactly like SpanContext propagation).
  CancellationSource source;
  source.request_cancel();
  CancellationScope scope(source.token());
  ThreadPool pool(2);
  std::atomic<int> seen{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    if (current_cancellation_token().cancelled())
      seen.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(seen.load(), 8);
}

}  // namespace
}  // namespace portatune
