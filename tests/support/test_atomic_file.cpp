#include "support/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "support/checksum.hpp"
#include "support/error.hpp"

namespace portatune {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("portatune_atomic_file_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WriteThenReadRoundTrips) {
  const std::string p = path("a.txt");
  atomic_write_file(p, "hello\n");
  EXPECT_TRUE(file_exists(p));
  EXPECT_EQ(read_file(p), "hello\n");
  // Replacement is whole-file, and no temp file is left behind.
  atomic_write_file(p, "goodbye\n");
  EXPECT_EQ(read_file(p), "goodbye\n");
  EXPECT_FALSE(file_exists(p + ".tmp"));
}

TEST_F(AtomicFileTest, WriteIntoMissingDirectoryThrows) {
  EXPECT_THROW(atomic_write_file(path("no/such/dir/file"), "x"), Error);
}

TEST_F(AtomicFileTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(path("missing")), Error);
}

TEST_F(AtomicFileTest, EnsureDirectoryIsRecursiveAndIdempotent) {
  const std::string nested = (dir_ / "a" / "b" / "c").string();
  ensure_directory(nested);
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  ensure_directory(nested);  // no throw on repeat
}

TEST(ChecksumFooter, RoundTripsAndRejectsTampering) {
  const std::string payload = "line one\nline two\n";
  const std::string with_footer = append_checksum_footer(payload);
  EXPECT_EQ(strip_verified_checksum_footer(with_footer, "test"), payload);

  // Flip one payload byte: the footer no longer matches.
  std::string corrupt = with_footer;
  corrupt[2] = corrupt[2] == 'x' ? 'y' : 'x';
  EXPECT_THROW(strip_verified_checksum_footer(corrupt, "test"), Error);

  // Truncate before the footer: the footer is gone entirely.
  EXPECT_THROW(strip_verified_checksum_footer(payload, "test"), Error);
}

}  // namespace
}  // namespace portatune
