#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace portatune {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7}), 7.0);
}

TEST(Stats, VarianceIsUnbiased) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1}), 0.0);
}

TEST(Stats, PopulationVariance) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(population_variance(xs), 4.0, 1e-12);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs{1, 3};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolatesLinearly) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);  // numpy type-7 convention
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Stats, QuantileOfSingleton) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{42}, 0.3), 42.0);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), Error);
  EXPECT_THROW(quantile(std::vector<double>{1}, -0.1), Error);
  EXPECT_THROW(quantile(std::vector<double>{1}, 1.1), Error);
}

TEST(Stats, MedianEvenCount) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(Stats, ArgsortAscendingAndStable) {
  const std::vector<double> xs{3, 1, 2, 1};
  const auto o = argsort(xs);
  // Stable: the two 1.0s keep their original relative order.
  EXPECT_EQ(o, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(Stats, RanksWithoutTies) {
  const std::vector<double> xs{30, 10, 20};
  EXPECT_EQ(ranks(xs), (std::vector<double>{3, 1, 2}));
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  EXPECT_EQ(ranks(xs), (std::vector<double>{1, 2.5, 2.5, 4}));
}

TEST(Stats, RanksAllEqual) {
  const std::vector<double> xs{5, 5, 5};
  EXPECT_EQ(ranks(xs), (std::vector<double>{2, 2, 2}));
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, NonDecreasingInQ) {
  const std::vector<double> xs{9, 2, 7, 4, 4, 8, 0, 1};
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q), quantile(xs, std::min(1.0, q + 0.1)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileMonotone,
                         ::testing::Values(0.0, 0.1, 0.2, 0.35, 0.5, 0.65,
                                           0.8, 0.9));

}  // namespace
}  // namespace portatune
