#include "support/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSampleGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 1, 4, 3, 5};
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, MismatchThrows) {
  EXPECT_THROW(pearson(std::vector<double>{1}, std::vector<double>{1, 2}),
               Error);
}

TEST(Spearman, InvariantUnderMonotoneTransform) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.uniform());
    y.push_back(x.back() + 0.1 * rng.uniform());
  }
  const double base = spearman(x, y);
  std::vector<double> y_exp;
  for (double v : y) y_exp.push_back(std::exp(5.0 * v));  // monotone map
  EXPECT_NEAR(spearman(x, y_exp), base, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Kendall, PerfectConcordance) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_NEAR(kendall(x, y), 1.0, 1e-12);
}

TEST(Kendall, PerfectDiscordance) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 4, 3};
  EXPECT_NEAR(kendall(x, y), -1.0, 1e-12);
}

TEST(Kendall, KnownMixedValue) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 3, 2};
  EXPECT_NEAR(kendall(x, y), 1.0 / 3.0, 1e-12);
}

TEST(TopSetOverlap, IdenticalOrdersGiveOne) {
  const std::vector<double> x{5, 1, 3, 2, 4, 9, 8, 7, 6, 0};
  EXPECT_DOUBLE_EQ(top_set_overlap(x, x, 0.2), 1.0);
}

TEST(TopSetOverlap, DisjointTopsGiveZero) {
  const std::vector<double> x{0, 1, 8, 9};  // best two: indices 0,1
  const std::vector<double> y{8, 9, 0, 1};  // best two: indices 2,3
  EXPECT_DOUBLE_EQ(top_set_overlap(x, y, 0.5), 0.0);
}

TEST(TopSetOverlap, RejectsBadFraction) {
  const std::vector<double> x{1, 2};
  EXPECT_THROW(top_set_overlap(x, x, 0.0), Error);
  EXPECT_THROW(top_set_overlap(x, x, 1.5), Error);
}

class CorrelationAgreement : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationAgreement, NoiseDegradesAllCoefficients) {
  // As noise grows, every correlation measure should drop from ~1.
  const double noise = GetParam();
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.uniform());
    y.push_back(x.back() + noise * rng.normal());
  }
  const double p = pearson(x, y);
  const double s = spearman(x, y);
  const double k = kendall(x, y);
  if (noise <= 0.01) {
    EXPECT_GT(p, 0.95);
    EXPECT_GT(s, 0.95);
    EXPECT_GT(k, 0.85);
  } else if (noise >= 10.0) {
    EXPECT_LT(std::abs(p), 0.2);
    EXPECT_LT(std::abs(s), 0.2);
    EXPECT_LT(std::abs(k), 0.2);
  } else {
    EXPECT_GT(p, 0.0);
    EXPECT_GT(s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CorrelationAgreement,
                         ::testing::Values(0.0, 0.01, 0.3, 1.0, 10.0));

}  // namespace
}  // namespace portatune
