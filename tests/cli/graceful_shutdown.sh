#!/usr/bin/env bash
# Graceful-shutdown test for the journaled experiment fan-out.
#
# SIGTERM mid-run must trigger cooperative cancellation: the process
# stops at a window boundary, flushes the journal and checkpoints, and
# exits with the resumable status code 3. The journal it leaves behind
# must be a valid manifest (intact checksum footer, unfinished cells
# still marked), and resuming it must complete the grid with artifacts
# identical to an uninterrupted reference run (modulo wall-clock
# timestamps and the checksum footers that hash them).
#
# Usage: graceful_shutdown.sh <portatune_cli> <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

ARGS=(experiment --problem LU --pairs Westmere:Sandybridge,Westmere:Power7
      --nmax 40 --seed 7 --slow 0.02 --ckpt-every 5 --threads 1)

# Uninterrupted reference run.
"$CLI" "${ARGS[@]}" --run-dir ref-run

# Interrupted run: one SIGTERM requests a graceful, resumable exit. The
# observability artifacts requested via --metrics-out / --chrome-trace
# must be written on this exit-3 path too, not only on success.
"$CLI" "${ARGS[@]}" --run-dir grace-run \
  --metrics-out grace-metrics.json --chrome-trace grace-trace.json &
pid=$!
sleep 2
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
test "$rc" -eq 3  # "interrupted but resumable"

# The journal must be a valid, resumable manifest.
grep -q '^# portatune-journal v1,' grace-run/journal.csv
grep -q '^# checksum,' grace-run/journal.csv
grep -Eq '^(pending|running),' grace-run/journal.csv

# The interrupted process still flushed its observability artifacts.
test -s grace-metrics.json
test -s grace-trace.json
grep -q '"counters"' grace-metrics.json
grep -q '"traceEvents"' grace-trace.json

"$CLI" "${ARGS[@]}" --resume grace-run

canon() { grep -v '^# checksum' "$1" | sed -E '/^[0-9]/ s/,[0-9.eE+-]+$//'; }
for cell in ref-run/cell-*; do
  name=$(basename "$cell")
  for f in "$cell"/*.csv; do
    phase=$(basename "$f")
    diff <(canon "$f") <(canon "grace-run/$name/$phase")
  done
done
echo "graceful shutdown resumability OK"
