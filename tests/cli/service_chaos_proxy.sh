#!/usr/bin/env bash
# Exactly-once under transport chaos, process-level.
#
# The loadgen drives the daemon exclusively through the chaos proxy
# (seeded delays, torn replies, mid-reply hangups, blackholes) while the
# daemon itself is SIGTERM'd and restarted mid-run. The claims proven:
#   * the loadgen exits 0 with its PASS line — client-side op totals
#     equal the server.op.* counters exactly, across both the transport
#     faults and the daemon restart (the protocol state file carries the
#     reply cache and counters over the boundary);
#   * the killed daemon exits 3 and leaves protocol_state.json;
#   * a session abandoned past --lease-seconds is checkpointed and
#     evicted (server.sessions_reclaimed counts it, `status` shows no
#     live sessions — zero leaks), yet `resume` brings it back with its
#     progress intact;
#   * a store entry corrupted on disk is quarantined at the next daemon
#     start — the daemon serves, `status` reports the quarantine, and
#     the damaged entry sits in <store>/quarantine/ for the operator.
# On failure the work dir (daemon logs, loadgen output, telemetry) is
# the artifact; CI uploads it.
#
# Usage: service_chaos_proxy.sh <portatune_cli> <portatune_loadgen>
#                               <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
LOADGEN=$(realpath "$2")
WORK=$3
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

SOCK=$PWD/pt.sock
DATA=$PWD/service_data

call() { "$CLI" call --socket "$SOCK" --request "$1"; }

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "service socket never appeared" >&2
  return 1
}

serve() { # serve <logfile> [extra flags...]
  local log=$1
  shift
  "$CLI" serve --socket "$SOCK" --data-dir "$DATA" \
    --log-json events.jsonl --quiet "$@" >"$log" 2>&1 &
  daemon=$!
  wait_for_socket
}

# --- phase 1: chaos load with a daemon restart in the middle -----------
serve serve1.log --lease-seconds 2
"$LOADGEN" --socket "$SOCK" --clients 3 --sessions 2 --steps 6 \
  --garbage 0 --max-evals 60 --deadline 60 \
  --chaos "delay=0.15,delay-s=0.03,tear=0.1,hangup=0.08,blackhole=0.05,hold=0.3" \
  --chaos-seed 7 --out loadgen_out >loadgen.log 2>&1 &
loadgen=$!

sleep 1.2
# The run must still be in flight, or the restart would prove nothing.
kill -0 "$loadgen"
kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 3
test -s "$DATA/protocol_state.json"

serve serve2.log --lease-seconds 2
rc=0
wait "$loadgen" || rc=$?
cat loadgen.log
test "$rc" -eq 0
grep -q '^PASS' loadgen.log           # exact counter cross-check held
grep -q '^chaos: ' loadgen.log        # the proxy really injected faults

# --- phase 2: lease reclaim of an abandoned session --------------------
call '{"op":"open","id":"abandoned","problem":"LU","machine":"Westmere","max_evals":30,"seed":5}' \
  | grep -q '"ok":true'
call '{"op":"step","id":"abandoned","n":3}' | grep -q '"evals":3'
# Walk away past the lease: the sweep must checkpoint + evict it.
for _ in $(seq 1 100); do
  call '{"op":"status"}' >status.json
  python3 - <<'EOF' && break || sleep 0.2
import json
s = json.load(open("status.json"))
live = [x for x in s["sessions"] if not x["closed"]]
raise SystemExit(0 if not live else 1)
EOF
done
call '{"op":"stats"}' >stats.json
python3 - <<'EOF'
import json
s = json.load(open("stats.json"))
counters = s["metrics"]["counters"]
assert counters.get("server.sessions_reclaimed", 0) >= 1, counters
assert s["server"]["sessions_open"] == 0, s["server"]  # zero leaks
EOF
# ...and the reclaim lost nothing: resume picks the session back up at
# eval 3, so one more step lands on 4.
call '{"op":"resume","id":"abandoned"}' | grep -q '"ok":true'
call '{"op":"step","id":"abandoned","n":1}' | grep -q '"evals":4'
call '{"op":"close","id":"abandoned"}' | grep -q '"ok":true'

call '{"op":"shutdown"}' | grep -q '"ok":true'
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 0

# --- phase 3: corrupted store entry is quarantined at startup ----------
entry=$(ls "$DATA"/store/entries | head -1)
test -n "$entry"
echo "bit rot" > "$DATA/store/entries/$entry/trace.csv"
serve serve3.log
call '{"op":"status"}' >status-quarantine.json
python3 - <<EOF
import json
s = json.load(open("status-quarantine.json"))
assert s["store"]["quarantined"] >= 1, s["store"]
EOF
test -d "$DATA/store/quarantine/$entry"
test ! -e "$DATA/store/entries/$entry"
call '{"op":"shutdown"}' | grep -q '"ok":true'
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 0

echo "service chaos proxy OK"
