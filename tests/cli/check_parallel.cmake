# ctest script: the CLI's --threads flag must not change search results.
# Runs the same fault-injected collect twice — serial and with a 4-worker
# evaluation window — and compares the trace CSVs after stripping the
# wall-clock column (the one field that legitimately differs between
# runs). The gtest suites prove the library-level parity; this checks the
# CLI wiring end to end.
#
# Inputs: -DCLI=<portatune_cli path> -DWORK_DIR=<scratch directory>

file(MAKE_DIRECTORY "${WORK_DIR}")
set(SERIAL "${WORK_DIR}/serial.csv")
set(PARALLEL "${WORK_DIR}/parallel.csv")

foreach(run "serial;1" "parallel;4")
  list(GET run 0 name)
  list(GET run 1 threads)
  execute_process(
    COMMAND "${CLI}" collect
      --problem LU --machine Westmere --nmax 40
      --faults 0.1 --retries 2 --quiet
      --threads "${threads}"
      --out "${WORK_DIR}/${name}.csv"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "portatune_cli collect --threads ${threads} exited with ${rc}:\n"
      "${out}\n${err}")
  endif()
endforeach()

# Strip the trailing wall_unix column from every data row — and the v3
# checksum footer, which hashes those timestamps and so differs too —
# then compare.
function(canonicalize path out_var)
  file(STRINGS "${path}" lines ENCODING UTF-8)
  set(result "")
  foreach(line IN LISTS lines)
    if(line MATCHES "^# checksum,")
      continue()
    endif()
    if(line MATCHES "^[0-9]")
      string(REGEX REPLACE ",[0-9.eE+-]+$" "" line "${line}")
    endif()
    string(APPEND result "${line}\n")
  endforeach()
  set(${out_var} "${result}" PARENT_SCOPE)
endfunction()

canonicalize("${SERIAL}" serial_body)
canonicalize("${PARALLEL}" parallel_body)
if(NOT serial_body STREQUAL parallel_body)
  message(FATAL_ERROR
    "--threads 4 produced a different trace than --threads 1:\n"
    "=== serial ===\n${serial_body}\n=== parallel ===\n${parallel_body}")
endif()

string(REGEX MATCHALL "\n" rows "${serial_body}")
list(LENGTH rows n_rows)
if(n_rows LESS 10)
  message(FATAL_ERROR "trace suspiciously small: ${n_rows} lines")
endif()
