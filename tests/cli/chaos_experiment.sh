#!/usr/bin/env bash
# Chaos crash-resume parity for the journaled experiment fan-out.
#
# Run a two-cell experiment grid in deterministic slow motion (--slow
# stretches every evaluation so SIGKILL reliably lands mid-run), kill it
# with no chance to clean up, resume from the surviving journal, and
# require every phase artifact to match an uninterrupted reference run
# byte for byte. Wall-clock timestamps (the last column of each data row)
# and the v3 checksum footers that hash them legitimately differ between
# runs, so both are stripped before the diff — everything else must be
# identical.
#
# Usage: chaos_experiment.sh <portatune_cli> <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

ARGS=(experiment --problem LU --pairs Westmere:Sandybridge,Westmere:Power7
      --nmax 40 --seed 7 --slow 0.02 --ckpt-every 5 --threads 1)

# Uninterrupted reference run.
"$CLI" "${ARGS[@]}" --run-dir ref-run

# Chaos run: SIGKILL mid-flight, then resume from the journal.
"$CLI" "${ARGS[@]}" --run-dir chaos-run &
pid=$!
sleep 2
kill -KILL "$pid" 2> /dev/null || true
wait "$pid" || true

# The kill must land mid-run: the manifest survived and holds
# unfinished cells.
grep -Eq '^(pending|running),' chaos-run/journal.csv

"$CLI" "${ARGS[@]}" --resume chaos-run

# Strip the wall_unix column from data rows, and the checksum footer.
canon() { grep -v '^# checksum' "$1" | sed -E '/^[0-9]/ s/,[0-9.eE+-]+$//'; }
for cell in ref-run/cell-*; do
  name=$(basename "$cell")
  for f in "$cell"/*.csv; do
    phase=$(basename "$f")
    diff <(canon "$f") <(canon "chaos-run/$name/$phase")
  done
done
echo "chaos experiment crash-resume parity OK"
