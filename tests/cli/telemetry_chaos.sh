#!/usr/bin/env bash
# Live-telemetry chaos test: the run telemetry trio under SIGKILL.
#
# Start a journaled experiment with telemetry on (status heartbeat,
# metrics time-series, flight recorder) and a debug-level event log, then:
#
#   1. invoke `status --run-dir` against the LIVE run (read-only, safe
#      concurrently) and require RUNNING with exit 0;
#   2. SIGKILL the run and require all three telemetry files to have
#      survived, with the flight-recorder dump's event lines forming a
#      contiguous slice of events.jsonl (same serialisation both sides —
#      the dump really is the tail of the log at dump time);
#   3. require `status` to call the run DEAD (exit 2) and print the
#      resume hint;
#   4. resume, and require the per-pid `seq` numbers in the time-series
#      to be monotone within each segment with >= 2 distinct pids (the
#      kill+resume is visible in the data), and a final COMPLETE status
#      with exit 0.
#
# Usage: telemetry_chaos.sh <portatune_cli> <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

RUN=$PWD/run
ARGS=(experiment --problem LU --pairs Westmere:Sandybridge,Westmere:Power7
      --nmax 40 --seed 7 --slow 0.02 --ckpt-every 5 --threads 1
      --telemetry-every 0.25 --log-level debug
      --log-json "$RUN/events.jsonl")

"$CLI" "${ARGS[@]}" --run-dir "$RUN" &
pid=$!
sleep 2

# Status of the live run: RUNNING, exit 0, and it must not perturb the
# run (the owning process keeps going — read-only by construction).
"$CLI" status --run-dir "$RUN" > live_status
grep -q 'RUNNING' live_status

kill -KILL "$pid" 2> /dev/null || true
wait "$pid" || true

# SIGKILL gave the process no chance to clean up: the telemetry files
# must already be on disk from the periodic dumps and appends.
test -s "$RUN/flight_recorder.jsonl"
test -s "$RUN/metrics_timeseries.jsonl"
test -s "$RUN/status.json"

# The dump's event lines (everything after the header) must be a
# contiguous slice of the event log: the recorder flushes the log sink
# before dumping, and both serialise events identically.
tail -n +2 "$RUN/flight_recorder.jsonl" > dump_events
nev=$(wc -l < dump_events)
test "$nev" -ge 1
first=$(head -n 1 dump_events)
lineno=$(grep -nF -- "$first" "$RUN/events.jsonl" | head -n 1 | cut -d: -f1)
test -n "$lineno"
sed -n "${lineno},$((lineno + nev - 1))p" "$RUN/events.jsonl" > log_slice
diff dump_events log_slice

# The dead run: stale heartbeat -> DEAD, exit 2, resume hint printed.
# (Let the last pre-kill heartbeat age past the staleness window first.)
sleep 1
set +e
"$CLI" status --run-dir "$RUN" --stale-after 0.5 > dead_status
rc=$?
set -e
test "$rc" -eq 2
grep -q 'DEAD' dead_status
grep -q -- '--resume' dead_status

# Resume to completion, then the final status: COMPLETE, exit 0.
"$CLI" "${ARGS[@]}" --resume "$RUN"
"$CLI" status --run-dir "$RUN" > final_status
grep -q 'COMPLETE' final_status

# Time-series integrity across the kill: within each process segment the
# seq numbers count 0, 1, 2, ... without gaps, and the kill+resume shows
# up as (at least) two distinct pids.
awk '
  match($0, /"seq":[0-9]+/) {
    seq = substr($0, RSTART + 6, RLENGTH - 6) + 0
    if (!match($0, /"pid":[0-9]+/)) next
    pid = substr($0, RSTART + 6, RLENGTH - 6) + 0
    if (pid in last) {
      if (seq != last[pid] + 1) {
        print "seq gap for pid " pid ": " last[pid] " -> " seq
        exit 1
      }
    } else if (seq != 0) {
      print "segment for pid " pid " starts at seq " seq ", not 0"
      exit 1
    }
    last[pid] = seq
    pids[pid] = 1
  }
  END {
    n = 0
    for (p in pids) n++
    if (n < 2) { print "expected >= 2 pids in time-series, saw " n; exit 1 }
  }
' "$RUN/metrics_timeseries.jsonl"

echo "telemetry chaos OK"
