# ctest script: golden-output test for portatune_report, plus an
# end-to-end exercise of the regression gate's exit codes.
#
# The canned event log is hand-written and deterministic, so the whole
# analysis output is byte-comparable against a checked-in golden file.
# If the report format changes deliberately, regenerate the golden:
#   portatune_report --log tests/data/canned_events.jsonl \
#     > tests/data/canned_report.golden
#
# Inputs: -DREPORT=<portatune_report path> -DDATA=<tests/data directory>
#         -DWORK_DIR=<scratch directory>

file(MAKE_DIRECTORY "${WORK_DIR}")
set(EVENTS "${DATA}/canned_events.jsonl")
set(BASELINE "${DATA}/canned_baseline.jsonl")
set(GOLDEN "${DATA}/canned_report.golden")

# --- golden output: the analysis of a canned log is byte-stable ---------
execute_process(
  COMMAND "${REPORT}" --log "${EVENTS}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "portatune_report exited with ${rc}:\n${out}\n${err}")
endif()
file(WRITE "${WORK_DIR}/report.out" "${out}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORK_DIR}/report.out" "${GOLDEN}"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "report output differs from golden file ${GOLDEN}:\n${out}")
endif()

# --- regression gate: slower-than-baseline run exits 2 ------------------
execute_process(
  COMMAND "${REPORT}" --log "${EVENTS}" --compare "${BASELINE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "expected exit 2 on regression, got ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "REGRESSED")
  message(FATAL_ERROR "comparison did not flag a regression:\n${out}")
endif()

# --- a run compared against itself is never a regression ----------------
execute_process(
  COMMAND "${REPORT}" --log "${EVENTS}" --compare "${EVENTS}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "self-comparison should exit 0, got ${rc}:\n${out}\n${err}")
endif()

message(STATUS "portatune_report golden + gate OK")
