#!/usr/bin/env bash
# Process-level chaos test for the tuning service daemon.
#
# Start `portatune_cli serve`, drive two concurrent sessions over the
# Unix socket with `portatune_cli call`, then SIGTERM the daemon
# mid-session. The daemon must checkpoint every open session and exit
# with the resumable status code 3 (the same convention as the journaled
# experiment runner). A restarted daemon on the same --data-dir must
# resume both sessions at their checkpointed positions and run them to
# completion within the original budget; the store must end up holding
# both machines' published traces. Finally, `status` on a directory that
# is not a run directory must fail with exit code 2 and a clear message.
#
# Usage: service_chaos.sh <portatune_cli> <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

SOCK=$PWD/pt.sock
DATA=$PWD/service_data

call() { "$CLI" call --socket "$SOCK" --request "$1"; }
# For requests whose reply is *expected* to be an error: the client exits
# 1 on an {"ok":false} reply, which is the success case here.
call_expecting_error() { "$CLI" call --socket "$SOCK" --request "$1" || true; }

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "service socket never appeared" >&2
  return 1
}

# --- first daemon: open two sessions, advance them partway ------------
"$CLI" serve --socket "$SOCK" --data-dir "$DATA" >serve1.log 2>&1 &
daemon=$!
wait_for_socket

call '{"op":"open","id":"alpha","problem":"LU","machine":"Westmere","max_evals":40,"seed":7}' | tee open-alpha.json
call '{"op":"open","id":"beta","problem":"LU","machine":"Sandybridge","max_evals":40,"seed":8}' | tee open-beta.json
grep -q '"ok":true' open-alpha.json
grep -q '"ok":true' open-beta.json

call '{"op":"step","id":"alpha","n":15}' | tee step-alpha.json
call '{"op":"step","id":"beta","n":10}' | tee step-beta.json
grep -q '"ok":true' step-alpha.json
grep -q '"ok":true' step-beta.json

# Errors come back as replies on a connection that stays usable.
call_expecting_error '{"op":"step","id":"no-such-session"}' \
  | grep -q '"ok":false'

# --- SIGTERM mid-session: checkpoint everything, exit 3 ---------------
kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 3  # "interrupted but resumable"
test ! -e "$SOCK"  # the socket file is cleaned up
for id in alpha beta; do
  test -s "$DATA/sessions/$id/meta.json"
  test -s "$DATA/sessions/$id/checkpoint.csv"
done

# --- second daemon: resume both sessions, run them out ----------------
"$CLI" serve --socket "$SOCK" --data-dir "$DATA" >serve2.log 2>&1 &
daemon=$!
wait_for_socket

for id in alpha beta; do
  call "{\"op\":\"resume\",\"id\":\"$id\"}" | tee "resume-$id.json"
  grep -q '"ok":true' "resume-$id.json"
done

# The resumed sessions continue from their checkpoints: the very first
# step already reports more total evals than it evaluated just now.
call '{"op":"step","id":"alpha","n":5}' | tee step2-alpha.json
grep -q '"ok":true' step2-alpha.json
python3 - <<'EOF'
import json
r = json.load(open("step2-alpha.json"))
assert r["ok"], r
assert r["evals"] > r["evaluated"], (
    "resume did not restore the checkpointed trace: %r" % r)
EOF

for id in alpha beta; do
  while :; do
    call "{\"op\":\"step\",\"id\":\"$id\",\"n\":10}" >step-loop.json
    grep -q '"ok":true' step-loop.json
    grep -q '"exhausted":true' step-loop.json && break
  done
  call "{\"op\":\"close\",\"id\":\"$id\"}" | grep -q '"ok":true'
done

# Both sessions completed within their original 40-eval budget and
# published their traces to the persistent store.
call '{"op":"status"}' | tee status.json
python3 - <<'EOF'
import json
s = json.load(open("status.json"))
assert s["ok"], s
sessions = {x["id"]: x for x in s["sessions"]}
for sid in ("alpha", "beta"):
    assert sessions[sid]["closed"], sessions[sid]
    assert sessions[sid]["evals"] == 40, sessions[sid]
assert s["store"]["entries"] == 2, s["store"]
EOF
test -s "$DATA/store/index.csv"

# Graceful protocol-level shutdown: exit 0 this time.
call '{"op":"shutdown"}' | grep -q '"ok":true'
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 0

# --- status on a non-run directory fails clearly with exit 2 ----------
mkdir -p not-a-run
rc=0
"$CLI" status --run-dir not-a-run >status-err.log 2>&1 || rc=$?
test "$rc" -eq 2
grep -q "not a run directory" status-err.log

echo "service chaos resumability OK"
