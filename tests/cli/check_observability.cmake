# ctest script: run portatune_cli with every observability flag and
# validate the emitted files. Structural JSON validation lives in the
# gtest suites (obs/, integration/); this checks the CLI wiring end to
# end — the flags are accepted, the files appear, and they carry the
# expected shape and content.
#
# Inputs: -DCLI=<portatune_cli path> -DWORK_DIR=<scratch directory>

file(MAKE_DIRECTORY "${WORK_DIR}")
set(EVENTS "${WORK_DIR}/events.jsonl")
set(METRICS "${WORK_DIR}/metrics.json")
set(TRACE "${WORK_DIR}/trace.json")

execute_process(
  COMMAND "${CLI}" transfer
    --problem LU --source Westmere --target Sandybridge
    --nmax 25 --log-level debug
    --log-json "${EVENTS}"
    --metrics-out "${METRICS}"
    --chrome-trace "${TRACE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "portatune_cli exited with ${rc}:\n${out}\n${err}")
endif()

foreach(f "${EVENTS}" "${METRICS}" "${TRACE}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected output file missing: ${f}")
  endif()
endforeach()

# --- event log: non-empty, one JSON object per line, required keys ------
file(STRINGS "${EVENTS}" event_lines ENCODING UTF-8)
list(LENGTH event_lines n_events)
if(n_events LESS 10)
  message(FATAL_ERROR "event stream suspiciously small: ${n_events} lines")
endif()
foreach(line IN LISTS event_lines)
  if(NOT line MATCHES "^\\{.*\\}$")
    message(FATAL_ERROR "event line is not a JSON object: ${line}")
  endif()
endforeach()
list(GET event_lines 0 first)
foreach(key "\"ts\":" "\"wall_us\":" "\"level\":" "\"name\":" "\"cat\":")
  if(NOT first MATCHES "${key}")
    message(FATAL_ERROR "event schema missing ${key}: ${first}")
  endif()
endforeach()

# --- metrics snapshot: one JSON object with all three sections ----------
file(READ "${METRICS}" metrics_doc)
foreach(section "\"counters\"" "\"gauges\"" "\"histograms\""
        "eval.target.calls" "forest.fit_seconds")
  if(NOT metrics_doc MATCHES "${section}")
    message(FATAL_ERROR "metrics snapshot missing ${section}")
  endif()
endforeach()

# --- Chrome trace: Trace Event Format with phase spans and eval events --
file(READ "${TRACE}" trace_doc)
if(NOT trace_doc MATCHES "^\\{\"traceEvents\":\\[")
  message(FATAL_ERROR "not a Trace Event document: ${TRACE}")
endif()
foreach(needle "\"ph\":\"X\"" "phase.fit" "phase.pruned" "phase.biased"
        "\"kind\":")
  if(NOT trace_doc MATCHES "${needle}")
    message(FATAL_ERROR "Chrome trace missing ${needle}")
  endif()
endforeach()

message(STATUS "cli observability OK: ${n_events} events")
