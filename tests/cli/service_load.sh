#!/usr/bin/env bash
# Service observability under multi-client load.
#
# Start the daemon with the full observability surface armed (JSONL
# events at debug, Chrome trace, metrics snapshot, telemetry trio under
# --data-dir), hammer it with the multi-process loadgen including
# injected garbage lines, and then prove the whole pipeline end to end:
#   * loadgen PASSes — client-side op totals match the server.op.*
#     counters exactly, garbage == server.op.invalid;
#   * `status --socket` renders live per-op rates and percentiles;
#   * server_status.json is a valid v1 heartbeat whose op table agrees
#     with the load that was applied;
#   * after a protocol shutdown (exit 0) the daemon leaves events.jsonl /
#     trace.json / metrics.json plus the time-series and flight-recorder
#     files, the event log has zero orphan spans, and the Chrome trace
#     contains closed request spans with the wire -> session -> eval
#     parent chain;
#   * a SIGTERMed daemon (exit 3) emits the same artifacts.
#
# Usage: service_load.sh <portatune_cli> <portatune_loadgen>
#                        <portatune_report> <work-dir>
set -euo pipefail

CLI=$(realpath "$1")
LOADGEN=$(realpath "$2")
REPORT=$(realpath "$3")
WORK=$4
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

SOCK=$PWD/pt.sock
DATA=$PWD/service_data

call() { "$CLI" call --socket "$SOCK" --request "$1"; }

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "service socket never appeared" >&2
  return 1
}

# --- daemon with every observability output armed ---------------------
"$CLI" serve --socket "$SOCK" --data-dir "$DATA" \
  --log-json events.jsonl --log-level debug \
  --chrome-trace trace.json --metrics-out metrics.json \
  --telemetry-every 0.2 --quiet >serve.log 2>&1 &
daemon=$!
wait_for_socket

# --- multi-client load with fault injection ---------------------------
"$LOADGEN" --socket "$SOCK" --clients 3 --sessions 2 --steps 4 \
  --garbage 3 --max-evals 30 --out loadgen_out | tee loadgen.log
grep -q '^PASS' loadgen.log
grep -q 'p99' loadgen.log  # tail latency was reported

# --- live status over the socket --------------------------------------
"$CLI" status --socket "$SOCK" --interval 0.2 | tee status.log
grep -q 'tuning service on' status.log
grep -q 'p99 ms' status.log
grep -qE '^\s+step\s' status.log  # the load shows up as per-op rows

# --- heartbeat file ----------------------------------------------------
test -s "$DATA/server_status.json"
python3 - <<'EOF'
import json
s = json.load(open("service_data/server_status.json"))
assert s["schema"] == "portatune_server_status", s
assert s["version"] == 1, s
assert s["pid"] > 0, s
# 3 clients x 2 sessions x 4 steps of load really registered.
assert s["ops"]["step"]["count"] == 24, s["ops"]
assert s["ops"]["invalid"]["count"] == 9, s["ops"]
assert s["ops"]["step"]["p99_seconds"] >= s["ops"]["step"]["p50_seconds"], s
assert s["requests_total"] > 0, s
EOF

# --- protocol shutdown: exit 0, artifacts written ---------------------
call '{"op":"shutdown"}' | grep -q '"ok":true'
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 0
for f in events.jsonl trace.json metrics.json \
         "$DATA/metrics_timeseries.jsonl" "$DATA/flight_recorder.jsonl" \
         "$DATA/server_status.json"; do
  test -s "$f"
done

# The event log's span tree is complete: no orphans.
"$REPORT" --log events.jsonl | tee report.log
grep -q 'orphans 0' report.log

# The Chrome trace carries closed request spans whose parent chain
# crosses the wire -> session -> eval boundary.
python3 - <<'EOF'
import json
evs = [json.loads(l) for l in open("events.jsonl")]
by_span = {e["span"]: e for e in evs if e.get("span", 0)}
# Closed request spans exist for the load's ops.
steps = [e for e in evs if e["name"] == "server.op.step"]
assert len(steps) == 24, len(steps)
assert all(e.get("dur_s", -1) >= 0 for e in steps), "request spans must close"
assert all(by_span[e["parent"]]["name"] == "server.request"
           for e in steps), "op spans must nest under the wire span"
# Every eval chains up to a request span.
evals = [e for e in evs if e["name"] == "eval"]
assert evals, "debug-level eval events expected"
for e in evals:
    names = []
    p = e.get("parent", 0)
    while p and p in by_span:
        names.append(by_span[p]["name"])
        p = by_span[p].get("parent", 0)
    assert "server.request" in names, "eval not rooted in a request: %r" % e
# And the trace file itself is sound.
trace = json.load(open("trace.json"))
events = trace["traceEvents"] if isinstance(trace, dict) else trace
assert any(ev.get("name") == "server.op.step" and ev.get("ph") == "X"
           for ev in events), "no complete request slices in chrome trace"
EOF

# Metrics snapshot has the per-op surface.
python3 - <<'EOF'
import json
m = json.load(open("metrics.json"))
assert m["counters"]["server.op.step.count"] == 24, m["counters"]
assert m["counters"]["server.op.invalid.count"] == 9, m["counters"]
assert m["counters"]["server.clients_accepted"] >= 3, m["counters"]
assert "server.op.step.latency" in m["histograms"], m["histograms"].keys()
assert "server.poll.wait_seconds" in m["histograms"], m["histograms"].keys()
EOF

# --- SIGTERM path: exit 3, same artifacts ------------------------------
rm -f events.jsonl trace.json metrics.json
"$CLI" serve --socket "$SOCK" --data-dir "$DATA" \
  --log-json events.jsonl --chrome-trace trace.json \
  --metrics-out metrics.json --telemetry-every 0.2 --quiet \
  >serve2.log 2>&1 &
daemon=$!
wait_for_socket
call '{"op":"status"}' | grep -q '"ok":true'
kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
test "$rc" -eq 3
for f in events.jsonl trace.json metrics.json; do
  test -s "$f"
done
python3 -c 'import json; json.load(open("trace.json"))'

# A dead socket is a clear exit-2 diagnosis, not a hang.
rc=0
"$CLI" status --socket "$SOCK" >status-dead.log 2>&1 || rc=$?
test "$rc" -eq 2
grep -q 'unreachable' status-dead.log

echo "service load observability OK"
