#include "tuner/resilience.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

/// Fails the first `fail_first` attempts on every configuration with a
/// transient failure, then succeeds deterministically.
class FlakyEvaluator final : public Evaluator {
 public:
  explicit FlakyEvaluator(std::size_t fail_first)
      : space_(testing::grid_space(2, 6)), fail_first_(fail_first) {}

  const ParamSpace& space() const override { return space_; }

  EvalResult evaluate(const ParamConfig& config) override {
    ++calls_;
    const auto attempt = seen_[space_.config_hash(config)]++;
    if (attempt < fail_first_)
      return EvalResult::transient_failure("flaky attempt " +
                                           std::to_string(attempt));
    return {1.0 + config[0], true, {}};
  }

  std::string problem_name() const override { return "flaky"; }
  std::string machine_name() const override { return "F"; }

  std::size_t calls() const { return calls_; }

 private:
  ParamSpace space_;
  std::size_t fail_first_;
  std::size_t calls_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> seen_;
};

/// Sleeps for a fixed wall-clock duration on every evaluation.
class SleepyEvaluator final : public Evaluator {
 public:
  explicit SleepyEvaluator(double sleep_seconds)
      : space_(testing::grid_space(2, 6)), sleep_seconds_(sleep_seconds) {}

  const ParamSpace& space() const override { return space_; }

  EvalResult evaluate(const ParamConfig& config) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(sleep_seconds_));
    return {1.0 + config[0], true, {}};
  }

  std::string problem_name() const override { return "sleepy"; }
  std::string machine_name() const override { return "S"; }

 private:
  ParamSpace space_;
  double sleep_seconds_;
};

TEST(FailureBudget, ConsecutiveCounterResetsOnSuccess) {
  FailureBudgetTracker t({.max_consecutive = 3, .max_total = 100});
  const auto fail = EvalResult::failure("x");
  const EvalResult ok{1.0, true, {}};
  EXPECT_FALSE(t.note(fail));
  EXPECT_FALSE(t.note(fail));
  EXPECT_FALSE(t.note(ok));  // resets the streak
  EXPECT_FALSE(t.note(fail));
  EXPECT_FALSE(t.note(fail));
  EXPECT_TRUE(t.note(fail));  // third in a row
  EXPECT_TRUE(t.exhausted());
  EXPECT_NE(t.reason().find("consecutive"), std::string::npos);
}

TEST(FailureBudget, TotalCapTripsAcrossStreaks) {
  FailureBudgetTracker t({.max_consecutive = 100, .max_total = 4});
  const auto fail = EvalResult::failure("x");
  const EvalResult ok{1.0, true, {}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(t.note(fail));
    EXPECT_FALSE(t.note(ok));
  }
  EXPECT_TRUE(t.note(fail));
  EXPECT_NE(t.reason().find("total"), std::string::npos);
}

TEST(ResilientEvaluator, RetriesTransientFailuresUntilSuccess) {
  FlakyEvaluator flaky(2);  // first two attempts fail
  RetryPolicy policy;
  policy.max_attempts = 3;
  ResilientEvaluator resilient(flaky, policy);

  const auto r = resilient.evaluate({0, 0});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.failure_kind, FailureKind::None);
  EXPECT_GT(r.overhead_seconds, 0.0);  // backoff was charged
  EXPECT_EQ(flaky.calls(), 3u);
  EXPECT_EQ(resilient.stats().retries, 2u);
  EXPECT_EQ(resilient.stats().transient_failures, 2u);
  EXPECT_EQ(resilient.stats().successes, 1u);
  EXPECT_FALSE(resilient.is_quarantined({0, 0}));
}

TEST(ResilientEvaluator, BackoffGrowsExponentiallyAndIsCapped) {
  FlakyEvaluator flaky(3);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max = 0.75;
  ResilientEvaluator resilient(flaky, policy);

  const auto r = resilient.evaluate({1, 1});
  EXPECT_TRUE(r.ok);
  // Charged 0.5, then min(1.0, .75), then min(2.0, .75).
  EXPECT_DOUBLE_EQ(r.overhead_seconds, 0.5 + 0.75 + 0.75);
  EXPECT_DOUBLE_EQ(resilient.stats().backoff_seconds, 2.0);
}

TEST(ResilientEvaluator, DeterministicFailureIsNotRetried) {
  QuadraticEvaluator eval("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  eval.fail_when = [](const ParamConfig& c) { return c[0] == 0; };
  ResilientEvaluator resilient(eval);

  const ParamConfig bad{0, 1, 2, 3};
  const auto r = resilient.evaluate(bad);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, FailureKind::Deterministic);
  EXPECT_EQ(r.attempts, 1u);  // no retry
  EXPECT_EQ(eval.calls(), 1u);
  EXPECT_TRUE(resilient.is_quarantined(bad));

  // Second call is rejected by the quarantine without touching the backend.
  const auto r2 = resilient.evaluate(bad);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.attempts, 0u);
  EXPECT_EQ(eval.calls(), 1u);
  EXPECT_EQ(resilient.stats().quarantine_hits, 1u);
}

TEST(ResilientEvaluator, ExhaustedTransientRetriesQuarantine) {
  FlakyEvaluator flaky(100);  // never recovers
  RetryPolicy policy;
  policy.max_attempts = 2;
  ResilientEvaluator resilient(flaky, policy);

  const auto r = resilient.evaluate({2, 3});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, FailureKind::Transient);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_NE(r.error.find("after 2 attempts"), std::string::npos);
  EXPECT_TRUE(resilient.is_quarantined({2, 3}));
  EXPECT_EQ(flaky.calls(), 2u);
}

TEST(ResilientEvaluator, WatchdogTimesOutSlowEvaluations) {
  SleepyEvaluator sleepy(0.25);
  RetryPolicy policy;
  policy.timeout_seconds = 0.02;
  ResilientEvaluator resilient(sleepy, policy);

  const auto start = std::chrono::steady_clock::now();
  const auto r = resilient.evaluate({0, 1});
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, FailureKind::Timeout);
  EXPECT_DOUBLE_EQ(r.overhead_seconds, policy.timeout_seconds);
  EXPECT_LT(waited, 0.2);  // returned well before the sleep finished
  EXPECT_TRUE(resilient.is_quarantined({0, 1}));
  EXPECT_EQ(resilient.stats().timeouts, 1u);
}

TEST(ResilientEvaluator, QuarantineHashesRoundTrip) {
  QuadraticEvaluator eval("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  eval.fail_when = [](const ParamConfig& c) { return c[0] < 2; };
  ResilientEvaluator resilient(eval);
  resilient.evaluate({0, 0, 0, 0});
  resilient.evaluate({1, 0, 0, 0});
  const auto hashes = resilient.quarantined_hashes();
  EXPECT_EQ(hashes.size(), 2u);

  QuadraticEvaluator eval2("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  ResilientEvaluator fresh(eval2);
  fresh.restore_quarantine(hashes);
  EXPECT_TRUE(fresh.is_quarantined({0, 0, 0, 0}));
  EXPECT_TRUE(fresh.is_quarantined({1, 0, 0, 0}));
  EXPECT_FALSE(fresh.is_quarantined({5, 0, 0, 0}));
}

TEST(FailureAwareSearch, DeadEvaluatorStopsWithDiagnostic) {
  QuadraticEvaluator eval("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  eval.fail_when = [](const ParamConfig&) { return true; };
  RandomSearchOptions opt;
  opt.max_evals = 500;
  opt.failure_budget = {.max_consecutive = 10, .max_total = 100};
  const auto trace = random_search(eval, opt);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(eval.calls(), 10u);  // stopped at the consecutive cap
  EXPECT_NE(trace.stop_reason().find("failure budget"), std::string::npos);
  EXPECT_EQ(trace.failure_stats().failures, 10u);
}

TEST(FailureAwareSearch, TraceAccountsAttemptsAndOverhead) {
  FlakyEvaluator flaky(1);  // every config needs exactly one retry
  RetryPolicy policy;
  policy.max_attempts = 3;
  ResilientEvaluator resilient(flaky, policy);
  RandomSearchOptions opt;
  opt.max_evals = 8;
  const auto trace = random_search(resilient, opt);
  ASSERT_EQ(trace.size(), 8u);
  const auto& fs = trace.failure_stats();
  EXPECT_EQ(fs.attempts, 16u);  // 2 attempts per evaluation
  EXPECT_EQ(fs.failures, 0u);   // the retries recovered every one
  EXPECT_GT(fs.overhead_seconds, 0.0);
  // The backoff overhead advanced the search clock past the sum of the
  // measured run times.
  double sum = 0.0;
  for (const auto& e : trace.entries()) sum += e.seconds;
  EXPECT_GT(trace.total_time(), sum);
}

TEST(Checkpoint, ResumedSearchMatchesUninterruptedRun) {
  const auto run = [](const SearchCheckpoint* resume, SearchCheckpoint* mid) {
    QuadraticEvaluator eval("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
    eval.fail_when = [](const ParamConfig& c) { return c[1] == 3; };
    ResilientEvaluator resilient(eval);
    RandomSearchOptions opt;
    opt.max_evals = 50;
    opt.seed = 99;
    opt.resume = resume;
    if (mid != nullptr) {
      opt.checkpoint_every = 1;
      opt.on_checkpoint = [mid](const SearchCheckpoint& snapshot) {
        if (snapshot.trace.size() == 30 && mid->trace.empty())
          *mid = snapshot;
      };
    }
    return random_search(resilient, opt);
  };

  SearchCheckpoint mid;
  const auto full = run(nullptr, &mid);
  ASSERT_EQ(full.size(), 50u);
  ASSERT_EQ(mid.trace.size(), 30u);
  EXPECT_FALSE(mid.quarantine.empty());  // some c[1]==3 configs were drawn

  // Round-trip the snapshot through the CSV serialization.
  const auto space = testing::grid_space(4);
  std::stringstream ss;
  save_checkpoint_csv(ss, mid, space);
  const auto loaded = load_checkpoint_csv(ss, space);
  EXPECT_EQ(loaded.draws, mid.draws);
  EXPECT_EQ(loaded.quarantine, mid.quarantine);
  ASSERT_EQ(loaded.trace.size(), mid.trace.size());
  EXPECT_EQ(loaded.trace.total_time(), mid.trace.total_time());
  EXPECT_EQ(loaded.trace.failure_stats().attempts,
            mid.trace.failure_stats().attempts);

  // Resuming from the loaded snapshot reproduces the uninterrupted run
  // exactly: same configurations, run times, clock, and failure stats.
  const auto resumed = run(&loaded, nullptr);
  ASSERT_EQ(resumed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(resumed.entry(i).config, full.entry(i).config) << i;
    EXPECT_EQ(resumed.entry(i).seconds, full.entry(i).seconds) << i;
    EXPECT_EQ(resumed.entry(i).elapsed, full.entry(i).elapsed) << i;
    EXPECT_EQ(resumed.entry(i).draw_index, full.entry(i).draw_index) << i;
  }
  EXPECT_EQ(resumed.total_time(), full.total_time());
  EXPECT_EQ(resumed.failure_stats().failures,
            full.failure_stats().failures);
  EXPECT_EQ(resumed.best_seconds(), full.best_seconds());
}

TEST(Checkpoint, ResumeRestoresTheFailureBudget) {
  // The straight run aborts on its total-failure cap; a run resumed from
  // a mid-flight checkpoint must abort at the identical point, not get a
  // fresh budget.
  const FailureBudget budget{.max_consecutive = 1000, .max_total = 25};
  const auto run = [&](const SearchCheckpoint* resume,
                       SearchCheckpoint* mid) {
    QuadraticEvaluator eval("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
    eval.fail_when = [](const ParamConfig& c) { return c[0] % 3 == 0; };
    RandomSearchOptions opt;
    opt.max_evals = 500;
    opt.seed = 5;
    opt.failure_budget = budget;
    opt.resume = resume;
    if (mid != nullptr) {
      opt.checkpoint_every = 1;
      opt.on_checkpoint = [mid](const SearchCheckpoint& snapshot) {
        if (snapshot.trace.size() == 20 && mid->trace.empty())
          *mid = snapshot;
      };
    }
    return random_search(eval, opt);
  };

  SearchCheckpoint mid;
  const auto full = run(nullptr, &mid);
  ASSERT_EQ(full.failure_stats().failures, 25u);
  ASSERT_FALSE(full.stop_reason().empty());
  ASSERT_EQ(mid.trace.size(), 20u);
  ASSERT_GT(mid.trace.failure_stats().failures, 0u);

  const auto resumed = run(&mid, nullptr);
  EXPECT_EQ(resumed.size(), full.size());
  EXPECT_EQ(resumed.failure_stats().failures, 25u);
  EXPECT_EQ(resumed.stop_reason(), full.stop_reason());
  EXPECT_EQ(resumed.entries().back().config, full.entries().back().config);

  // Resuming the aborted run's own final state evaluates nothing more.
  SearchCheckpoint done;
  done.trace = full;
  done.draws = 10000;  // irrelevant: the budget gate trips first
  const auto stuck = run(&done, nullptr);
  EXPECT_EQ(stuck.size(), full.size());
}

TEST(Checkpoint, LoaderRejectsCorruptInput) {
  const auto space = testing::grid_space(4);
  std::stringstream not_a_checkpoint("# portatune-trace v1,RS,q,A\n");
  EXPECT_THROW(load_checkpoint_csv(not_a_checkpoint, space), Error);

  std::stringstream wrong_space(
      "# portatune-checkpoint v1,RS,q,A\n"
      "# draws,5\n"
      "bogus,seconds,elapsed,draw_index\n");
  EXPECT_THROW(load_checkpoint_csv(wrong_space, space), Error);
}

}  // namespace
}  // namespace portatune::tuner
