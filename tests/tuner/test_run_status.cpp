#include "tuner/run_status.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "tuner/run_journal.hpp"

namespace portatune::tuner {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(RunStatusBoard, AccountsPhasesEvalsAndBest) {
  RunStatusBoard board({"a", "b"}, 240);
  board.set_state(0, CellState::Running);
  board.phase_started(0, "source_rs");
  board.rs_progress(0, 15, 0.9);
  auto snap = board.snapshot();
  EXPECT_EQ(snap.evals_done, 15u);  // live partial folded in
  EXPECT_EQ(snap.evals_total, 480u);
  EXPECT_EQ(snap.running, 1u);
  EXPECT_EQ(snap.pending, 1u);
  EXPECT_DOUBLE_EQ(snap.best_seconds, 0.9);
  EXPECT_EQ(snap.cells[0].phase, "source_rs");

  board.phase_finished(0, 40, 0.7);  // phase completes: partial zeroed
  snap = board.snapshot();
  EXPECT_EQ(snap.evals_done, 40u);
  EXPECT_EQ(snap.cells[0].phases_done, 1u);
  EXPECT_DOUBLE_EQ(snap.best_seconds, 0.7);

  board.phase_started(0, "target_rs");
  snap = board.snapshot();
  EXPECT_EQ(snap.cells[0].phase, "target_rs");
  EXPECT_EQ(snap.evals_done, 40u);

  board.phase_finished(0, 40, 0.8);  // a worse phase keeps the best
  board.set_state(0, CellState::Done);
  snap = board.snapshot();
  EXPECT_EQ(snap.done, 1u);
  EXPECT_EQ(snap.evals_done, 80u);
  EXPECT_DOUBLE_EQ(snap.best_seconds, 0.7);
}

TEST(RunStatusWriter, WritesAParseableHeartbeat) {
  const std::string dir = fresh_dir("rsw_beat");
  ensure_directory(dir);
  RunStatusBoard board({"MM a->b"}, 240);
  board.set_state(0, CellState::Running);
  board.phase_started(0, "source_rs");
  board.rs_progress(0, 10, 1.25);
  {
    RunStatusWriter writer(board, dir, 60.0);
    writer.write_now();
  }
  const obs::json::Value v =
      obs::json::Value::parse(slurp(RunStatusWriter::status_path(dir)));
  EXPECT_GT(v.at("pid").as_number(), 0.0);
  EXPECT_GT(v.at("heartbeat_wall").as_number(), 0.0);
  EXPECT_GE(v.at("heartbeat_wall").as_number(),
            v.at("started_wall").as_number());
  EXPECT_EQ(v.at("cells").at("total").as_number(), 1.0);
  EXPECT_EQ(v.at("cells").at("running").as_number(), 1.0);
  EXPECT_EQ(v.at("evals").at("done").as_number(), 10.0);
  EXPECT_EQ(v.at("evals").at("total").as_number(), 240.0);
  EXPECT_DOUBLE_EQ(v.at("best_seconds").as_number(), 1.25);
  const auto& cells = v.at("cells_detail").as_array();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].at("label").as_string(), "MM a->b");
  EXPECT_EQ(cells[0].at("state").as_string(), "running");
  EXPECT_EQ(cells[0].at("phase").as_string(), "source_rs");
}

TEST(RunStatusWriter, ConcurrentReadersAlwaysSeeCompleteDocuments) {
  // The heartbeat is an atomic whole-file rewrite; a reader hammering
  // the path mid-rewrite must never observe a torn or half-written
  // document. This is the unit-level half of the `status` command's
  // safe-to-invoke-concurrently guarantee.
  const std::string dir = fresh_dir("rsw_race");
  ensure_directory(dir);
  RunStatusBoard board({"a"}, 240);
  RunStatusWriter writer(board, dir, 60.0);
  const std::string path = RunStatusWriter::status_path(dir);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      std::string text;
      try {
        text = read_file(path);
        const obs::json::Value v = obs::json::Value::parse(text);
        (void)v.at("pid");
        ++reads;
      } catch (const Error&) {
        ++failures;
      }
    }
  });
  for (int i = 0; i < 500; ++i) {
    board.rs_progress(0, static_cast<std::size_t>(i), 1.0);
    writer.write_now();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

TEST(RunJournalPeek, IsReadOnlyAndPreservesRunningRows) {
  const std::string dir = fresh_dir("peek_ro");
  RunJournal journal = RunJournal::create(dir, {"cell a", "cell b"});
  journal.mark_running(0);
  const std::string before = slurp(dir + "/journal.csv");

  const RunJournal::Peek peek = RunJournal::peek(dir);
  ASSERT_EQ(peek.states.size(), 2u);
  // open() would demote the running row to pending (crash recovery);
  // peek must report it exactly as recorded and rewrite nothing.
  EXPECT_EQ(peek.states[0], CellState::Running);
  EXPECT_EQ(peek.states[1], CellState::Pending);
  EXPECT_EQ(peek.labels[0], "cell a");
  EXPECT_EQ(peek.labels[1], "cell b");
  EXPECT_EQ(slurp(dir + "/journal.csv"), before);
}

TEST(RunJournalPeek, SurvivesConcurrentManifestRewrites) {
  const std::string dir = fresh_dir("peek_race");
  RunJournal journal = RunJournal::create(dir, {"a", "b", "c"});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::size_t i = 0;
    while (!stop.load()) {
      journal.mark_running(i % 3);
      journal.mark_pending(i % 3);
      ++i;
    }
  });
  int peeks = 0;
  for (int i = 0; i < 200; ++i) {
    const RunJournal::Peek peek = RunJournal::peek(dir);
    EXPECT_EQ(peek.states.size(), 3u);
    ++peeks;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(peeks, 200);
}

TEST(RenderRunStatus, MissingJournalThrows) {
  const std::string dir = fresh_dir("rrs_nojournal");
  ensure_directory(dir);
  std::ostringstream os;
  EXPECT_THROW({ render_run_status(os, dir); }, Error);
}

TEST(RenderRunStatus, DeadRunReportsStaleHeartbeatAndResumeHint) {
  const std::string dir = fresh_dir("rrs_dead");
  RunJournal journal = RunJournal::create(dir, {"a", "b"});
  journal.mark_running(0);
  {
    // A heartbeat is written... and then the "process" dies.
    RunStatusBoard board({"a", "b"}, 240);
    RunStatusWriter writer(board, dir, 60.0);
  }
  std::ostringstream os;
  // Any heartbeat older than -1s is stale: force the dead branch without
  // sleeping in the test.
  const RunLiveness liveness = render_run_status(os, dir, -1.0);
  EXPECT_EQ(liveness, RunLiveness::Dead);
  EXPECT_NE(os.str().find("DEAD"), std::string::npos);
  EXPECT_NE(os.str().find("--resume"), std::string::npos);
  EXPECT_NE(os.str().find(dir), std::string::npos);
}

TEST(RenderRunStatus, FreshHeartbeatMeansRunning) {
  const std::string dir = fresh_dir("rrs_live");
  RunJournal journal = RunJournal::create(dir, {"a"});
  journal.mark_running(0);
  RunStatusBoard board({"a"}, 240);
  RunStatusWriter writer(board, dir, 60.0);
  writer.write_now();
  std::ostringstream os;
  const RunLiveness liveness = render_run_status(os, dir, 3600.0);
  EXPECT_EQ(liveness, RunLiveness::Running);
  EXPECT_NE(os.str().find("RUNNING"), std::string::npos);
}

TEST(RenderRunStatus, AllCellsDoneMeansCompleteEvenWithoutHeartbeat) {
  const std::string dir = fresh_dir("rrs_done");
  RunJournal journal = RunJournal::create(dir, {"a"});
  // Forge a done row without artifacts: status is a journal-level view.
  journal.mark_done(0, 0);
  std::ostringstream os;
  const RunLiveness liveness = render_run_status(os, dir, -1.0);
  EXPECT_EQ(liveness, RunLiveness::Complete);
  EXPECT_NE(os.str().find("COMPLETE"), std::string::npos);
}

TEST(RenderRunStatus, NoHeartbeatWithPendingCellsIsDead) {
  const std::string dir = fresh_dir("rrs_nobeat");
  RunJournal journal = RunJournal::create(dir, {"a"});
  std::ostringstream os;
  const RunLiveness liveness = render_run_status(os, dir, 10.0);
  EXPECT_EQ(liveness, RunLiveness::Dead);
  EXPECT_NE(os.str().find("none found"), std::string::npos);
}

TEST(JournaledRun, StatusTelemetryWritesHeartbeatWhenEnabled) {
  // The integration seam: run_transfer_experiments_journaled with
  // status_every_seconds > 0 must leave a final status.json describing
  // the finished run. (Full-grid coverage lives in test_run_journal.cpp;
  // here an empty jobs list exercises only the plumbing contract that
  // zero jobs -> no board, no file.)
  const std::string dir = fresh_dir("jr_status");
  JournaledRunOptions opt;
  opt.run_dir = dir;
  opt.status_every_seconds = 0.5;
  const auto results = run_transfer_experiments_journaled({}, opt);
  EXPECT_TRUE(results.empty());
  EXPECT_FALSE(file_exists(RunStatusWriter::status_path(dir)));
}

}  // namespace
}  // namespace portatune::tuner
