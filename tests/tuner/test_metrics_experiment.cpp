#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/experiment.hpp"
#include "tuner/metrics.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

TEST(Speedups, PaperWorkedExample) {
  // "Suppose that RS takes 100 s to find its best configuration (run time
  //  5 s) and RS_b takes 80 s to find its best (3 s), but requires only
  //  50 s to find a configuration with a run time of 5 s. Then the
  //  performance and search time speedups are 1.6X and 2X."
  SearchTrace rs;
  rs.record({0}, 20.0, 0);   // elapsed 20
  rs.record({1}, 75.0, 1);   // elapsed 95
  rs.record({2}, 5.0, 2);    // elapsed 100: the best, found at 100 s
  SearchTrace rsb;
  rsb.record({3}, 45.0, 0);  // elapsed 45
  rsb.record({4}, 5.0, 1);   // elapsed 50: first config <= 5 s
  rsb.record({5}, 27.0, 2);  // elapsed 77
  rsb.record({6}, 3.0, 3);   // elapsed 80: its best
  const auto s = compare_to_rs(rs, rsb);
  EXPECT_NEAR(s.performance, 5.0 / 3.0, 1e-12);  // "1.6X"
  EXPECT_NEAR(s.search, 2.0, 1e-12);
  EXPECT_TRUE(s.successful());
}

TEST(Speedups, VariantNeverReachingGetsZero) {
  SearchTrace rs;
  rs.record({0}, 1.0, 0);
  SearchTrace bad;
  bad.record({1}, 9.0, 0);
  const auto s = compare_to_rs(rs, bad);
  EXPECT_DOUBLE_EQ(s.search, 0.0);
  EXPECT_NEAR(s.performance, 1.0 / 9.0, 1e-12);
  EXPECT_FALSE(s.successful());
}

TEST(Speedups, EmptyVariantIsTotalFailure) {
  SearchTrace rs;
  rs.record({0}, 1.0, 0);
  const auto s = compare_to_rs(rs, SearchTrace{});
  EXPECT_DOUBLE_EQ(s.performance, 0.0);
  EXPECT_DOUBLE_EQ(s.search, 0.0);
}

TEST(Speedups, EmptyReferenceThrows) {
  SearchTrace variant;
  variant.record({0}, 1.0, 0);
  EXPECT_THROW(compare_to_rs(SearchTrace{}, variant), Error);
}

TEST(Speedups, SuccessBoundary) {
  Speedups s;
  s.performance = 1.0;
  s.search = 1.0;
  EXPECT_FALSE(s.successful());  // search must be strictly > 1
  s.search = 1.01;
  EXPECT_TRUE(s.successful());
  s.performance = 0.99;
  EXPECT_FALSE(s.successful());
}

TEST(Experiment, MismatchedSpacesRejected) {
  QuadraticEvaluator a("A", {1, 2}, {1, 1});
  QuadraticEvaluator b("B", {1, 2, 3}, {1, 1, 1});
  ExperimentSettings settings;
  EXPECT_THROW(run_transfer_experiment(a, b, settings), Error);
}

class TransferExperimentFixture : public ::testing::Test {
 protected:
  TransferExperimentFixture()
      : a_("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25}),
        b_("B", {7, 2, 5, 1}, {1.1, 0.6, 1.9, 0.2}, 2.0) {
    settings_.nmax = 60;
    settings_.pool_size = 1500;
    settings_.seed = 2024;
    settings_.forest.num_trees = 24;
    result_ = run_transfer_experiment(a_, b_, settings_);
  }

  QuadraticEvaluator a_, b_;
  ExperimentSettings settings_;
  TransferExperimentResult result_;
};

TEST_F(TransferExperimentFixture, CommonRandomNumbersHold) {
  // The target RS replays exactly the source RS configurations.
  ASSERT_EQ(result_.source_rs.size(), result_.target_rs.size());
  for (std::size_t i = 0; i < result_.source_rs.size(); ++i)
    EXPECT_EQ(result_.source_rs.entry(i).config,
              result_.target_rs.entry(i).config);
}

TEST_F(TransferExperimentFixture, AllTracesPopulated) {
  EXPECT_EQ(result_.source_rs.size(), 60u);
  EXPECT_EQ(result_.biased.size(), 60u);
  EXPECT_GT(result_.pruned.size(), 0u);
  EXPECT_GT(result_.pruned_mf.size(), 0u);
  EXPECT_EQ(result_.biased_mf.size(), 60u);
}

TEST_F(TransferExperimentFixture, CorrelatedMachinesCorrelate) {
  // Same optimum, similar weights: near-perfect rank correlation.
  EXPECT_GT(result_.pearson, 0.9);
  EXPECT_GT(result_.spearman, 0.9);
  EXPECT_GT(result_.top_overlap, 0.5);
}

TEST_F(TransferExperimentFixture, BiasingSucceedsOnCorrelatedPair) {
  EXPECT_GE(result_.biased_speedup.performance, 1.0);
  EXPECT_GT(result_.biased_speedup.search, 1.0);
}

TEST_F(TransferExperimentFixture, ModelFreeBiasingCannotBeatRsBest) {
  // RS_bf revisits exactly the RS configurations, so its best run time on
  // the target equals RS's best -> performance speedup is exactly 1.
  EXPECT_NEAR(result_.biased_mf_speedup.performance, 1.0, 1e-12);
}

TEST(Experiment, AnticorrelatedMachinesDefeatTransfer) {
  // Machine B's optimum sits at the opposite corner: the surrogate sends
  // the search to the wrong region.
  QuadraticEvaluator a("A", {9, 9, 9, 9}, {1, 1, 1, 1});
  QuadraticEvaluator b("B", {0, 0, 0, 0}, {1, 1, 1, 1});
  ExperimentSettings settings;
  settings.nmax = 60;
  settings.pool_size = 1500;
  settings.forest.num_trees = 24;
  const auto r = run_transfer_experiment(a, b, settings);
  EXPECT_LT(r.spearman, -0.5);
  EXPECT_LT(r.biased_speedup.performance, 1.0);
}

TEST(Experiment, FailuresDoNotBreakTheProtocol) {
  QuadraticEvaluator a("A", {5, 5, 5, 5}, {1, 1, 1, 1});
  QuadraticEvaluator b("B", {5, 5, 5, 5}, {1, 1, 1, 1});
  a.fail_when = [](const ParamConfig& c) { return c[0] == 3; };
  b.fail_when = [](const ParamConfig& c) { return c[0] == 3; };
  ExperimentSettings settings;
  settings.nmax = 40;
  settings.pool_size = 800;
  settings.forest.num_trees = 16;
  const auto r = run_transfer_experiment(a, b, settings);
  EXPECT_EQ(r.source_rs.size(), 40u);
  for (const auto& e : r.source_rs.entries()) EXPECT_NE(e.config[0], 3);
  EXPECT_GT(r.pearson, 0.9);
}

}  // namespace
}  // namespace portatune::tuner
