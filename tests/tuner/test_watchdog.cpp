#include "tuner/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/cancellation.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/faults.hpp"
#include "tuner/parallel.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

double elapsed_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(EvalWatchdog, DisarmedTicketNeverFires) {
  EvalWatchdog& dog = EvalWatchdog::global();
  const auto before = dog.hangs_detected();
  CancellationSource source;
  {
    EvalWatchdog::Ticket ticket = dog.watch(source, 0.01, "disarm-test");
    ticket.disarm();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(dog.hangs_detected(), before);
  EXPECT_FALSE(source.cancel_requested());
}

TEST(EvalWatchdog, MonitorCancelsAndReportsAtDeadline) {
  EvalWatchdog& dog = EvalWatchdog::global();
  const auto before = dog.hangs_detected();
  CancellationSource source;
  EvalWatchdog::Ticket ticket = dog.watch(source, 0.02, "deadline-test");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(source.token().wait_for(30.0));  // woken by the monitor
  EXPECT_LT(elapsed_since(start), 5.0);
  EXPECT_EQ(dog.hangs_detected(), before + 1);
  // The deadline already fired: expire() must not double-report.
  ticket.expire();
  EXPECT_EQ(dog.hangs_detected(), before + 1);
}

TEST(EvalWatchdog, ExpireReportsExactlyOnce) {
  EvalWatchdog& dog = EvalWatchdog::global();
  const auto before = dog.hangs_detected();
  CancellationSource source;
  EvalWatchdog::Ticket ticket = dog.watch(source, 60.0, "expire-test");
  ticket.expire();  // caller-side deadline hit first
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_EQ(dog.hangs_detected(), before + 1);
}

TEST(EvalWatchdog, ResilientDeadlineRescuesAHungEvaluation) {
  // A seeded hang would stall 30 s; the resilient layer's 50 ms deadline
  // (registered with the watchdog) wakes it and classifies Timeout.
  QuadraticEvaluator backend("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  FaultProfile profile;
  profile.hang_rate = 1.0;
  profile.hang_stall_seconds = 30.0;
  FaultInjectingEvaluator faulty(backend, profile);
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.timeout_seconds = 0.05;
  ResilientEvaluator resilient(faulty, policy);

  EvalWatchdog& dog = EvalWatchdog::global();
  const auto before = dog.hangs_detected();
  const auto start = std::chrono::steady_clock::now();
  const EvalResult r = resilient.evaluate({0, 0, 0, 0});
  EXPECT_LT(elapsed_since(start), 10.0);  // nowhere near the 30 s stall
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, FailureKind::Timeout);
  EXPECT_GE(dog.hangs_detected(), before + 1);
}

TEST(EvalWatchdog, SerialAndParallelTracesMatchUnderHangFaults) {
  // The determinism contract under hangs: the injected hang returns the
  // same Timeout failure whether the watchdog woke it early or not, so a
  // parallel window with a deadline produces a trace bit-identical to the
  // serial one — only wall-clock time differs.
  const auto run = [](std::size_t threads) {
    QuadraticEvaluator backend("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
    FaultProfile profile;
    profile.hang_rate = 0.15;
    profile.hang_stall_seconds = 30.0;
    profile.seed = 21;
    FaultInjectingEvaluator faulty(backend, profile);
    ParallelOptions popt;
    popt.threads = threads;
    popt.eval_deadline_seconds = 0.05;  // rescue every hang quickly
    ParallelEvaluator par(faulty, popt);
    RandomSearchOptions opt;
    opt.max_evals = 25;
    opt.seed = 5;
    return random_search(par, opt);
  };

  const SearchTrace serial = run(1);
  const SearchTrace parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.entry(i).config, parallel.entry(i).config);
    EXPECT_EQ(serial.entry(i).seconds, parallel.entry(i).seconds);
    EXPECT_EQ(serial.entry(i).draw_index, parallel.entry(i).draw_index);
  }
  EXPECT_EQ(serial.failure_stats().failures,
            parallel.failure_stats().failures);
  EXPECT_EQ(serial.failure_stats().timeouts,
            parallel.failure_stats().timeouts);
  EXPECT_GT(serial.failure_stats().timeouts, 0u);  // hangs actually fired
}

TEST(Cancellation, ParallelBatchReturnsCleanPrefixWhenCancelled) {
  QuadraticEvaluator backend("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  CancellationSource cancel;
  cancel.request_cancel();
  ParallelOptions popt;
  popt.threads = 4;
  popt.cancel = cancel.token();
  ParallelEvaluator par(backend, popt);
  std::vector<ParamConfig> batch(8, ParamConfig{0, 0, 0, 0});
  // Already cancelled: no evaluation starts, the prefix is empty.
  EXPECT_TRUE(par.evaluate_batch(batch).empty());
}

TEST(Cancellation, SearchStopsAtWindowBoundaryAndResumes) {
  // A cancelled search records the cancellation stop reason; resuming the
  // checkpoint with a fresh (uncancelled) option set clears it and
  // completes with results identical to an uninterrupted run.
  QuadraticEvaluator uninterrupted("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  RandomSearchOptions opt;
  opt.max_evals = 30;
  opt.seed = 11;
  const SearchTrace reference = random_search(uninterrupted, opt);

  QuadraticEvaluator first("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  CancellationSource cancel;
  SearchCheckpoint snapshot;
  RandomSearchOptions interrupted = opt;
  interrupted.cancel = cancel.token();
  interrupted.checkpoint_every = 5;
  interrupted.on_checkpoint = [&](const SearchCheckpoint& s) {
    snapshot = s;
    if (s.trace.size() >= 10) cancel.request_cancel();
  };
  const SearchTrace partial = random_search(first, interrupted);
  ASSERT_EQ(partial.stop_reason(), kCancelledStopReason);
  ASSERT_LT(partial.size(), reference.size());
  ASSERT_GE(snapshot.trace.size(), partial.size());  // final checkpoint

  QuadraticEvaluator second("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
  RandomSearchOptions resume = opt;
  resume.resume = &snapshot;
  const SearchTrace completed = random_search(second, resume);
  EXPECT_TRUE(completed.stop_reason().empty());
  ASSERT_EQ(completed.size(), reference.size());
  for (std::size_t i = 0; i < completed.size(); ++i) {
    EXPECT_EQ(completed.entry(i).config, reference.entry(i).config);
    EXPECT_EQ(completed.entry(i).seconds, reference.entry(i).seconds);
    EXPECT_EQ(completed.entry(i).draw_index, reference.entry(i).draw_index);
  }
}

}  // namespace
}  // namespace portatune::tuner
