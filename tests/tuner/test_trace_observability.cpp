// Satellite coverage for the observability PR: wall-clock timestamps on
// trace entries, their persistence (v2 files, v1 compatibility), failure
// statistics round-trips, and overhead/elapsed clock interaction.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/event.hpp"
#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

TEST(TraceWallClock, RecordStampsEntries) {
  const double before = obs::wall_unix_now();
  SearchTrace trace("RS", "p", "m");
  trace.record({0, 0, 0, 0}, 1.0, 0);
  const double after = obs::wall_unix_now();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_GE(trace.entry(0).wall_unix, before);
  EXPECT_LE(trace.entry(0).wall_unix, after);
}

TEST(TraceWallClock, ExplicitTimestampPassesThrough) {
  SearchTrace trace("RS", "p", "m");
  trace.record({0, 0, 0, 0}, 1.0, 0, 12345.5);
  EXPECT_DOUBLE_EQ(trace.entry(0).wall_unix, 12345.5);
}

TEST(TraceWallClock, TraceCsvRoundTripsTimestamps) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  RandomSearchOptions opt;
  opt.max_evals = 8;
  opt.seed = 3;
  const auto original = random_search(eval, opt);
  ASSERT_GT(original.entry(0).wall_unix, 0.0);

  std::stringstream buf;
  save_trace_csv(buf, original, eval.space());
  const auto loaded = load_trace_csv(buf, eval.space());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_DOUBLE_EQ(loaded.entry(i).wall_unix,
                     original.entry(i).wall_unix);
}

TEST(TraceWallClock, V1TracesWithoutTheColumnStillLoad) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::stringstream buf(
      "# portatune-trace v1,RS,quadratic,M\n"
      "p0,p1,p2,p3,seconds,draw_index\n"
      "1,2,3,4,1.5,0\n"
      "4,3,2,1,2.5,1\n");
  const auto loaded = load_trace_csv(buf, eval.space());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.entry(0).seconds, 1.5);
  // Pre-column entries restore as "unknown", never as load time.
  EXPECT_DOUBLE_EQ(loaded.entry(0).wall_unix, 0.0);
  EXPECT_DOUBLE_EQ(loaded.entry(1).wall_unix, 0.0);
}

TEST(TraceWallClock, V1CheckpointsStillLoad) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::stringstream buf(
      "# portatune-checkpoint v1,RS,quadratic,M\n"
      "# draws,3\n"
      "# clock,4.5\n"
      "# stats,3,1,1,0,0,0.25\n"
      "p0,p1,p2,p3,seconds,elapsed,draw_index\n"
      "1,2,3,4,1.5,1.5,0\n"
      "4,3,2,1,2.5,4.0,2\n");
  const auto snapshot = load_checkpoint_csv(buf, eval.space());
  ASSERT_EQ(snapshot.trace.size(), 2u);
  EXPECT_EQ(snapshot.draws, 3u);
  EXPECT_DOUBLE_EQ(snapshot.trace.entry(1).wall_unix, 0.0);
  EXPECT_EQ(snapshot.trace.failure_stats().transient, 1u);
}

TEST(FailureStatsPersistence, RoundTripsNonZeroCounts) {
  // A checkpoint of a search that saw every failure kind must restore
  // the exact counters (the CSV stats row carries all six values).
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  SearchCheckpoint original;
  original.trace = SearchTrace("RS", "quadratic", "M");
  original.trace.record({1, 2, 3, 4}, 1.5, 0);
  original.draws = 9;

  FailureStats fs;
  fs.attempts = 12;
  fs.failures = 6;
  fs.transient = 3;
  fs.deterministic = 2;
  fs.timeouts = 1;
  fs.overhead_seconds = 0.375;
  original.trace.restore_failure_stats(fs);

  std::stringstream buf;
  save_checkpoint_csv(buf, original, eval.space());
  const auto loaded = load_checkpoint_csv(buf, eval.space());
  const FailureStats& got = loaded.trace.failure_stats();
  EXPECT_EQ(got.attempts, 12u);
  EXPECT_EQ(got.failures, 6u);
  EXPECT_EQ(got.transient, 3u);
  EXPECT_EQ(got.deterministic, 2u);
  EXPECT_EQ(got.timeouts, 1u);
  EXPECT_DOUBLE_EQ(got.overhead_seconds, 0.375);
}

TEST(FailureStatsPersistence, CheckpointRoundTripsWallClock) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  SearchCheckpoint original;
  original.trace = SearchTrace("RS", "quadratic", "M");
  original.trace.record({1, 2, 3, 4}, 1.5, 0, 1700000000.25);
  original.draws = 1;

  std::stringstream buf;
  save_checkpoint_csv(buf, original, eval.space());
  const auto loaded = load_checkpoint_csv(buf, eval.space());
  ASSERT_EQ(loaded.trace.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.trace.entry(0).wall_unix, 1700000000.25);
}

TEST(TraceClock, OverheadAdvancesElapsedMonotonically) {
  // add_overhead() charges search time between evaluations; recorded
  // entries must observe it: elapsed stays strictly increasing and
  // includes every charge made so far.
  SearchTrace trace("RS", "p", "m");
  trace.record({0, 0, 0, 0}, 1.0, 0);
  EXPECT_DOUBLE_EQ(trace.entry(0).elapsed, 1.0);

  trace.add_overhead(0.5);  // e.g. pruned draws, model fitting
  trace.record({1, 1, 1, 1}, 2.0, 1);
  EXPECT_DOUBLE_EQ(trace.entry(1).elapsed, 3.5);

  trace.add_overhead(0.25);
  trace.record({2, 2, 2, 2}, 0.5, 2);
  EXPECT_DOUBLE_EQ(trace.entry(2).elapsed, 4.25);

  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GT(trace.entry(i).elapsed, trace.entry(i - 1).elapsed);
  EXPECT_DOUBLE_EQ(trace.total_time(), 4.25);
}

TEST(TraceClock, TrailingOverheadCountsTowardTotalTimeOnly) {
  SearchTrace trace("RS", "p", "m");
  trace.record({0, 0, 0, 0}, 1.0, 0);
  trace.add_overhead(2.0);  // failures after the last success
  EXPECT_DOUBLE_EQ(trace.entry(0).elapsed, 1.0);
  EXPECT_DOUBLE_EQ(trace.total_time(), 3.0);
}

}  // namespace
}  // namespace portatune::tuner
