#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/adaptive.hpp"
#include "tuner/random_search.hpp"
#include "tuner/similarity.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator source_machine() {
  return QuadraticEvaluator("A", {7, 2, 5, 1}, {1, 1, 1, 1});
}

SearchTrace source_trace(QuadraticEvaluator& a, std::size_t n = 80) {
  RandomSearchOptions opt;
  opt.max_evals = n;
  opt.seed = 5;
  return random_search(a, opt);
}

TEST(Adaptive, RespectsBudgetAndRecordsAlgorithm) {
  auto a = source_machine();
  const auto src = source_trace(a);
  QuadraticEvaluator b("B", {7, 2, 5, 1}, {1.1, 0.9, 1.2, 0.8});
  AdaptiveSearchOptions opt;
  opt.max_evals = 40;
  opt.pool_size = 800;
  opt.forest.num_trees = 16;
  const auto trace = adaptive_biased_search(b, src, opt);
  EXPECT_EQ(trace.size(), 40u);
  EXPECT_EQ(trace.algorithm(), "RS_b_adaptive");
}

TEST(Adaptive, WorksWithEmptySource) {
  QuadraticEvaluator b("B", {5, 5, 5, 5}, {1, 1, 1, 1});
  AdaptiveSearchOptions opt;
  opt.max_evals = 30;
  opt.pool_size = 500;
  opt.refit_interval = 5;
  opt.forest.num_trees = 8;
  const auto trace = adaptive_biased_search(b, SearchTrace{}, opt);
  EXPECT_EQ(trace.size(), 30u);
  // Online model-based search on a convex landscape should end well
  // below the landscape median (~35 for this quadratic).
  EXPECT_LT(trace.best_seconds(), 15.0);
}

TEST(Adaptive, RecoversFromMisleadingSource) {
  // Source optimum at the opposite corner: plain RS_b is sent to the
  // wrong region, but refits on target data must pull the adaptive
  // search back.
  QuadraticEvaluator a("A", {9, 9, 9, 9}, {1, 1, 1, 1});
  const auto src = source_trace(a, 100);
  ml::ForestParams fp;
  fp.num_trees = 24;
  fp.seed = 7;
  const auto model = fit_surrogate(src, a.space(), fp);

  QuadraticEvaluator b1("B", {0, 0, 0, 0}, {1, 1, 1, 1});
  BiasedSearchOptions static_opt;
  static_opt.max_evals = 50;
  static_opt.pool_size = 1000;
  static_opt.seed = 7;
  const auto static_trace = biased_random_search(b1, *model, static_opt);

  QuadraticEvaluator b2("B", {0, 0, 0, 0}, {1, 1, 1, 1});
  AdaptiveSearchOptions opt;
  opt.max_evals = 50;
  opt.pool_size = 1000;
  opt.refit_interval = 10;
  opt.target_weight = 4;
  opt.seed = 7;
  opt.forest.num_trees = 24;
  const auto adaptive_trace = adaptive_biased_search(b2, src, opt);

  EXPECT_LT(adaptive_trace.best_seconds(), static_trace.best_seconds());
}

TEST(Adaptive, RejectsBadOptions) {
  auto a = source_machine();
  const auto src = source_trace(a, 10);
  QuadraticEvaluator b("B", {1, 1, 1, 1}, {1, 1, 1, 1});
  AdaptiveSearchOptions opt;
  opt.refit_interval = 0;
  EXPECT_THROW(adaptive_biased_search(b, src, opt), Error);
}

TEST(Similarity, IdenticalMachinesScorePerfect) {
  QuadraticEvaluator a("A", {3, 4, 5, 6}, {1, 2, 1, 2});
  QuadraticEvaluator b("B", {3, 4, 5, 6}, {1, 2, 1, 2});
  const auto rep = measure_similarity(a, b);
  EXPECT_EQ(rep.probes, 30u);
  EXPECT_NEAR(rep.spearman, 1.0, 1e-9);
  EXPECT_NEAR(rep.pearson, 1.0, 1e-9);
  EXPECT_NEAR(rep.log_ratio_dispersion, 0.0, 1e-9);
  EXPECT_EQ(advise(rep), TransferAdvice::Transfer);
}

TEST(Similarity, RescaledMachineHasZeroDispersion) {
  // Target = 3x source: same landscape, different absolute times.
  class Scaled final : public Evaluator {
   public:
    explicit Scaled(QuadraticEvaluator& base) : base_(base) {}
    const ParamSpace& space() const override { return base_.space(); }
    EvalResult evaluate(const ParamConfig& c) override {
      auto r = base_.evaluate(c);
      r.seconds *= 3.0;
      return r;
    }
    std::string problem_name() const override { return "scaled"; }
    std::string machine_name() const override { return "B"; }

   private:
    QuadraticEvaluator& base_;
  };
  QuadraticEvaluator a("A", {3, 4, 5, 6}, {1, 2, 1, 2});
  QuadraticEvaluator a2("A", {3, 4, 5, 6}, {1, 2, 1, 2});
  Scaled b(a2);
  const auto rep = measure_similarity(a, b);
  EXPECT_NEAR(rep.log_ratio_dispersion, 0.0, 1e-9);
  EXPECT_NEAR(rep.spearman, 1.0, 1e-9);
}

TEST(Similarity, OppositeMachinesScoreNegative) {
  QuadraticEvaluator a("A", {9, 9, 9, 9}, {1, 1, 1, 1});
  QuadraticEvaluator b("B", {0, 0, 0, 0}, {1, 1, 1, 1});
  const auto rep = measure_similarity(a, b);
  EXPECT_LT(rep.spearman, 0.0);
  EXPECT_EQ(advise(rep), TransferAdvice::DoNotTransfer);
}

TEST(Similarity, SurvivesFailingEvaluations) {
  QuadraticEvaluator a("A", {5, 5, 5, 5}, {1, 1, 1, 1});
  QuadraticEvaluator b("B", {5, 5, 5, 5}, {1, 1, 1, 1});
  a.fail_when = [](const ParamConfig& c) { return c[0] == 2; };
  const auto rep = measure_similarity(a, b);
  EXPECT_EQ(rep.probes, 30u);  // failures were replaced by fresh draws
}

TEST(Similarity, AdviceStringsAreStable) {
  EXPECT_EQ(to_string(TransferAdvice::Transfer), "transfer");
  EXPECT_EQ(to_string(TransferAdvice::DoNotTransfer), "do not transfer");
}

TEST(Similarity, RejectsTinyProbeCounts) {
  QuadraticEvaluator a("A", {1, 1, 1, 1}, {1, 1, 1, 1});
  QuadraticEvaluator b("B", {1, 1, 1, 1}, {1, 1, 1, 1});
  SimilarityOptions opt;
  opt.probes = 2;
  EXPECT_THROW(measure_similarity(a, b, opt), Error);
}

}  // namespace
}  // namespace portatune::tuner
