// Batched evaluation + parallel fan-out: the contracts the search layer
// depends on.
//
//   * Evaluator::evaluate_batch default == a loop of evaluate() calls.
//   * ParallelEvaluator keeps batch order regardless of completion order
//     and degrades to serial when the inner backend is not thread-safe.
//   * Serial-vs-parallel determinism parity: the same seed produces a
//     byte-identical trace CSV for RS / RS_p / RS_b at any thread count,
//     including under fault injection, retry, quarantine, failure-budget
//     aborts, and checkpoint/resume.
//   * ResilientEvaluator's quarantine stays exact under concurrent
//     hammering from many threads.
//   * run_transfer_experiments returns the same results at any fan-out.
#include "tuner/parallel.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/forest.hpp"
#include "support/thread_pool.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/experiment.hpp"
#include "tuner/faults.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"
#include "tuner/sampler.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator machine_a() {
  return QuadraticEvaluator("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
}
QuadraticEvaluator machine_b() {
  return QuadraticEvaluator("B", {7, 2, 5, 1}, {1.2, 0.4, 1.8, 0.3}, 2.0);
}

/// A backend that keeps every default: not thread-safe, batch width 1,
/// no inner layer.
class MinimalEvaluator final : public Evaluator {
 public:
  MinimalEvaluator() : space_(testing::grid_space(2, 4)) {}
  const ParamSpace& space() const override { return space_; }
  EvalResult evaluate(const ParamConfig& c) override {
    return EvalResult::success(1.0 + static_cast<double>(c[0]));
  }
  std::string problem_name() const override { return "minimal"; }
  std::string machine_name() const override { return "M"; }

 private:
  ParamSpace space_;
};

std::vector<ParamConfig> draw_configs(const ParamSpace& space,
                                      std::size_t count,
                                      std::uint64_t seed = 99) {
  ConfigStream stream(space, seed);
  std::vector<ParamConfig> out;
  while (out.size() < count)
    if (auto c = stream.next()) out.push_back(*c);
  return out;
}

/// Serialize a trace with the volatile wall-clock column zeroed, so two
/// runs of the same search compare byte-for-byte.
std::string canonical_csv(const SearchTrace& t, const ParamSpace& space) {
  SearchTrace z(t.algorithm(), t.problem(), t.machine());
  for (const auto& e : t.entries())
    z.restore_entry(e.config, e.seconds, e.elapsed, e.draw_index, 0.0);
  std::ostringstream os;
  save_trace_csv(os, z, space);
  return os.str();
}

// ---------------------------------------------------------------------
// Batch interface contracts
// ---------------------------------------------------------------------

TEST(EvaluateBatch, DefaultFallbackMatchesSerialLoop) {
  auto eval = machine_a();
  const auto configs = draw_configs(eval.space(), 12);
  const auto batch = eval.evaluate_batch(configs);
  ASSERT_EQ(batch.size(), configs.size());
  auto ref = machine_a();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto one = ref.evaluate(configs[i]);
    EXPECT_EQ(batch[i].ok, one.ok);
    EXPECT_DOUBLE_EQ(batch[i].seconds, one.seconds);
  }
  EXPECT_EQ(eval.calls(), configs.size());
}

TEST(EvaluateBatch, DefaultCapabilitiesAreSerial) {
  MinimalEvaluator eval;
  const auto caps = eval.capabilities();
  EXPECT_FALSE(caps.thread_safe);
  EXPECT_EQ(caps.preferred_batch, 1u);
  EXPECT_EQ(eval.inner_evaluator(), nullptr);
}

TEST(ParallelEvaluator, KeepsBatchOrderUnderFanOut) {
  auto serial = machine_a();
  auto backend = machine_a();
  ParallelEvaluator par(backend, {.threads = 4, .batch_width = 0});
  EXPECT_EQ(par.threads(), 4u);

  const auto configs = draw_configs(serial.space(), 64);
  const auto got = par.evaluate_batch(configs);
  ASSERT_EQ(got.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i].seconds, serial.evaluate(configs[i]).seconds)
        << "result " << i << " does not correspond to batch[" << i << "]";
}

TEST(ParallelEvaluator, SerialInnerDisablesFanOut) {
  MinimalEvaluator backend;  // thread_safe == false
  ParallelEvaluator par(backend, {.threads = 8});
  EXPECT_EQ(par.threads(), 1u);
  const auto configs = draw_configs(backend.space(), 10);
  const auto got = par.evaluate_batch(configs);
  ASSERT_EQ(got.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i].seconds, 1.0 + static_cast<double>(configs[i][0]));
}

TEST(ParallelEvaluator, AdvertisesWindowWidth) {
  auto backend = machine_a();
  ParallelEvaluator twice(backend, {.threads = 4});
  EXPECT_EQ(twice.capabilities().preferred_batch, 8u);  // 2x workers
  EXPECT_TRUE(twice.capabilities().thread_safe);
  ParallelEvaluator fixed(backend, {.threads = 4, .batch_width = 5});
  EXPECT_EQ(fixed.capabilities().preferred_batch, 5u);
}

TEST(FindLayer, WalksDecoratorStackOutermostIn) {
  auto backend = machine_a();
  ResilientEvaluator resilient(backend);
  ParallelEvaluator par(resilient, {.threads = 2});
  EXPECT_EQ(find_layer<ResilientEvaluator>(&par), &resilient);
  EXPECT_EQ(find_layer<ParallelEvaluator>(&par), &par);
  EXPECT_EQ(find_layer<QuadraticEvaluator>(&par), &backend);
  EXPECT_EQ(find_layer<FaultInjectingEvaluator>(&par), nullptr);
}

// ---------------------------------------------------------------------
// Serial-vs-parallel trace parity (the CRN determinism guarantee)
// ---------------------------------------------------------------------

TEST(ParallelParity, RandomSearchTraceIsByteIdentical) {
  RandomSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 7;

  auto serial = machine_b();
  serial.fail_when = [](const ParamConfig& c) { return c[0] % 3 == 0; };
  const auto ts = random_search(serial, opt);

  auto backend = machine_b();
  backend.fail_when = [](const ParamConfig& c) { return c[0] % 3 == 0; };
  ParallelEvaluator par(backend, {.threads = 4});
  const auto tp = random_search(par, opt);

  EXPECT_EQ(canonical_csv(ts, serial.space()),
            canonical_csv(tp, backend.space()));
  EXPECT_EQ(ts.failure_stats().failures, tp.failure_stats().failures);
}

TEST(ParallelParity, PrunedSearchTraceIsByteIdentical) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 21;
  const auto source = random_search(a, rs_opt);
  ml::ForestParams fp;
  fp.num_trees = 24;
  fp.seed = 5;
  const auto model = fit_surrogate(source, a.space(), fp);

  PrunedSearchOptions opt;
  opt.max_evals = 30;
  opt.seed = 21;
  opt.pool_size = 1000;

  auto serial = machine_b();
  const auto ts = pruned_random_search(serial, *model, opt);
  auto backend = machine_b();
  ParallelEvaluator par(backend, {.threads = 4});
  const auto tp = pruned_random_search(par, *model, opt);

  EXPECT_EQ(canonical_csv(ts, serial.space()),
            canonical_csv(tp, backend.space()));
}

TEST(ParallelParity, BiasedSearchTraceIsByteIdentical) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 31;
  const auto source = random_search(a, rs_opt);
  ml::ForestParams fp;
  fp.num_trees = 24;
  fp.seed = 5;
  const auto model = fit_surrogate(source, a.space(), fp);

  BiasedSearchOptions opt;
  opt.max_evals = 25;
  opt.pool_size = 1000;
  opt.seed = 31;

  auto serial = machine_b();
  const auto ts = biased_random_search(serial, *model, opt);
  auto backend = machine_b();
  ParallelEvaluator par(backend, {.threads = 4});
  const auto tp = biased_random_search(par, *model, opt);

  EXPECT_EQ(canonical_csv(ts, serial.space()),
            canonical_csv(tp, backend.space()));
}

/// Full decorator stack: faults -> resilient -> (parallel). The fault
/// injector keys its channels on (seed, config, per-config attempt), so
/// the injected schedule is identical no matter how many threads race.
TEST(ParallelParity, FaultInjectedResilientStackIsByteIdentical) {
  FaultProfile faults;
  faults.transient_rate = 0.15;
  faults.deterministic_rate = 0.10;
  faults.seed = 77;
  RetryPolicy retry;
  retry.max_attempts = 3;

  RandomSearchOptions opt;
  opt.max_evals = 50;
  opt.seed = 13;

  auto backend_s = machine_b();
  FaultInjectingEvaluator faulty_s(backend_s, faults);
  ResilientEvaluator resilient_s(faulty_s, retry);
  const auto ts = random_search(resilient_s, opt);

  auto backend_p = machine_b();
  FaultInjectingEvaluator faulty_p(backend_p, faults);
  ResilientEvaluator resilient_p(faulty_p, retry);
  ParallelEvaluator par(resilient_p, {.threads = 4});
  const auto tp = random_search(par, opt);

  EXPECT_EQ(canonical_csv(ts, backend_s.space()),
            canonical_csv(tp, backend_p.space()));
  const auto ss = resilient_s.stats();
  const auto sp = resilient_p.stats();
  EXPECT_EQ(ss.attempts, sp.attempts);
  EXPECT_EQ(ss.retries, sp.retries);
  EXPECT_EQ(ss.quarantined, sp.quarantined);
  EXPECT_EQ(resilient_s.quarantined_hashes(), resilient_p.quarantined_hashes());
}

TEST(ParallelParity, FailureBudgetAbortStopsAtTheSamePoint) {
  RandomSearchOptions opt;
  opt.max_evals = 200;
  opt.seed = 17;
  opt.failure_budget.max_total = 8;

  auto serial = machine_b();
  serial.fail_when = [](const ParamConfig& c) { return c[0] % 2 == 0; };
  const auto ts = random_search(serial, opt);

  auto backend = machine_b();
  backend.fail_when = [](const ParamConfig& c) { return c[0] % 2 == 0; };
  ParallelEvaluator par(backend, {.threads = 4});
  const auto tp = random_search(par, opt);

  ASSERT_FALSE(ts.stop_reason().empty());
  EXPECT_EQ(ts.stop_reason(), tp.stop_reason());
  // The parallel window may have *evaluated* a few draws past the abort
  // point, but the trace must not have seen them.
  EXPECT_EQ(canonical_csv(ts, serial.space()),
            canonical_csv(tp, backend.space()));
}

TEST(ParallelParity, CheckpointResumeMatchesUninterruptedRun) {
  const auto make_options = [] {
    RandomSearchOptions opt;
    opt.max_evals = 60;
    opt.seed = 23;
    return opt;
  };

  auto backend_full = machine_b();
  ParallelEvaluator par_full(backend_full, {.threads = 4});
  const auto uninterrupted = random_search(par_full, make_options());

  // First leg: capture the snapshot taken after 20 recorded evaluations.
  SearchCheckpoint snap;
  auto opt1 = make_options();
  opt1.max_evals = 20;
  opt1.checkpoint_every = 20;
  opt1.on_checkpoint = [&](const SearchCheckpoint& s) { snap = s; };
  auto backend_1 = machine_b();
  ParallelEvaluator par_1(backend_1, {.threads = 4});
  random_search(par_1, opt1);
  ASSERT_EQ(snap.trace.size(), 20u);

  // Second leg: a fresh evaluator stack resumed from the snapshot.
  auto opt2 = make_options();
  opt2.resume = &snap;
  auto backend_2 = machine_b();
  ParallelEvaluator par_2(backend_2, {.threads = 4});
  const auto resumed = random_search(par_2, opt2);

  EXPECT_EQ(canonical_csv(uninterrupted, backend_full.space()),
            canonical_csv(resumed, backend_2.space()));
}

// ---------------------------------------------------------------------
// Concurrency stress
// ---------------------------------------------------------------------

TEST(ConcurrentQuarantine, StaysExactUnderManyThreads) {
  auto backend = machine_a();
  backend.fail_when = [](const ParamConfig& c) { return c[0] % 2 == 0; };
  ResilientEvaluator resilient(backend);

  const auto configs = draw_configs(backend.space(), 32);
  std::size_t expected_failing = 0;
  for (const auto& c : configs) expected_failing += (c[0] % 2 == 0) ? 1 : 0;
  ASSERT_GT(expected_failing, 0u);

  // Hammer every configuration from many threads at once; repeats race
  // the quarantine insertion on purpose.
  ThreadPool pool(8);
  pool.parallel_for(0, configs.size() * 16, [&](std::size_t i) {
    (void)resilient.evaluate(configs[i % configs.size()]);
  });

  for (const auto& c : configs)
    EXPECT_EQ(resilient.is_quarantined(c), c[0] % 2 == 0);
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.quarantined, expected_failing);
  EXPECT_EQ(resilient.quarantine_size(), expected_failing);
  EXPECT_EQ(stats.calls, configs.size() * 16);
  // Once quarantined, repeats are rejected without touching the backend.
  EXPECT_GT(stats.quarantine_hits, 0u);
}

TEST(ConcurrentQuarantine, ParallelBatchesQuarantineEveryFailingConfig) {
  auto backend = machine_a();
  backend.fail_when = [](const ParamConfig& c) { return c[1] % 3 == 0; };
  ResilientEvaluator resilient(backend);
  ParallelEvaluator par(resilient, {.threads = 8, .batch_width = 16});

  const auto configs = draw_configs(backend.space(), 64);
  const auto results = par.evaluate_batch(configs);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const bool fails = configs[i][1] % 3 == 0;
    EXPECT_NE(results[i].ok, fails);
    EXPECT_EQ(resilient.is_quarantined(configs[i]), fails);
  }
}

// ---------------------------------------------------------------------
// Experiment fan-out
// ---------------------------------------------------------------------

TEST(ParallelExperiments, FanOutMatchesSerialJobOrder) {
  ExperimentSettings settings;
  settings.nmax = 20;
  settings.pool_size = 400;
  settings.forest.num_trees = 12;

  std::vector<ExperimentJob> jobs;
  for (int j = 0; j < 3; ++j) {
    ExperimentJob job;
    job.make_source = [] {
      return std::make_unique<QuadraticEvaluator>(machine_a());
    };
    job.make_target = [] {
      return std::make_unique<QuadraticEvaluator>(machine_b());
    };
    job.settings = settings;
    job.settings.seed = 100 + static_cast<std::uint64_t>(j);
    job.label = "job" + std::to_string(j);
    jobs.push_back(std::move(job));
  }

  const auto serial = run_transfer_experiments(jobs, 1);
  const auto fanned = run_transfer_experiments(jobs, 4);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(fanned.size(), jobs.size());
  const ParamSpace space = testing::grid_space();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(canonical_csv(serial[j].target_rs, space),
              canonical_csv(fanned[j].target_rs, space));
    EXPECT_EQ(canonical_csv(serial[j].pruned, space),
              canonical_csv(fanned[j].pruned, space));
    EXPECT_EQ(canonical_csv(serial[j].biased, space),
              canonical_csv(fanned[j].biased, space));
    EXPECT_DOUBLE_EQ(serial[j].pearson, fanned[j].pearson);
    EXPECT_DOUBLE_EQ(serial[j].spearman, fanned[j].spearman);
    EXPECT_DOUBLE_EQ(serial[j].biased_speedup.performance,
                     fanned[j].biased_speedup.performance);
  }
}

}  // namespace
}  // namespace portatune::tuner
