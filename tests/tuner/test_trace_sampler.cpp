#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.hpp"
#include "tuner/sampler.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {
namespace {

ParamSpace tiny_space() {
  ParamSpace s;
  s.add("a", range_values(0, 3));
  s.add("b", range_values(0, 2));
  return s;  // |D| = 12
}

TEST(ConfigStream, SmallSpaceExhaustsExactlyOnce) {
  const auto space = tiny_space();
  ConfigStream stream(space, 5);
  std::set<std::uint64_t> seen;
  std::size_t count = 0;
  while (auto c = stream.next()) {
    EXPECT_TRUE(seen.insert(space.config_hash(*c)).second);
    ++count;
  }
  EXPECT_EQ(count, 12u);
  EXPECT_EQ(stream.produced(), 12u);
}

TEST(ConfigStream, DeterministicForSeed) {
  const auto space = tiny_space();
  ConfigStream a(space, 9), b(space, 9);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(*a.next(), *b.next());
}

TEST(ConfigStream, DifferentSeedsDifferentOrder) {
  const auto space = tiny_space();
  ConfigStream a(space, 1), b(space, 2);
  int same = 0;
  for (int i = 0; i < 12; ++i) same += (*a.next() == *b.next());
  EXPECT_LT(same, 6);
}

TEST(ConfigStream, LargeSpaceDrawsAreDistinct) {
  ParamSpace s;
  for (int p = 0; p < 8; ++p)
    s.add("p" + std::to_string(p), range_values(0, 15));
  ConfigStream stream(s, 3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    auto c = stream.next();
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(seen.insert(s.config_hash(*c)).second);
  }
}

TEST(SearchTrace, RecordsAndSummarizes) {
  SearchTrace t("RS", "LU", "Sandybridge");
  EXPECT_TRUE(t.empty());
  t.record({0, 0}, 5.0, 0);
  t.record({1, 0}, 3.0, 1);
  t.record({2, 0}, 4.0, 2);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.best_seconds(), 3.0);
  EXPECT_EQ(t.best_config(), (ParamConfig{1, 0}));
  EXPECT_DOUBLE_EQ(t.total_time(), 12.0);
  // elapsed at each entry is the cumulative evaluation time.
  EXPECT_DOUBLE_EQ(t.entry(0).elapsed, 5.0);
  EXPECT_DOUBLE_EQ(t.entry(1).elapsed, 8.0);
  EXPECT_DOUBLE_EQ(t.entry(2).elapsed, 12.0);
}

TEST(SearchTrace, TimeToReachSemantics) {
  SearchTrace t;
  t.record({0}, 5.0, 0);
  t.record({1}, 3.0, 1);
  EXPECT_DOUBLE_EQ(t.time_to_reach(5.0), 5.0);
  EXPECT_DOUBLE_EQ(t.time_to_reach(3.0), 8.0);
  EXPECT_DOUBLE_EQ(t.time_to_best(), 8.0);
  EXPECT_TRUE(std::isinf(t.time_to_reach(1.0)));
}

TEST(SearchTrace, OverheadAdvancesClock) {
  SearchTrace t;
  t.add_overhead(2.0);
  t.record({0}, 1.0, 0);
  EXPECT_DOUBLE_EQ(t.entry(0).elapsed, 3.0);
  EXPECT_DOUBLE_EQ(t.total_time(), 3.0);
}

TEST(SearchTrace, BestCurveIsMonotone) {
  SearchTrace t;
  t.record({0}, 4.0, 0);
  t.record({1}, 6.0, 1);
  t.record({2}, 2.0, 2);
  const auto curve = t.best_curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].second, 4.0);
  EXPECT_DOUBLE_EQ(curve[1].second, 4.0);
  EXPECT_DOUBLE_EQ(curve[2].second, 2.0);
  EXPECT_LT(curve[0].first, curve[2].first);
}

TEST(SearchTrace, EmptyTraceBehaviour) {
  const SearchTrace t;
  EXPECT_TRUE(std::isinf(t.best_seconds()));
  EXPECT_THROW(t.best_config(), Error);
}

TEST(SearchTrace, ToDatasetUsesFeatureEncoding) {
  const auto space = tiny_space();
  SearchTrace t;
  t.record({3, 2}, 1.5, 0);
  const auto d = t.to_dataset(space);
  EXPECT_EQ(d.num_rows(), 1u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 3.0);  // value, not index
  EXPECT_DOUBLE_EQ(d.target(0), 1.5);
  EXPECT_EQ(d.feature_name(0), "a");
}

}  // namespace
}  // namespace portatune::tuner
