// Shared synthetic evaluators for tuner tests: cheap, deterministic
// landscapes whose optima are known in closed form.
#pragma once

#include <atomic>
#include <cmath>
#include <functional>

#include "tuner/evaluator.hpp"

namespace portatune::tuner::testing {

inline ParamSpace grid_space(std::size_t params = 4, int values = 10) {
  ParamSpace s;
  for (std::size_t p = 0; p < params; ++p)
    s.add("p" + std::to_string(p), range_values(0, values - 1));
  return s;
}

/// runtime = base + sum_i w_i (v_i - opt_i)^2. Optionally fails configs
/// matching a predicate (to exercise failure handling).
class QuadraticEvaluator final : public Evaluator {
 public:
  QuadraticEvaluator(std::string machine, std::vector<double> optimum,
                     std::vector<double> weights, double base = 1.0)
      : space_(grid_space(optimum.size())),
        machine_(std::move(machine)),
        optimum_(std::move(optimum)),
        weights_(std::move(weights)),
        base_(base) {}

  // The atomic call counter deletes the implicit move constructor; tests
  // store these in containers, so move explicitly (counter carried over).
  QuadraticEvaluator(QuadraticEvaluator&& other) noexcept
      : fail_when(std::move(other.fail_when)),
        space_(std::move(other.space_)),
        machine_(std::move(other.machine_)),
        optimum_(std::move(other.optimum_)),
        weights_(std::move(other.weights_)),
        base_(other.base_),
        calls_(other.calls_.load(std::memory_order_relaxed)) {}

  const ParamSpace& space() const override { return space_; }

  EvalResult evaluate(const ParamConfig& config) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (fail_when && fail_when(config))
      return EvalResult::failure("synthetic failure");
    const auto v = space_.features(config);
    double y = base_;
    for (std::size_t i = 0; i < v.size(); ++i)
      y += weights_[i] * (v[i] - optimum_[i]) * (v[i] - optimum_[i]);
    return EvalResult::success(y);
  }

  /// Thread-safe: pure landscape, atomic call counter. (Tests that set
  /// fail_when must install it before sharing the evaluator across
  /// threads.)
  EvalCapabilities capabilities() const override {
    return {.thread_safe = true, .preferred_batch = 1};
  }

  std::string problem_name() const override { return "quadratic"; }
  std::string machine_name() const override { return machine_; }

  double optimum_value() const { return base_; }
  std::size_t calls() const { return calls_.load(std::memory_order_relaxed); }

  std::function<bool(const ParamConfig&)> fail_when;

 private:
  ParamSpace space_;
  std::string machine_;
  std::vector<double> optimum_;
  std::vector<double> weights_;
  double base_;
  std::atomic<std::size_t> calls_{0};
};

}  // namespace portatune::tuner::testing
