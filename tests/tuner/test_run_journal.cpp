#include "tuner/run_journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>

#include "support/atomic_file.hpp"
#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

class RunJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = std::filesystem::temp_directory_path() /
           ("portatune_journal_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string run_dir(const char* name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(RunJournalTest, ManifestLifecycle) {
  const std::string dir = run_dir("lifecycle");
  RunJournal journal = RunJournal::create(dir, {"cell a", "cell b"});
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.state(0), CellState::Pending);
  EXPECT_EQ(journal.label(1), "cell b");
  EXPECT_TRUE(RunJournal::exists(dir));
  EXPECT_TRUE(std::filesystem::is_directory(journal.cell_dir(0)));

  journal.mark_running(0);
  EXPECT_EQ(journal.state(0), CellState::Running);

  // A second create over a resumable run must refuse.
  EXPECT_THROW(RunJournal::create(dir, {"cell a", "cell b"}), Error);

  // Reopen: the crashed `running` cell demotes to pending.
  RunJournal reopened = RunJournal::open(dir, {"cell a", "cell b"});
  EXPECT_EQ(reopened.state(0), CellState::Pending);
  EXPECT_EQ(reopened.state(1), CellState::Pending);
}

TEST_F(RunJournalTest, OpenRejectsMismatchedJobs) {
  const std::string dir = run_dir("labels");
  RunJournal::create(dir, {"cell a", "cell b"});
  EXPECT_THROW(RunJournal::open(dir, {"cell a"}), Error);
  EXPECT_THROW(RunJournal::open(dir, {"cell a", "other"}), Error);
}

TEST_F(RunJournalTest, OpenRejectsCorruptedManifest) {
  const std::string dir = run_dir("corrupt");
  RunJournal::create(dir, {"cell a"});
  const std::string manifest = dir + "/journal.csv";
  std::string bytes = read_file(manifest);
  bytes[bytes.size() / 2] ^= 0x01;  // flip one bit mid-file
  atomic_write_file(manifest, bytes);
  EXPECT_THROW(RunJournal::open(dir, {"cell a"}), Error);
}

TEST_F(RunJournalTest, DoneCellWithBadBundleDemotesToPending) {
  const std::string dir = run_dir("bundle");
  {
    RunJournal journal = RunJournal::create(dir, {"cell a"});
    // Claim done with a checksum no artifact bundle can satisfy (the
    // phase files were never written).
    journal.mark_done(0, 0xdeadbeefULL);
  }
  RunJournal reopened = RunJournal::open(dir, {"cell a"});
  EXPECT_EQ(reopened.state(0), CellState::Pending);
}

// -- Journaled fan-out ------------------------------------------------------

ExperimentSettings small_settings() {
  ExperimentSettings s;
  s.nmax = 12;
  s.pool_size = 300;
  s.seed = 77;
  return s;
}

/// Two-cell grid over deterministic quadratic landscapes. `trigger`
/// (optional) is installed on cell 0's source evaluator and invoked once
/// per evaluation — the cancellation tests use it to request shutdown
/// mid-search.
std::vector<ExperimentJob> make_jobs(
    std::function<void()> trigger = nullptr) {
  const auto quad = [](const std::string& machine, double skew) {
    return std::make_unique<QuadraticEvaluator>(
        machine, std::vector<double>{7, 2, 5, 1},
        std::vector<double>{1.0 * skew, 0.5, 2.0, 0.25 * skew});
  };
  std::vector<ExperimentJob> jobs(2);
  jobs[0].label = "quad a->b";
  jobs[0].settings = small_settings();
  jobs[0].make_source = [quad, trigger]() -> EvaluatorPtr {
    auto eval = quad("a", 1.0);
    if (trigger)
      eval->fail_when = [trigger](const ParamConfig&) {
        trigger();
        return false;  // never fails — only counts calls
      };
    return eval;
  };
  jobs[0].make_target = [quad]() -> EvaluatorPtr { return quad("b", 1.4); };
  jobs[1].label = "quad a->c";
  jobs[1].settings = small_settings();
  jobs[1].make_source = [quad]() -> EvaluatorPtr { return quad("a", 1.0); };
  jobs[1].make_target = [quad]() -> EvaluatorPtr { return quad("c", 0.7); };
  return jobs;
}

void expect_same_trace(const SearchTrace& a, const SearchTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.algorithm(), b.algorithm());
  EXPECT_EQ(a.stop_reason(), b.stop_reason());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entry(i).config, b.entry(i).config);
    EXPECT_DOUBLE_EQ(a.entry(i).seconds, b.entry(i).seconds);
    EXPECT_DOUBLE_EQ(a.entry(i).elapsed, b.entry(i).elapsed);
    EXPECT_EQ(a.entry(i).draw_index, b.entry(i).draw_index);
  }
}

void expect_same_result(const TransferExperimentResult& a,
                        const TransferExperimentResult& b) {
  expect_same_trace(a.source_rs, b.source_rs);
  expect_same_trace(a.target_rs, b.target_rs);
  expect_same_trace(a.pruned, b.pruned);
  expect_same_trace(a.biased, b.biased);
  expect_same_trace(a.pruned_mf, b.pruned_mf);
  expect_same_trace(a.biased_mf, b.biased_mf);
  EXPECT_DOUBLE_EQ(a.pearson, b.pearson);
  EXPECT_DOUBLE_EQ(a.spearman, b.spearman);
  EXPECT_DOUBLE_EQ(a.pruned_speedup.performance,
                   b.pruned_speedup.performance);
  EXPECT_DOUBLE_EQ(a.biased_speedup.performance,
                   b.biased_speedup.performance);
}

TEST_F(RunJournalTest, FreshRunCompletesAndRestoresOnReinvocation) {
  JournaledRunOptions opt;
  opt.run_dir = run_dir("fresh");
  opt.threads = 1;
  JournaledRunSummary sum;
  const auto first =
      run_transfer_experiments_journaled(make_jobs(), opt, &sum);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_FALSE(sum.interrupted);
  EXPECT_EQ(sum.cells_completed, 2u);
  EXPECT_EQ(sum.cells_restored, 0u);

  // Re-invoking with --resume restores every cell from its artifacts and
  // recomputes identical derived metrics without re-running anything.
  opt.resume = true;
  JournaledRunSummary again;
  const auto second =
      run_transfer_experiments_journaled(make_jobs(), opt, &again);
  EXPECT_EQ(again.cells_restored, 2u);
  EXPECT_EQ(again.cells_completed, 0u);
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_same_result(first[i], second[i]);
}

TEST_F(RunJournalTest, CancelledMidSearchResumesIdentically) {
  // Reference: the same grid, uninterrupted, in its own run directory.
  JournaledRunOptions ref_opt;
  ref_opt.run_dir = run_dir("reference");
  ref_opt.threads = 1;
  ref_opt.rs_checkpoint_every = 3;
  const auto reference =
      run_transfer_experiments_journaled(make_jobs(), ref_opt, nullptr);

  // Interrupted run: cancellation fires mid source-RS of cell 0, so the
  // journal holds a partial RS checkpoint and a `running` cell row.
  CancellationSource cancel;
  auto calls = std::make_shared<int>(0);
  const auto trigger = [calls, cancel]() mutable {
    if (++*calls == 8) cancel.request_cancel();
  };
  JournaledRunOptions opt;
  opt.run_dir = run_dir("interrupted");
  opt.threads = 1;
  opt.rs_checkpoint_every = 3;
  opt.cancel = cancel.token();
  JournaledRunSummary sum;
  run_transfer_experiments_journaled(make_jobs(trigger), opt, &sum);
  EXPECT_TRUE(sum.interrupted);
  EXPECT_EQ(sum.cells_completed, 0u);

  // Resume without the trigger: cell 0 continues its RS from the partial
  // checkpoint, cell 1 runs fresh; everything matches the reference.
  opt.resume = true;
  opt.cancel = {};
  JournaledRunSummary resumed_sum;
  const auto resumed =
      run_transfer_experiments_journaled(make_jobs(), opt, &resumed_sum);
  EXPECT_FALSE(resumed_sum.interrupted);
  EXPECT_EQ(resumed_sum.cells_completed, 2u);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < resumed.size(); ++i)
    expect_same_result(reference[i], resumed[i]);
}

TEST_F(RunJournalTest, PreCancelledRunLeavesEverythingPendingAndResumable) {
  CancellationSource cancel;
  cancel.request_cancel();
  JournaledRunOptions opt;
  opt.run_dir = run_dir("precancelled");
  opt.threads = 1;
  opt.cancel = cancel.token();
  JournaledRunSummary sum;
  run_transfer_experiments_journaled(make_jobs(), opt, &sum);
  EXPECT_TRUE(sum.interrupted);
  EXPECT_EQ(sum.cells_completed, 0u);

  opt.resume = true;
  opt.cancel = {};
  JournaledRunSummary resumed;
  const auto results =
      run_transfer_experiments_journaled(make_jobs(), opt, &resumed);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.cells_completed, 2u);
  EXPECT_FALSE(results[0].source_rs.empty());
}

}  // namespace
}  // namespace portatune::tuner
