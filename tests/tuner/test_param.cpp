#include "tuner/param.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace portatune::tuner {
namespace {

ParamSpace small_space() {
  ParamSpace s;
  s.add("U", range_values(1, 4));       // 4 values
  s.add("T", pow2_values(0, 3));        // 1,2,4,8
  s.add("FLAG", flag_values());         // 0,1
  return s;
}

TEST(ParamValues, Generators) {
  EXPECT_EQ(range_values(1, 3), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(pow2_values(0, 4), (std::vector<double>{1, 2, 4, 8, 16}));
  EXPECT_EQ(flag_values(), (std::vector<double>{0, 1}));
  EXPECT_THROW(range_values(3, 1), Error);
  EXPECT_THROW(pow2_values(-1, 2), Error);
}

TEST(ParamSpace, CardinalityIsProduct) {
  EXPECT_DOUBLE_EQ(small_space().cardinality(), 4.0 * 4.0 * 2.0);
}

TEST(ParamSpace, DuplicateNameRejected) {
  ParamSpace s;
  s.add("U", range_values(1, 2));
  EXPECT_THROW(s.add("U", range_values(1, 2)), Error);
}

TEST(ParamSpace, EmptyValuesRejected) {
  ParamSpace s;
  EXPECT_THROW(s.add("x", {}), Error);
}

TEST(ParamSpace, DefaultConfigIsAllFirstValues) {
  const auto s = small_space();
  const auto c = s.default_config();
  EXPECT_EQ(c, (ParamConfig{0, 0, 0}));
  EXPECT_DOUBLE_EQ(s.value(c, "U"), 1.0);
  EXPECT_DOUBLE_EQ(s.value(c, "T"), 1.0);
}

TEST(ParamSpace, FeaturesAreActualValues) {
  const auto s = small_space();
  const ParamConfig c{2, 3, 1};
  EXPECT_EQ(s.features(c), (std::vector<double>{3, 8, 1}));
}

TEST(ParamSpace, ValidateCatchesBadConfigs) {
  const auto s = small_space();
  EXPECT_THROW(s.validate(ParamConfig{0, 0}), Error);       // arity
  EXPECT_THROW(s.validate(ParamConfig{4, 0, 0}), Error);    // out of range
  EXPECT_THROW(s.validate(ParamConfig{0, -1, 0}), Error);   // negative
  EXPECT_NO_THROW(s.validate(ParamConfig{3, 3, 1}));
}

TEST(ParamSpace, IndexOfAndUnknownName) {
  const auto s = small_space();
  EXPECT_EQ(s.index_of("T"), 1u);
  EXPECT_THROW(s.index_of("nope"), Error);
}

TEST(ParamSpace, ConfigHashDiscriminates) {
  const auto s = small_space();
  EXPECT_NE(s.config_hash({0, 0, 0}), s.config_hash({1, 0, 0}));
  EXPECT_EQ(s.config_hash({2, 1, 0}), s.config_hash({2, 1, 0}));
}

TEST(ParamSpace, RandomConfigIsValid) {
  const auto s = small_space();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(s.validate(s.random_config(rng)));
}

TEST(ParamSpace, NeighborsStepOneIndex) {
  const auto s = small_space();
  // Interior point: every parameter contributes two neighbors.
  const auto n1 = s.neighbors({1, 1, 0});
  EXPECT_EQ(n1.size(), 2u + 2u + 1u);  // FLAG at 0 has only one direction
  // Corner point: only upward steps.
  const auto n2 = s.neighbors({0, 0, 0});
  EXPECT_EQ(n2.size(), 3u);
  for (const auto& n : n2) {
    int diffs = 0;
    const ParamConfig base{0, 0, 0};
    for (std::size_t i = 0; i < n.size(); ++i)
      diffs += (n[i] != base[i]);
    EXPECT_EQ(diffs, 1);
  }
}

TEST(ParamSpace, DescribeIsHumanReadable) {
  const auto s = small_space();
  EXPECT_EQ(s.describe({1, 2, 1}), "U=2, T=4, FLAG=1");
}

}  // namespace
}  // namespace portatune::tuner
