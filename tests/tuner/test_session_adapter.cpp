// Session-API adapter parity: the legacy free function
// run_transfer_experiment() is a thin adapter over ExperimentSession and
// must reproduce it bit for bit, and a cold TuningSession stepped to
// exhaustion is exactly the historical random_search().
#include <gtest/gtest.h>

#include "apps/tuning_config.hpp"
#include "tuner/experiment.hpp"
#include "tuner/random_search.hpp"
#include "tuner/session.hpp"

namespace portatune::tuner {
namespace {

void expect_traces_equal(const SearchTrace& a, const SearchTrace& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entry(i).config, b.entry(i).config) << what << " entry " << i;
    EXPECT_DOUBLE_EQ(a.entry(i).seconds, b.entry(i).seconds)
        << what << " entry " << i;
    EXPECT_EQ(a.entry(i).draw_index, b.entry(i).draw_index)
        << what << " entry " << i;
  }
}

apps::TuningConfig transfer_config() {
  return apps::TuningConfig{}
      .problem("LU")
      .machines("Westmere", "Sandybridge")
      .max_evals(25)
      .pool_size(2000)
      .seed(13);
}

TEST(SessionAdapter, FreeFunctionMatchesExperimentSession) {
  const apps::TuningConfig cfg = transfer_config();
  const ExperimentSettings settings = cfg.experiment_settings();

  // Legacy entry point, fresh stacks.
  auto src1 = cfg.make_stack(apps::StackRole::Source);
  auto tgt1 = cfg.make_stack(apps::StackRole::Target);
  const TransferExperimentResult legacy =
      run_transfer_experiment(*src1, *tgt1, settings);

  // The session it adapts to, fresh stacks again.
  auto src2 = cfg.make_stack(apps::StackRole::Source);
  auto tgt2 = cfg.make_stack(apps::StackRole::Target);
  ExperimentSession session(*src2, *tgt2, settings, "parity");
  const TransferExperimentResult direct = session.run();

  expect_traces_equal(legacy.source_rs, direct.source_rs, "source_rs");
  expect_traces_equal(legacy.target_rs, direct.target_rs, "target_rs");
  expect_traces_equal(legacy.pruned, direct.pruned, "pruned");
  expect_traces_equal(legacy.biased, direct.biased, "biased");
  expect_traces_equal(legacy.pruned_mf, direct.pruned_mf, "pruned_mf");
  expect_traces_equal(legacy.biased_mf, direct.biased_mf, "biased_mf");

  EXPECT_DOUBLE_EQ(legacy.pearson, direct.pearson);
  EXPECT_DOUBLE_EQ(legacy.spearman, direct.spearman);
  EXPECT_DOUBLE_EQ(legacy.top_overlap, direct.top_overlap);
  EXPECT_DOUBLE_EQ(legacy.pruned_speedup.performance,
                   direct.pruned_speedup.performance);
  EXPECT_DOUBLE_EQ(legacy.pruned_speedup.search,
                   direct.pruned_speedup.search);
  EXPECT_DOUBLE_EQ(legacy.biased_speedup.performance,
                   direct.biased_speedup.performance);
  EXPECT_DOUBLE_EQ(legacy.biased_speedup.search,
                   direct.biased_speedup.search);
  EXPECT_FALSE(legacy.interrupted);
  EXPECT_FALSE(direct.interrupted);
}

TEST(SessionAdapter, ColdSessionSteppedToExhaustionIsRandomSearch) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Power7").max_evals(40)
          .seed(9);

  auto stack_rs = cfg.make_stack();
  RandomSearchOptions rs_opt;
  static_cast<SearchCommon&>(rs_opt) = cfg.search_common();
  const SearchTrace rs = random_search(*stack_rs, rs_opt);

  auto stack_session = cfg.make_stack();
  TuningSession session(*stack_session, cfg.session_options("parity"));
  // Ragged window sizes: the step granularity must not change the trace.
  for (std::size_t n : {1u, 7u, 3u, 20u, 40u}) {
    if (session.step(n).exhausted) break;
  }
  while (!session.step(10).exhausted) {
  }
  session.close();

  expect_traces_equal(session.trace(), rs, "cold session vs RS");
}

TEST(SessionAdapter, SuggestReportInterleavesWithStepLosslessly) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Westmere").max_evals(30)
          .seed(21);

  // Pure service-side stepping.
  auto stack_a = cfg.make_stack();
  TuningSession pure(*stack_a, cfg.session_options("pure"));
  while (!pure.step(10).exhausted) {
  }

  // First few draws measured externally via suggest/report, rest stepped.
  auto stack_b = cfg.make_stack();
  auto stack_meter = cfg.make_stack();  // the "external" measurement rig
  TuningSession hybrid(*stack_b, cfg.session_options("hybrid"));
  for (const auto& c : hybrid.suggest(3)) {
    const EvalResult r = stack_meter->evaluate(c);
    if (r.ok) hybrid.report(c, r.seconds);
  }
  while (!hybrid.step(10).exhausted) {
  }

  // Reported results carry the same draw identity step() would have
  // assigned, so the two traces are identical.
  expect_traces_equal(hybrid.trace(), pure.trace(), "hybrid vs pure");
}

TEST(SessionAdapter, CheckpointResumeReproducesTheUninterruptedTrace) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Sandybridge").max_evals(40)
          .seed(33);

  auto stack_ref = cfg.make_stack();
  TuningSession reference(*stack_ref, cfg.session_options("ref"));
  while (!reference.step(10).exhausted) {
  }

  auto stack_a = cfg.make_stack();
  SearchCheckpoint snapshot;
  {
    TuningSession first(*stack_a, cfg.session_options("interrupted"));
    first.step(15);
    snapshot = first.checkpoint();
  }

  auto stack_b = cfg.make_stack();
  SessionOptions opt = cfg.session_options("resumed");
  opt.resume = &snapshot;
  TuningSession resumed(*stack_b, opt);
  EXPECT_EQ(resumed.trace().size(), snapshot.trace.size());
  while (!resumed.step(10).exhausted) {
  }

  expect_traces_equal(resumed.trace(), reference.trace(), "resumed vs ref");
}

}  // namespace
}  // namespace portatune::tuner
