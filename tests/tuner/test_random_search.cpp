#include "tuner/random_search.hpp"

#include <gtest/gtest.h>

#include "ml/forest.hpp"
#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "support/stats.hpp"
#include "tuner/sampler.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator machine_a() {
  return QuadraticEvaluator("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
}
/// Correlated second machine: same optimum, different weights and base.
QuadraticEvaluator machine_b() {
  return QuadraticEvaluator("B", {7, 2, 5, 1}, {1.2, 0.4, 1.8, 0.3}, 2.0);
}

TEST(RandomSearch, RespectsBudgetAndRecordsMetadata) {
  auto eval = machine_a();
  RandomSearchOptions opt;
  opt.max_evals = 25;
  opt.seed = 3;
  const auto trace = random_search(eval, opt);
  EXPECT_EQ(trace.size(), 25u);
  EXPECT_EQ(trace.algorithm(), "RS");
  EXPECT_EQ(trace.problem(), "quadratic");
  EXPECT_EQ(trace.machine(), "A");
}

TEST(RandomSearch, SameSeedSameDrawOrderAcrossMachines) {
  // The common-random-numbers property: two evaluators with the same
  // space and seed walk identical configuration sequences.
  auto a = machine_a();
  auto b = machine_b();
  RandomSearchOptions opt;
  opt.max_evals = 30;
  opt.seed = 11;
  const auto ta = random_search(a, opt);
  const auto tb = random_search(b, opt);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_EQ(ta.entry(i).config, tb.entry(i).config);
}

TEST(RandomSearch, NeverRepeatsConfigurations) {
  auto eval = machine_a();
  RandomSearchOptions opt;
  opt.max_evals = 500;
  const auto trace = random_search(eval, opt);
  std::set<std::uint64_t> seen;
  for (const auto& e : trace.entries())
    EXPECT_TRUE(seen.insert(eval.space().config_hash(e.config)).second);
}

TEST(RandomSearch, FailedEvaluationsAreSkipped) {
  auto eval = machine_a();
  eval.fail_when = [](const ParamConfig& c) { return c[0] % 2 == 0; };
  RandomSearchOptions opt;
  opt.max_evals = 40;
  const auto trace = random_search(eval, opt);
  EXPECT_EQ(trace.size(), 40u);  // still fills its budget
  for (const auto& e : trace.entries()) EXPECT_NE(e.config[0] % 2, 0);
  EXPECT_GT(eval.calls(), 40u);  // failures consumed draws
}

TEST(ReplaySearch, EvaluatesGivenOrderExactly) {
  auto a = machine_a();
  RandomSearchOptions opt;
  opt.max_evals = 15;
  const auto ta = random_search(a, opt);
  std::vector<ParamConfig> order;
  for (const auto& e : ta.entries()) order.push_back(e.config);

  auto b = machine_b();
  const auto tb = replay_search(b, order, 15);
  ASSERT_EQ(tb.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i)
    EXPECT_EQ(tb.entry(i).config, order[i]);
}

ml::RegressorPtr fit_model(const SearchTrace& source,
                           const ParamSpace& space) {
  ml::ForestParams fp;
  fp.num_trees = 24;
  fp.seed = 5;
  return fit_surrogate(source, space, fp);
}

TEST(PrunedSearch, OnlyEvaluatesPredictedGoodConfigs) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 21;
  const auto source = random_search(a, rs_opt);
  const auto model = fit_model(source, a.space());

  auto b = machine_b();
  PrunedSearchOptions opt;
  opt.max_evals = 30;
  opt.seed = 21;
  opt.delta_percent = 20.0;
  const auto trace = pruned_random_search(b, *model, opt);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_LE(trace.size(), 30u);

  // Every evaluated configuration passed the model's cutoff: its
  // prediction is below the 20% quantile estimated over a fresh pool,
  // so in particular below the median prediction of random configs.
  ConfigStream probe(b.space(), 777);
  std::vector<double> probe_pred;
  for (int i = 0; i < 500; ++i)
    probe_pred.push_back(model->predict(b.space().features(*probe.next())));
  const double median_pred = quantile(probe_pred, 0.5);
  for (const auto& e : trace.entries())
    EXPECT_LT(model->predict(b.space().features(e.config)), median_pred);
}

TEST(PrunedSearch, FallsBackWhenModelPrunesEverything) {
  // A constant model makes every prediction equal to the cutoff, so the
  // strict '<' never admits a configuration; the fallback must still
  // return evaluations.
  ml::RandomForest constant_model({.num_trees = 1, .seed = 1});
  ml::Dataset d(4, {"p0", "p1", "p2", "p3"});
  d.add_row(std::vector<double>{0, 0, 0, 0}, 5.0);
  d.add_row(std::vector<double>{1, 1, 1, 1}, 5.0);
  constant_model.fit(d);

  auto b = machine_b();
  PrunedSearchOptions opt;
  opt.max_evals = 10;
  const auto trace = pruned_random_search(b, constant_model, opt);
  EXPECT_GT(trace.size(), 0u);
}

TEST(PrunedSearch, RejectsBadDelta) {
  auto b = machine_b();
  ml::RandomForest model;
  PrunedSearchOptions opt;
  opt.delta_percent = 0;
  EXPECT_THROW(pruned_random_search(b, model, opt), Error);
}

TEST(BiasedSearch, EvaluatesInAscendingPredictedOrder) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 31;
  const auto source = random_search(a, rs_opt);
  const auto model = fit_model(source, a.space());

  auto b = machine_b();
  BiasedSearchOptions opt;
  opt.max_evals = 25;
  opt.pool_size = 1000;
  opt.seed = 31;
  const auto trace = biased_random_search(b, *model, opt);
  ASSERT_EQ(trace.size(), 25u);
  double prev = -1e300;
  for (const auto& e : trace.entries()) {
    const double pred = model->predict(b.space().features(e.config));
    EXPECT_GE(pred, prev - 1e-12);
    prev = pred;
  }
}

TEST(BiasedSearch, TransfersOptimumOnCorrelatedMachines) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 150;
  rs_opt.seed = 41;
  const auto source = random_search(a, rs_opt);
  const auto model = fit_model(source, a.space());

  auto b = machine_b();
  BiasedSearchOptions opt;
  opt.max_evals = 20;
  opt.pool_size = 2000;
  opt.seed = 41;
  const auto biased = biased_random_search(b, *model, opt);

  auto b2 = machine_b();
  rs_opt.max_evals = 20;
  const auto plain = random_search(b2, rs_opt);
  // The guided search must find a config at least as good as plain RS
  // with the same budget on this strongly correlated pair.
  EXPECT_LE(biased.best_seconds(), plain.best_seconds());
}

TEST(ModelFree, PrunedUsesSourceQuantile) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 51;
  const auto source = random_search(a, rs_opt);

  auto b = machine_b();
  const auto trace = model_free_pruned(b, source, 20.0);
  // Exactly the best-20%-on-A subset is evaluated (100 * 0.2 = 20 minus
  // quantile boundary effects).
  EXPECT_GE(trace.size(), 15u);
  EXPECT_LE(trace.size(), 20u);
  // Every evaluated config came from the source trace.
  std::set<std::uint64_t> source_configs;
  for (const auto& e : source.entries())
    source_configs.insert(a.space().config_hash(e.config));
  for (const auto& e : trace.entries())
    EXPECT_TRUE(source_configs.count(b.space().config_hash(e.config)));
}

TEST(ModelFree, BiasedVisitsSourceAscending) {
  auto a = machine_a();
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 50;
  rs_opt.seed = 61;
  const auto source = random_search(a, rs_opt);

  auto b = machine_b();
  const auto trace = model_free_biased(b, source);
  ASSERT_EQ(trace.size(), 50u);
  // The evaluation order on B follows ascending source run time; since
  // the machines share the optimum, B's run times are near-sorted. Check
  // the first evaluated config is the source's best.
  EXPECT_EQ(trace.entry(0).config, source.best_config());
}

TEST(ModelFree, EmptySourceThrows) {
  auto b = machine_b();
  const SearchTrace empty;
  EXPECT_THROW(model_free_pruned(b, empty, 20.0), Error);
  EXPECT_THROW(model_free_biased(b, empty), Error);
}

}  // namespace
}  // namespace portatune::tuner
