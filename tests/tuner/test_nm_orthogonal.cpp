#include <gtest/gtest.h>

#include "tests/tuner/synthetic.hpp"
#include "tuner/heuristics.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator convex() {
  return QuadraticEvaluator("host", {6, 3, 8, 2}, {1, 1, 1, 1});
}

TEST(NelderMead, ConvergesNearOptimumOnConvexLandscape) {
  auto eval = convex();
  NelderMeadOptions opt;
  opt.max_evals = 150;
  opt.seed = 1;
  const auto trace = nelder_mead_search(eval, opt);
  EXPECT_LE(trace.size(), 150u);
  EXPECT_LT(trace.best_seconds(), 6.0);  // optimum is 1.0
  EXPECT_EQ(trace.algorithm(), "NM");
}

TEST(NelderMead, DeterministicForSeed) {
  auto e1 = convex();
  auto e2 = convex();
  NelderMeadOptions opt;
  opt.max_evals = 60;
  opt.seed = 2;
  const auto t1 = nelder_mead_search(e1, opt);
  const auto t2 = nelder_mead_search(e2, opt);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_EQ(t1.entry(i).config, t2.entry(i).config);
}

TEST(NelderMead, HandlesFailures) {
  auto eval = convex();
  eval.fail_when = [](const ParamConfig& c) { return c[2] == 7; };
  NelderMeadOptions opt;
  opt.max_evals = 80;
  opt.seed = 3;
  const auto trace = nelder_mead_search(eval, opt);
  EXPECT_GT(trace.size(), 5u);
  for (const auto& e : trace.entries()) EXPECT_NE(e.config[2], 7);
}

TEST(Orthogonal, ExactOptimumOnSeparableLandscape) {
  // Coordinate sweeps solve separable quadratics exactly; the space has
  // 4 params x 10 values, so one full round costs <= 37 evaluations.
  auto eval = convex();
  OrthogonalSearchOptions opt;
  opt.max_evals = 80;
  opt.seed = 4;
  const auto trace = orthogonal_search(eval, opt);
  EXPECT_NEAR(trace.best_seconds(), eval.optimum_value(), 1e-12);
  EXPECT_EQ(trace.algorithm(), "OS");
}

TEST(Orthogonal, RespectsBudgetStrictly) {
  auto eval = convex();
  OrthogonalSearchOptions opt;
  opt.max_evals = 25;
  opt.seed = 5;
  const auto trace = orthogonal_search(eval, opt);
  EXPECT_LE(trace.size(), 25u);
}

TEST(Orthogonal, SurrogateSeedingHelpsFirstSweep) {
  QuadraticEvaluator a("A", {6, 3, 8, 2}, {1, 1, 1, 1});
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 6;
  const auto src = random_search(a, rs_opt);
  ml::ForestParams fp;
  fp.num_trees = 24;
  const auto model = fit_surrogate(src, a.space(), fp);

  auto cold_eval = convex();
  auto warm_eval = convex();
  OrthogonalSearchOptions cold;
  cold.max_evals = 12;  // less than one full sweep
  cold.seed = 7;
  OrthogonalSearchOptions warm = cold;
  warm.surrogate = model.get();
  const auto cold_trace = orthogonal_search(cold_eval, cold);
  const auto warm_trace = orthogonal_search(warm_eval, warm);
  EXPECT_LE(warm_trace.entry(0).seconds, cold_trace.entry(0).seconds);
}

}  // namespace
}  // namespace portatune::tuner
