#include "tuner/faults.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator backend() {
  return QuadraticEvaluator("A", {7, 2, 5, 1}, {1.0, 0.5, 2.0, 0.25});
}

TEST(FaultInjection, RejectsInvalidRates) {
  auto eval = backend();
  FaultProfile p;
  p.transient_rate = 1.5;
  EXPECT_THROW(FaultInjectingEvaluator(eval, p), Error);
  p = {};
  p.spike_factor = 0.5;
  EXPECT_THROW(FaultInjectingEvaluator(eval, p), Error);
}

TEST(FaultInjection, SameSeedSameFaultSchedule) {
  auto a = backend();
  auto b = backend();
  FaultProfile profile;
  profile.transient_rate = 0.2;
  profile.deterministic_rate = 0.1;
  profile.spike_rate = 0.1;
  profile.seed = 42;
  FaultInjectingEvaluator fa(a, profile);
  FaultInjectingEvaluator fb(b, profile);

  ConfigStream stream(a.space(), 7);
  for (int i = 0; i < 200; ++i) {
    const auto config = stream.next();
    ASSERT_TRUE(config.has_value());
    // Two calls per config so the per-config attempt counters advance.
    for (int rep = 0; rep < 2; ++rep) {
      const auto ra = fa.evaluate(*config);
      const auto rb = fb.evaluate(*config);
      EXPECT_EQ(ra.ok, rb.ok);
      EXPECT_EQ(ra.seconds, rb.seconds);
      EXPECT_EQ(ra.failure_kind, rb.failure_kind);
      EXPECT_EQ(ra.error, rb.error);
    }
  }
  EXPECT_EQ(fa.stats().transient_injected, fb.stats().transient_injected);
  EXPECT_GT(fa.stats().transient_injected, 0u);
  EXPECT_GT(fa.stats().deterministic_injected, 0u);
  EXPECT_GT(fa.stats().spikes_injected, 0u);
}

TEST(FaultInjection, TransientRateIsApproximatelyObserved) {
  auto eval = backend();
  FaultProfile profile;
  profile.transient_rate = 0.2;
  profile.seed = 3;
  FaultInjectingEvaluator faulty(eval, profile);

  ConfigStream stream(eval.space(), 11);
  std::size_t failures = 0;
  const std::size_t n = 2000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto config = stream.next();
    ASSERT_TRUE(config.has_value());
    if (!faulty.evaluate(*config).ok) ++failures;
  }
  const double observed = static_cast<double>(failures) / n;
  EXPECT_GT(observed, 0.15);
  EXPECT_LT(observed, 0.25);
}

TEST(FaultInjection, DeterministicFailuresPersistPerConfig) {
  auto eval = backend();
  FaultProfile profile;
  profile.deterministic_rate = 0.3;
  profile.seed = 9;
  FaultInjectingEvaluator faulty(eval, profile);

  // Find one condemned and one healthy configuration.
  ConfigStream stream(eval.space(), 5);
  std::optional<ParamConfig> bad, good;
  while (!bad || !good) {
    auto c = stream.next();
    ASSERT_TRUE(c.has_value());
    (faulty.is_deterministically_failing(*c) ? bad : good) = *c;
  }

  for (int i = 0; i < 5; ++i) {
    const auto r = faulty.evaluate(*bad);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failure_kind, FailureKind::Deterministic);
    EXPECT_TRUE(faulty.evaluate(*good).ok);
  }
}

TEST(FaultInjection, SpikesScaleTheMeasurement) {
  auto eval = backend();
  auto clean = backend();
  FaultProfile profile;
  profile.spike_rate = 1.0;
  profile.spike_factor = 10.0;
  FaultInjectingEvaluator faulty(eval, profile);

  const ParamConfig config{1, 2, 3, 4};
  const auto spiked = faulty.evaluate(config);
  const auto truth = clean.evaluate(config);
  ASSERT_TRUE(spiked.ok);
  EXPECT_DOUBLE_EQ(spiked.seconds, 10.0 * truth.seconds);
  EXPECT_EQ(faulty.stats().spikes_injected, 1u);
}

TEST(FaultInjection, DelaysBlockForRealTime) {
  auto eval = backend();
  FaultProfile profile;
  profile.delay_rate = 1.0;
  profile.delay_seconds = 0.02;
  FaultInjectingEvaluator faulty(eval, profile);

  const auto start = std::chrono::steady_clock::now();
  const auto r = faulty.evaluate({0, 0, 0, 0});
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(r.ok);  // a delay slows but does not fail the evaluation
  EXPECT_GE(waited, 0.02);
  EXPECT_EQ(faulty.stats().delays_injected, 1u);
}

TEST(FaultInjection, HangsParkOnTheAmbientTokenAndFailAsTimeout) {
  auto eval = backend();
  FaultProfile profile;
  profile.hang_rate = 1.0;
  profile.hang_stall_seconds = 30.0;  // would stall half a minute...
  FaultInjectingEvaluator faulty(eval, profile);

  CancellationSource cancel;
  cancel.request_cancel();  // ...but the token is already cancelled
  CancellationScope scope(cancel.token());
  const auto start = std::chrono::steady_clock::now();
  const auto r = faulty.evaluate({0, 0, 0, 0});
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, FailureKind::Timeout);
  EXPECT_LT(waited, 5.0);  // woken by the token, not the 30 s stall
  EXPECT_EQ(faulty.stats().hangs_injected, 1u);
}

TEST(FaultInjection, ParsesFaultSpecs) {
  // Historic spelling: a bare number is a transient rate.
  EXPECT_DOUBLE_EQ(parse_fault_spec("0.25").transient_rate, 0.25);

  const FaultProfile p = parse_fault_spec(
      "transient:0.1,det:0.05,hang:0.02,hang-stall:12,delay:0.5,"
      "delay-seconds:0.01,spike:0.2,spike-factor:4,seed:7");
  EXPECT_DOUBLE_EQ(p.transient_rate, 0.1);
  EXPECT_DOUBLE_EQ(p.deterministic_rate, 0.05);
  EXPECT_DOUBLE_EQ(p.hang_rate, 0.02);
  EXPECT_DOUBLE_EQ(p.hang_stall_seconds, 12.0);
  EXPECT_DOUBLE_EQ(p.delay_rate, 0.5);
  EXPECT_DOUBLE_EQ(p.delay_seconds, 0.01);
  EXPECT_DOUBLE_EQ(p.spike_rate, 0.2);
  EXPECT_DOUBLE_EQ(p.spike_factor, 4.0);
  EXPECT_EQ(p.seed, 7u);

  EXPECT_THROW(parse_fault_spec("bogus:1"), Error);
  EXPECT_THROW(parse_fault_spec("hang:not-a-number"), Error);
}

TEST(FaultInjection, ResilientEvaluatorRecoversInjectedTransients) {
  auto eval = backend();
  FaultProfile profile;
  profile.transient_rate = 0.15;
  profile.seed = 17;
  FaultInjectingEvaluator faulty(eval, profile);
  RetryPolicy policy;
  policy.max_attempts = 4;
  ResilientEvaluator resilient(faulty, policy);

  RandomSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 13;
  const auto trace = random_search(resilient, opt);
  EXPECT_EQ(trace.size(), 60u);  // the search still fills its budget
  EXPECT_GT(resilient.stats().retries, 0u);
  EXPECT_GT(trace.failure_stats().attempts, 60u);
  EXPECT_GT(trace.failure_stats().overhead_seconds, 0.0);
}

}  // namespace
}  // namespace portatune::tuner
