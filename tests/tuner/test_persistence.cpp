#include "tuner/persistence.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/random_search.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

SearchTrace sample_trace(QuadraticEvaluator& eval, std::size_t n = 25) {
  RandomSearchOptions opt;
  opt.max_evals = n;
  opt.seed = 13;
  return random_search(eval, opt);
}

TEST(Persistence, RoundTripsExactly) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const auto original = sample_trace(eval);

  std::stringstream buf;
  save_trace_csv(buf, original, eval.space());
  const auto loaded = load_trace_csv(buf, eval.space());

  EXPECT_EQ(loaded.algorithm(), "RS");
  EXPECT_EQ(loaded.problem(), "quadratic");
  EXPECT_EQ(loaded.machine(), "M");
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.entry(i).config, original.entry(i).config);
    EXPECT_DOUBLE_EQ(loaded.entry(i).seconds, original.entry(i).seconds);
    EXPECT_EQ(loaded.entry(i).draw_index, original.entry(i).draw_index);
  }
  EXPECT_DOUBLE_EQ(loaded.best_seconds(), original.best_seconds());
}

TEST(Persistence, FileRoundTrip) {
  QuadraticEvaluator eval("M", {2, 3, 4, 5}, {1, 2, 1, 2});
  const auto original = sample_trace(eval, 10);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  save_trace_csv(path, original, eval.space());
  const auto loaded = load_trace_csv(path, eval.space());
  EXPECT_EQ(loaded.size(), 10u);
}

TEST(Persistence, LoadedTraceFitsSurrogates) {
  // The round-tripped T_a must be usable as transfer input.
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const auto original = sample_trace(eval, 40);
  std::stringstream buf;
  save_trace_csv(buf, original, eval.space());
  const auto loaded = load_trace_csv(buf, eval.space());
  const auto data = loaded.to_dataset(eval.space());
  EXPECT_EQ(data.num_rows(), 40u);
  EXPECT_EQ(data.num_features(), 4u);
}

TEST(Persistence, CheckpointRoundTripsPendingSuggestions) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  SearchCheckpoint snapshot;
  snapshot.trace = sample_trace(eval, 10);
  snapshot.draws = 14;
  snapshot.pending = {{0xdeadbeefcafef00dULL, 12}, {0x42ULL, 13}};

  std::stringstream buf;
  save_checkpoint_csv(buf, snapshot, eval.space());
  const auto loaded = load_checkpoint_csv(buf, eval.space());

  EXPECT_EQ(loaded.draws, 14u);
  ASSERT_EQ(loaded.pending.size(), 2u);
  EXPECT_EQ(loaded.pending[0].first, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(loaded.pending[0].second, 12u);
  EXPECT_EQ(loaded.pending[1].first, 0x42ULL);
  EXPECT_EQ(loaded.pending[1].second, 13u);

  // Checkpoints with no outstanding suggestions stay byte-identical to
  // the pre-`# pending` format: the row is simply absent.
  snapshot.pending.clear();
  std::stringstream plain;
  save_checkpoint_csv(plain, snapshot, eval.space());
  EXPECT_EQ(plain.str().find("# pending"), std::string::npos);
}

TEST(Persistence, RejectsForeignFiles) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::stringstream bad("hello,world\n1,2\n");
  EXPECT_THROW(load_trace_csv(bad, eval.space()), Error);
}

TEST(Persistence, RejectsMismatchedSpace) {
  QuadraticEvaluator a("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const auto trace = sample_trace(a, 5);
  std::stringstream buf;
  save_trace_csv(buf, trace, a.space());

  // A space with different parameter names must be rejected.
  ParamSpace other;
  other.add("x", range_values(0, 9));
  other.add("y", range_values(0, 9));
  other.add("z", range_values(0, 9));
  other.add("w", range_values(0, 9));
  EXPECT_THROW(load_trace_csv(buf, other), Error);
}

TEST(Persistence, RejectsValuesOutsideTheDomain) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::stringstream buf(
      "# portatune-trace v1,RS,quadratic,M\n"
      "p0,p1,p2,p3,seconds,draw_index\n"
      "99,0,0,0,1.5,0\n");  // 99 is not a value of p0 (0..9)
  EXPECT_THROW(load_trace_csv(buf, eval.space()), Error);
}

TEST(Persistence, RejectsNegativeRunTimes) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::stringstream buf(
      "# portatune-trace v1,RS,quadratic,M\n"
      "p0,p1,p2,p3,seconds,draw_index\n"
      "1,2,3,4,-1.0,0\n");
  EXPECT_THROW(load_trace_csv(buf, eval.space()), Error);
}

TEST(Persistence, MissingFileThrows) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv", eval.space()),
               Error);
}

}  // namespace
}  // namespace portatune::tuner
