#include "tuner/heuristics.hpp"

#include <gtest/gtest.h>

#include "tests/tuner/synthetic.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

QuadraticEvaluator convex() {
  return QuadraticEvaluator("host", {6, 3, 8, 2}, {1.0, 1.0, 1.0, 1.0});
}

TEST(Genetic, RespectsBudgetAndFindsGoodPoint) {
  auto eval = convex();
  GeneticOptions opt;
  opt.max_evals = 80;
  opt.seed = 1;
  const auto trace = genetic_search(eval, opt);
  EXPECT_LE(trace.size(), 80u);
  EXPECT_GT(trace.size(), 40u);
  // Optimum value is 1.0; GA should get close on a separable quadratic.
  EXPECT_LT(trace.best_seconds(), 10.0);
  EXPECT_EQ(trace.algorithm(), "GA");
}

TEST(Genetic, TinyPopulationRejected) {
  auto eval = convex();
  GeneticOptions opt;
  opt.population = 1;
  EXPECT_THROW(genetic_search(eval, opt), Error);
}

TEST(Annealing, ConvergesOnConvexLandscape) {
  auto eval = convex();
  AnnealingOptions opt;
  opt.max_evals = 120;
  opt.seed = 2;
  const auto trace = annealing_search(eval, opt);
  EXPECT_LE(trace.size(), 120u);
  EXPECT_LT(trace.best_seconds(), 15.0);
  EXPECT_EQ(trace.algorithm(), "SA");
}

TEST(PatternSearch, DescendsToLocalOptimum) {
  auto eval = convex();
  PatternSearchOptions opt;
  opt.max_evals = 150;
  opt.seed = 3;
  const auto trace = pattern_search(eval, opt);
  // The quadratic is separable and unimodal: coordinate descent from any
  // start reaches the exact optimum given the budget.
  EXPECT_NEAR(trace.best_seconds(), eval.optimum_value(), 1e-9);
}

TEST(Ensemble, FindsGoodPointAndTracksBudget) {
  auto eval = convex();
  EnsembleOptions opt;
  opt.max_evals = 120;
  opt.seed = 4;
  const auto trace = ensemble_search(eval, opt);
  EXPECT_LE(trace.size(), 120u);
  EXPECT_LT(trace.best_seconds(), 8.0);
  EXPECT_EQ(trace.algorithm(), "Ensemble");
}

TEST(Heuristics, AllDeterministicForSeed) {
  for (int which = 0; which < 4; ++which) {
    auto e1 = convex();
    auto e2 = convex();
    SearchTrace t1, t2;
    switch (which) {
      case 0: {
        GeneticOptions o;
        o.max_evals = 40;
        o.seed = 9;
        t1 = genetic_search(e1, o);
        t2 = genetic_search(e2, o);
        break;
      }
      case 1: {
        AnnealingOptions o;
        o.max_evals = 40;
        o.seed = 9;
        t1 = annealing_search(e1, o);
        t2 = annealing_search(e2, o);
        break;
      }
      case 2: {
        PatternSearchOptions o;
        o.max_evals = 40;
        o.seed = 9;
        t1 = pattern_search(e1, o);
        t2 = pattern_search(e2, o);
        break;
      }
      default: {
        EnsembleOptions o;
        o.max_evals = 40;
        o.seed = 9;
        t1 = ensemble_search(e1, o);
        t2 = ensemble_search(e2, o);
      }
    }
    ASSERT_EQ(t1.size(), t2.size()) << "algorithm " << which;
    for (std::size_t i = 0; i < t1.size(); ++i)
      EXPECT_EQ(t1.entry(i).config, t2.entry(i).config)
          << "algorithm " << which;
  }
}

TEST(Heuristics, SurrogateSeedingImprovesFirstEvaluations) {
  // Fit a surrogate on machine A, seed machine B's searches with it; the
  // machines share the optimum, so seeded starts must be better than
  // random ones on average.
  QuadraticEvaluator a("A", {6, 3, 8, 2}, {1, 1, 1, 1});
  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 120;
  rs_opt.seed = 17;
  const auto source = random_search(a, rs_opt);
  ml::ForestParams fp;
  fp.num_trees = 24;
  const auto model = fit_surrogate(source, a.space(), fp);

  auto cold_eval = convex();
  auto warm_eval = convex();
  GeneticOptions cold;
  cold.max_evals = 20;
  cold.population = 10;
  cold.seed = 18;
  GeneticOptions warm = cold;
  warm.surrogate = model.get();
  const auto cold_trace = genetic_search(cold_eval, cold);
  const auto warm_trace = genetic_search(warm_eval, warm);
  // The warm initial population is drawn from the model's predicted-best
  // pool; its first few evaluations should dominate random draws.
  double cold_first = 0, warm_first = 0;
  for (std::size_t i = 0; i < 5 && i < cold_trace.size(); ++i)
    cold_first += cold_trace.entry(i).seconds;
  for (std::size_t i = 0; i < 5 && i < warm_trace.size(); ++i)
    warm_first += warm_trace.entry(i).seconds;
  EXPECT_LT(warm_first, cold_first);
}

TEST(Heuristics, FailuresDoNotStallSearches) {
  auto eval = convex();
  eval.fail_when = [](const ParamConfig& c) { return c[1] == 4; };
  PatternSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 21;
  const auto trace = pattern_search(eval, opt);
  EXPECT_GT(trace.size(), 10u);
  for (const auto& e : trace.entries()) EXPECT_NE(e.config[1], 4);
}

}  // namespace
}  // namespace portatune::tuner
