// Fuzz-style persistence hardening tests: every loader must reject a
// truncated or bit-flipped file with a portatune::Error (the v3 checksum
// footer, see persistence.hpp), never crash, and never silently return a
// partial trace a resumed search would then diverge from. Legacy v1/v2
// files carry no footer and must keep loading.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/error.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;

std::string sample_trace_bytes(QuadraticEvaluator& eval, std::size_t n) {
  RandomSearchOptions opt;
  opt.max_evals = n;
  opt.seed = 13;
  const auto trace = random_search(eval, opt);
  std::ostringstream os;
  save_trace_csv(os, trace, eval.space());
  return os.str();
}

std::string sample_checkpoint_bytes(QuadraticEvaluator& eval,
                                    std::size_t n) {
  RandomSearchOptions opt;
  opt.max_evals = n;
  opt.seed = 13;
  SearchCheckpoint snapshot;
  snapshot.trace = random_search(eval, opt);
  snapshot.draws = snapshot.trace.size() + 3;
  snapshot.quarantine = {0xdeadbeefULL, 0x1234ULL};
  std::ostringstream os;
  save_checkpoint_csv(os, snapshot, eval.space());
  return os.str();
}

TEST(Corruption, TraceRejectsEveryTruncation) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const std::string bytes = sample_trace_bytes(eval, 12);
  // Every proper prefix except "footer minus its trailing newline" must
  // throw: the checksum line is last, so truncation either removes it
  // (footer missing) or tears it (footer malformed).
  for (std::size_t len = 0; len + 2 <= bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    EXPECT_THROW(load_trace_csv(in, eval.space()), Error)
        << "prefix of " << len << " bytes parsed as a valid trace";
  }
}

TEST(Corruption, TraceToleratesOnlyAMissingFinalNewline) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const std::string bytes = sample_trace_bytes(eval, 12);
  std::istringstream in(bytes.substr(0, bytes.size() - 1));
  EXPECT_EQ(load_trace_csv(in, eval.space()).size(), 12u);
}

TEST(Corruption, TraceRejectsEverySingleByteFlip) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const std::string bytes = sample_trace_bytes(eval, 12);
  // Flips inside the payload trip the checksum; flips inside the footer
  // itself make the footer malformed or mismatched; flips in the magic
  // line either break the magic or downgrade the version, leaving a
  // stray "# checksum" row the legacy parsers reject. All must throw.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] ^= 0x01;
    std::istringstream in(mutated);
    EXPECT_THROW(load_trace_csv(in, eval.space()), Error)
        << "flip at byte " << pos << " parsed as a valid trace";
  }
}

TEST(Corruption, CheckpointRejectsEveryTruncation) {
  QuadraticEvaluator eval("M", {2, 3, 4, 5}, {1, 2, 1, 2});
  const std::string bytes = sample_checkpoint_bytes(eval, 10);
  for (std::size_t len = 0; len + 2 <= bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    EXPECT_THROW(load_checkpoint_csv(in, eval.space()), Error)
        << "prefix of " << len << " bytes parsed as a valid checkpoint";
  }
}

TEST(Corruption, CheckpointRejectsEverySingleByteFlip) {
  QuadraticEvaluator eval("M", {2, 3, 4, 5}, {1, 2, 1, 2});
  const std::string bytes = sample_checkpoint_bytes(eval, 10);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] ^= 0x01;
    std::istringstream in(mutated);
    EXPECT_THROW(load_checkpoint_csv(in, eval.space()), Error)
        << "flip at byte " << pos << " parsed as a valid checkpoint";
  }
}

TEST(Corruption, CheckpointRoundTripsThroughTheChecksum) {
  QuadraticEvaluator eval("M", {2, 3, 4, 5}, {1, 2, 1, 2});
  const std::string bytes = sample_checkpoint_bytes(eval, 10);
  std::istringstream in(bytes);
  const auto snapshot = load_checkpoint_csv(in, eval.space());
  EXPECT_EQ(snapshot.trace.size(), 10u);
  EXPECT_EQ(snapshot.draws, 13u);
  EXPECT_EQ(snapshot.quarantine.size(), 2u);
}

TEST(Corruption, LegacyV1TraceStillLoads) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::istringstream in(
      "# portatune-trace v1,RS,quadratic,M\n"
      "p0,p1,p2,p3,seconds,draw_index\n"
      "1,2,3,4,1.5,0\n"
      "4,3,2,1,2.5,3\n");
  const auto trace = load_trace_csv(in, eval.space());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.entry(0).seconds, 1.5);
  EXPECT_EQ(trace.entry(1).draw_index, 3u);
  EXPECT_DOUBLE_EQ(trace.entry(0).wall_unix, 0.0);  // v1: unknown
}

TEST(Corruption, LegacyV2TraceStillLoads) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::istringstream in(
      "# portatune-trace v2,RS,quadratic,M\n"
      "p0,p1,p2,p3,seconds,draw_index,wall_unix\n"
      "1,2,3,4,1.5,0,1700000000.25\n");
  const auto trace = load_trace_csv(in, eval.space());
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.entry(0).wall_unix, 1700000000.25);
}

TEST(Corruption, LegacyV2CheckpointStillLoads) {
  QuadraticEvaluator eval("M", {1, 1, 1, 1}, {1, 1, 1, 1});
  std::istringstream in(
      "# portatune-checkpoint v2,RS,quadratic,M\n"
      "# draws,5\n"
      "# clock,1.25\n"
      "# stop,\n"
      "# stats,4,1,1,0,0,0.5\n"
      "p0,p1,p2,p3,seconds,elapsed,draw_index,wall_unix\n"
      "1,2,3,4,1.5,0.5,0,1700000000\n"
      "4,3,2,1,2.5,1.0,2,1700000001\n");
  const auto snapshot = load_checkpoint_csv(in, eval.space());
  EXPECT_EQ(snapshot.trace.size(), 2u);
  EXPECT_EQ(snapshot.draws, 5u);
  EXPECT_EQ(snapshot.trace.failure_stats().failures, 1u);
}

TEST(Corruption, ForgedFooterIsRejected) {
  // A correct-looking footer over doctored rows: the hash must win.
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  std::string bytes = sample_trace_bytes(eval, 8);
  const auto footer = bytes.rfind("# checksum,");
  ASSERT_NE(footer, std::string::npos);
  // Duplicate the first data row region by swapping two digits far from
  // the footer, keeping the original (now stale) checksum.
  const auto row = bytes.find('\n', bytes.find('\n') + 1) + 1;
  ASSERT_LT(row, footer);
  std::swap(bytes[row], bytes[row + 2]);
  if (bytes[row] == bytes[row + 2]) bytes[row] ^= 0x02;
  std::istringstream in(bytes);
  EXPECT_THROW(load_trace_csv(in, eval.space()), Error);
}

TEST(Corruption, ChecksumDiagnosticsNameTheFailure) {
  QuadraticEvaluator eval("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  const std::string bytes = sample_trace_bytes(eval, 6);
  const auto footer = bytes.rfind("# checksum,");

  try {  // footer cut off entirely
    std::istringstream in(bytes.substr(0, footer));
    load_trace_csv(in, eval.space());
    FAIL() << "truncated trace loaded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum footer is missing"),
              std::string::npos)
        << e.what();
  }

  try {  // footer torn mid-digits
    std::istringstream in(bytes.substr(0, footer + 15));
    load_trace_csv(in, eval.space());
    FAIL() << "torn-footer trace loaded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("footer is malformed"),
              std::string::npos)
        << e.what();
  }

  try {  // payload corrupted under an intact footer
    std::string mutated = bytes;
    mutated[footer - 3] ^= 0x04;
    std::istringstream in(mutated);
    load_trace_csv(in, eval.space());
    FAIL() << "corrupted trace loaded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace portatune::tuner
