// Guarded-transfer tests: TrustMonitor state machine units, and the
// RS_p / RS_b behavioral guarantees — a misleading surrogate cannot make
// the guarded searches much worse than plain RS, an accurate surrogate
// leaves their traces bit-identical to the unguarded runs, and the
// guard's adaptive decisions survive parallel evaluation unchanged.
#include "tuner/guard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ml/model.hpp"
#include "obs/sink.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/parallel.hpp"
#include "tuner/persistence.hpp"
#include "tuner/random_search.hpp"

namespace portatune::tuner {
namespace {

using testing::QuadraticEvaluator;
using testing::grid_space;

// ---------------------------------------------------------------------
// Synthetic surrogates with closed-form predictions: what the model
// believes is set by construction, independent of any training data.
// ---------------------------------------------------------------------

/// Predicts a quadratic bowl around `optimum`. Aimed at the evaluator's
/// true optimum it is a perfect surrogate; aimed elsewhere it is an
/// adversarial one (ranks the true-best configurations worst).
class BowlModel final : public ml::Regressor {
 public:
  explicit BowlModel(std::vector<double> optimum, double base = 1.0)
      : optimum_(std::move(optimum)), base_(base) {}
  void fit(const ml::Dataset&) override {}
  double predict(std::span<const double> x) const override {
    double y = base_;
    for (std::size_t i = 0; i < x.size(); ++i)
      y += (x[i] - optimum_[i]) * (x[i] - optimum_[i]);
    return y;
  }
  bool is_fitted() const noexcept override { return true; }
  std::string name() const override { return "bowl"; }

 private:
  std::vector<double> optimum_;
  double base_;
};

/// Predicts cheap only for the tiny corner v0==0 && v1==0, expensive for
/// everything else: the 20 % pruning cutoff lands above the plateau, so
/// an unguarded RS_p prunes ~99 % of all draws — the starvation case.
class PlateauModel final : public ml::Regressor {
 public:
  void fit(const ml::Dataset&) override {}
  double predict(std::span<const double> x) const override {
    return (x[0] == 0.0 && x[1] == 0.0) ? 0.1 : 1.0;
  }
  bool is_fitted() const noexcept override { return true; }
  std::string name() const override { return "plateau"; }
};

std::string canonical_csv(const SearchTrace& t, const ParamSpace& space) {
  SearchTrace z(t.algorithm(), t.problem(), t.machine());
  for (const auto& e : t.entries())
    z.restore_entry(e.config, e.seconds, e.elapsed, e.draw_index, 0.0);
  std::ostringstream os;
  save_trace_csv(os, z, space);
  return os.str();
}

// ---------------------------------------------------------------------
// TrustMonitor units
// ---------------------------------------------------------------------

TEST(TrustMonitor, TrustsWithoutEvidence) {
  GuardOptions opt;
  opt.enabled = true;
  TrustMonitor m(opt, "test");
  EXPECT_DOUBLE_EQ(m.trust(), 1.0);
  // Fewer than min_observations pairs — even wildly anti-correlated
  // ones — must not move the state.
  for (int i = 0; i < 9; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), i + 1);
  EXPECT_EQ(m.state(), GuardState::Trusted);
  EXPECT_DOUBLE_EQ(m.trust(), 1.0);
}

TEST(TrustMonitor, AnticorrelationCollapsesTrust) {
  GuardOptions opt;
  opt.enabled = true;
  TrustMonitor m(opt, "test");
  for (int i = 0; i < 10; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), i + 1);
  // Ten perfectly anti-correlated pairs: spearman == -1, straight past
  // both floors into Disabled.
  EXPECT_EQ(m.state(), GuardState::Disabled);
  EXPECT_LT(m.trust(), opt.disable_floor);
  ASSERT_EQ(m.timeline().size(), 1u);
  EXPECT_EQ(m.timeline()[0].reason, "trust-collapse");
  EXPECT_EQ(m.timeline()[0].from, GuardState::Trusted);
}

TEST(TrustMonitor, DisabledIsSticky) {
  GuardOptions opt;
  opt.enabled = true;
  TrustMonitor m(opt, "test");
  for (int i = 0; i < 10; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), i + 1);
  ASSERT_EQ(m.state(), GuardState::Disabled);
  // A flood of perfectly correlated evidence afterwards: still Disabled.
  for (int i = 0; i < 50; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(i), 10 + i + 1);
  EXPECT_EQ(m.state(), GuardState::Disabled);
  EXPECT_EQ(m.timeline().size(), 1u);
}

TEST(TrustMonitor, DegradesAndRecovers) {
  GuardOptions opt;
  opt.enabled = true;
  opt.disable_floor = -2.0;  // unreachable: isolate the Degraded band
  TrustMonitor m(opt, "test");
  std::size_t evals = 0;
  for (int i = 0; i < 12; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), ++evals);
  EXPECT_EQ(m.state(), GuardState::Degraded);
  // The window is 25 wide: feed enough correlated pairs to flush the
  // anti-correlated prefix out and lift the windowed statistic back up.
  for (int i = 0; i < 40; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(i), ++evals);
  EXPECT_EQ(m.state(), GuardState::Trusted);
  ASSERT_EQ(m.timeline().size(), 2u);
  EXPECT_EQ(m.timeline()[0].reason, "trust-floor");
  EXPECT_EQ(m.timeline()[1].reason, "recovered");
}

TEST(TrustMonitor, StarvationCapTripsOnce) {
  GuardOptions opt;
  opt.enabled = true;
  opt.max_consecutive_prunes = 5;
  TrustMonitor m(opt, "test");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(m.note_prune(0));
  EXPECT_EQ(m.state(), GuardState::Trusted);
  EXPECT_TRUE(m.note_prune(0));  // the 6th trips the cap
  EXPECT_EQ(m.state(), GuardState::Disabled);
  EXPECT_FALSE(m.note_prune(0));  // already disabled: no re-trip
  ASSERT_EQ(m.timeline().size(), 1u);
  EXPECT_EQ(m.timeline()[0].reason, "starvation");
}

TEST(TrustMonitor, PassResetsTheConsecutiveCounter) {
  GuardOptions opt;
  opt.enabled = true;
  opt.max_consecutive_prunes = 5;
  TrustMonitor m(opt, "test");
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) EXPECT_FALSE(m.note_prune(0));
    m.note_pass();  // a survivor resets the run length
  }
  EXPECT_EQ(m.state(), GuardState::Trusted);
  EXPECT_EQ(m.consecutive_prunes(), 0u);
}

TEST(TrustMonitor, RefitResetsTheEvidence) {
  GuardOptions opt;
  opt.enabled = true;
  opt.disable_floor = -2.0;
  TrustMonitor m(opt, "test");
  for (int i = 0; i < 12; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), i + 1);
  ASSERT_EQ(m.state(), GuardState::Degraded);
  EXPECT_FALSE(m.refit_spent());
  m.note_refit(12);
  EXPECT_EQ(m.state(), GuardState::Trusted);
  EXPECT_TRUE(m.refit_spent());
  EXPECT_EQ(m.observations(), 0u);  // stale evidence discarded
  EXPECT_DOUBLE_EQ(m.trust(), 1.0);
  ASSERT_EQ(m.timeline().size(), 2u);
  EXPECT_EQ(m.timeline()[1].reason, "refit");
}

TEST(TrustMonitor, TransitionsInvokeTheCallbackAndEmitEvents) {
  obs::MemorySink sink;
  obs::ScopedSinkRedirect redirect(&sink, obs::Severity::Warn);
  GuardOptions opt;
  opt.enabled = true;
  std::vector<std::string> seen;
  opt.on_transition = [&seen](const GuardTransition& tr) {
    seen.push_back(tr.reason);
  };
  TrustMonitor m(opt, "RS_test");
  for (int i = 0; i < 10; ++i)
    m.observe(static_cast<double>(i), static_cast<double>(-i), i + 1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "trust-collapse");

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "guard.state");
  bool found_search = false, found_to = false;
  for (const auto& f : events[0].fields) {
    if (f.key == "search") found_search = f.value == "RS_test";
    if (f.key == "to") found_to = f.value == "disabled";
  }
  EXPECT_TRUE(found_search);
  EXPECT_TRUE(found_to);
}

// ---------------------------------------------------------------------
// RS_p / RS_b behavior under the guard
// ---------------------------------------------------------------------

/// Target landscape: optimum at the {0,0,0,0} corner. The adversarial
/// surrogate puts its bowl at the opposite corner {9,9,9,9}, so it ranks
/// the true-best configurations as the very worst.
QuadraticEvaluator make_target() {
  return QuadraticEvaluator("B", {0, 0, 0, 0}, {1, 1, 1, 1});
}

GuardOptions quick_guard() {
  GuardOptions g;
  g.enabled = true;
  g.window = 15;
  g.min_observations = 8;
  return g;
}

TEST(GuardedSearch, MisleadingModelCannotSinkRSp) {
  auto target = make_target();
  const BowlModel hostile({9, 9, 9, 9});

  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 60;
  rs_opt.seed = 5;
  const auto rs = random_search(target, rs_opt);

  PrunedSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 5;
  opt.pool_size = 2000;
  opt.max_draws = 5000;
  const auto unguarded = pruned_random_search(target, hostile, opt);

  opt.guard = quick_guard();
  const auto guarded = pruned_random_search(target, hostile, opt);

  // The unguarded search follows the hostile bowl into the wrong corner
  // and misses; the guarded one disables pruning once trust collapses
  // and ends within 5 % of plain RS at the same budget.
  EXPECT_LE(guarded.best_seconds(), rs.best_seconds() * 1.05)
      << "guarded " << guarded.best_seconds() << " vs RS "
      << rs.best_seconds();
  EXPECT_GT(unguarded.best_seconds(), rs.best_seconds() * 1.05)
      << "the adversarial model was not adversarial enough for this test";
  EXPECT_LT(guarded.best_seconds(), unguarded.best_seconds());
}

TEST(GuardedSearch, MisleadingModelCannotSinkRSb) {
  auto target = make_target();
  const BowlModel hostile({9, 9, 9, 9});

  RandomSearchOptions rs_opt;
  rs_opt.max_evals = 60;
  rs_opt.seed = 5;
  const auto rs = random_search(target, rs_opt);

  BiasedSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 5;
  opt.pool_size = 2000;
  const auto unguarded = biased_random_search(target, hostile, opt);

  opt.guard = quick_guard();
  const auto guarded = biased_random_search(target, hostile, opt);

  // Falling back to draw order turns the remainder of RS_b into plain RS
  // over the same sample sequence.
  EXPECT_LE(guarded.best_seconds(), rs.best_seconds() * 1.05)
      << "guarded " << guarded.best_seconds() << " vs RS "
      << rs.best_seconds();
  EXPECT_GT(unguarded.best_seconds(), rs.best_seconds() * 1.05)
      << "the adversarial model was not adversarial enough for this test";
}

TEST(GuardedSearch, AccurateModelLeavesTracesIdentical) {
  // With the surrogate aimed at the true optimum the guard never leaves
  // Trusted, and the guarded searches must reproduce their unguarded
  // traces bit for bit (the "do no harm" half of the acceptance bar).
  auto target = make_target();
  const BowlModel faithful({0, 0, 0, 0});

  PrunedSearchOptions p_opt;
  p_opt.max_evals = 40;
  p_opt.seed = 11;
  p_opt.pool_size = 1000;
  p_opt.max_draws = 4000;
  const auto p_plain = pruned_random_search(target, faithful, p_opt);
  p_opt.guard = quick_guard();
  std::size_t p_fired = 0;
  p_opt.guard.on_transition = [&p_fired](const GuardTransition&) {
    ++p_fired;
  };
  const auto p_guarded = pruned_random_search(target, faithful, p_opt);
  EXPECT_EQ(p_fired, 0u);
  EXPECT_EQ(canonical_csv(p_plain, target.space()),
            canonical_csv(p_guarded, target.space()));

  BiasedSearchOptions b_opt;
  b_opt.max_evals = 40;
  b_opt.seed = 11;
  b_opt.pool_size = 1000;
  const auto b_plain = biased_random_search(target, faithful, b_opt);
  b_opt.guard = quick_guard();
  std::size_t b_fired = 0;
  b_opt.guard.on_transition = [&b_fired](const GuardTransition&) {
    ++b_fired;
  };
  const auto b_guarded = biased_random_search(target, faithful, b_opt);
  EXPECT_EQ(b_fired, 0u);
  EXPECT_EQ(canonical_csv(b_plain, target.space()),
            canonical_csv(b_guarded, target.space()));
}

TEST(GuardedSearch, DegradedStateRelaxesThePruningCutoff) {
  // Pin the guard in Degraded (floor above any achievable trust, disable
  // floor below): the relaxed cutoff admits roughly half of what the
  // strict one pruned, so reaching the same budget consumes fewer draws.
  auto target = make_target();
  const BowlModel hostile({9, 9, 9, 9});

  PrunedSearchOptions opt;
  opt.max_evals = 50;
  opt.seed = 3;
  opt.pool_size = 2000;
  opt.max_draws = 8000;
  const auto strict = pruned_random_search(target, hostile, opt);

  opt.guard = quick_guard();
  opt.guard.floor = 1.5;           // trust can never reach it: Degraded
  opt.guard.disable_floor = -2.0;  // and never Disabled
  const auto relaxed = pruned_random_search(target, hostile, opt);

  ASSERT_EQ(strict.size(), relaxed.size());
  EXPECT_LT(relaxed.entries().back().draw_index,
            strict.entries().back().draw_index);
}

TEST(GuardedSearch, StarvationCapKeepsRSpAlive) {
  // The plateau model prices ~99 % of the space above the cutoff: the
  // unguarded scan burns its whole draw budget pruning, while the guard
  // trips the starvation cap, stops pruning, and fills the eval budget.
  auto target = make_target();
  const PlateauModel plateau;

  PrunedSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 9;
  opt.pool_size = 2000;
  opt.max_draws = 2000;
  const auto unguarded = pruned_random_search(target, plateau, opt);

  opt.guard = quick_guard();
  opt.guard.max_consecutive_prunes = 30;
  std::vector<std::string> reasons;
  opt.guard.on_transition = [&reasons](const GuardTransition& tr) {
    reasons.push_back(tr.reason);
  };
  const auto guarded = pruned_random_search(target, plateau, opt);

  EXPECT_LT(unguarded.size(), opt.max_evals);  // starved
  EXPECT_EQ(guarded.size(), opt.max_evals);    // rescued
  ASSERT_FALSE(reasons.empty());
  EXPECT_NE(std::find(reasons.begin(), reasons.end(), "starvation"),
            reasons.end());
}

TEST(GuardedSearch, RefitRescuesRSbUnderInjectedFaults) {
  // Degraded trust plus enough accumulated target rows triggers the one
  // hybrid refit: source rows give the forest coverage of the whole
  // space, the (weighted) target rows correct it where it was wrong, and
  // the re-ranked pool steers toward the true optimum. Injected faults
  // (every config with v3 == 7 fails) must not derail the accounting.
  auto target = make_target();
  target.fail_when = [&target](const ParamConfig& c) {
    return target.space().features(c)[3] == 7.0;
  };
  const BowlModel hostile({9, 9, 9, 9});

  // The "source machine" here is a similar one (same optimum, scaled
  // times): its RS trace is what the hybrid refit mixes with the target
  // observations, exactly as run_transfer_experiment wires T_a in.
  QuadraticEvaluator source("A", {0, 0, 0, 0}, {2, 2, 2, 2}, 2.0);
  RandomSearchOptions src_opt;
  src_opt.max_evals = 60;
  src_opt.seed = 29;
  const auto source_rs = random_search(source, src_opt);

  BiasedSearchOptions opt;
  opt.max_evals = 80;
  opt.seed = 17;
  opt.pool_size = 2000;
  opt.guard = quick_guard();
  opt.guard.disable_floor = -2.0;  // stay Degraded so the refit can fire
  opt.guard.refit_after = 20;
  opt.guard.refit_source = &source_rs;
  opt.guard.refit_forest.num_trees = 16;
  std::vector<std::string> reasons;
  opt.guard.on_transition = [&reasons](const GuardTransition& tr) {
    reasons.push_back(tr.reason);
  };
  const auto guarded = biased_random_search(target, hostile, opt);

  // Same budget, no guard: the hostile ranking walks the pool from the
  // wrong corner inward for all 80 evaluations.
  BiasedSearchOptions plain;
  plain.max_evals = 80;
  plain.seed = 17;
  plain.pool_size = 2000;
  const auto unguarded = biased_random_search(target, hostile, plain);

  EXPECT_NE(std::find(reasons.begin(), reasons.end(), "refit"),
            reasons.end())
      << "the refit never fired";
  // After the refit the model actually understands the target: the rest
  // of the budget concentrates near the optimum instead of finishing the
  // hostile tour of the wrong corner.
  EXPECT_LT(guarded.best_seconds(), unguarded.best_seconds());
  EXPECT_LE(guarded.best_seconds(), target.optimum_value() + 10.0)
      << "the refitted model failed to steer toward the optimum";
  EXPECT_GT(guarded.failure_stats().failures, 0u)  // faults did fire
      << "fail_when never triggered; weaken the predicate";
}

TEST(GuardedSearch, ParallelEvaluationPreservesGuardedTraces) {
  // The guard reacts to observed results, so its decisions are order-
  // sensitive — the fixed sync window must make serial and 4-worker runs
  // bit-identical even while the guard fires mid-search.
  auto serial_eval = make_target();
  const BowlModel hostile({9, 9, 9, 9});

  PrunedSearchOptions opt;
  opt.max_evals = 60;
  opt.seed = 5;
  opt.pool_size = 2000;
  opt.max_draws = 5000;
  opt.guard = quick_guard();
  const auto serial = pruned_random_search(serial_eval, hostile, opt);

  auto backend = make_target();
  ParallelOptions popt;
  popt.threads = 4;
  ParallelEvaluator par(backend, popt);
  const auto parallel = pruned_random_search(par, hostile, opt);
  EXPECT_EQ(canonical_csv(serial, serial_eval.space()),
            canonical_csv(parallel, backend.space()));

  BiasedSearchOptions b_opt;
  b_opt.max_evals = 60;
  b_opt.seed = 5;
  b_opt.pool_size = 2000;
  b_opt.guard = quick_guard();
  auto serial_eval_b = make_target();
  const auto b_serial = biased_random_search(serial_eval_b, hostile, b_opt);
  auto backend_b = make_target();
  ParallelEvaluator par_b(backend_b, popt);
  const auto b_parallel = biased_random_search(par_b, hostile, b_opt);
  EXPECT_EQ(canonical_csv(b_serial, serial_eval_b.space()),
            canonical_csv(b_parallel, backend_b.space()));
}

}  // namespace
}  // namespace portatune::tuner
