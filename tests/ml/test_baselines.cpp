#include <gtest/gtest.h>

#include <cmath>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::ml {
namespace {

TEST(Knn, ExactTrainingPointReturnsItsTarget) {
  Dataset d(2);
  d.add_row(std::vector<double>{0, 0}, 1.0);
  d.add_row(std::vector<double>{1, 1}, 2.0);
  d.add_row(std::vector<double>{2, 2}, 3.0);
  KnnRegressor knn({.k = 2, .distance_weighted = true});
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1, 1}), 2.0);
}

TEST(Knn, UnweightedAveragesNeighbors) {
  Dataset d(1);
  d.add_row(std::vector<double>{0}, 0.0);
  d.add_row(std::vector<double>{1}, 10.0);
  d.add_row(std::vector<double>{100}, 99.0);
  KnnRegressor knn({.k = 2, .distance_weighted = false});
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.4}), 5.0);
}

TEST(Knn, NormalizationBalancesScales) {
  // Feature 0 spans [0,1], feature 1 spans [0,1000]. The nearest
  // neighbor in normalized space of (0.0, 1000) with weights equal is the
  // point matching on the large-scale feature ONLY if normalization works.
  Dataset d(2);
  d.add_row(std::vector<double>{0.0, 0.0}, 1.0);
  d.add_row(std::vector<double>{1.0, 1000.0}, 2.0);
  KnnRegressor knn({.k = 1, .distance_weighted = false});
  knn.fit(d);
  // (0.1, 900) is 0.1 away in x0 but 0.1 normalized in x1 from row 1.
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.9, 900.0}), 2.0);
}

TEST(Knn, RejectsBadUsage) {
  KnnRegressor knn;
  EXPECT_THROW(knn.predict(std::vector<double>{1}), Error);
  Dataset empty(1);
  EXPECT_THROW(knn.fit(empty), Error);
  KnnRegressor zero_k({.k = 0});
  Dataset d(1);
  d.add_row(std::vector<double>{0}, 0);
  EXPECT_THROW(zero_k.fit(d), Error);
}

TEST(Linear, RecoversExactLinearFunction) {
  Rng rng(1);
  Dataset d(3);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    d.add_row(x, 2 * x[0] - 3 * x[1] + 0.5 * x[2] + 7);
  }
  LinearRegressor lin;
  lin.fit(d);
  EXPECT_NEAR(lin.weights()[0], 2.0, 1e-4);
  EXPECT_NEAR(lin.weights()[1], -3.0, 1e-4);
  EXPECT_NEAR(lin.weights()[2], 0.5, 1e-4);
  EXPECT_NEAR(lin.intercept(), 7.0, 1e-4);
  EXPECT_NEAR(lin.predict(std::vector<double>{1, 1, 1}), 6.5, 1e-4);
}

TEST(Linear, RidgeHandlesDuplicatedColumn) {
  // x1 == x0 makes X^T X singular; the ridge term must keep the solve
  // stable.
  Rng rng(2);
  Dataset d(2);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform();
    d.add_row(std::vector<double>{x, x}, 4 * x);
  }
  LinearRegressor lin({.lambda = 1e-6});
  lin.fit(d);
  EXPECT_NEAR(lin.predict(std::vector<double>{0.5, 0.5}), 2.0, 1e-3);
}

TEST(Metrics, RmseMaeR2KnownValues) {
  const std::vector<double> pred{1, 2, 3};
  const std::vector<double> truth{1, 2, 5};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(pred, truth), 2.0 / 3.0, 1e-12);
  // ss_res = 4, mean(truth)=8/3, ss_tot = (1-8/3)^2+(2-8/3)^2+(5-8/3)^2.
  const double m = 8.0 / 3.0;
  const double ss_tot =
      (1 - m) * (1 - m) + (2 - m) * (2 - m) + (5 - m) * (5 - m);
  EXPECT_NEAR(r_squared(pred, truth), 1.0 - 4.0 / ss_tot, 1e-12);
}

TEST(Metrics, PerfectPredictionScoresOne) {
  const std::vector<double> y{3, 1, 4};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(rmse(std::vector<double>{1}, std::vector<double>{1, 2}),
               Error);
  EXPECT_THROW(mae(std::vector<double>{}, std::vector<double>{}), Error);
}

TEST(Metrics, KfoldPrefersTrueModelClass) {
  Rng rng(3);
  Dataset d(1);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.uniform();
    d.add_row(std::vector<double>{x}, 3 * x + 0.01 * rng.normal());
  }
  const double lin_rmse = kfold_rmse(
      d, 4, [] { return std::make_unique<LinearRegressor>(); });
  const double knn_rmse = kfold_rmse(d, 4, [] {
    return std::make_unique<KnnRegressor>(KnnParams{.k = 15});
  });
  EXPECT_LT(lin_rmse, knn_rmse);  // data is exactly linear
  EXPECT_THROW(kfold_rmse(d, 1, [] {
    return std::make_unique<LinearRegressor>();
  }),
               Error);
}

}  // namespace
}  // namespace portatune::ml
