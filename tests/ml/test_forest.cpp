#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::ml {
namespace {

Dataset friedman_like(std::size_t n, std::uint64_t seed) {
  // y = 10 sin(pi x0 x1) + 20 (x2 - .5)^2 + small noise; x3 irrelevant.
  Rng rng(seed);
  Dataset d(4, {"x0", "x1", "x2", "x3"});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()};
    const double y = 10 * std::sin(3.14159 * x[0] * x[1]) +
                     20 * (x[2] - 0.5) * (x[2] - 0.5) +
                     0.1 * rng.normal();
    d.add_row(x, y);
  }
  return d;
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest f;
  EXPECT_THROW(f.predict(std::vector<double>{1, 2, 3, 4}), Error);
}

TEST(RandomForest, ZeroTreesRejected) {
  ForestParams p;
  p.num_trees = 0;
  RandomForest f(p);
  EXPECT_THROW(f.fit(friedman_like(10, 1)), Error);
}

TEST(RandomForest, DeterministicForSeed) {
  const auto d = friedman_like(200, 2);
  ForestParams p;
  p.num_trees = 16;
  p.seed = 99;
  RandomForest a(p), b(p);
  a.fit(d);
  b.fit(d);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, SerialAndParallelFitAgree) {
  const auto d = friedman_like(150, 4);
  ForestParams p;
  p.num_trees = 8;
  p.seed = 5;
  p.parallel_fit = false;
  RandomForest serial(p);
  serial.fit(d);
  p.parallel_fit = true;
  RandomForest parallel(p);
  parallel.fit(d);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()};
    EXPECT_DOUBLE_EQ(serial.predict(x), parallel.predict(x));
  }
}

TEST(RandomForest, BeatsMeanPredictorOnHeldOut) {
  const auto train = friedman_like(600, 7);
  const auto test = friedman_like(200, 8);
  ForestParams p;
  p.num_trees = 48;
  p.seed = 9;
  RandomForest f(p);
  f.fit(train);
  const auto pred = f.predict_batch(test);
  std::vector<double> truth(test.targets().begin(), test.targets().end());
  const double forest_rmse = rmse(pred, truth);
  // Mean predictor baseline.
  double m = 0;
  for (double t : truth) m += t;
  m /= static_cast<double>(truth.size());
  double sse = 0;
  for (double t : truth) sse += (t - m) * (t - m);
  const double mean_rmse = std::sqrt(sse / static_cast<double>(truth.size()));
  EXPECT_LT(forest_rmse, 0.5 * mean_rmse);
}

TEST(RandomForest, OobRmseIsFiniteAndReasonable) {
  const auto d = friedman_like(300, 10);
  ForestParams p;
  p.num_trees = 32;
  RandomForest f(p);
  f.fit(d);
  EXPECT_TRUE(std::isfinite(f.oob_rmse()));
  EXPECT_GT(f.oob_rmse(), 0.0);
  EXPECT_LT(f.oob_rmse(), 10.0);
}

TEST(RandomForest, ImportancesIdentifyRelevantFeatures) {
  const auto d = friedman_like(500, 11);
  ForestParams p;
  p.num_trees = 32;
  RandomForest f(p);
  f.fit(d);
  const auto imp = f.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  double sum = 0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The irrelevant x3 must matter less than the dominant x0.
  EXPECT_GT(imp[0], imp[3]);
}

TEST(RandomForest, PredictBatchMatchesScalarPredict) {
  const auto d = friedman_like(100, 12);
  ForestParams p;
  p.num_trees = 8;
  RandomForest f(p);
  f.fit(d);
  const auto batch = f.predict_batch(d);
  for (std::size_t i = 0; i < d.num_rows(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], f.predict(d.row(i)));
}

class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, MoreTreesNeverBreakFit) {
  const auto train = friedman_like(300, 13);
  const auto test = friedman_like(100, 14);
  ForestParams p;
  p.num_trees = GetParam();
  p.seed = 15;
  RandomForest f(p);
  f.fit(train);
  const auto pred = f.predict_batch(test);
  std::vector<double> truth(test.targets().begin(), test.targets().end());
  // Any forest size must stay far below the data's spread (~7).
  EXPECT_LT(rmse(pred, truth), 4.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeSweep,
                         ::testing::Values(1u, 4u, 16u, 64u));

}  // namespace
}  // namespace portatune::ml
