#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace portatune::ml {
namespace {

Dataset small() {
  Dataset d(2, {"a", "b"});
  d.add_row(std::vector<double>{1, 2}, 10);
  d.add_row(std::vector<double>{3, 4}, 20);
  d.add_row(std::vector<double>{5, 6}, 30);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const auto d = small();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_FALSE(d.empty());
  EXPECT_DOUBLE_EQ(d.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.target(2), 30.0);
  EXPECT_EQ(d.feature_name(0), "a");
}

TEST(Dataset, UnnamedFeaturesGetPlaceholders) {
  Dataset d(1);
  d.add_row(std::vector<double>{1}, 1);
  EXPECT_EQ(d.feature_name(0), "x0");
  EXPECT_THROW(d.feature_name(1), Error);
}

TEST(Dataset, ArityEnforced) {
  Dataset d = small();
  EXPECT_THROW(d.add_row(std::vector<double>{1}, 0), Error);
}

TEST(Dataset, FirstRowFixesArity) {
  Dataset d;
  d.add_row(std::vector<double>{1, 2, 3}, 0);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_THROW(d.add_row(std::vector<double>{1}, 0), Error);
}

TEST(Dataset, BootstrapPreservesShape) {
  const auto d = small();
  Rng rng(1);
  const auto b = d.bootstrap(rng);
  EXPECT_EQ(b.num_rows(), d.num_rows());
  EXPECT_EQ(b.num_features(), d.num_features());
  // Every bootstrap target must be one of the original targets.
  for (std::size_t i = 0; i < b.num_rows(); ++i) {
    const double t = b.target(i);
    EXPECT_TRUE(t == 10 || t == 20 || t == 30);
  }
}

TEST(Dataset, SplitPartitionsRows) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)}, i);
  Rng rng(2);
  const auto [train, test] = d.split(0.25, rng);
  EXPECT_EQ(test.num_rows(), 25u);
  EXPECT_EQ(train.num_rows(), 75u);
  // No row lost and no duplication: targets 0..99 appear exactly once.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < train.num_rows(); ++i)
    seen[static_cast<int>(train.target(i))]++;
  for (std::size_t i = 0; i < test.num_rows(); ++i)
    seen[static_cast<int>(test.target(i))]++;
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Dataset, SubsetSelectsRows) {
  const auto d = small();
  const std::vector<std::size_t> rows{2, 0};
  const auto s = d.subset(rows);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.target(0), 30.0);
  EXPECT_DOUBLE_EQ(s.target(1), 10.0);
  EXPECT_THROW(d.subset(std::vector<std::size_t>{5}), Error);
}

}  // namespace
}  // namespace portatune::ml
