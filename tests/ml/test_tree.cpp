#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::ml {
namespace {

Dataset step_function(std::size_t n, double threshold, Rng& rng) {
  // y = 1 if x0 > threshold else 0; x1 is an irrelevant distractor.
  Dataset d(2, {"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    d.add_row(std::vector<double>{x0, x1}, x0 > threshold ? 1.0 : 0.0);
  }
  return d;
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree t;
  EXPECT_THROW(t.predict(std::vector<double>{1.0}), Error);
}

TEST(RegressionTree, FitOnEmptyThrows) {
  RegressionTree t;
  Dataset d(1);
  EXPECT_THROW(t.fit(d), Error);
}

TEST(RegressionTree, ConstantTargetsGiveSingleLeaf) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)}, 5.0);
  RegressionTree t;
  t.fit(d);
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(t.predict(std::vector<double>{3.0}), 5.0);
  EXPECT_DOUBLE_EQ(t.predict(std::vector<double>{99.0}), 5.0);
}

TEST(RegressionTree, RecoversStepFunction) {
  Rng rng(3);
  const auto d = step_function(500, 0.6, rng);
  RegressionTree t;
  t.fit(d);
  EXPECT_DOUBLE_EQ(t.predict(std::vector<double>{0.1, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(t.predict(std::vector<double>{0.9, 0.5}), 1.0);
}

TEST(RegressionTree, ArityMismatchOnPredictThrows) {
  Rng rng(4);
  const auto d = step_function(50, 0.5, rng);
  RegressionTree t;
  t.fit(d);
  EXPECT_THROW(t.predict(std::vector<double>{1.0}), Error);
}

TEST(RegressionTree, MaxDepthBoundsDepth) {
  Rng rng(5);
  Dataset d(1);
  for (int i = 0; i < 256; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)},
              static_cast<double>(i));
  TreeParams p;
  p.max_depth = 3;
  RegressionTree t(p);
  t.fit(d);
  EXPECT_LE(t.depth(), 3u);
  EXPECT_LE(t.leaf_count(), 8u);
}

TEST(RegressionTree, MinSamplesLeafHonored) {
  Rng rng(6);
  Dataset d(1);
  for (int i = 0; i < 64; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)},
              static_cast<double>(i % 7));
  TreeParams p;
  p.min_samples_leaf = 8;
  RegressionTree t(p);
  t.fit(d);
  // With 64 rows and >=8 per leaf, at most 8 leaves exist.
  EXPECT_LE(t.leaf_count(), 8u);
}

TEST(RegressionTree, PredictionsWithinTargetRange) {
  Rng rng(7);
  Dataset d(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    d.add_row(x, std::sin(6.0 * x[0]) + x[1]);
  }
  RegressionTree t;
  t.fit(d);
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < d.num_rows(); ++i) {
    lo = std::min(lo, d.target(i));
    hi = std::max(hi, d.target(i));
  }
  for (int i = 0; i < 50; ++i) {
    const double y = t.predict(
        std::vector<double>{rng.uniform(), rng.uniform(), rng.uniform()});
    EXPECT_GE(y, lo - 1e-9);
    EXPECT_LE(y, hi + 1e-9);
  }
}

TEST(RegressionTree, TextRenderingNamesFeatures) {
  Rng rng(8);
  const auto d = step_function(200, 0.5, rng);
  RegressionTree t;
  t.fit(d);
  const std::string text = t.to_text({"U_I", "U_J"});
  EXPECT_NE(text.find("U_I"), std::string::npos);
  EXPECT_NE(text.find("if"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(RegressionTree, DotRenderingIsWellFormed) {
  Rng rng(9);
  const auto d = step_function(100, 0.5, rng);
  RegressionTree t;
  t.fit(d);
  const std::string dot = t.to_dot();
  EXPECT_EQ(dot.rfind("digraph tree {", 0), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(RegressionTree, TrainingFitImprovesWithDepth) {
  Rng rng(10);
  Dataset d(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform();
    d.add_row(std::vector<double>{x}, std::sin(10 * x));
  }
  const auto sse = [&](const RegressionTree& t) {
    double acc = 0;
    for (std::size_t i = 0; i < d.num_rows(); ++i) {
      const double e = t.predict(d.row(i)) - d.target(i);
      acc += e * e;
    }
    return acc;
  };
  TreeParams shallow;
  shallow.max_depth = 2;
  RegressionTree t2(shallow);
  t2.fit(d);
  TreeParams deep;
  deep.max_depth = 8;
  RegressionTree t8(deep);
  t8.fit(d);
  EXPECT_LT(sse(t8), sse(t2));
}

class TreeDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeDepthSweep, DepthNeverExceedsLimit) {
  Rng rng(11);
  Dataset d(2);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform()};
    d.add_row(x, x[0] * x[1] + 0.01 * rng.normal());
  }
  TreeParams p;
  p.max_depth = GetParam();
  RegressionTree t(p);
  t.fit(d);
  EXPECT_LE(t.depth(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep,
                         ::testing::Values(1u, 2u, 4u, 6u, 10u));

}  // namespace
}  // namespace portatune::ml
