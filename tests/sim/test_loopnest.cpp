#include "sim/loopnest.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace portatune::sim {
namespace {

LoopNest mm_nest(std::int64_t n) {
  LoopNest nest;
  nest.name = "mm";
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}, {"k", n, 1.0}};
  nest.arrays = {{"C", {n, n}, 8}, {"A", {n, n}, 8}, {"B", {n, n}, 8}};
  Statement s;
  s.depth = 3;
  s.flops = 2.0;
  s.refs = {{0, {idx(0), idx(1)}, true},
            {1, {idx(0), idx(2)}, false},
            {2, {idx(2), idx(1)}, false}};
  nest.stmts = {s};
  return nest;
}

TEST(IndexExpr, EvalAndCoeffs) {
  const IndexExpr e{{{0, 2}, {2, -1}}, 5};
  const std::vector<std::int64_t> iters{3, 7, 4};
  EXPECT_EQ(e.eval(iters), 2 * 3 - 4 + 5);
  EXPECT_EQ(e.coeff_of(0), 2);
  EXPECT_EQ(e.coeff_of(1), 0);
  EXPECT_TRUE(e.depends_on(2));
  EXPECT_FALSE(e.depends_on(1));
}

TEST(LoopNest, IterationsRespectOccupancy) {
  LoopNest nest = mm_nest(10);
  EXPECT_DOUBLE_EQ(nest.iterations(3), 1000.0);
  nest.loops[1].occupancy = 0.5;
  EXPECT_DOUBLE_EQ(nest.iterations(3), 500.0);
  EXPECT_DOUBLE_EQ(nest.iterations(0), 1.0);
  EXPECT_THROW(nest.iterations(4), Error);
}

TEST(LoopNest, TotalFlops) {
  const auto nest = mm_nest(10);
  EXPECT_DOUBLE_EQ(nest.total_flops(), 2000.0);
}

TEST(LoopNest, DataBytes) {
  const auto nest = mm_nest(10);
  EXPECT_EQ(nest.data_bytes(), 3 * 10 * 10 * 8);
}

TEST(Validate, RejectsMalformedTransforms) {
  const auto nest = mm_nest(16);
  auto t = NestTransform::identity(3);
  EXPECT_NO_THROW(nest.validate(t));

  t = NestTransform::identity(2);  // wrong arity
  EXPECT_THROW(nest.validate(t), Error);

  t = NestTransform::identity(3);
  t.loops[0].unroll = 0;
  EXPECT_THROW(nest.validate(t), Error);

  t = NestTransform::identity(3);
  t.loops[1].cache_tile = 32;  // tile > extent
  EXPECT_THROW(nest.validate(t), Error);

  t = NestTransform::identity(3);
  t.loops[1].cache_tile = 4;
  t.loops[1].reg_tile = 8;  // reg tile > cache tile
  EXPECT_THROW(nest.validate(t), Error);

  t = NestTransform::identity(3);
  t.threads = 0;
  EXPECT_THROW(nest.validate(t), Error);
}

TEST(EffectiveLevels, IdentityKeepsLoopOrder) {
  const auto nest = mm_nest(8);
  const auto levels = effective_levels(nest, NestTransform::identity(3));
  ASSERT_EQ(levels.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(levels[l].loop, l);
    EXPECT_EQ(levels[l].extent, 8);
    EXPECT_FALSE(levels[l].reg_band);
  }
}

TEST(EffectiveLevels, TilingCreatesOuterBand) {
  const auto nest = mm_nest(16);
  auto t = NestTransform::identity(3);
  t.loops[2].cache_tile = 4;
  const auto levels = effective_levels(nest, t);
  // [k-tile][i][j][k-intra]
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0].loop, 2u);
  EXPECT_EQ(levels[0].extent, 4);   // 16/4 tiles
  EXPECT_EQ(levels[0].stride, 4);   // one tile step advances k by 4
  EXPECT_EQ(levels[3].loop, 2u);
  EXPECT_EQ(levels[3].extent, 4);   // intra-tile
}

TEST(EffectiveLevels, RegisterBandIsInnermost) {
  const auto nest = mm_nest(16);
  auto t = NestTransform::identity(3);
  t.loops[0].reg_tile = 2;
  t.loops[1].reg_tile = 4;
  const auto levels = effective_levels(nest, t);
  // [i][j][k] intra + [i-reg][j-reg]
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_TRUE(levels[3].reg_band);
  EXPECT_TRUE(levels[4].reg_band);
  EXPECT_EQ(levels[3].loop, 0u);
  EXPECT_EQ(levels[3].extent, 2);
  EXPECT_EQ(levels[4].loop, 1u);
  EXPECT_EQ(levels[4].extent, 4);
  // Intra band of loop 0 shrinks to 16/2.
  EXPECT_EQ(levels[0].extent, 8);
  EXPECT_EQ(levels[0].stride, 2);
}

TEST(EffectiveLevels, RaggedTilePadsUp) {
  LoopNest nest = mm_nest(10);
  auto t = NestTransform::identity(3);
  t.loops[0].cache_tile = 4;  // 10/4 -> 3 tiles (ceil)
  const auto levels = effective_levels(nest, t);
  EXPECT_EQ(levels[0].extent, 3);
}

TEST(LoopSpans, ProductOfBandsClampedToExtent) {
  const auto nest = mm_nest(16);
  auto t = NestTransform::identity(3);
  t.loops[2].cache_tile = 4;
  const auto levels = effective_levels(nest, t);
  // Scope = whole sequence: every loop spans its full extent.
  auto spans = loop_spans(nest, levels, 0);
  EXPECT_EQ(spans, (std::vector<std::int64_t>{16, 16, 16}));
  // Scope from position 1 (inside the k-tile loop): k spans one tile.
  spans = loop_spans(nest, levels, 1);
  EXPECT_EQ(spans[2], 4);
  EXPECT_EQ(spans[0], 16);
  // Empty scope: all spans 1.
  spans = loop_spans(nest, levels, levels.size());
  EXPECT_EQ(spans, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(Footprint, RowOfContiguousDoubles) {
  const auto nest = mm_nest(64);
  // A[i][k] with i fixed, k spanning 64: 64*8/64 = 8 lines.
  const ArrayRef ref{1, {idx(0), idx(2)}, false};
  const std::vector<std::int64_t> spans{1, 1, 64};
  EXPECT_DOUBLE_EQ(ref_footprint_lines(nest, ref, spans, 64), 8.0);
}

TEST(Footprint, ColumnTouchesOneLinePerRow) {
  const auto nest = mm_nest(64);
  // B[k][j] with j fixed, k spanning 64: 64 distinct rows.
  const ArrayRef ref{2, {idx(2), idx(1)}, false};
  const std::vector<std::int64_t> spans{1, 1, 64};
  EXPECT_DOUBLE_EQ(ref_footprint_lines(nest, ref, spans, 64), 64.0);
}

TEST(Footprint, SingleElement) {
  const auto nest = mm_nest(64);
  const ArrayRef ref{0, {idx(0), idx(1)}, false};
  const std::vector<std::int64_t> spans{1, 1, 1};
  EXPECT_DOUBLE_EQ(ref_footprint_lines(nest, ref, spans, 64), 1.0);
}

TEST(Footprint, ScopeFootprintCapsAtArraySize) {
  const auto nest = mm_nest(8);  // arrays are 8x8x8B = 512B each
  const std::vector<std::int64_t> spans{8, 8, 8};
  const double bytes = scope_footprint_bytes(nest, spans, 64);
  // 3 arrays x 512 B; the per-array cap prevents double counting.
  EXPECT_LE(bytes, 3 * 512.0 + 3 * 64.0);
  EXPECT_GT(bytes, 3 * 300.0);
}

}  // namespace
}  // namespace portatune::sim
