#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "support/error.hpp"

namespace portatune::sim {
namespace {

LoopNest mm_nest(std::int64_t n) {
  LoopNest nest;
  nest.name = "mm";
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}, {"k", n, 1.0}};
  nest.arrays = {{"C", {n, n}, 8}, {"A", {n, n}, 8}, {"B", {n, n}, 8}};
  Statement s;
  s.depth = 3;
  s.flops = 2.0;
  s.refs = {{0, {idx(0), idx(1)}, false},
            {0, {idx(0), idx(1)}, true},
            {1, {idx(0), idx(2)}, false},
            {2, {idx(2), idx(1)}, false}};
  nest.stmts = {s};
  nest.compiler_tilable = true;
  nest.outer_parallel = true;
  return nest;
}

AnalyticalCostModel noiseless() {
  AnalyticalCostModel::Options opt;
  opt.noise_sigma = 0.0;
  return AnalyticalCostModel(opt);
}

TEST(CostModel, DeterministicWithNoise) {
  const auto nest = mm_nest(512);
  const auto t = NestTransform::identity(3);
  AnalyticalCostModel model;  // default noise on
  const auto m = make_sandybridge();
  EXPECT_DOUBLE_EQ(model.run_time(nest, t, m, 1),
                   model.run_time(nest, t, m, 1));
  // Different configurations draw different noise.
  EXPECT_NE(model.run_time(nest, t, m, 1), model.run_time(nest, t, m, 2));
}

TEST(CostModel, NoiseIsMultiplicativeAndBounded) {
  const auto nest = mm_nest(512);
  const auto t = NestTransform::identity(3);
  const auto m = make_sandybridge();
  const double clean = noiseless().run_time(nest, t, m, 7);
  AnalyticalCostModel noisy;
  const double withnoise = noisy.run_time(nest, t, m, 7);
  EXPECT_GT(withnoise, clean * 0.7);
  EXPECT_LT(withnoise, clean * 1.4);
}

TEST(CostModel, TilingReducesDramTraffic) {
  const auto nest = mm_nest(2000);
  const auto m = make_sandybridge();
  const auto model = noiseless();
  const auto plain = model.evaluate(nest, NestTransform::identity(3), m);

  auto t = NestTransform::identity(3);
  for (auto& lt : t.loops) lt.cache_tile = 64;
  const auto tiled = model.evaluate(nest, t, m);
  EXPECT_LT(tiled.dram_bytes, plain.dram_bytes);
}

TEST(CostModel, MissesAreMonotoneAcrossLevels) {
  const auto nest = mm_nest(2000);
  const auto model = noiseless();
  for (const auto& m : table2_machines()) {
    const auto b = model.evaluate(nest, NestTransform::identity(3), m);
    for (std::size_t c = 1; c < b.level_misses.size(); ++c)
      EXPECT_LE(b.level_misses[c], b.level_misses[c - 1] + 1e-9)
          << m.name << " level " << c;
  }
}

TEST(CostModel, VectorizableNestGetsVectorFactor) {
  const auto nest = mm_nest(512);  // inner k: A stride 1, B strided
  const auto model = noiseless();
  // MM's inner loop k indexes B's row dimension -> strided -> GNU gets no
  // vectorization.
  const auto gnu = model.evaluate(nest, NestTransform::identity(3),
                                  make_sandybridge(Compiler::Gnu));
  EXPECT_DOUBLE_EQ(gnu.vec_factor, 1.0);
}

TEST(CostModel, FasterClockIsFasterOnComputeBound) {
  auto nest = mm_nest(256);  // fits caches: compute dominated
  const auto model = noiseless();
  auto slow = make_sandybridge();
  auto fast = make_sandybridge();
  fast.clock_ghz = 2 * slow.clock_ghz;
  const auto t = NestTransform::identity(3);
  EXPECT_LT(model.run_time(nest, t, fast), model.run_time(nest, t, slow));
}

TEST(CostModel, ThreadsSpeedUpParallelNest) {
  const auto nest = mm_nest(2000);
  const auto model = noiseless();
  const auto m = make_sandybridge();
  auto serial = NestTransform::identity(3);
  auto threaded = NestTransform::identity(3);
  threaded.threads = 8;
  EXPECT_LT(model.run_time(nest, threaded, m),
            model.run_time(nest, serial, m));
}

TEST(CostModel, ThreadsIgnoredOnSequentialNest) {
  auto nest = mm_nest(512);
  nest.outer_parallel = false;
  const auto model = noiseless();
  const auto m = make_sandybridge();
  auto threaded = NestTransform::identity(3);
  threaded.threads = 8;
  EXPECT_DOUBLE_EQ(model.run_time(nest, threaded, m),
                   model.run_time(nest, NestTransform::identity(3), m));
}

TEST(CostModel, HugeRegisterTilesSpill) {
  const auto nest = mm_nest(512);
  const auto model = noiseless();
  const auto m = make_xgene();  // 12 effective registers, scalar
  auto modest = NestTransform::identity(3);
  modest.loops[1].reg_tile = 2;
  auto huge = NestTransform::identity(3);
  huge.loops[0].reg_tile = 16;
  huge.loops[1].reg_tile = 16;
  const auto b_modest = model.evaluate(nest, modest, m);
  const auto b_huge = model.evaluate(nest, huge, m);
  EXPECT_EQ(b_modest.spill_regs, 0.0);
  EXPECT_GT(b_huge.spill_regs, 0.0);
}

TEST(CostModel, IdentityDetection) {
  auto t = NestTransform::identity(3);
  EXPECT_TRUE(AnalyticalCostModel::is_identity(t));
  t.loops[1].unroll = 2;
  EXPECT_FALSE(AnalyticalCostModel::is_identity(t));
  t = NestTransform::identity(3);
  t.loops[0].cache_tile = 64;
  EXPECT_FALSE(AnalyticalCostModel::is_identity(t));
  t = NestTransform::identity(3);
  t.scalar_replacement = true;
  EXPECT_FALSE(AnalyticalCostModel::is_identity(t));
  t = NestTransform::identity(3);
  t.threads = 8;  // threading alone leaves the source clean
  EXPECT_TRUE(AnalyticalCostModel::is_identity(t));
}

TEST(CostModel, IntelAutoOptimizesCleanTilableSource) {
  const auto nest = mm_nest(2000);
  const auto model = noiseless();
  const auto icc = make_xeon_phi(Compiler::Intel);
  const auto b = model.evaluate(nest, NestTransform::identity(3), icc);
  EXPECT_TRUE(b.compiler_auto_applied);

  // A hand-transformed variant must not receive the auto treatment.
  auto t = NestTransform::identity(3);
  t.loops[0].unroll = 4;
  const auto bh = model.evaluate(nest, t, icc);
  EXPECT_FALSE(bh.compiler_auto_applied);
}

TEST(CostModel, GnuNeverAutoTiles) {
  const auto nest = mm_nest(2000);
  const auto model = noiseless();
  const auto b = model.evaluate(nest, NestTransform::identity(3),
                                make_sandybridge(Compiler::Gnu));
  EXPECT_FALSE(b.compiler_auto_applied);
}

TEST(CostModel, MultiPhaseRunTimeIsSum) {
  const auto nest = mm_nest(256);
  const auto model = noiseless();
  const auto m = make_westmere();
  const std::vector<LoopNest> nests{nest, nest};
  const std::vector<NestTransform> ts{NestTransform::identity(3),
                                      NestTransform::identity(3)};
  const double both = model.run_time(nests, ts, m, 5);
  const double one = model.run_time(nest, ts[0], m, 5);
  EXPECT_NEAR(both, 2 * one, 1e-9);
  EXPECT_THROW(
      model.run_time(nests, std::vector<NestTransform>{ts[0]}, m, 5),
      Error);
}

class MachineSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(MachineSanity, RunTimesArePositiveAndFinite) {
  const auto m = machine_by_name(GetParam());
  const auto nest = mm_nest(2000);
  const auto model = noiseless();
  auto t = NestTransform::identity(3);
  for (std::int64_t tile : {0, 8, 64, 512}) {
    for (auto& lt : t.loops) lt.cache_tile = tile;
    const double s = model.run_time(nest, t, m);
    EXPECT_GT(s, 0.0) << GetParam() << " tile " << tile;
    EXPECT_LT(s, 1e5) << GetParam() << " tile " << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, MachineSanity,
                         ::testing::Values("Westmere", "Sandybridge",
                                           "XeonPhi", "Power7", "X-Gene"));

}  // namespace
}  // namespace portatune::sim
