#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace portatune::sim {
namespace {

TEST(Machine, Table2Specifications) {
  const auto sb = make_sandybridge();
  EXPECT_EQ(sb.cores, 8);
  EXPECT_DOUBLE_EQ(sb.clock_ghz, 3.4);
  ASSERT_EQ(sb.caches.size(), 3u);
  EXPECT_EQ(sb.caches[0].size_bytes, 32 * 1024);
  EXPECT_EQ(sb.caches[1].size_bytes, 256 * 1024);
  EXPECT_EQ(sb.caches[2].size_bytes, 20 * 1024 * 1024);
  EXPECT_TRUE(sb.caches[2].shared);

  const auto wm = make_westmere();
  EXPECT_EQ(wm.cores, 6);
  EXPECT_DOUBLE_EQ(wm.clock_ghz, 2.4);
  EXPECT_EQ(wm.caches[2].size_bytes, 12 * 1024 * 1024);

  const auto phi = make_xeon_phi();
  EXPECT_EQ(phi.cores, 61);
  EXPECT_DOUBLE_EQ(phi.clock_ghz, 1.24);
  EXPECT_EQ(phi.caches.size(), 2u);  // Table II: no L3
  EXPECT_FALSE(phi.out_of_order);
  EXPECT_EQ(phi.vector_doubles, 8);

  const auto p7 = make_power7();
  EXPECT_EQ(p7.cores, 6);
  EXPECT_DOUBLE_EQ(p7.clock_ghz, 4.2);
  EXPECT_FALSE(p7.caches[2].shared);  // per-core L3
  EXPECT_EQ(p7.caches[0].line_bytes, 128);

  const auto xg = make_xgene();
  EXPECT_EQ(xg.cores, 8);
  EXPECT_EQ(xg.caches[2].size_bytes, 8 * 1024 * 1024);
  EXPECT_EQ(xg.tlb_entries, 32);  // the X-Gene idiosyncrasy
}

TEST(Machine, PeakGflopsOrdering) {
  // Phi's 61 wide cores dwarf everything; X-Gene is the weakest.
  const double phi = make_xeon_phi().peak_gflops();
  const double sb = make_sandybridge().peak_gflops();
  const double wm = make_westmere().peak_gflops();
  const double xg = make_xgene().peak_gflops();
  EXPECT_GT(phi, sb);
  EXPECT_GT(sb, wm);
  EXPECT_GT(wm, xg);
}

TEST(Machine, CompilerHyperparameter) {
  EXPECT_EQ(make_sandybridge(Compiler::Intel).compiler, Compiler::Intel);
  EXPECT_EQ(make_sandybridge().compiler, Compiler::Gnu);
  EXPECT_EQ(to_string(Compiler::Gnu), "gnu");
  EXPECT_EQ(to_string(Compiler::Intel), "intel");
}

TEST(Machine, LookupByNameIsCaseInsensitive) {
  EXPECT_EQ(machine_by_name("westmere").name, "Westmere");
  EXPECT_EQ(machine_by_name("XEONPHI").name, "XeonPhi");
  EXPECT_EQ(machine_by_name("x-gene").name, "X-Gene");
  EXPECT_THROW(machine_by_name("cray"), Error);
}

TEST(Machine, Table2ListHasFiveMachines) {
  const auto machines = table2_machines();
  EXPECT_EQ(machines.size(), 5u);
}

TEST(Machine, LlcBytes) {
  EXPECT_EQ(make_sandybridge().llc_bytes(), 20 * 1024 * 1024);
  EXPECT_EQ(make_xeon_phi().llc_bytes(), 512 * 1024);
}

}  // namespace
}  // namespace portatune::sim
