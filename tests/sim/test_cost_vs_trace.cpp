// Validation of the analytical miss model against the exact trace-driven
// cache simulator on small instances. The analytic model is a bound/
// estimate, not an emulator, so agreement is asserted within a factor.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/trace_sim.hpp"
#include "support/error.hpp"

namespace portatune::sim {
namespace {

LoopNest mm_nest(std::int64_t n) {
  LoopNest nest;
  nest.name = "mm-small";
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}, {"k", n, 1.0}};
  nest.arrays = {{"C", {n, n}, 8}, {"A", {n, n}, 8}, {"B", {n, n}, 8}};
  Statement s;
  s.depth = 3;
  s.flops = 2.0;
  s.refs = {{0, {idx(0), idx(1)}, true},
            {1, {idx(0), idx(2)}, false},
            {2, {idx(2), idx(1)}, false}};
  nest.stmts = {s};
  return nest;
}

/// A small two-level hierarchy so a 64^3 nest exercises real capacity
/// behaviour: L1 4 KiB, L2 32 KiB (arrays are 32 KiB each at n=64).
std::vector<CacheLevelSpec> small_hierarchy() {
  return {{"L1", 4 * 1024, 64, 8, 4, false, 0.0},
          {"L2", 32 * 1024, 64, 8, 12, false, 0.0}};
}

/// Analytic misses for the same nest/hierarchy, via a machine descriptor
/// wrapping the small hierarchy.
std::vector<double> analytic_misses(const LoopNest& nest,
                                    const NestTransform& t) {
  MachineDescriptor m = make_sandybridge();
  m.caches = small_hierarchy();
  AnalyticalCostModel::Options opt;
  opt.noise_sigma = 0.0;
  return AnalyticalCostModel(opt).evaluate(nest, t, m).level_misses;
}

void expect_within_factor(double estimated, double exact, double factor,
                          const std::string& what) {
  ASSERT_GT(exact, 0.0) << what;
  EXPECT_LT(estimated, exact * factor) << what << " overestimated";
  EXPECT_GT(estimated, exact / factor) << what << " underestimated";
}

TEST(CostVsTrace, UntiledMmMissesAgree) {
  const auto nest = mm_nest(64);
  const auto t = NestTransform::identity(3);
  const auto trace = simulate_nest(nest, t, small_hierarchy());
  const auto est = analytic_misses(nest, t);
  expect_within_factor(est[0], static_cast<double>(trace.level_misses[0]),
                       3.0, "L1 misses");
  expect_within_factor(est[1], static_cast<double>(trace.level_misses[1]),
                       3.0, "L2 misses");
}

TEST(CostVsTrace, TiledMmMissesAgree) {
  // n = 60 keeps row strides off the power-of-two set-aliasing pathology
  // (which the exact simulator models but the analytic estimate smooths).
  const auto nest = mm_nest(60);
  auto t = NestTransform::identity(3);
  for (auto& lt : t.loops) lt.cache_tile = 16;
  const auto trace = simulate_nest(nest, t, small_hierarchy());
  const auto est = analytic_misses(nest, t);
  expect_within_factor(est[0], static_cast<double>(trace.level_misses[0]),
                       5.0, "L1 misses (tiled)");
}

TEST(CostVsTrace, PowerOfTwoStridesCauseConflictMisses) {
  // At n = 64 each B column's lines alias into a single set of the small
  // L1 (row stride = 512 B = 8 lines = the set count), so even an 8x8x8
  // tile thrashes. The exact simulator must expose this; it is precisely
  // the conflict-miss effect the PAD flag of the MM problem fights.
  const auto aligned = mm_nest(64);
  auto t = NestTransform::identity(3);
  for (auto& lt : t.loops) lt.cache_tile = 8;
  const auto aliased = simulate_nest(aligned, t, small_hierarchy());
  const auto clean = simulate_nest(mm_nest(60), t, small_hierarchy());
  const double aligned_ratio =
      static_cast<double>(aliased.level_misses[0]) /
      static_cast<double>(aliased.accesses);
  const double clean_ratio = static_cast<double>(clean.level_misses[0]) /
                             static_cast<double>(clean.accesses);
  EXPECT_GT(aligned_ratio, 4.0 * clean_ratio);
}

TEST(CostVsTrace, ModelsAgreeTilingHelps) {
  // The decisive property for autotuning: both backends must *rank* the
  // tiled variant ahead of the untiled one at the L1 level.
  const auto nest = mm_nest(60);
  const auto plain_t = NestTransform::identity(3);
  auto tiled_t = NestTransform::identity(3);
  for (auto& lt : tiled_t.loops) lt.cache_tile = 8;

  const auto plain_trace = simulate_nest(nest, plain_t, small_hierarchy());
  const auto tiled_trace = simulate_nest(nest, tiled_t, small_hierarchy());
  EXPECT_LT(tiled_trace.level_misses[0], plain_trace.level_misses[0]);

  const auto plain_est = analytic_misses(nest, plain_t);
  const auto tiled_est = analytic_misses(nest, tiled_t);
  EXPECT_LT(tiled_est[0], plain_est[0]);
}

TEST(TraceSim, IterationCountsExact) {
  const auto nest = mm_nest(8);
  const auto stats =
      simulate_nest(nest, NestTransform::identity(3), small_hierarchy());
  EXPECT_EQ(stats.iterations, 8u * 8u * 8u);
  EXPECT_EQ(stats.accesses, 3u * 512u);
}

TEST(TraceSim, RaggedTilingVisitsEveryIteration) {
  const auto nest = mm_nest(10);  // 10 % 4 != 0
  auto t = NestTransform::identity(3);
  t.loops[0].cache_tile = 4;
  t.loops[2].reg_tile = 4;
  const auto stats = simulate_nest(nest, t, small_hierarchy());
  EXPECT_EQ(stats.iterations, 1000u);  // padding skipped, nothing lost
}

TEST(TraceSim, RejectsTriangularNests) {
  auto nest = mm_nest(8);
  nest.loops[1].occupancy = 0.5;
  EXPECT_THROW(
      simulate_nest(nest, NestTransform::identity(3), small_hierarchy()),
      portatune::Error);
}

TEST(TraceSim, ShallowStatementsFireOncePerOuterIteration) {
  LoopNest nest;
  nest.name = "shallow";
  nest.loops = {{"i", 4, 1.0}, {"j", 4, 1.0}};
  nest.arrays = {{"v", {4}, 8}, {"m", {4, 4}, 8}};
  Statement outer;   // runs once per i
  outer.depth = 1;
  outer.refs = {{0, {idx(0)}, true}};
  Statement inner;   // runs per (i, j)
  inner.depth = 2;
  inner.refs = {{1, {idx(0), idx(1)}, false}};
  nest.stmts = {outer, inner};
  const auto stats =
      simulate_nest(nest, NestTransform::identity(2), small_hierarchy());
  EXPECT_EQ(stats.accesses, 4u + 16u);
}

}  // namespace
}  // namespace portatune::sim
