#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace portatune::sim {
namespace {

TEST(Cache, ColdMissThenHit) {
  Cache c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));   // cold miss
  EXPECT_TRUE(c.access(0));    // hit
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictsOldest) {
  // Direct construction: 2 sets x 2 ways x 64B lines = 256 B.
  Cache c(256, 64, 2);
  ASSERT_EQ(c.num_sets(), 2u);
  // Three lines mapping to set 0: line numbers 0, 2, 4 (even lines).
  c.access(0 * 64);
  c.access(2 * 64);
  c.access(0 * 64);      // touch 0: now 2 is LRU
  c.access(4 * 64);      // evicts 2
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(2 * 64));
  EXPECT_TRUE(c.contains(4 * 64));
}

TEST(Cache, AssociativityConflicts) {
  // Direct-mapped: two lines in the same set always conflict.
  Cache c(512, 64, 1);
  const std::uint64_t stride = 64 * c.num_sets();
  for (int rep = 0; rep < 4; ++rep) {
    c.access(0);
    c.access(stride);
  }
  EXPECT_EQ(c.hits(), 0u);  // ping-pong: every access misses
}

TEST(Cache, SequentialScanMissRatio) {
  Cache c(32 * 1024, 64, 8);
  // Scan 1 MiB of doubles: one miss per 8 accesses (64B line).
  for (std::uint64_t addr = 0; addr < (1u << 20); addr += 8) c.access(addr);
  EXPECT_NEAR(c.miss_ratio(), 1.0 / 8.0, 1e-6);
}

TEST(Cache, WorkingSetThatFitsHitsOnSecondPass) {
  Cache c(32 * 1024, 64, 8);
  for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 8) c.access(addr);
  const auto cold_misses = c.misses();
  for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 8) c.access(addr);
  EXPECT_EQ(c.misses(), cold_misses);  // second pass entirely hits
}

TEST(Cache, ResetClearsState) {
  Cache c(1024, 64, 2);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(100, 63, 2), Error);   // non-pow2 line
  EXPECT_THROW(Cache(64, 64, 2), Error);    // smaller than one set
  EXPECT_THROW(Cache(1024, 64, 0), Error);  // zero ways
}

TEST(Cache, NonPowerOfTwoSetCountWorks) {
  // 10 sets (Power7-style geometry): modulo indexing must still behave.
  Cache c(10 * 64 * 8, 64, 8);
  EXPECT_EQ(c.num_sets(), 10u);
  for (std::uint64_t line = 0; line < 100; ++line) c.access(line * 64);
  for (std::uint64_t line = 100; line-- > 100 - 10 * 8;) {
    // The last 80 distinct lines fit exactly; all resident.
    EXPECT_TRUE(c.contains(line * 64));
  }
}

TEST(CacheHierarchy, MissesFallThroughLevels) {
  CacheHierarchy h({{"L1", 1024, 64, 2, 1, false},
                    {"L2", 8192, 64, 4, 10, false}});
  EXPECT_EQ(h.access(0), 2u);   // missed both -> memory
  EXPECT_EQ(h.access(0), 0u);   // L1 hit
  // Evict line 0 from L1 by filling it, then find it in L2.
  for (std::uint64_t line = 1; line < 64; ++line) h.access(line * 64);
  EXPECT_EQ(h.access(0), 1u);   // L1 miss, L2 hit
  EXPECT_GT(h.memory_accesses(), 0u);
  EXPECT_EQ(h.total_accesses(), 2u + 63u + 1u);
}

TEST(CacheHierarchy, RejectsEmpty) {
  EXPECT_THROW(CacheHierarchy({}), Error);
}

TEST(CacheHierarchy, CountsEvictions) {
  // 2-way, 8 sets: three lines mapping to the same set force one eviction.
  Cache c(8 * 64 * 2, 64, 2);
  const std::uint64_t stride = 8 * 64;  // same set every access
  c.access(0 * stride);
  c.access(1 * stride);
  EXPECT_EQ(c.evictions(), 0u);  // invalid ways filled, nothing displaced
  c.access(2 * stride);
  EXPECT_EQ(c.evictions(), 1u);
  c.reset();
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(CacheHierarchy, PublishesMetricsExplicitly) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRedirect redirect(registry);
  CacheHierarchy h({{"L1", 1024, 64, 2, 1, false},
                    {"L2", 8192, 64, 4, 10, false}});
  h.access(0);
  h.access(0);
  // Per-access bookkeeping stays local: nothing reaches the registry
  // until the hierarchy is asked to publish.
  EXPECT_EQ(registry.counter("cache.accesses").value(), 0u);
  h.publish_metrics();
  EXPECT_EQ(registry.counter("cache.accesses").value(), 2u);
  EXPECT_EQ(registry.counter("cache.l0.hits").value(), 1u);
  EXPECT_EQ(registry.counter("cache.l0.misses").value(), 1u);
  EXPECT_EQ(registry.counter("cache.memory_accesses").value(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("cache.miss_rate").value(), 0.5);
}

class ScanGeometry : public ::testing::TestWithParam<int> {};

TEST_P(ScanGeometry, MissRatioMatchesLineSize) {
  const int line = GetParam();
  Cache c(64 * 1024, line, 8);
  for (std::uint64_t addr = 0; addr < (1u << 21); addr += 8) c.access(addr);
  EXPECT_NEAR(c.miss_ratio(), 8.0 / line, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Lines, ScanGeometry,
                         ::testing::Values(32, 64, 128, 256));

}  // namespace
}  // namespace portatune::sim
