#include "orio/annotation.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace portatune::orio {
namespace {

TEST(Annotation, ParsesTheExampleMm) {
  const auto prob = parse_annotation(example_mm_annotation(100));
  EXPECT_EQ(prob->name(), "MM");
  EXPECT_EQ(prob->space().num_params(), 10u);  // 9 loop params + SCR
  ASSERT_EQ(prob->phases().size(), 1u);
  const auto& nest = prob->phases()[0].nest;
  EXPECT_EQ(nest.loops.size(), 3u);
  EXPECT_EQ(nest.loops[0].name, "i");
  EXPECT_EQ(nest.loops[2].extent, 100);
  EXPECT_EQ(nest.arrays.size(), 3u);
  ASSERT_EQ(nest.stmts.size(), 1u);
  EXPECT_EQ(nest.stmts[0].refs.size(), 4u);
  EXPECT_DOUBLE_EQ(nest.stmts[0].flops, 2.0);
  EXPECT_TRUE(nest.compiler_tilable);
  EXPECT_TRUE(nest.outer_parallel);
}

TEST(Annotation, StatementTextSurvivesQuoting) {
  const auto prob = parse_annotation(example_mm_annotation(10));
  EXPECT_EQ(prob->phases()[0].nest.stmts[0].text,
            "C[i][j] = C[i][j] + A[i][k] * B[k][j];");
}

TEST(Annotation, RefsBindToDeclaredLoopsAndArrays) {
  const auto prob = parse_annotation(example_mm_annotation(10));
  const auto& s = prob->phases()[0].nest.stmts[0];
  // reads C[i][j] A[i][k] B[k][j], writes C[i][j].
  EXPECT_FALSE(s.refs[0].is_write);
  EXPECT_TRUE(s.refs[3].is_write);
  EXPECT_EQ(s.refs[1].indices[1].coeff_of(2), 1);  // A's k index
}

TEST(Annotation, OccupancyAndIntegerIndices) {
  const auto prob = parse_annotation(
      "kernel TRI\n"
      "array A[8][8]\n"
      "loop i 8\n"
      "loop j 8 0.5\n"
      "stmt \"A[i][0] += A[i][j];\" flops 1 reads A[i][j] writes A[i][0]\n"
      "param U_I unroll i 1..4\n");
  const auto& nest = prob->phases()[0].nest;
  EXPECT_DOUBLE_EQ(nest.loops[1].occupancy, 0.5);
  EXPECT_EQ(nest.stmts[0].refs[1].indices[1].offset, 0);
  EXPECT_TRUE(nest.stmts[0].refs[1].indices[1].terms.empty());
}

TEST(Annotation, CommentsAndBlankLinesIgnored) {
  const auto prob = parse_annotation(
      "# a comment\n"
      "kernel K\n"
      "\n"
      "array A[4]\n"
      "loop i 4   # trailing comment\n"
      "stmt \"A[i] = 0;\" writes A[i]\n"
      "param U unroll i 1..2\n");
  EXPECT_EQ(prob->name(), "K");
}

TEST(Annotation, ErrorsCarryLineNumbers) {
  try {
    parse_annotation("kernel K\nloop i 4\nbogus directive\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Annotation, RejectsUnknownReferences) {
  EXPECT_THROW(parse_annotation("kernel K\n"
                                "array A[4]\n"
                                "loop i 4\n"
                                "stmt \"x\" reads B[i]\n"),
               Error);
  EXPECT_THROW(parse_annotation("kernel K\n"
                                "array A[4]\n"
                                "loop i 4\n"
                                "stmt \"x\" reads A[q]\n"),
               Error);
  EXPECT_THROW(parse_annotation("kernel K\n"
                                "array A[4][4]\n"
                                "loop i 4\n"
                                "stmt \"x\" reads A[i]\n"),  // arity
               Error);
}

TEST(Annotation, RejectsEmptyKernels) {
  EXPECT_THROW(parse_annotation("kernel K\n"), Error);
  EXPECT_THROW(parse_annotation("kernel K\nloop i 4\n"), Error);
}

TEST(Annotation, ParamKindsRoundTrip) {
  const auto prob = parse_annotation(
      "kernel K\n"
      "array A[64]\n"
      "loop i 64\n"
      "stmt \"A[i] += 1;\" flops 1 reads A[i] writes A[i]\n"
      "param U unroll i 1..8\n"
      "param T tile i pow2 0..4\n"
      "param R regtile i pow2 0..2\n"
      "param V flag vector_pragma\n");
  const auto& space = prob->space();
  EXPECT_EQ(space.num_params(), 4u);
  auto c = space.default_config();
  c[space.index_of("U")] = 3;  // unroll 4
  c[space.index_of("T")] = 3;  // tile 8
  c[space.index_of("V")] = 1;
  const auto ts = prob->transforms(c, 1);
  EXPECT_EQ(ts[0].loops[0].unroll, 4);
  EXPECT_EQ(ts[0].loops[0].cache_tile, 8);
  EXPECT_TRUE(ts[0].vector_pragma);
}

TEST(Annotation, ParsedProblemIsTunable) {
  const auto prob = parse_annotation(example_mm_annotation(50));
  Rng rng(1);
  int feasible = 0;
  for (int i = 0; i < 50; ++i)
    feasible += prob->feasible(prob->space().random_config(rng));
  EXPECT_GT(feasible, 10);
}

}  // namespace
}  // namespace portatune::orio
