#include "orio/codegen.hpp"

#include <gtest/gtest.h>

#include "orio/annotation.hpp"
#include "orio/compiled.hpp"
#include "support/error.hpp"

namespace portatune::orio {
namespace {

kernels::SpaptProblemPtr mm(std::int64_t n) {
  return parse_annotation(example_mm_annotation(n));
}

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t hits = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++hits;
    pos += needle.size();
  }
  return hits;
}

TEST(Codegen, IdentityEmitsPlainTripleLoop) {
  const auto prob = mm(64);
  const auto t = prob->transforms(prob->space().default_config(), 1);
  const auto code = generate_c(prob->phases()[0].nest, t[0], "mm");
  EXPECT_NE(code.find("void mm(double (* restrict C)[64]"),
            std::string::npos);
  EXPECT_EQ(count(code, "for ("), 3u);
  EXPECT_EQ(count(code, "C[i][j] = C[i][j] + A[i][k] * B[k][j];"), 1u);
}

TEST(Codegen, UnrollReplicatesBodyAndEmitsRemainder) {
  const auto prob = mm(64);
  auto c = prob->space().default_config();
  c[prob->space().index_of("U_K")] = 3;  // unroll 4
  const auto t = prob->transforms(c, 1);
  const auto code = generate_c(prob->phases()[0].nest, t[0], "mm");
  // 4 unrolled instances + 1 remainder instance.
  EXPECT_EQ(count(code, "C[i][j] = C[i][j] + A[i]"), 5u);
  EXPECT_NE(code.find("(k+3)"), std::string::npos);
  EXPECT_NE(code.find("k += 4"), std::string::npos);
}

TEST(Codegen, TilingEmitsTileLoopWithGuard) {
  const auto prob = mm(64);
  auto c = prob->space().default_config();
  c[prob->space().index_of("T_J")] = 4;  // tile 16
  const auto t = prob->transforms(c, 1);
  const auto code = generate_c(prob->phases()[0].nest, t[0], "mm");
  EXPECT_NE(code.find("for (long j_t = 0; j_t < 64; j_t += 16)"),
            std::string::npos);
  EXPECT_NE(code.find("j_hi"), std::string::npos);
}

TEST(Codegen, RegisterTilingJamsTheBody) {
  const auto prob = mm(64);
  auto c = prob->space().default_config();
  c[prob->space().index_of("RT_I")] = 1;  // reg tile 2
  c[prob->space().index_of("RT_J")] = 1;  // reg tile 2
  const auto t = prob->transforms(c, 1);
  const auto code = generate_c(prob->phases()[0].nest, t[0], "mm");
  // Jammed 2x2 block: main body has 4 instances; each of the two
  // remainder paths replays fewer.
  EXPECT_NE(code.find("(i+1)"), std::string::npos);
  EXPECT_NE(code.find("(j+1)"), std::string::npos);
  EXPECT_GE(count(code, "C["), 4u);
}

TEST(Codegen, SubstitutionRespectsTokenBoundaries) {
  const auto prob = parse_annotation(
      "kernel K\n"
      "array ii[16]\n"   // array name contains the loop var name
      "loop i 16\n"
      "stmt \"ii[i] = ii[i] + 1;\" flops 1 reads ii[i] writes ii[i]\n"
      "param U unroll i 1..4\n");
  auto c = prob->space().default_config();
  c[0] = 1;  // unroll 2
  const auto t = prob->transforms(c, 1);
  const auto code = generate_c(prob->phases()[0].nest, t[0], "k");
  // The array name "ii" must not be rewritten by the i -> (i+1) subst.
  EXPECT_NE(code.find("ii[(i+1)] = ii[(i+1)] + 1;"), std::string::npos);
  EXPECT_EQ(code.find("(i+1)i"), std::string::npos);
}

TEST(Codegen, MissingStatementTextThrows) {
  sim::LoopNest nest;
  nest.name = "n";
  nest.loops = {{"i", 4, 1.0}};
  nest.arrays = {{"A", {4}, 8}};
  sim::Statement s;
  s.depth = 1;
  s.refs = {{0, {sim::idx(0)}, true}};
  nest.stmts = {s};  // no text
  EXPECT_THROW(
      generate_c(nest, sim::NestTransform::identity(1), "f"),
      Error);
}

TEST(Codegen, BenchmarkProgramIsSelfContained) {
  const auto prob = mm(32);
  const auto t = prob->transforms(prob->space().default_config(), 1);
  const auto program =
      generate_benchmark_program(prob->phases()[0].nest, t[0], 2);
  EXPECT_NE(program.find("#include <stdio.h>"), std::string::npos);
  EXPECT_NE(program.find("int main(void)"), std::string::npos);
  EXPECT_NE(program.find("malloc"), std::string::npos);
  EXPECT_NE(program.find("checksum"), std::string::npos);
}

TEST(CompileAndRun, TransformedVariantsCompileAndRun) {
  // End-to-end check of the generated code through the host compiler: a
  // heavily transformed variant (ragged unroll + tile + unroll-and-jam)
  // must compile cleanly and report a positive run time, like the
  // untransformed default. (Numerical equivalence of the transformed
  // loop structures is covered by the native-kernel tests.)
  const auto prob = mm(48);
  const auto& nest = prob->phases()[0].nest;
  const auto def_t = prob->transforms(prob->space().default_config(), 1)[0];
  auto c = prob->space().default_config();
  c[prob->space().index_of("U_K")] = 4;   // unroll 5 (ragged)
  c[prob->space().index_of("T_I")] = 4;   // tile 16
  c[prob->space().index_of("RT_J")] = 1;  // reg tile 2
  const auto tuned_t = prob->transforms(c, 1)[0];

  CompileOptions opt;
  opt.reps = 1;
  double t_def = 0, t_tuned = 0;
  try {
    t_def = compile_and_run_variant(nest, def_t, opt);
    t_tuned = compile_and_run_variant(nest, tuned_t, opt);
  } catch (const Error& e) {
    GTEST_SKIP() << "host compiler unavailable: " << e.what();
  }
  EXPECT_GT(t_def, 0.0);
  EXPECT_GT(t_tuned, 0.0);
}

}  // namespace
}  // namespace portatune::orio
