// EvalCache semantics: LRU admission/eviction, scope isolation, the
// hit/miss/insertion/eviction counters, and the CachedEvaluator
// decorator's guarantee that a hit is byte-identical to a fresh
// evaluation while never touching the backend.
#include "service/eval_cache.hpp"

#include <gtest/gtest.h>

#include "apps/tuning_config.hpp"
#include "tuner/sampler.hpp"

namespace portatune::service {
namespace {

/// Counts how many evaluations actually reach the wrapped evaluator —
/// the probe for "hits never touch the backend".
class CountingEvaluator final : public tuner::Evaluator {
 public:
  explicit CountingEvaluator(tuner::Evaluator& inner) : inner_(inner) {}

  const tuner::ParamSpace& space() const override { return inner_.space(); }
  tuner::EvalResult evaluate(const tuner::ParamConfig& c) override {
    ++calls_;
    return inner_.evaluate(c);
  }
  std::vector<tuner::EvalResult> evaluate_batch(
      std::span<const tuner::ParamConfig> batch) override {
    calls_ += batch.size();
    return inner_.evaluate_batch(batch);
  }
  tuner::EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  std::size_t calls() const noexcept { return calls_; }

 private:
  tuner::Evaluator& inner_;
  std::size_t calls_ = 0;
};

TEST(EvalCache, LookupMissThenInsertThenHit) {
  EvalCache cache;
  EXPECT_FALSE(cache.lookup("LU|Westmere", 42).has_value());
  cache.insert("LU|Westmere", 42, 1.5);
  const auto hit = cache.lookup("LU|Westmere", 42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 1.5);

  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 1u);
}

TEST(EvalCache, ScopesAreIsolated) {
  EvalCache cache;
  cache.insert("LU|Westmere", 7, 1.0);
  // Same config hash, different machine scope: a distinct measurement.
  EXPECT_FALSE(cache.lookup("LU|Sandybridge", 7).has_value());
  cache.insert("LU|Sandybridge", 7, 2.0);
  EXPECT_DOUBLE_EQ(*cache.lookup("LU|Westmere", 7), 1.0);
  EXPECT_DOUBLE_EQ(*cache.lookup("LU|Sandybridge", 7), 2.0);
}

TEST(EvalCache, InsertIsIdempotentAndKeepsTheFirstValue) {
  EvalCache cache;
  cache.insert("s", 1, 1.0);
  cache.insert("s", 1, 99.0);  // deterministic backends: values agree anyway
  EXPECT_DOUBLE_EQ(*cache.lookup("s", 1), 1.0);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(EvalCache, EvictsLeastRecentlyUsedAtCapacity) {
  EvalCacheOptions opt;
  opt.capacity = 2;
  EvalCache cache(opt);
  cache.insert("s", 1, 1.0);
  cache.insert("s", 2, 2.0);
  cache.insert("s", 3, 3.0);  // evicts key 1, the oldest
  EXPECT_FALSE(cache.lookup("s", 1).has_value());
  EXPECT_TRUE(cache.lookup("s", 2).has_value());
  EXPECT_TRUE(cache.lookup("s", 3).has_value());

  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 2u);
}

TEST(EvalCache, HitRefreshesRecency) {
  EvalCacheOptions opt;
  opt.capacity = 2;
  EvalCache cache(opt);
  cache.insert("s", 1, 1.0);
  cache.insert("s", 2, 2.0);
  ASSERT_TRUE(cache.lookup("s", 1).has_value());  // 1 is now most recent
  cache.insert("s", 3, 3.0);                      // so 2 is the victim
  EXPECT_TRUE(cache.lookup("s", 1).has_value());
  EXPECT_FALSE(cache.lookup("s", 2).has_value());
}

TEST(CachedEvaluatorTest, HitsNeverReachTheBackend) {
  const apps::TuningConfig cfg = apps::TuningConfig{}.problem("LU").machine(
      "Westmere");
  auto stack = cfg.make_stack();
  CountingEvaluator counted(*stack);
  EvalCache cache;
  CachedEvaluator eval(counted, cache);
  EXPECT_EQ(eval.scope(), "LU|Westmere");

  // A successful configuration: first call misses, second hits.
  tuner::ConfigStream stream(eval.space(), 11);
  tuner::ParamConfig good;
  for (;;) {
    auto c = stream.next();
    ASSERT_TRUE(c.has_value());
    if (stack->evaluate(*c).ok) {
      good = *c;
      break;
    }
  }
  const std::size_t before = counted.calls();
  const tuner::EvalResult fresh = eval.evaluate(good);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(counted.calls(), before + 1);

  const tuner::EvalResult memo = eval.evaluate(good);
  EXPECT_EQ(counted.calls(), before + 1);  // served from the cache
  // The hit is indistinguishable from a fresh evaluation.
  EXPECT_TRUE(memo.ok);
  EXPECT_DOUBLE_EQ(memo.seconds, fresh.seconds);
  EXPECT_EQ(memo.attempts, 1u);
  EXPECT_DOUBLE_EQ(memo.overhead_seconds, 0.0);
}

TEST(CachedEvaluatorTest, FailuresAreNeverAdmitted) {
  const apps::TuningConfig cfg = apps::TuningConfig{}.problem("LU").machine(
      "Westmere");
  auto stack = cfg.make_stack();
  CountingEvaluator counted(*stack);
  EvalCache cache;
  CachedEvaluator eval(counted, cache);

  // Find a deterministically invalid configuration (LU has plenty:
  // register tile exceeding the cache tile, say).
  tuner::ConfigStream stream(eval.space(), 11);
  tuner::ParamConfig bad;
  bool found = false;
  for (int i = 0; i < 5000 && !found; ++i) {
    auto c = stream.next();
    ASSERT_TRUE(c.has_value());
    if (!stack->evaluate(*c).ok) {
      bad = *c;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "LU space unexpectedly has no invalid configs";

  EXPECT_FALSE(eval.evaluate(bad).ok);
  EXPECT_EQ(cache.stats().insertions, 0u);
  // A failure stays live: the backend is consulted again every time.
  const std::size_t before = counted.calls();
  EXPECT_FALSE(eval.evaluate(bad).ok);
  EXPECT_EQ(counted.calls(), before + 1);
}

TEST(CachedEvaluatorTest, BatchPartitionsMissesAndPreservesOrder) {
  const apps::TuningConfig cfg = apps::TuningConfig{}.problem("LU").machine(
      "Sandybridge");
  auto stack = cfg.make_stack();
  CountingEvaluator counted(*stack);
  EvalCache cache;
  CachedEvaluator eval(counted, cache);

  std::vector<tuner::ParamConfig> batch;
  tuner::ConfigStream stream(eval.space(), 3);
  while (batch.size() < 8) batch.push_back(*stream.next());

  const auto first = eval.evaluate_batch(batch);
  ASSERT_EQ(first.size(), batch.size());
  const std::size_t backend_calls = counted.calls();
  EXPECT_EQ(backend_calls, batch.size());

  // Replay the whole window: every successful result is a hit, only the
  // failures (never admitted) go back to the backend.
  std::size_t failures = 0;
  for (const auto& r : first)
    if (!r.ok) ++failures;
  const auto replay = eval.evaluate_batch(batch);
  ASSERT_EQ(replay.size(), batch.size());
  EXPECT_EQ(counted.calls(), backend_calls + failures);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(replay[i].ok, first[i].ok) << "batch slot " << i;
    if (first[i].ok) {
      EXPECT_DOUBLE_EQ(replay[i].seconds, first[i].seconds)
          << "batch slot " << i;
    }
  }

  // A mixed window (half cached, half new) only evaluates the new half.
  std::vector<tuner::ParamConfig> mixed(batch.begin(), batch.begin() + 4);
  std::vector<std::size_t> fresh_slots;
  while (mixed.size() < 8) {
    mixed.push_back(*stream.next());
    fresh_slots.push_back(mixed.size() - 1);
  }
  const std::size_t before = counted.calls();
  const auto mixed_out = eval.evaluate_batch(mixed);
  ASSERT_EQ(mixed_out.size(), mixed.size());
  std::size_t expected = fresh_slots.size();
  for (std::size_t i = 0; i < 4; ++i)
    if (!first[i].ok) ++expected;  // cached prefix failures re-evaluate
  EXPECT_EQ(counted.calls(), before + expected);
  for (std::size_t i = 0; i < 4; ++i) {
    if (first[i].ok) {
      EXPECT_DOUBLE_EQ(mixed_out[i].seconds, first[i].seconds);
    }
  }
}

}  // namespace
}  // namespace portatune::service
