// TuningService session lifecycle: open/step/suggest/report/checkpoint/
// close, crash-safe resume, the shared EvalCache across concurrent
// sessions, and the warm-start payoff (a session on a known machine
// reaches the cold best in fewer evaluations).
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "tuner/persistence.hpp"

namespace portatune::service {
namespace {

std::string fresh_data_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "portatune_svc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TuningServiceOptions service_opt(const std::string& name) {
  TuningServiceOptions opt;
  opt.data_dir = fresh_data_dir(name);
  return opt;
}

apps::TuningConfig lu_config(const std::string& machine,
                             std::uint64_t seed = 42,
                             std::size_t budget = 40) {
  return apps::TuningConfig{}.problem("LU").machine(machine).max_evals(
      budget).seed(seed);
}

tuner::SearchTrace run_to_exhaustion(SessionHandle& s) {
  while (!s.step(10).exhausted) {
  }
  return s.trace_snapshot();
}

void expect_traces_equal(const tuner::SearchTrace& a,
                         const tuner::SearchTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entry(i).config, b.entry(i).config) << "entry " << i;
    EXPECT_DOUBLE_EQ(a.entry(i).seconds, b.entry(i).seconds) << "entry " << i;
    EXPECT_EQ(a.entry(i).draw_index, b.entry(i).draw_index) << "entry " << i;
  }
}

TEST(TuningServiceTest, ColdSessionLifecycle) {
  TuningService service(service_opt("lifecycle"));
  SessionHandle& s = service.open("s1", lu_config("Westmere"));
  EXPECT_FALSE(s.warm());  // the store is empty: nothing to warm from

  const tuner::SessionStepStats st = s.step(10);
  EXPECT_GT(st.evaluated, 0u);
  EXPECT_GT(st.best_seconds, 0.0);

  run_to_exhaustion(s);
  const tuner::SearchTrace trace = s.close();
  EXPECT_EQ(trace.size(), 40u);

  // Closing persisted the session directory and published to the store.
  EXPECT_TRUE(file_exists(s.dir() + "/meta.json"));
  EXPECT_TRUE(file_exists(s.dir() + "/checkpoint.csv"));
  EXPECT_EQ(service.store().size(), 1u);
  EXPECT_EQ(service.store().entries()[0].machine, "Westmere");

  const SessionInfo info = s.info();
  EXPECT_TRUE(info.closed);
  EXPECT_EQ(info.evals, 40u);
  EXPECT_DOUBLE_EQ(info.best_seconds, trace.best_seconds());

  // close() is idempotent and does not duplicate the store entry.
  expect_traces_equal(s.close(), trace);
  EXPECT_EQ(service.store().size(), 1u);
}

TEST(TuningServiceTest, OpenAndResumeValidation) {
  TuningService service(service_opt("validation"));
  service.open("s1", lu_config("Westmere"));
  EXPECT_THROW(service.open("s1", lu_config("Westmere")), Error);
  EXPECT_THROW(service.open("../evil", lu_config("Westmere")), Error);
  EXPECT_THROW(service.open("", lu_config("Westmere")), Error);
  EXPECT_THROW(service.resume("never-opened"), Error);
  EXPECT_EQ(service.find("s1")->id(), "s1");
  EXPECT_EQ(service.find("nope"), nullptr);

  // A closed session cannot be resumed — its work is done.
  service.find("s1")->close();
  EXPECT_THROW(service.resume("s1"), Error);
}

TEST(TuningServiceTest, SuggestReportFeedsExternalMeasurements) {
  TuningService service(service_opt("suggest"));
  const apps::TuningConfig cfg = lu_config("Sandybridge", 7, 30);
  SessionHandle& s = service.open("external", cfg);

  const std::vector<tuner::ParamConfig> cands = s.suggest(2);
  ASSERT_EQ(cands.size(), 2u);

  // Measure externally on an identical backend and feed the results in.
  auto stack = cfg.make_stack();
  std::size_t reported = 0;
  bool first_reported = false;
  for (const auto& c : cands) {
    const tuner::EvalResult r = stack->evaluate(c);
    if (!r.ok) continue;  // failed draws never enter the trace
    s.report(c, r.seconds);
    ++reported;
    if (&c == &cands.front()) first_reported = true;
  }
  EXPECT_EQ(s.trace_snapshot().size(), reported);

  // Reporting a configuration the session did not hand out (or already
  // consumed) is an error.
  if (first_reported) {
    EXPECT_THROW(s.report(cands[0], 1.0), Error);
  }

  // The session continues service-side from where the suggestions left
  // off, still respecting the overall budget.
  run_to_exhaustion(s);
  EXPECT_EQ(s.trace_snapshot().size(), 30u);
}

TEST(TuningServiceTest, CheckpointResumeContinuesExactly) {
  const TuningServiceOptions opt = service_opt("resume");

  // Reference: the same session uninterrupted (separate data dir so the
  // two services share nothing).
  tuner::SearchTrace reference;
  {
    TuningService ref_service(service_opt("resume_ref"));
    SessionHandle& r = ref_service.open("job", lu_config("Power7", 11));
    reference = run_to_exhaustion(r);
  }

  {
    TuningService service(opt);
    SessionHandle& s = service.open("job", lu_config("Power7", 11));
    s.step(15);
    s.checkpoint();
    // The service dies here; its destructor checkpoints once more.
  }

  TuningService revived(opt);
  SessionHandle& s = revived.resume("job");
  EXPECT_GE(s.trace_snapshot().size(), 15u);
  const tuner::SearchTrace resumed = run_to_exhaustion(s);

  // Same seed, same replayed draw position: the resumed trace is the
  // uninterrupted trace, entry for entry.
  expect_traces_equal(resumed, reference);
}

TEST(TuningServiceTest, ResumeRestoresTheFullConfig) {
  // A config whose non-default fields change the evaluator stack and
  // therefore the trace: injected faults behind a resilient retry layer,
  // fanned out over two threads. If resume() dropped any of these fields
  // (rebuilding a default stack instead), the resumed trace would
  // diverge from the uninterrupted reference.
  const auto make_config = [] {
    tuner::FaultProfile faults;
    faults.transient_rate = 0.15;
    faults.deterministic_rate = 0.1;
    faults.seed = 9;
    tuner::RetryPolicy retry;
    retry.max_attempts = 2;
    return apps::TuningConfig{}
        .problem("LU")
        .machine("Westmere")
        .max_evals(30)
        .seed(11)
        .faults(faults)
        .resilient(true)
        .retry(retry)
        .eval_threads(2)
        .batch_width(4);
  };

  tuner::SearchTrace reference;
  {
    TuningService ref_service(service_opt("fullcfg_ref"));
    SessionHandle& r = ref_service.open("job", make_config());
    reference = run_to_exhaustion(r);
  }

  const TuningServiceOptions opt = service_opt("fullcfg");
  {
    TuningService service(opt);
    SessionHandle& s = service.open("job", make_config());
    s.step(10);
    s.checkpoint();
  }
  TuningService revived(opt);
  SessionHandle& s = revived.resume("job");
  expect_traces_equal(run_to_exhaustion(s), reference);
}

TEST(TuningServiceTest, PendingSuggestionsSurviveResume) {
  const TuningServiceOptions opt = service_opt("pending");
  const apps::TuningConfig cfg = lu_config("Westmere", 5, 20);

  std::vector<tuner::ParamConfig> cands;
  {
    TuningService service(opt);
    SessionHandle& s = service.open("ext", cfg);
    cands = s.suggest(2);
    ASSERT_EQ(cands.size(), 2u);
    s.checkpoint();
    // The service dies with the suggestions still outstanding.
  }

  // The resumed session still accepts report() for them: the checkpoint
  // carries the pending pairs alongside the draw watermark.
  TuningService revived(opt);
  SessionHandle& s = revived.resume("ext");
  auto stack = cfg.make_stack();
  std::size_t reported = 0;
  for (const auto& c : cands) {
    const tuner::EvalResult r = stack->evaluate(c);
    if (!r.ok) continue;
    s.report(c, r.seconds);
    ++reported;
  }
  EXPECT_EQ(s.trace_snapshot().size(), reported);

  // And the session continues service-side to the full budget.
  run_to_exhaustion(s);
  EXPECT_EQ(s.trace_snapshot().size(), 20u);
}

TEST(TuningServiceTest, ReopeningAClosedIdDropsTheStaleCheckpoint) {
  const TuningServiceOptions opt = service_opt("reopen");
  {
    TuningService service(opt);
    SessionHandle& s = service.open("job", lu_config("Westmere", 3, 40));
    s.step(5);
    s.close();  // leaves meta (closed) + the final checkpoint on disk
  }

  // Opening a fresh session over the closed directory must delete the
  // old checkpoint immediately: a crash before the new session's first
  // checkpoint would otherwise resume the previous trace against the
  // new config.
  TuningService second(opt);
  SessionHandle& s = second.open("job", lu_config("Westmere", 99, 10));
  EXPECT_FALSE(file_exists(s.dir() + "/checkpoint.csv"));
}

TEST(TuningServiceTest, CheckpointAllToleratesClosedSessions) {
  TuningService service(service_opt("ckpt_closed"));
  SessionHandle& a = service.open("a", lu_config("Westmere"));
  SessionHandle& b = service.open("b", lu_config("Power7"));
  a.step(5);
  b.step(3);
  b.close();

  // A session closing between the sweep's snapshot of the registry and
  // its checkpoint call must not abort the sweep for the rest.
  EXPECT_NO_THROW(service.checkpoint_all());
  EXPECT_NO_THROW(b.checkpoint());  // no-op on a closed session
  ASSERT_TRUE(file_exists(a.dir() + "/checkpoint.csv"));
  const tuner::SearchCheckpoint cp = tuner::load_checkpoint_csv(
      a.dir() + "/checkpoint.csv", a.space());
  EXPECT_EQ(cp.trace.size(), a.trace_snapshot().size());
}

TEST(TuningServiceTest, SessionsShareTheEvalCache) {
  TuningService service(service_opt("shared_cache"));

  // First session runs to exhaustion but stays open (no store
  // publication), so the second is cold too and replays the same seed.
  SessionHandle& a = service.open("a", lu_config("Westmere", 42));
  const tuner::SearchTrace trace_a = run_to_exhaustion(a);

  const EvalCacheStats before = service.cache().stats();
  SessionHandle& b = service.open("b", lu_config("Westmere", 42));
  const tuner::SearchTrace trace_b = run_to_exhaustion(b);
  const EvalCacheStats after = service.cache().stats();

  // Identical draw stream, deterministic backend: session b's trace is
  // session a's, and (fingerprint included) it ran hot from the cache.
  expect_traces_equal(trace_b, trace_a);
  EXPECT_GE(after.hits - before.hits, trace_a.size());
}

TEST(TuningServiceTest, ConcurrentSessionsMatchTheirSerialReferences) {
  // Single-threaded references, computed on bare stacks with no cache.
  const auto reference = [](const apps::TuningConfig& cfg) {
    auto stack = cfg.make_stack();
    tuner::TuningSession ref(*stack, cfg.session_options("ref"));
    while (!ref.step(10).exhausted) {
    }
    return ref.trace();
  };
  const apps::TuningConfig cfg_a = lu_config("Westmere", 1);
  const apps::TuningConfig cfg_b = lu_config("Sandybridge", 2);
  const tuner::SearchTrace ref_a = reference(cfg_a);
  const tuner::SearchTrace ref_b = reference(cfg_b);

  TuningService service(service_opt("concurrent"));
  SessionHandle& a = service.open("a", cfg_a);
  SessionHandle& b = service.open("b", cfg_b);

  std::thread ta([&] { run_to_exhaustion(a); });
  std::thread tb([&] { run_to_exhaustion(b); });
  ta.join();
  tb.join();

  // Two sessions advancing concurrently over the shared cache produce
  // exactly the traces their serial, cacheless counterparts produce.
  expect_traces_equal(a.trace_snapshot(), ref_a);
  expect_traces_equal(b.trace_snapshot(), ref_b);
  EXPECT_EQ(service.sessions().size(), 2u);
}

TEST(TuningServiceTest, WarmSessionReachesColdBestInFewerEvals) {
  TuningService service(service_opt("warm"));

  // Cold baseline on Sandybridge against an empty store.
  SessionHandle& cold = service.open("cold", lu_config("Sandybridge", 42,
                                                       100));
  run_to_exhaustion(cold);
  const tuner::SearchTrace cold_trace = cold.close();

  // A source machine tunes and publishes its trace.
  SessionHandle& src = service.open("src", lu_config("Westmere", 42, 100));
  run_to_exhaustion(src);
  src.close();
  EXPECT_EQ(service.store().size(), 2u);

  // The new Sandybridge session fingerprints as a known machine and
  // warm-starts from the most similar stored surrogate.
  SessionHandle& warm = service.open("warm", lu_config("Sandybridge", 7,
                                                       100));
  EXPECT_TRUE(warm.warm());
  EXPECT_FALSE(warm.warm_source().empty());
  run_to_exhaustion(warm);
  const tuner::SearchTrace warm_trace = warm.close();

  const auto evals_to_reach = [](const tuner::SearchTrace& t,
                                 double threshold) {
    for (std::size_t i = 0; i < t.size(); ++i)
      if (t.entry(i).seconds <= threshold) return i + 1;
    return t.size() + 1;
  };
  const double target = cold_trace.best_seconds();
  const std::size_t cold_needed = evals_to_reach(cold_trace, target);
  const std::size_t warm_needed = evals_to_reach(warm_trace, target);
  ASSERT_LE(warm_needed, warm_trace.size()) << "warm session never reached "
                                               "the cold best";
  EXPECT_LT(warm_needed, cold_needed);
}

TEST(TuningServiceTest, CheckpointAllSnapshotsEveryOpenSession) {
  TuningService service(service_opt("checkpoint_all"));
  SessionHandle& a = service.open("a", lu_config("Westmere"));
  SessionHandle& b = service.open("b", lu_config("Power7"));
  a.step(5);
  b.step(5);
  service.checkpoint_all();
  for (const auto* h : {&a, &b}) {
    ASSERT_TRUE(file_exists(h->dir() + "/checkpoint.csv"));
    const tuner::SearchCheckpoint cp = tuner::load_checkpoint_csv(
        h->dir() + "/checkpoint.csv", h->space());
    EXPECT_EQ(cp.trace.size(), h->trace_snapshot().size());
  }
  service.publish_metrics();  // must not deadlock or throw with live sessions
}

}  // namespace
}  // namespace portatune::service
