// ChaosProxy vs ResilientClient: each injected transport fault — delay,
// torn reply, mid-reply hangup, blackhole — against a real server, with
// the exactly-once invariant checked the same way the loadgen does: the
// server-side per-op execution counters must equal the client-side call
// counts, no matter how many retries the faults forced. UNIX-only.
#if defined(__unix__) || defined(__APPLE__)

#include "service/chaos_proxy.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "service/resilient_client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "support/cancellation.hpp"

namespace portatune::service {
namespace {

using obs::json::Value;

template <class Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ChaosProxyTest : public testing::Test {
 protected:
  ChaosProxyTest() : redirect_(registry_) {}

  void start(ChaosProxyOptions copt) {
    const std::string pid = std::to_string(::getpid());
    const std::string dir = testing::TempDir() + "portatune_chaos_" + pid;
    std::filesystem::remove_all(dir);
    TuningServiceOptions so;
    so.data_dir = dir;
    svc_ = std::make_unique<TuningService>(so);
    upstream_path_ = testing::TempDir() + "pt_chaos_up_" + pid + ".sock";
    listen_path_ = testing::TempDir() + "pt_chaos_" + pid + ".sock";
    server_thread_ = std::thread([this] {
      serve_unix_socket(*svc_, upstream_path_, server_cancel_.token(), {});
    });
    proxy_ = std::make_unique<ChaosProxy>(listen_path_, upstream_path_,
                                          copt);
    proxy_thread_ =
        std::thread([this] { proxy_->run(proxy_cancel_.token()); });
    ASSERT_TRUE(eventually([&] {
      return std::filesystem::exists(upstream_path_) &&
             std::filesystem::exists(listen_path_);
    }));
  }

  void TearDown() override {
    proxy_cancel_.request_cancel();
    if (proxy_thread_.joinable()) proxy_thread_.join();
    server_cancel_.request_cancel();
    if (server_thread_.joinable()) server_thread_.join();
  }

  ResilientClient make_client() {
    ResilientClientOptions ro;
    ro.client_id = "chaos-test";
    ro.attempt_timeout_seconds = 1.0;
    ro.call_deadline_seconds = 30.0;
    return ResilientClient(listen_path_, ro);
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  /// open -> `suggests` suggest calls -> close, all through the proxy;
  /// asserts every reply was ok and the server executed each logical
  /// call exactly once.
  void drive_and_check_exactly_once(std::size_t suggests) {
    ResilientClient client = make_client();
    ASSERT_TRUE(
        Value::parse(
            client.call(R"({"op":"open","id":"c1","problem":"LU",)"
                        R"("machine":"Westmere","max_evals":50,"seed":3})"))
            .at("ok")
            .as_bool());
    for (std::size_t i = 0; i < suggests; ++i)
      ASSERT_TRUE(
          Value::parse(client.call(R"({"op":"suggest","id":"c1","n":1})"))
              .at("ok")
              .as_bool())
          << "suggest " << i;
    ASSERT_TRUE(
        Value::parse(client.call(R"({"op":"close","id":"c1"})"))
            .at("ok")
            .as_bool());
    // Exactly-once: executions == logical calls. Retries forced by the
    // faults may add server.rid.replays, never per-op counts.
    EXPECT_TRUE(eventually([&] {
      return counter("server.op.close.count") == 1;
    }));
    EXPECT_EQ(counter("server.op.open.count"), 1u);
    EXPECT_EQ(counter("server.op.suggest.count"), suggests);
    EXPECT_EQ(counter("server.op.close.count"), 1u);
  }

  obs::MetricsRegistry registry_;
  obs::ScopedMetricsRedirect redirect_;
  CancellationSource server_cancel_, proxy_cancel_;
  std::unique_ptr<TuningService> svc_;
  std::unique_ptr<ChaosProxy> proxy_;
  std::string upstream_path_, listen_path_;
  std::thread server_thread_, proxy_thread_;
};

TEST_F(ChaosProxyTest, CleanPassThrough) {
  start({});  // all fault rates zero
  drive_and_check_exactly_once(5);
  EXPECT_GE(proxy_->stats().requests, 7u);
  EXPECT_EQ(proxy_->stats().tears, 0u);
}

TEST_F(ChaosProxyTest, DelaysDeliverEventually) {
  ChaosProxyOptions copt;
  copt.delay_rate = 1.0;  // every reply held back
  copt.delay_seconds = 0.02;
  start(copt);
  ResilientClient client = make_client();
  EXPECT_TRUE(Value::parse(client.call(R"({"op":"status"})"))
                  .at("ok")
                  .as_bool());
  EXPECT_EQ(client.stats().retries, 0u);  // delayed, not lost
  EXPECT_GE(proxy_->stats().delays, 1u);
}

TEST_F(ChaosProxyTest, TornRepliesAreRetriedExactlyOnce) {
  ChaosProxyOptions copt;
  copt.seed = 7;
  copt.tear_rate = 0.4;
  start(copt);
  drive_and_check_exactly_once(12);
  // With a 40% tear rate over 14+ requests the schedule tears at least
  // once (seeded, so this is deterministic, not flaky).
  EXPECT_GE(proxy_->stats().tears, 1u);
  EXPECT_GE(counter("server.rid.replays"), 1u);
}

TEST_F(ChaosProxyTest, HangupsExecuteOnceAndReplay) {
  ChaosProxyOptions copt;
  copt.seed = 11;
  copt.hangup_rate = 0.4;
  start(copt);
  drive_and_check_exactly_once(12);
  EXPECT_GE(proxy_->stats().hangups, 1u);
  // A hangup means the op *did* execute and the reply was lost — the
  // retry must have been answered from the reply cache.
  EXPECT_GE(counter("server.rid.replays"), 1u);
}

TEST_F(ChaosProxyTest, BlackholedRequestsNeverReachTheServer) {
  ChaosProxyOptions copt;
  copt.blackhole_rate = 1.0;  // swallow everything
  copt.blackhole_hold_seconds = 0.05;
  start(copt);
  ResilientClientOptions ro;
  ro.attempt_timeout_seconds = 0.2;
  ro.call_deadline_seconds = 0.8;
  ResilientClient client(listen_path_, ro);
  EXPECT_THROW(client.call(R"({"op":"status"})"), Error);
  EXPECT_GT(client.stats().retries, 0u);
  // The proxy never forwarded a byte: the server executed nothing.
  EXPECT_EQ(proxy_->stats().requests, 0u);
  EXPECT_GE(proxy_->stats().blackholes, 1u);
  EXPECT_EQ(counter("server.op.status.count"), 0u);
}

TEST_F(ChaosProxyTest, MixedFaultStormStaysExactlyOnce) {
  ChaosProxyOptions copt;
  copt.seed = 42;
  copt.delay_rate = 0.2;
  copt.delay_seconds = 0.01;
  copt.tear_rate = 0.15;
  copt.hangup_rate = 0.1;
  copt.blackhole_rate = 0.05;
  copt.blackhole_hold_seconds = 0.05;
  start(copt);
  drive_and_check_exactly_once(20);
}

TEST_F(ChaosProxyTest, DeadUpstreamSurfacesAsDeadline) {
  // Proxy up, daemon gone: connections open and immediately close, and
  // the client's deadline is the only thing that ends the retry loop.
  ChaosProxyOptions copt;
  const std::string pid = std::to_string(::getpid());
  listen_path_ = testing::TempDir() + "pt_chaos_dead_" + pid + ".sock";
  proxy_ = std::make_unique<ChaosProxy>(
      listen_path_, testing::TempDir() + "pt_chaos_void_" + pid + ".sock",
      copt);
  proxy_thread_ =
      std::thread([this] { proxy_->run(proxy_cancel_.token()); });
  ASSERT_TRUE(eventually(
      [&] { return std::filesystem::exists(listen_path_); }));
  ResilientClientOptions ro;
  ro.call_deadline_seconds = 0.5;
  ro.attempt_timeout_seconds = 0.2;
  ResilientClient client(listen_path_, ro);
  EXPECT_THROW(client.call(R"({"op":"status"})"), Error);
}

}  // namespace
}  // namespace portatune::service

#endif  // UNIX
