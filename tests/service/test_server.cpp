// serve_unix_socket under real traffic and real abuse: stats round trip,
// garbage/torn/oversized lines, disconnecting clients, the heartbeat
// file, and the two shutdown exits. UNIX-only (AF_UNIX transport); on
// other platforms the whole suite compiles away.
#if defined(__unix__) || defined(__APPLE__)

#include "service/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "service/resilient_client.hpp"
#include "support/cancellation.hpp"

namespace portatune::service {
namespace {

using obs::json::Value;

/// Spin until `pred` holds or ~5s pass; returns its final value. The
/// server loop runs in a background thread, so anything it maintains
/// (counters, the socket file, the heartbeat) is eventually consistent
/// from the test's point of view.
template <class Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ServerTest : public testing::Test {
 protected:
  // Declaration order is load-bearing: the redirect must be installed
  // before the server thread binds its instruments, and torn down after
  // the thread joined.
  ServerTest() : redirect_(registry_) {}

  void start(ServeOptions opt = {}) {
    // Per-process paths: under `ctest -j` every test is its own process,
    // and shared names would let concurrent tests clobber each other's
    // data dir and socket.
    const std::string pid = std::to_string(::getpid());
    const std::string dir = testing::TempDir() + "portatune_server_" + pid;
    std::filesystem::remove_all(dir);
    TuningServiceOptions so;
    so.data_dir = dir;
    svc_ = std::make_unique<TuningService>(so);
    socket_path_ = testing::TempDir() + "pt_server_" + pid + ".sock";
    thread_ = std::thread([this, opt] {
      rc_ = serve_unix_socket(*svc_, socket_path_, cancel_.token(), opt);
    });
    ASSERT_TRUE(eventually(
        [&] { return std::filesystem::exists(socket_path_); }))
        << "server never bound " << socket_path_;
  }

  void TearDown() override {
    if (thread_.joinable()) {
      cancel_.request_cancel();
      thread_.join();
    }
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  /// Raw connected AF_UNIX fd for the torn-line tests (ServiceClient
  /// can't send half a request on purpose).
  int raw_connect() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  obs::MetricsRegistry registry_;
  obs::ScopedMetricsRedirect redirect_;
  CancellationSource cancel_;
  std::unique_ptr<TuningService> svc_;
  std::string socket_path_;
  std::thread thread_;
  int rc_ = -1;
};

TEST_F(ServerTest, StatsRoundTripOverSocket) {
  start();
  ServiceClient client(socket_path_);
  const Value stats = Value::parse(client.call(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_GT(stats.at("server").at("pid").as_number(), 0.0);
  EXPECT_GE(stats.at("server").at("requests").as_number(), 1.0);
  // The wire instruments live in the snapshot the reply carries.
  const Value* counters = stats.at("metrics").find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("server.clients_accepted"), nullptr);
  EXPECT_GE(counters->at("server.op.stats.count").as_number(), 1.0);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.clients_accepted") >= 1; }));
  EXPECT_GT(counter("server.bytes_in"), 0u);
  // bytes_out lands just *after* the reply hits the socket, so the
  // client can race ahead of the counter by a hair.
  EXPECT_TRUE(eventually([&] { return counter("server.bytes_out") > 0; }));
}

TEST_F(ServerTest, GarbageLineIsRejectedAndCounted) {
  start();
  ServiceClient client(socket_path_);
  const Value reply = Value::parse(client.call("complete garbage"));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_FALSE(reply.at("error").as_string().empty());
  // Same connection keeps working afterwards.
  EXPECT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
  EXPECT_EQ(counter("server.op.invalid.count"), 1u);
  EXPECT_EQ(counter("server.op.invalid.errors"), 1u);
  EXPECT_EQ(counter("server.requests_failed"), 1u);
}

TEST_F(ServerTest, TornLineAndDisconnectLeaveServerServing) {
  start();
  // Half a request, then hang up mid-line.
  const int fd = raw_connect();
  const char torn[] = "{\"op\":\"sta";
  ASSERT_GT(::send(fd, torn, sizeof(torn) - 1, 0), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ::close(fd);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.clients_disconnected") >= 1; }));
  // The torn fragment never became a request...
  EXPECT_EQ(counter("server.op.invalid.count"), 0u);
  // ...and the server still answers new clients.
  ServiceClient client(socket_path_);
  EXPECT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
}

TEST_F(ServerTest, OversizedLineGetsErrorReplyAndHangup) {
  ServeOptions opt;
  opt.max_line_bytes = 64;
  start(opt);
  ServiceClient client(socket_path_);
  const std::string huge =
      R"({"op":"status","padding":")" + std::string(200, 'x') + "\"}";
  const Value reply = Value::parse(client.call(huge));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_NE(reply.at("error").as_string().find("exceeds"),
            std::string::npos);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.lines_rejected") >= 1; }));
  // The verdict was the connection's last word.
  EXPECT_THROW(client.call(R"({"op":"status"})"), Error);
  // An in-bounds client is unaffected.
  ServiceClient fine(socket_path_);
  EXPECT_TRUE(
      Value::parse(fine.call(R"({"op":"status"})")).at("ok").as_bool());
}

TEST_F(ServerTest, UnterminatedOversizedBufferIsRejectedToo) {
  ServeOptions opt;
  opt.max_line_bytes = 64;
  start(opt);
  // A line that outgrows the cap before any newline arrives: the server
  // must reject it *now*, not buffer until the writer deigns to finish.
  const int fd = raw_connect();
  const std::string flood(1024, 'y');
  ASSERT_GT(::send(fd, flood.data(), flood.size(), 0), 0);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.lines_rejected") >= 1; }));
  char buf[512];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buf, static_cast<std::size_t>(n)).find("exceeds"),
            std::string::npos);
  ::close(fd);
}

TEST_F(ServerTest, ShutdownOpExitsZero) {
  start();
  const Value reply = Value::parse(
      call_unix_socket(socket_path_, R"({"op":"shutdown"})"));
  EXPECT_TRUE(reply.at("ok").as_bool());
  thread_.join();
  EXPECT_EQ(rc_, 0);
  EXPECT_FALSE(std::filesystem::exists(socket_path_));
}

TEST_F(ServerTest, HeartbeatFileIsWrittenAndFinalized) {
  ServeOptions opt;
  opt.status_every_seconds = 0.05;
  opt.status_path = testing::TempDir() + "pt_server_status_" +
                    std::to_string(::getpid()) + ".json";
  std::filesystem::remove(opt.status_path);
  start(opt);
  ASSERT_TRUE(eventually(
      [&] { return std::filesystem::exists(opt.status_path); }));
  ServiceClient client(socket_path_);
  ASSERT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
  ASSERT_TRUE(eventually([&] {
    std::ifstream in(opt.status_path);
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().empty()) return false;
    const Value status = Value::parse(buf.str());
    return status.at("schema").as_string() == "portatune_server_status" &&
           status.at("requests_total").as_number() >= 1.0;
  }));
  cancel_.request_cancel();
  thread_.join();
  EXPECT_EQ(rc_, 3);
  // The teardown wrote one final heartbeat with no clients left.
  std::ifstream in(opt.status_path);
  std::stringstream buf;
  buf << in.rdbuf();
  const Value final_status = Value::parse(buf.str());
  EXPECT_EQ(final_status.at("clients_connected").as_number(), 0.0);
  EXPECT_GT(final_status.at("pid").as_number(), 0.0);
  EXPECT_NE(final_status.find("ops"), nullptr);
}

TEST_F(ServerTest, LargePayloadRoundTripsThroughServiceClient) {
  start();  // default 1 MiB line cap
  ServiceClient client(socket_path_);
  // Half a MiB in one request line: the client's send loop must survive
  // short writes (a Unix socket buffer is far smaller than this), and
  // the server must reassemble the line across many reads.
  const std::string huge = R"({"op":"status","padding":")" +
                           std::string(512 * 1024, 'x') + "\"}";
  const Value reply = Value::parse(client.call(huge));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(eventually(
      [&] { return counter("server.bytes_in") >= huge.size(); }));
  // The connection is still healthy for normal-sized traffic.
  EXPECT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
}

TEST_F(ServerTest, IdleSessionIsReclaimedThenTransparentlyRestored) {
  ServeOptions opt;
  opt.lease_seconds = 0.3;
  opt.lease_check_every_seconds = 0.05;
  start(opt);
  ServiceClient client(socket_path_);
  ASSERT_TRUE(Value::parse(client.call(
                              R"({"op":"open","id":"idle1","problem":"LU",)"
                              R"("machine":"Westmere","max_evals":30,)"
                              R"("seed":3})"))
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(
      Value::parse(client.call(R"({"op":"step","id":"idle1","n":4})"))
          .at("ok")
          .as_bool());
  // Idle past the lease: the sweep checkpoints and evicts the session.
  EXPECT_TRUE(eventually(
      [&] { return counter("server.sessions_reclaimed") >= 1; }));
  EXPECT_TRUE(eventually([&] { return svc_->find("idle1") == nullptr; }));
  // The next op on the same connection restores it from the checkpoint —
  // eviction is invisible to the client, and no progress was lost.
  const Value stepped =
      Value::parse(client.call(R"({"op":"step","id":"idle1","n":1})"));
  ASSERT_TRUE(stepped.at("ok").as_bool());
  EXPECT_EQ(stepped.at("evals").as_number(), 5.0);
  EXPECT_GE(counter("service.sessions_restored"), 1u);
}

TEST_F(ServerTest, OverBudgetRequestsGetTypedRetryAfter) {
  ServeOptions opt;
  opt.client_rate_limit = 5.0;
  opt.client_rate_burst = 2.0;
  start(opt);
  ServiceClient client(socket_path_);
  ASSERT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
  ASSERT_TRUE(
      Value::parse(client.call(R"({"op":"status"})")).at("ok").as_bool());
  // Burst spent: the third immediate request is rejected with the typed
  // overload error, *without* reaching the protocol (no op counter).
  const Value throttled =
      Value::parse(client.call(R"({"op":"status"})"));
  EXPECT_FALSE(throttled.at("ok").as_bool());
  EXPECT_NE(throttled.at("error").as_string().find("rate limit"),
            std::string::npos);
  ASSERT_TRUE(throttled.at("retry_after").is_number());
  EXPECT_GT(throttled.at("retry_after").as_number(), 0.0);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.requests_throttled") >= 1; }));
  EXPECT_EQ(counter("server.op.status.count"), 2u);
  // A ResilientClient rides the same limiter invisibly: it sleeps the
  // advertised retry_after and the call still succeeds.
  ResilientClient resilient(socket_path_);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(Value::parse(resilient.call(R"({"op":"status"})"))
                    .at("ok")
                    .as_bool());
  EXPECT_GE(resilient.stats().throttled, 1u);
}

TEST_F(ServerTest, ExactlyOnceSurvivesServerRestart) {
  const std::string state_path = testing::TempDir() + "pt_proto_state_" +
                                 std::to_string(::getpid()) + ".json";
  std::filesystem::remove(state_path);
  ServeOptions opt;
  opt.protocol.state_path = state_path;
  start(opt);
  ServiceClient first(socket_path_);
  ASSERT_TRUE(Value::parse(first.call(
                               R"({"op":"open","id":"r1","problem":"LU",)"
                               R"("machine":"Westmere","max_evals":30,)"
                               R"("seed":3,"rid":"t:1"})"))
                  .at("ok")
                  .as_bool());
  const std::string step_line =
      R"({"op":"step","id":"r1","n":2,"rid":"t:2"})";
  const std::string step_reply = first.call(step_line);
  ASSERT_TRUE(Value::parse(step_reply).at("ok").as_bool());

  // "SIGTERM": graceful shutdown persists the protocol state and
  // checkpoints the open session.
  cancel_.request_cancel();
  thread_.join();
  EXPECT_EQ(rc_, 3);
  ASSERT_TRUE(std::filesystem::exists(state_path));

  // Restart: a new service process on the same data dir + state file.
  TuningServiceOptions so;
  so.data_dir = svc_->store().dir().substr(
      0, svc_->store().dir().rfind("/store"));
  TuningService svc2(so);
  CancellationSource cancel2;
  std::thread thread2([&] {
    serve_unix_socket(svc2, socket_path_, cancel2.token(), opt);
  });
  ASSERT_TRUE(eventually(
      [&] { return std::filesystem::exists(socket_path_); }));

  // A retry of the rid that executed on the *old* daemon replays the
  // exact pre-restart reply — the cache crossed the restart.
  ResilientClient client(socket_path_);
  EXPECT_EQ(client.call(step_line), step_reply);
  EXPECT_TRUE(eventually(
      [&] { return counter("server.rid.replays") >= 1; }));
  // And a fresh step auto-restores the checkpointed session: 2 evals
  // before the restart + 2 now.
  const Value stepped = Value::parse(
      client.call(R"({"op":"step","id":"r1","n":2,"rid":"t:3"})"));
  ASSERT_TRUE(stepped.at("ok").as_bool());
  EXPECT_EQ(stepped.at("evals").as_number(), 4.0);
  // Counter continuity, replays excluded: 1 live execution before the
  // restart + 1 restored from the state file (both land in this test's
  // registry, which outlives the "restart") + 1 fresh execution.
  EXPECT_EQ(counter("server.op.step.count"), 3u);
  cancel2.request_cancel();
  thread2.join();
}

}  // namespace
}  // namespace portatune::service

#endif  // UNIX
