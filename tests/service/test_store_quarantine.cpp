// Store corruption fuzzing: truncations, byte flips, forged checksum
// footers, and index damage. The contract under test is uniform — the
// store never crashes on corrupt state, it quarantines the damaged piece
// (counted, evented) and keeps serving every survivor.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/tuning_config.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "service/surrogate_store.hpp"
#include "support/atomic_file.hpp"
#include "support/checksum.hpp"
#include "tuner/random_search.hpp"

namespace portatune::service {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A store with two real LU entries (Westmere + Sandybridge) in a fresh
/// per-test directory; exposes the second entry's trace file as the fuzz
/// target and the survivor's fingerprint for nearest() checks.
class StoreQuarantineTest : public testing::Test {
 protected:
  StoreQuarantineTest() : redirect_(registry_) {}

  void build(const std::string& name) {
    dir_ = testing::TempDir() + "portatune_quarantine_" + name;
    std::filesystem::remove_all(dir_);
    auto westmere =
        apps::TuningConfig{}.problem("LU").machine("Westmere").make_stack();
    auto sandybridge = apps::TuningConfig{}
                           .problem("LU")
                           .machine("Sandybridge")
                           .make_stack();
    fp_w_ = measure_fingerprint(*westmere, 8);
    const std::vector<double> fp_s = measure_fingerprint(*sandybridge, 8);
    tuner::RandomSearchOptions ro;
    ro.max_evals = 20;
    ro.seed = 42;
    SurrogateStoreOptions opt;
    opt.dir = dir_;
    SurrogateStore store(opt);
    survivor_key_ = store.put("LU", "Westmere",
                              tuner::random_search(*westmere, ro),
                              westmere->space(), fp_w_)
                        .key;
    victim_key_ = store.put("LU", "Sandybridge",
                            tuner::random_search(*sandybridge, ro),
                            sandybridge->space(), fp_s)
                      .key;
    victim_trace_ = dir_ + "/entries/" + victim_key_ + "/trace.csv";
    pristine_ = read_all(victim_trace_);
    ASSERT_FALSE(pristine_.empty());
  }

  SurrogateStore reopen() {
    SurrogateStoreOptions opt;
    opt.dir = dir_;
    return SurrogateStore(opt);
  }

  /// The uniform post-corruption assertion: the victim is quarantined
  /// (moved, not deleted), the survivor still serves nearest().
  void expect_quarantined_and_serving(SurrogateStore& store) {
    EXPECT_EQ(store.size(), 1u);
    EXPECT_GE(store.quarantined(), 1u);
    EXPECT_EQ(store.find(victim_key_), nullptr);
    EXPECT_FALSE(
        std::filesystem::exists(dir_ + "/entries/" + victim_key_));
    EXPECT_TRUE(
        std::filesystem::exists(dir_ + "/quarantine/" + victim_key_));
    const auto match = store.nearest("LU", fp_w_);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->entry.key, survivor_key_);
  }

  obs::MetricsRegistry registry_;
  obs::ScopedMetricsRedirect redirect_;
  std::string dir_, survivor_key_, victim_key_, victim_trace_, pristine_;
  std::vector<double> fp_w_;
};

TEST_F(StoreQuarantineTest, TruncationFuzz) {
  // Every truncation point — mid-payload, mid-footer, empty file — lands
  // in quarantine, never in a crash or a half-parsed entry. Quarantining
  // rewrites the index, so each point starts from a freshly built store.
  int round = 0;
  for (const double frac : {0.0, 0.3, 0.5, 0.9, 0.99}) {
    build("truncate" + std::to_string(round++));
    write_all(victim_trace_,
              pristine_.substr(
                  0, static_cast<std::size_t>(
                         static_cast<double>(pristine_.size()) * frac)));
    SurrogateStore store = reopen();
    expect_quarantined_and_serving(store);
  }
}

TEST_F(StoreQuarantineTest, ByteFlipFuzz) {
  // FNV-1a's per-byte bijection guarantees any single flipped bit
  // changes the final hash, so every flip position must be caught —
  // including flips inside the checksum footer itself.
  const std::size_t positions[] = {0, 1, 7, 64, 128};
  for (std::size_t i = 0; i < std::size(positions); ++i) {
    build("flip" + std::to_string(i));
    std::string mutated = pristine_;
    const std::size_t pos = positions[i] % mutated.size();
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x01);
    write_all(victim_trace_, mutated);
    SurrogateStore store = reopen();
    expect_quarantined_and_serving(store);
  }
  // And a flip in the final footer line specifically.
  build("flipfooter");
  std::string mutated = pristine_;
  mutated[mutated.size() - 3] =
      static_cast<char>(mutated[mutated.size() - 3] ^ 0x01);
  write_all(victim_trace_, mutated);
  SurrogateStore store = reopen();
  expect_quarantined_and_serving(store);
}

TEST_F(StoreQuarantineTest, QuarantineCounterAndMetric) {
  build("metric");
  write_all(victim_trace_, "garbage\n");
  SurrogateStore store = reopen();
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_EQ(registry_.counter("store.quarantined").value(), 1u);
}

TEST_F(StoreQuarantineTest, TornIndexLineRejectsLineNotStore) {
  build("indexline");
  // Append a torn line to the index: that *line* is rejected (kept in
  // quarantine/index_rejected.csv for the operator), both real entries
  // survive.
  std::ofstream(dir_ + "/index.csv", std::ios::app)
      << "torn,line,without,enough\n";
  SurrogateStore store = reopen();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GE(store.quarantined(), 1u);
  const std::string rejected =
      read_all(dir_ + "/quarantine/index_rejected.csv");
  EXPECT_NE(rejected.find("torn,line"), std::string::npos);
}

TEST_F(StoreQuarantineTest, ForeignIndexHeaderQuarantinesIndexWhole) {
  build("indexheader");
  write_all(dir_ + "/index.csv", "definitely,not,a,store,index\n");
  SurrogateStore store = reopen();  // must not throw
  EXPECT_EQ(store.size(), 0u);
  EXPECT_GE(store.quarantined(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/index.csv"));
}

TEST_F(StoreQuarantineTest, ForgedChecksumIsCaughtAtWarmStartNotCrash) {
  // A forged footer defeats the load-time checksum (the hash matches the
  // garbage), so the entry survives loading — the *use* site must catch
  // it: warming a session from it degrades to a cold open and
  // quarantines the entry. The client never sees a failure.
  TuningServiceOptions so;
  so.data_dir = testing::TempDir() + "portatune_forged_quarantine";
  std::filesystem::remove_all(so.data_dir);
  so.fingerprint_probes = 6;
  TuningService svc(so);
  apps::TuningConfig cfg;
  cfg.problem("LU").machine("Westmere").max_evals(20).seed(5);
  svc.open("donor", cfg).step(10);
  const tuner::SearchTrace trace = svc.find("donor")->close();
  ASSERT_GT(trace.size(), 0u);
  ASSERT_EQ(svc.store().size(), 1u);
  const std::string key = svc.store().entries().front().key;
  const std::string trace_path =
      svc.store().dir() + "/entries/" + key + "/trace.csv";
  ASSERT_TRUE(std::filesystem::exists(trace_path));
  atomic_write_file(trace_path,
                    append_checksum_footer("not,a,trace,at,all\n"));

  SessionHandle& h = svc.open("victim", cfg);
  EXPECT_FALSE(h.warm());  // degraded to cold, not failed
  EXPECT_EQ(svc.store().quarantined(), 1u);
  EXPECT_EQ(svc.store().size(), 0u);
  EXPECT_TRUE(
      std::filesystem::exists(svc.store().dir() + "/quarantine/" + key));
}

}  // namespace
}  // namespace portatune::service
