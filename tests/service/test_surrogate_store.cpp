// SurrogateStore: persistence round-trips, similarity-indexed lookup
// (nearest machine wins, hostile machines are gated out), and the
// deterministic-refit contract of load_surrogate().
#include "service/surrogate_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/tuning_config.hpp"
#include "tuner/random_search.hpp"
#include "tuner/sampler.hpp"

namespace portatune::service {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "portatune_" + name;
  std::remove((dir + "/index.csv").c_str());
  return dir;
}

SurrogateStoreOptions store_opt(const std::string& name) {
  SurrogateStoreOptions opt;
  opt.dir = fresh_dir(name);
  return opt;
}

/// A short RS trace on (problem, machine) — store test fodder.
tuner::SearchTrace make_trace(apps::EvaluatorStack& stack,
                              std::size_t evals = 30,
                              std::uint64_t seed = 42) {
  tuner::RandomSearchOptions opt;
  opt.max_evals = evals;
  opt.seed = seed;
  return tuner::random_search(stack, opt);
}

TEST(SurrogateStoreTest, PutFindRoundTripAcrossProcesses) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Westmere");
  auto stack = cfg.make_stack();
  const tuner::SearchTrace trace = make_trace(*stack);
  const std::vector<double> fp = measure_fingerprint(*stack, 8);

  const std::string dir = fresh_dir("roundtrip");
  std::string key;
  {
    SurrogateStoreOptions opt;
    opt.dir = dir;
    SurrogateStore store(opt);
    const StoreEntry& e = store.put("LU", "Westmere", trace, stack->space(),
                                    fp);
    key = e.key;
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(e.evals, trace.size());
    EXPECT_DOUBLE_EQ(e.best_seconds, trace.best_seconds());
  }

  // A second "process" reopens the same directory and sees the entry
  // bit-for-bit: the fingerprint survives the 17-digit text round trip.
  SurrogateStoreOptions opt;
  opt.dir = dir;
  SurrogateStore reopened(opt);
  ASSERT_EQ(reopened.size(), 1u);
  const StoreEntry* e = reopened.find(key);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->problem, "LU");
  EXPECT_EQ(e->machine, "Westmere");
  EXPECT_EQ(e->evals, trace.size());
  ASSERT_EQ(e->fingerprint.size(), fp.size());
  for (std::size_t i = 0; i < fp.size(); ++i)
    EXPECT_DOUBLE_EQ(e->fingerprint[i], fp[i]);

  const tuner::SearchTrace loaded = reopened.load_trace(*e, stack->space());
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.entry(i).config, trace.entry(i).config);
    EXPECT_DOUBLE_EQ(loaded.entry(i).seconds, trace.entry(i).seconds);
    EXPECT_EQ(loaded.entry(i).draw_index, trace.entry(i).draw_index);
  }
}

TEST(SurrogateStoreTest, PutReplacesTheSamePairInPlace) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Westmere");
  auto stack = cfg.make_stack();
  const std::vector<double> fp = measure_fingerprint(*stack, 8);

  SurrogateStore store(store_opt("replace"));
  const std::string key1 =
      store.put("LU", "Westmere", make_trace(*stack, 20), stack->space(), fp)
          .key;
  const StoreEntry& second =
      store.put("LU", "Westmere", make_trace(*stack, 30), stack->space(), fp);
  EXPECT_EQ(store.size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(second.key, key1);
  EXPECT_EQ(second.evals, 30u);
}

TEST(SurrogateStoreTest, NearestPrefersTheMoreSimilarMachine) {
  const apps::TuningConfig base = apps::TuningConfig{}.problem("LU");
  auto westmere =
      apps::TuningConfig(base).machine("Westmere").make_stack();
  auto sandybridge =
      apps::TuningConfig(base).machine("Sandybridge").make_stack();

  const std::vector<double> fp_w = measure_fingerprint(*westmere, 16);
  const std::vector<double> fp_s = measure_fingerprint(*sandybridge, 16);
  // The skip-failed-draws discipline keeps the vectors element-aligned.
  ASSERT_EQ(fp_w.size(), fp_s.size());

  SurrogateStore store(store_opt("nearest"));
  store.put("LU", "Westmere", make_trace(*westmere), westmere->space(), fp_w);
  store.put("LU", "Sandybridge", make_trace(*sandybridge),
            sandybridge->space(), fp_s);

  // Querying with Sandybridge's own fingerprint must find the exact
  // match (probe Spearman 1.0), not the merely-similar Westmere.
  const auto self = store.nearest("LU", fp_s);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->entry.machine, "Sandybridge");
  EXPECT_DOUBLE_EQ(self->report.spearman, 1.0);

  // The paper's similar x86 pair stays mutually admissible: a Westmere
  // query against a store holding only Sandybridge still transfers.
  SurrogateStore only_s(store_opt("nearest_one"));
  only_s.put("LU", "Sandybridge", make_trace(*sandybridge),
             sandybridge->space(), fp_s);
  const auto cross = only_s.nearest("LU", fp_w);
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(cross->entry.machine, "Sandybridge");
  EXPECT_NE(cross->advice, tuner::TransferAdvice::DoNotTransfer);
}

TEST(SurrogateStoreTest, NearestGatesOutHostileAndMismatchedEntries) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Westmere");
  auto stack = cfg.make_stack();
  const tuner::SearchTrace trace = make_trace(*stack);

  // Query fingerprint: ascending ranks. Hostile entry: the same values
  // reversed — probe Spearman -1, advice DoNotTransfer.
  std::vector<double> query = measure_fingerprint(*stack, 16);
  std::sort(query.begin(), query.end());
  std::vector<double> hostile(query.rbegin(), query.rend());

  SurrogateStore store(store_opt("hostile"));
  store.put("LU", "X-Gene", trace, stack->space(), hostile);
  // An anti-correlated surrogate must never warm a session, no matter
  // how empty the store is.
  EXPECT_FALSE(store.nearest("LU", query).has_value());

  // Wrong problem and wrong fingerprint length are skipped outright.
  store.put("ATAX", "Westmere", trace, stack->space(), query);
  EXPECT_FALSE(store.nearest("LU", query).has_value());
  const std::vector<double> short_fp(query.begin(), query.begin() + 4);
  EXPECT_FALSE(store.nearest("ATAX", short_fp).has_value());
}

TEST(SurrogateStoreTest, LoadSurrogateRefitsDeterministically) {
  const apps::TuningConfig cfg =
      apps::TuningConfig{}.problem("LU").machine("Westmere");
  auto stack = cfg.make_stack();
  const tuner::SearchTrace trace = make_trace(*stack, 40);

  SurrogateStore store(store_opt("refit"));
  const StoreEntry& e = store.put("LU", "Westmere", trace, stack->space(),
                                  measure_fingerprint(*stack, 8));

  const ml::RegressorPtr a = store.load_surrogate(e, stack->space());
  const ml::RegressorPtr b = store.load_surrogate(e, stack->space());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Same trace + same hyperparameters + same seed -> the same forest:
  // two processes loading one entry agree on every prediction.
  tuner::ConfigStream stream(stack->space(), 5);
  for (int i = 0; i < 25; ++i) {
    const auto c = *stream.next();
    const auto enc = stack->space().features(c);
    EXPECT_DOUBLE_EQ(a->predict(enc), b->predict(enc));
  }
}

TEST(SurrogateStoreTest, MeasureFingerprintSkipsFailedDrawsConsistently) {
  // Fingerprints of two machines are element-aligned because failure is
  // a property of the configuration, not the machine.
  auto w = apps::TuningConfig{}.problem("LU").machine("Westmere")
               .make_stack();
  auto p = apps::TuningConfig{}.problem("LU").machine("Power7").make_stack();
  const auto fp_w = measure_fingerprint(*w, 12);
  const auto fp_p = measure_fingerprint(*p, 12);
  EXPECT_EQ(fp_w.size(), 12u);
  EXPECT_EQ(fp_p.size(), 12u);
  // Deterministic: re-measuring the same machine reproduces the vector.
  const auto again = measure_fingerprint(*w, 12);
  ASSERT_EQ(again.size(), fp_w.size());
  for (std::size_t i = 0; i < fp_w.size(); ++i)
    EXPECT_DOUBLE_EQ(again[i], fp_w[i]);
}

}  // namespace
}  // namespace portatune::service
