// ServiceProtocol: the line-delimited JSON surface of the tuning
// service, driven directly (no socket). Covers the full op set, the
// index-array config representation, the never-throws error contract,
// and the request-observability layer: per-op instruments, the `stats`
// op, `service.op_error` events, and the wire->session->eval span chain.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <algorithm>
#include <filesystem>
#include <map>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace portatune::service {
namespace {

/// Per-process path suffix: under `ctest -j` every test runs in its own
/// process, so pid-unique dirs keep concurrent tests out of each other's
/// data.
std::string pid_suffix() {
#if defined(__unix__) || defined(__APPLE__)
  return std::to_string(::getpid());
#else
  return "0";
#endif
}

class ServiceProtocolTest : public testing::Test {
 protected:
  ServiceProtocolTest() : svc_(make_options()), proto_(svc_) {}

  static TuningServiceOptions make_options() {
    TuningServiceOptions opt;
    opt.data_dir = testing::TempDir() + "portatune_proto_" + pid_suffix();
    std::filesystem::remove_all(opt.data_dir);
    return opt;
  }

  /// Send one line, parse the JSON reply.
  obs::json::Value call(const std::string& line, bool* shutdown = nullptr) {
    const ProtocolReply reply = proto_.handle_line(line);
    if (shutdown != nullptr) *shutdown = reply.shutdown;
    return obs::json::Value::parse(reply.line);
  }

  obs::json::Value open_session(const std::string& id) {
    return call(R"({"op":"open","id":")" + id +
                R"(","problem":"LU","machine":"Westmere","max_evals":20,)"
                R"("seed":5})");
  }

  TuningService svc_;
  ServiceProtocol proto_;
};

TEST_F(ServiceProtocolTest, OpenStepCloseRoundTrip) {
  const auto opened = open_session("s1");
  EXPECT_TRUE(opened.at("ok").as_bool());
  EXPECT_EQ(opened.at("id").as_string(), "s1");
  EXPECT_FALSE(opened.at("warm").as_bool());  // empty store

  const auto stepped = call(R"({"op":"step","id":"s1","n":10})");
  ASSERT_TRUE(stepped.at("ok").as_bool());
  EXPECT_GT(stepped.at("evaluated").as_number(), 0.0);
  EXPECT_GT(stepped.at("best_seconds").as_number(), 0.0);
  EXPECT_EQ(stepped.at("evals").as_number(),
            stepped.at("evaluated").as_number());

  const auto checkpointed = call(R"({"op":"checkpoint","id":"s1"})");
  EXPECT_TRUE(checkpointed.at("ok").as_bool());

  const auto closed = call(R"({"op":"close","id":"s1"})");
  ASSERT_TRUE(closed.at("ok").as_bool());
  EXPECT_GT(closed.at("evals").as_number(), 0.0);
  EXPECT_GT(closed.at("best_seconds").as_number(), 0.0);

  // The session is gone for further ops, but the error is a reply, not
  // a dropped connection.
  const auto after = call(R"({"op":"step","id":"s1","n":1})");
  EXPECT_FALSE(after.at("ok").as_bool());
  EXPECT_FALSE(after.at("error").as_string().empty());
}

TEST_F(ServiceProtocolTest, SuggestAndReportUseIndexArrays) {
  ASSERT_TRUE(open_session("ext").at("ok").as_bool());

  const auto suggested = call(R"({"op":"suggest","id":"ext","n":2})");
  ASSERT_TRUE(suggested.at("ok").as_bool());
  const auto& configs = suggested.at("configs").as_array();
  ASSERT_EQ(configs.size(), 2u);
  ASSERT_TRUE(configs[0].is_array());

  // Echo the first candidate back with an externally measured time.
  const auto report = call(
      std::string(R"({"op":"report","id":"ext","config":)") +
      configs[0].dump() + R"(,"seconds":0.5})");
  EXPECT_TRUE(report.at("ok").as_bool());

  // A config of the wrong arity is rejected with a reply, not a throw.
  const auto bad = call(
      R"({"op":"report","id":"ext","config":[0],"seconds":0.5})");
  EXPECT_FALSE(bad.at("ok").as_bool());
}

TEST_F(ServiceProtocolTest, StatusReportsSessionsCacheAndStore) {
  ASSERT_TRUE(open_session("s1").at("ok").as_bool());
  ASSERT_TRUE(call(R"({"op":"step","id":"s1","n":5})").at("ok").as_bool());

  const auto status = call(R"({"op":"status"})");
  ASSERT_TRUE(status.at("ok").as_bool());
  const auto& sessions = status.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].at("id").as_string(), "s1");
  EXPECT_EQ(sessions[0].at("problem").as_string(), "LU");
  EXPECT_EQ(sessions[0].at("machine").as_string(), "Westmere");
  EXPECT_GT(sessions[0].at("evals").as_number(), 0.0);
  // The fingerprint probes at open were cache misses at minimum.
  EXPECT_GT(status.at("cache").at("misses").as_number(), 0.0);
  EXPECT_EQ(status.at("store").at("entries").as_number(), 0.0);
}

TEST_F(ServiceProtocolTest, ErrorsAreRepliesNeverThrows) {
  for (const char* line : {
           "this is not json",
           R"({"no_op_member":true})",
           R"({"op":"frobnicate"})",
           R"({"op":"step","id":"no-such-session"})",
           R"({"op":"open","id":"x"})",             // missing problem/machine
           R"({"op":"open","id":"../evil","problem":"LU","machine":"Westmere"})",
           R"({"op":"resume","id":"never-checkpointed"})",
       }) {
    bool shutdown = true;
    const auto reply = call(line, &shutdown);
    EXPECT_FALSE(reply.at("ok").as_bool()) << line;
    EXPECT_FALSE(reply.at("error").as_string().empty()) << line;
    EXPECT_FALSE(shutdown) << line;
  }
}

TEST_F(ServiceProtocolTest, ShutdownSetsTheFlag) {
  bool shutdown = false;
  const auto reply = call(R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(shutdown);
}

// ---------------------------------------------------------------------------
// Request observability. These fixtures build their own registry/sink
// *before* the protocol so the instruments bind to the redirected
// registry (the protocol binds at construction, like ObservedEvaluator).

class ServiceProtocolTelemetryTest : public testing::Test {
 protected:
  ServiceProtocolTelemetryTest() : redirect_(registry_) {
    TuningServiceOptions opt;
    opt.data_dir =
        testing::TempDir() + "portatune_proto_telemetry_" + pid_suffix();
    std::filesystem::remove_all(opt.data_dir);
    svc_ = std::make_unique<TuningService>(opt);
  }

  obs::json::Value call(ServiceProtocol& proto, const std::string& line) {
    return obs::json::Value::parse(proto.handle_line(line).line);
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  static const obs::Field* field(const obs::Event& e, const char* key) {
    for (const obs::Field& f : e.fields)
      if (f.key == key) return &f;
    return nullptr;
  }

  obs::MetricsRegistry registry_;
  obs::ScopedMetricsRedirect redirect_;
  std::unique_ptr<TuningService> svc_;
};

TEST_F(ServiceProtocolTelemetryTest, PerOpInstrumentsCountEveryRequest) {
  ServiceProtocol proto(*svc_);
  ASSERT_TRUE(call(proto,
                   R"({"op":"open","id":"t1","problem":"LU",)"
                   R"("machine":"Westmere","max_evals":20,"seed":5})")
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(
      call(proto, R"({"op":"step","id":"t1","n":3})").at("ok").as_bool());
  ASSERT_TRUE(
      call(proto, R"({"op":"step","id":"t1","n":3})").at("ok").as_bool());
  EXPECT_FALSE(call(proto, "not json at all").at("ok").as_bool());
  EXPECT_FALSE(call(proto, R"({"op":"frobnicate"})").at("ok").as_bool());
  EXPECT_FALSE(call(proto, R"({"op":"step","id":"ghost"})")
                   .at("ok")
                   .as_bool());

  EXPECT_EQ(counter("server.op.open.count"), 1u);
  EXPECT_EQ(counter("server.op.step.count"), 3u);  // 2 ok + 1 unknown id
  EXPECT_EQ(counter("server.op.step.errors"), 1u);
  EXPECT_EQ(counter("server.op.invalid.count"), 2u);
  EXPECT_EQ(counter("server.op.invalid.errors"), 2u);
  EXPECT_EQ(counter("server.requests"), 6u);
  EXPECT_EQ(counter("server.requests_failed"), 3u);
  EXPECT_EQ(proto.requests_handled(), 6u);
  // Latency histograms saw exactly the per-op counts.
  EXPECT_EQ(registry_.histogram("server.op.step.latency").count(), 3u);
  EXPECT_EQ(registry_.histogram("server.op.open.latency").count(), 1u);
}

TEST_F(ServiceProtocolTelemetryTest, StatsOpReturnsSnapshotOverTheWire) {
  ServiceProtocol proto(*svc_);
  ASSERT_TRUE(call(proto,
                   R"({"op":"open","id":"t1","problem":"LU",)"
                   R"("machine":"Westmere","max_evals":20,"seed":5})")
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(
      call(proto, R"({"op":"step","id":"t1","n":2})").at("ok").as_bool());

  const auto stats = call(proto, R"({"op":"stats"})");
  ASSERT_TRUE(stats.at("ok").as_bool());
  const auto& server = stats.at("server");
  EXPECT_GT(server.at("pid").as_number(), 0.0);
  EXPECT_GT(server.at("uptime_seconds").as_number(), 0.0);
  EXPECT_EQ(server.at("requests").as_number(), 3.0);  // incl. this stats
  EXPECT_EQ(server.at("sessions_open").as_number(), 1.0);
  const auto& metrics = stats.at("metrics");
  EXPECT_EQ(metrics.at("counters").at("server.op.step.count").as_number(),
            1.0);
  const auto& step_latency =
      metrics.at("histograms").at("server.op.step.latency");
  EXPECT_EQ(step_latency.at("count").as_number(), 1.0);
  EXPECT_GE(step_latency.at("p99").as_number(),
            step_latency.at("p50").as_number());
  // Compact wire form: no bucket arrays.
  EXPECT_EQ(step_latency.find("buckets"), nullptr);
}

TEST_F(ServiceProtocolTelemetryTest, DormantWithTelemetryOffAndNoSink) {
  ProtocolOptions opt;
  opt.telemetry = false;
  ServiceProtocol proto(*svc_, opt);
  EXPECT_TRUE(call(proto, R"({"op":"status"})").at("ok").as_bool());
  EXPECT_FALSE(call(proto, "garbage").at("ok").as_bool());
  // No instrument was created, let alone updated. (publish_metrics in
  // the status op still writes service gauges; the *request* layer must
  // have stayed silent.)
  const auto snap = registry_.snapshot();
  for (const auto& [name, v] : snap.counters)
    EXPECT_EQ(name.rfind("server.", 0), std::string::npos) << name;
  EXPECT_EQ(proto.requests_handled(), 2u);
}

TEST_F(ServiceProtocolTelemetryTest, OpErrorsEmitWarnEvents) {
  obs::MemorySink sink;
  obs::ScopedSinkRedirect sink_redirect(&sink, obs::Severity::Warn);
  ServiceProtocol proto(*svc_);
  EXPECT_FALSE(call(proto, R"({"op":"step","id":"ghost"})")
                   .at("ok")
                   .as_bool());
  EXPECT_FALSE(call(proto, "garbage").at("ok").as_bool());

  const auto events = sink.events();
  std::vector<obs::Event> errors;
  std::copy_if(events.begin(), events.end(), std::back_inserter(errors),
               [](const obs::Event& e) { return e.name == "service.op_error"; });
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].severity, obs::Severity::Warn);
  ASSERT_NE(field(errors[0], "op"), nullptr);
  EXPECT_EQ(field(errors[0], "op")->value, "step");
  EXPECT_EQ(field(errors[0], "session")->value, "ghost");
  EXPECT_NE(field(errors[0], "error")->value.find("ghost"),
            std::string::npos);
  EXPECT_EQ(field(errors[1], "op")->value, "invalid");
}

TEST_F(ServiceProtocolTelemetryTest, RequestSpansChainWireToEval) {
  obs::MemorySink sink;
  obs::ScopedSinkRedirect sink_redirect(&sink, obs::Severity::Debug);
  ServiceProtocol proto(*svc_);
  ASSERT_TRUE(call(proto,
                   R"({"op":"open","id":"t1","problem":"LU",)"
                   R"("machine":"Westmere","max_evals":20,"seed":5})")
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(
      call(proto, R"({"op":"step","id":"t1","n":4})").at("ok").as_bool());

  const auto events = sink.events();
  std::map<std::uint64_t, const obs::Event*> by_span;
  for (const obs::Event& e : events)
    if (e.span_id != 0) by_span.emplace(e.span_id, &e);

  // The step request produced a server.op.step span...
  const auto step_span = std::find_if(
      events.begin(), events.end(),
      [](const obs::Event& e) { return e.name == "server.op.step"; });
  ASSERT_NE(step_span, events.end());
  EXPECT_GE(step_span->duration_seconds, 0.0);
  ASSERT_NE(field(*step_span, "req"), nullptr);

  // ...the session op span is its child...
  const auto session_span = std::find_if(
      events.begin(), events.end(),
      [](const obs::Event& e) { return e.name == "session.step"; });
  ASSERT_NE(session_span, events.end());
  EXPECT_EQ(session_span->parent_span_id, step_span->span_id);

  // ...and every evaluation the step fanned out is a descendant of the
  // request: walking parent links from any eval reaches server.op.step.
  std::size_t evals = 0, chained = 0;
  for (const obs::Event& e : events) {
    if (e.name != "eval") continue;
    ++evals;
    std::uint64_t p = e.parent_span_id;
    while (p != 0) {
      const auto it = by_span.find(p);
      if (it == by_span.end()) break;
      if (it->second->name == "server.op.step" ||
          it->second->name == "server.op.open") {
        ++chained;
        break;
      }
      p = it->second->parent_span_id;
    }
  }
  EXPECT_GT(evals, 0u);
  EXPECT_EQ(chained, evals) << "every eval must trace back to a request";
}

}  // namespace
}  // namespace portatune::service
