// ServiceProtocol: the line-delimited JSON surface of the tuning
// service, driven directly (no socket). Covers the full op set, the
// index-array config representation, and the never-throws error
// contract.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "obs/json.hpp"

namespace portatune::service {
namespace {

class ServiceProtocolTest : public testing::Test {
 protected:
  ServiceProtocolTest() : svc_(make_options()), proto_(svc_) {}

  static TuningServiceOptions make_options() {
    TuningServiceOptions opt;
    opt.data_dir = testing::TempDir() + "portatune_proto";
    std::filesystem::remove_all(opt.data_dir);
    return opt;
  }

  /// Send one line, parse the JSON reply.
  obs::json::Value call(const std::string& line, bool* shutdown = nullptr) {
    const ProtocolReply reply = proto_.handle_line(line);
    if (shutdown != nullptr) *shutdown = reply.shutdown;
    return obs::json::Value::parse(reply.line);
  }

  obs::json::Value open_session(const std::string& id) {
    return call(R"({"op":"open","id":")" + id +
                R"(","problem":"LU","machine":"Westmere","max_evals":20,)"
                R"("seed":5})");
  }

  TuningService svc_;
  ServiceProtocol proto_;
};

TEST_F(ServiceProtocolTest, OpenStepCloseRoundTrip) {
  const auto opened = open_session("s1");
  EXPECT_TRUE(opened.at("ok").as_bool());
  EXPECT_EQ(opened.at("id").as_string(), "s1");
  EXPECT_FALSE(opened.at("warm").as_bool());  // empty store

  const auto stepped = call(R"({"op":"step","id":"s1","n":10})");
  ASSERT_TRUE(stepped.at("ok").as_bool());
  EXPECT_GT(stepped.at("evaluated").as_number(), 0.0);
  EXPECT_GT(stepped.at("best_seconds").as_number(), 0.0);
  EXPECT_EQ(stepped.at("evals").as_number(),
            stepped.at("evaluated").as_number());

  const auto checkpointed = call(R"({"op":"checkpoint","id":"s1"})");
  EXPECT_TRUE(checkpointed.at("ok").as_bool());

  const auto closed = call(R"({"op":"close","id":"s1"})");
  ASSERT_TRUE(closed.at("ok").as_bool());
  EXPECT_GT(closed.at("evals").as_number(), 0.0);
  EXPECT_GT(closed.at("best_seconds").as_number(), 0.0);

  // The session is gone for further ops, but the error is a reply, not
  // a dropped connection.
  const auto after = call(R"({"op":"step","id":"s1","n":1})");
  EXPECT_FALSE(after.at("ok").as_bool());
  EXPECT_FALSE(after.at("error").as_string().empty());
}

TEST_F(ServiceProtocolTest, SuggestAndReportUseIndexArrays) {
  ASSERT_TRUE(open_session("ext").at("ok").as_bool());

  const auto suggested = call(R"({"op":"suggest","id":"ext","n":2})");
  ASSERT_TRUE(suggested.at("ok").as_bool());
  const auto& configs = suggested.at("configs").as_array();
  ASSERT_EQ(configs.size(), 2u);
  ASSERT_TRUE(configs[0].is_array());

  // Echo the first candidate back with an externally measured time.
  const auto report = call(
      std::string(R"({"op":"report","id":"ext","config":)") +
      configs[0].dump() + R"(,"seconds":0.5})");
  EXPECT_TRUE(report.at("ok").as_bool());

  // A config of the wrong arity is rejected with a reply, not a throw.
  const auto bad = call(
      R"({"op":"report","id":"ext","config":[0],"seconds":0.5})");
  EXPECT_FALSE(bad.at("ok").as_bool());
}

TEST_F(ServiceProtocolTest, StatusReportsSessionsCacheAndStore) {
  ASSERT_TRUE(open_session("s1").at("ok").as_bool());
  ASSERT_TRUE(call(R"({"op":"step","id":"s1","n":5})").at("ok").as_bool());

  const auto status = call(R"({"op":"status"})");
  ASSERT_TRUE(status.at("ok").as_bool());
  const auto& sessions = status.at("sessions").as_array();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].at("id").as_string(), "s1");
  EXPECT_EQ(sessions[0].at("problem").as_string(), "LU");
  EXPECT_EQ(sessions[0].at("machine").as_string(), "Westmere");
  EXPECT_GT(sessions[0].at("evals").as_number(), 0.0);
  // The fingerprint probes at open were cache misses at minimum.
  EXPECT_GT(status.at("cache").at("misses").as_number(), 0.0);
  EXPECT_EQ(status.at("store").at("entries").as_number(), 0.0);
}

TEST_F(ServiceProtocolTest, ErrorsAreRepliesNeverThrows) {
  for (const char* line : {
           "this is not json",
           R"({"no_op_member":true})",
           R"({"op":"frobnicate"})",
           R"({"op":"step","id":"no-such-session"})",
           R"({"op":"open","id":"x"})",             // missing problem/machine
           R"({"op":"open","id":"../evil","problem":"LU","machine":"Westmere"})",
           R"({"op":"resume","id":"never-checkpointed"})",
       }) {
    bool shutdown = true;
    const auto reply = call(line, &shutdown);
    EXPECT_FALSE(reply.at("ok").as_bool()) << line;
    EXPECT_FALSE(reply.at("error").as_string().empty()) << line;
    EXPECT_FALSE(shutdown) << line;
  }
}

TEST_F(ServiceProtocolTest, ShutdownSetsTheFlag) {
  bool shutdown = false;
  const auto reply = call(R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(shutdown);
}

}  // namespace
}  // namespace portatune::service
