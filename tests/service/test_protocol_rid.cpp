// The exactly-once half of the protocol: rid replay semantics, counter
// discipline (replays never double-count executions), cache bounds, and
// the persisted protocol state that carries all of it across a daemon
// restart.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <filesystem>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/atomic_file.hpp"

namespace portatune::service {
namespace {

using obs::json::Value;

std::string pid_suffix() {
#if defined(__unix__) || defined(__APPLE__)
  return std::to_string(::getpid());
#else
  return "0";
#endif
}

class ProtocolRidTest : public testing::Test {
 protected:
  ProtocolRidTest() : redirect_(registry_) {
    TuningServiceOptions so;
    so.data_dir = testing::TempDir() + "portatune_rid_" + pid_suffix();
    std::filesystem::remove_all(so.data_dir);
    svc_ = std::make_unique<TuningService>(so);
  }

  ServiceProtocol& proto(ProtocolOptions opt = {}) {
    if (!proto_) proto_ = std::make_unique<ServiceProtocol>(*svc_, opt);
    return *proto_;
  }

  Value call(const std::string& line) {
    return Value::parse(proto().handle_line(line).line);
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  static std::string open_line(const std::string& id,
                               const std::string& rid = "") {
    std::string line = R"({"op":"open","id":")" + id +
                       R"(","problem":"LU","machine":"Westmere",)"
                       R"("max_evals":20,"seed":5)";
    if (!rid.empty()) line += R"(,"rid":")" + rid + "\"";
    return line + "}";
  }

  obs::MetricsRegistry registry_;
  obs::ScopedMetricsRedirect redirect_;
  std::unique_ptr<TuningService> svc_;
  std::unique_ptr<ServiceProtocol> proto_;
};

TEST_F(ProtocolRidTest, RetriedRidReplaysInsteadOfReexecuting) {
  ASSERT_TRUE(call(open_line("s1", "cli:1")).at("ok").as_bool());
  const std::string step =
      R"({"op":"step","id":"s1","n":3,"rid":"cli:2"})";
  const std::string first = proto().handle_line(step).line;
  const std::string retried = proto().handle_line(step).line;
  // Bit-identical replay: the retry sees exactly what the lost reply
  // said — same evals total, same best. Re-execution would have stepped
  // the session three more draws and forked the CRN trace.
  EXPECT_EQ(first, retried);
  EXPECT_EQ(Value::parse(retried).at("evals").as_number(), 3.0);
  // Counter discipline: 3 requests handled, but only one step
  // *execution*; the retry lands under server.rid.replays.
  EXPECT_EQ(counter("server.op.step.count"), 1u);
  EXPECT_EQ(counter("server.rid.replays"), 1u);
  EXPECT_EQ(counter("server.requests"), 3u);
  // A fresh rid executes again.
  ASSERT_TRUE(
      call(R"({"op":"step","id":"s1","n":3,"rid":"cli:3"})")
          .at("ok")
          .as_bool());
  EXPECT_EQ(counter("server.op.step.count"), 2u);
}

TEST_F(ProtocolRidTest, ErrorRepliesReplayIdentically) {
  const std::string bad =
      R"({"op":"step","id":"nope","n":1,"rid":"cli:9"})";
  const std::string first = proto().handle_line(bad).line;
  EXPECT_FALSE(Value::parse(first).at("ok").as_bool());
  const std::string retried = proto().handle_line(bad).line;
  EXPECT_EQ(first, retried);
  // The failure executed (and was counted) once; the retry replayed.
  EXPECT_EQ(counter("server.op.step.errors"), 1u);
  EXPECT_EQ(counter("server.requests_failed"), 1u);
  EXPECT_EQ(counter("server.rid.replays"), 1u);
}

TEST_F(ProtocolRidTest, NonMutatingOpsIgnoreRids) {
  const std::string status = R"({"op":"status","rid":"cli:1"})";
  ASSERT_TRUE(call(status).at("ok").as_bool());
  ASSERT_TRUE(call(status).at("ok").as_bool());
  // Both executed: reads are idempotent anyway, and a retried shutdown
  // must still shut down.
  EXPECT_EQ(counter("server.op.status.count"), 2u);
  EXPECT_EQ(counter("server.rid.replays"), 0u);
  EXPECT_EQ(proto().replay_cache_size(), 0u);
}

TEST_F(ProtocolRidTest, NonStringRidIsATypedError) {
  const Value reply = call(R"({"op":"checkpoint","id":"x","rid":7})");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_NE(reply.at("error").as_string().find("rid"), std::string::npos);
}

TEST_F(ProtocolRidTest, PerClientCacheIsBoundedFifo) {
  ProtocolOptions opt;
  opt.replay_cache_per_client = 2;
  proto(opt);
  ASSERT_TRUE(call(open_line("s1", "c:1")).at("ok").as_bool());
  for (int i = 2; i <= 4; ++i)
    ASSERT_TRUE(call(R"({"op":"suggest","id":"s1","n":1,"rid":"c:)" +
                     std::to_string(i) + "\"}")
                    .at("ok")
                    .as_bool());
  EXPECT_EQ(proto().replay_cache_size(), 2u);
  // c:1 and c:2 were evicted (FIFO), so a retry of c:2 re-executes; c:4
  // is still cached and replays.
  call(R"({"op":"suggest","id":"s1","n":1,"rid":"c:2"})");
  EXPECT_EQ(counter("server.rid.replays"), 0u);
  call(R"({"op":"suggest","id":"s1","n":1,"rid":"c:4"})");
  EXPECT_EQ(counter("server.rid.replays"), 1u);
}

TEST_F(ProtocolRidTest, LruClientEvictionBoundsTotalState) {
  ProtocolOptions opt;
  opt.replay_cache_per_client = 8;
  opt.replay_cache_clients = 2;
  proto(opt);
  ASSERT_TRUE(call(open_line("s1", "a:1")).at("ok").as_bool());
  const auto suggest = [&](const std::string& rid) {
    return call(R"({"op":"suggest","id":"s1","n":1,"rid":")" + rid +
                "\"}");
  };
  ASSERT_TRUE(suggest("b:1").at("ok").as_bool());
  // Touch a so b is the LRU client, then bring in c: b gets evicted.
  suggest("a:1");
  EXPECT_EQ(counter("server.rid.replays"), 1u);
  ASSERT_TRUE(suggest("c:1").at("ok").as_bool());
  suggest("b:1");  // re-executes: b's cache is gone
  EXPECT_EQ(counter("server.rid.replays"), 1u);
  // Re-inserting b displaced the next LRU (a); c, touched most recently
  // before that, still replays. Total state never exceeded two clients.
  suggest("c:1");
  EXPECT_EQ(counter("server.rid.replays"), 2u);
}

TEST_F(ProtocolRidTest, StateRoundTripsAcrossRestart) {
  const std::string state_path =
      testing::TempDir() + "portatune_rid_state_" + pid_suffix() + ".json";
  std::filesystem::remove(state_path);
  ProtocolOptions opt;
  opt.state_path = state_path;
  proto(opt);
  ASSERT_TRUE(call(open_line("s1", "cli:1")).at("ok").as_bool());
  const std::string step =
      R"({"op":"step","id":"s1","n":2,"rid":"cli:2"})";
  const std::string first = proto().handle_line(step).line;
  const std::uint64_t requests_before = proto().requests_handled();
  proto().persist_state();

  // "Restart": fresh registry contents would normally start at zero, but
  // load_state() adds the persisted totals back, and the replay cache
  // answers the rid that straddled the restart without re-executing.
  proto_.reset();
  proto(opt);
  EXPECT_EQ(proto().requests_handled(), requests_before);
  EXPECT_EQ(counter("server.op.step.count"), 2u);  // 1 live + 1 restored
  const std::string replayed = proto().handle_line(step).line;
  EXPECT_EQ(first, replayed);
  EXPECT_EQ(counter("server.rid.replays"), 1u);
}

TEST_F(ProtocolRidTest, TornStateFileDegradesToEmptyCache) {
  const std::string state_path =
      testing::TempDir() + "portatune_rid_torn_" + pid_suffix() + ".json";
  atomic_write_file(state_path, "{\"portatune_protocol_state\":1,");
  ProtocolOptions opt;
  opt.state_path = state_path;
  proto(opt);
  EXPECT_EQ(counter("server.state_restore_failures"), 1u);
  // The daemon still serves.
  EXPECT_TRUE(call(R"({"op":"status"})").at("ok").as_bool());
  EXPECT_EQ(proto().replay_cache_size(), 0u);
}

TEST_F(ProtocolRidTest, EvictedSessionAutoRestoresOnNextOp) {
  ASSERT_TRUE(call(open_line("lease1")).at("ok").as_bool());
  ASSERT_TRUE(
      call(R"({"op":"step","id":"lease1","n":4})").at("ok").as_bool());
  // Reclaim with a zero lease: checkpoint + evict, like the serve loop's
  // lease sweep on an idle session.
  const auto reclaimed = svc_->reclaim_idle(0.0);
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], "lease1");
  EXPECT_EQ(svc_->find("lease1"), nullptr);
  // The next op finds the checkpoint and restores transparently, and the
  // restored session continues from where the lease cut it off.
  const Value stepped = call(R"({"op":"step","id":"lease1","n":1})");
  ASSERT_TRUE(stepped.at("ok").as_bool());
  EXPECT_EQ(stepped.at("evals").as_number(), 5.0);
  EXPECT_EQ(counter("service.sessions_restored"), 1u);
}

TEST_F(ProtocolRidTest, FreshSessionsOutliveTheirLease) {
  ASSERT_TRUE(call(open_line("young")).at("ok").as_bool());
  // A generous lease reclaims nothing from a just-touched session.
  EXPECT_TRUE(svc_->reclaim_idle(3600.0).empty());
  EXPECT_NE(svc_->find("young"), nullptr);
}

}  // namespace
}  // namespace portatune::service
