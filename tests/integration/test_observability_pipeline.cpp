// End-to-end observability pipeline: run a small transfer experiment with
// every sink attached, then validate the emitted artifacts — JSONL event
// log, metrics snapshot, and Chrome trace — with the obs JSON parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "apps/registry.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observed_evaluator.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "tuner/experiment.hpp"
#include "tuner/faults.hpp"
#include "tuner/parallel.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"

namespace portatune {
namespace {

class ObservabilityPipeline : public ::testing::Test {
 protected:
  // One small LU transfer with the full decorator stack and all sinks.
  void run(obs::MemorySink& memory, const std::string& jsonl_path,
           obs::MetricsRegistry& registry,
           tuner::TransferExperimentResult& out) {
    obs::ScopedMetricsRedirect metrics_redirect(registry);
    obs::JsonlSink jsonl(jsonl_path);
    obs::TeeSink tee({&jsonl, &memory});
    obs::ScopedSinkRedirect sink_redirect(&tee, obs::Severity::Debug);

    auto source_backend = apps::make_simulated_evaluator("LU", "Westmere");
    auto target_backend =
        apps::make_simulated_evaluator("LU", "Sandybridge");
    obs::ObservedEvaluator source(*source_backend, "eval.source");
    obs::ObservedEvaluator target(*target_backend, "eval.target");

    tuner::ExperimentSettings s;
    s.nmax = 25;
    s.pool_size = 400;
    out = tuner::run_transfer_experiment(source, target, s);
  }
};

TEST_F(ObservabilityPipeline, EmitsAValidatableEventStream) {
  const std::string jsonl_path = ::testing::TempDir() + "/pipeline.jsonl";
  obs::MemorySink memory;
  obs::MetricsRegistry registry;
  tuner::TransferExperimentResult result;
  run(memory, jsonl_path, registry, result);

  // The in-memory stream saw the whole experiment.
  ASSERT_GT(memory.size(), 0u);
  std::set<std::string> names;
  for (const auto& e : memory.events()) names.insert(e.name);
  // The fit/pruned/biased phases each produced a span...
  EXPECT_TRUE(names.count("phase.fit"));
  EXPECT_TRUE(names.count("phase.pruned"));
  EXPECT_TRUE(names.count("phase.biased"));
  EXPECT_TRUE(names.count("experiment.transfer"));
  // ...and every evaluation produced a per-attempt event.
  EXPECT_TRUE(names.count("eval.source"));
  EXPECT_TRUE(names.count("eval.target"));

  // Every JSONL line parses and carries the schema's required keys.
  std::ifstream in(jsonl_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto v = obs::json::Value::parse(line);
    for (const char* key : {"ts", "wall_us", "level", "name", "cat"})
      EXPECT_NE(v.find(key), nullptr) << "missing " << key << ": " << line;
    ++lines;
  }
  EXPECT_EQ(lines, memory.size());
  std::remove(jsonl_path.c_str());
}

TEST_F(ObservabilityPipeline, ChromeTraceExportIsLoadable) {
  const std::string jsonl_path = ::testing::TempDir() + "/pipeline2.jsonl";
  const std::string trace_path = ::testing::TempDir() + "/pipeline.trace";
  obs::MemorySink memory;
  obs::MetricsRegistry registry;
  tuner::TransferExperimentResult result;
  run(memory, jsonl_path, registry, result);

  const auto events = memory.events();
  obs::write_chrome_trace(trace_path, events);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream whole;
  whole << in.rdbuf();
  const auto doc = obs::json::Value::parse(whole.str());
  const auto& items = doc.at("traceEvents").as_array();
  ASSERT_EQ(items.size(), events.size());

  std::size_t spans = 0, fit_spans = 0, evals_with_kind = 0;
  for (const auto& item : items) {
    EXPECT_EQ(item.at("pid").as_number(), 1.0);
    const std::string& ph = item.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      EXPECT_GE(item.at("dur").as_number(), 0.0);
      ++spans;
    }
    const std::string& name = item.at("name").as_string();
    if (name.rfind("phase.", 0) == 0) ++fit_spans;
    if (name.rfind("eval.", 0) == 0 &&
        item.at("args").find("kind") != nullptr)
      ++evals_with_kind;
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GE(fit_spans, 5u);  // source_rs/target_rs/fit/prune/bias/...
  EXPECT_GT(evals_with_kind, 0u);  // FailureKind rides on every eval

  std::remove(jsonl_path.c_str());
  std::remove(trace_path.c_str());
}

TEST_F(ObservabilityPipeline, ExperimentResultCarriesMetrics) {
  const std::string jsonl_path = ::testing::TempDir() + "/pipeline3.jsonl";
  obs::MemorySink memory;
  obs::MetricsRegistry registry;
  tuner::TransferExperimentResult result;
  run(memory, jsonl_path, registry, result);

  // The experiment attached a snapshot of its own registry.
  ASSERT_FALSE(result.metrics.empty());
  const auto doc = obs::json::Value::parse(result.metrics.to_json());
  const auto& counters = doc.at("counters");
  EXPECT_NE(counters.find("eval.source.calls"), nullptr);
  EXPECT_NE(counters.find("eval.target.calls"), nullptr);
  EXPECT_NE(counters.find("forest.fits"), nullptr);
  EXPECT_NE(counters.find("search.draws"), nullptr);
  const auto& histograms = doc.at("histograms");
  EXPECT_NE(histograms.find("forest.fit_seconds"), nullptr);
  EXPECT_NE(histograms.find("eval.target.latency_seconds"), nullptr);
  const auto& gauges = doc.at("gauges");
  EXPECT_NE(gauges.find("search.prune_rate"), nullptr);
  std::remove(jsonl_path.c_str());
}

TEST(SpanTreeIntegrity, ParallelFaultInjectedSearchHasNoOrphans) {
  // The acceptance scenario: a fault-injected search fanned out over 4
  // workers must emit a closed span tree — every event's parent was
  // itself emitted, and every evaluation chains up to the search span
  // even though it ran (and retried) on a pool worker.
  obs::MemorySink memory;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRedirect metrics_redirect(registry);
  obs::ScopedSinkRedirect sink_redirect(&memory, obs::Severity::Debug);

  auto backend = apps::make_simulated_evaluator("LU", "Westmere");
  tuner::FaultProfile profile;
  profile.transient_rate = 0.2;
  profile.seed = 11;
  tuner::FaultInjectingEvaluator faulty(*backend, profile);
  obs::ObservedEvaluator observed(faulty, "eval");
  tuner::RetryPolicy policy;
  policy.max_attempts = 3;
  tuner::ResilientEvaluator resilient(observed, policy);
  tuner::ParallelOptions popt;
  popt.threads = 4;
  tuner::ParallelEvaluator parallel(resilient, popt);

  tuner::RandomSearchOptions opt;
  opt.max_evals = 40;
  opt.seed = 5;
  const auto trace = tuner::random_search(parallel, opt);
  ASSERT_GT(trace.size(), 0u);

  const auto events = memory.events();
  std::set<std::uint64_t> span_ids, threads;
  std::uint64_t search_span = 0;
  for (const auto& e : events) {
    threads.insert(e.thread_id);
    if (e.span_id != 0) span_ids.insert(e.span_id);
    if (e.name == "search.RS") search_span = e.span_id;
  }
  ASSERT_NE(search_span, 0u);
  EXPECT_GT(threads.size(), 1u);  // the fan-out actually used workers

  // No orphans: every parent link resolves to an emitted span.
  for (const auto& e : events)
    if (e.parent_span_id != 0)
      EXPECT_TRUE(span_ids.count(e.parent_span_id))
          << e.name << " references unknown span " << e.parent_span_id;

  // Every eval event chains (transitively) up to the search span.
  std::map<std::uint64_t, std::uint64_t> parent_of;
  for (const auto& e : events)
    if (e.span_id != 0) parent_of[e.span_id] = e.parent_span_id;
  std::size_t evals = 0;
  for (const auto& e : events) {
    if (e.name != "eval") continue;
    ++evals;
    std::uint64_t cursor = e.parent_span_id;
    bool reached = false;
    for (int depth = 0; cursor != 0 && depth < 64; ++depth) {
      if (cursor == search_span) {
        reached = true;
        break;
      }
      const auto it = parent_of.find(cursor);
      cursor = it != parent_of.end() ? it->second : 0;
    }
    EXPECT_TRUE(reached) << "eval event not under the search span";
  }
  EXPECT_GE(evals, 40u);  // retries emit extra per-attempt events

  // The report pipeline agrees: zero orphans, retries surfaced.
  const auto rep = obs::analyze_events(events);
  EXPECT_EQ(rep.orphan_events, 0u);
  ASSERT_EQ(rep.searches.size(), 1u);
  EXPECT_EQ(rep.searches[0].evals, evals);
  EXPECT_GT(rep.workers.size(), 1u);
}

}  // namespace
}  // namespace portatune
