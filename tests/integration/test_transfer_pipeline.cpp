// Integration tests: the full paper pipeline on the simulated machines.
// These assert the *shape* results of Sec. V (see DESIGN.md) end to end —
// kernels -> machine model -> surrogate -> transfer-guided search.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/registry.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "tuner/experiment.hpp"
#include "tuner/faults.hpp"
#include "tuner/resilience.hpp"

namespace portatune {
namespace {

using tuner::ExperimentSettings;
using tuner::run_transfer_experiment;

ExperimentSettings paper_settings() {
  ExperimentSettings s;  // nmax = 100, N = 10000, delta = 20 %
  s.seed = 20160401;
  return s;
}

TEST(TransferPipeline, Fig1IntelSiblingsCorrelateStrongly) {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  const auto r = run_transfer_experiment(wm, sb, paper_settings());
  // Paper Fig. 1: rho_p and rho_s > 0.8 between Westmere and Sandybridge.
  EXPECT_GT(r.pearson, 0.8);
  EXPECT_GT(r.spearman, 0.8);
}

TEST(TransferPipeline, BiasingBeatsPruningWestmereToSandybridge) {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  const auto r = run_transfer_experiment(wm, sb, paper_settings());
  EXPECT_TRUE(r.biased_speedup.successful());
  // Sec. V: "RS_b outperforms RS_p primarily with respect to search time
  // speedups".
  EXPECT_GE(r.biased_speedup.search, r.pruned_speedup.search);
  EXPECT_GT(r.biased_speedup.search, 1.6);
}

TEST(TransferPipeline, ModelFreeBiasingCannotImprovePerformance) {
  auto mm = kernels::make_mm();
  kernels::SimulatedKernelEvaluator wm(mm, sim::make_westmere());
  kernels::SimulatedKernelEvaluator sb(mm, sim::make_sandybridge());
  const auto r = run_transfer_experiment(wm, sb, paper_settings());
  // RS_bf replays RS's configurations: performance speedup is exactly 1.
  EXPECT_NEAR(r.biased_mf_speedup.performance, 1.0, 1e-9);
  // But it reaches the best configuration much sooner.
  EXPECT_GT(r.biased_mf_speedup.search, 1.0);
}

TEST(TransferPipeline, SandybridgeTransfersToPower7) {
  // Paper Sec. V: "for the first time... performance correlations between
  // Intel Sandybridge and IBM Power 7" — LU transfers cross-vendor.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  kernels::SimulatedKernelEvaluator p7(lu, sim::make_power7());
  const auto r = run_transfer_experiment(sb, p7, paper_settings());
  EXPECT_GE(r.biased_speedup.performance, 1.0);
  EXPECT_GT(r.biased_speedup.search, 1.0);
}

TEST(TransferPipeline, ApproachFailsOnXGene) {
  // Paper Sec. V: "RS variants do not achieve any significant search time
  // and performance speedups over RS" on the ARM X-Gene.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  kernels::SimulatedKernelEvaluator xg(lu, sim::make_xgene());
  const auto r = run_transfer_experiment(sb, xg, paper_settings());
  EXPECT_LT(r.spearman, 0.5);  // far below the Intel-sibling correlation
  EXPECT_LT(r.biased_speedup.search, 1.6);
}

TEST(TransferPipeline, XeonPhiDefaultIsBestForMm) {
  // Paper Sec. V (Table V discussion): with the Intel compiler, the
  // untransformed MM source is the best variant on the Xeon Phi.
  auto mm = kernels::make_mm();
  kernels::SimulatedKernelEvaluator phi(
      mm, sim::make_xeon_phi(sim::Compiler::Intel), 60);
  const double default_time =
      phi.evaluate(mm->space().default_config()).seconds;
  const auto rs = tuner::run_reference_rs(phi, paper_settings());
  EXPECT_LT(default_time, rs.best_seconds());
}

TEST(TransferPipeline, XeonPhiLuTransfersFromSandybridge) {
  // Table V: LU is where the Phi transfer shines.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator sb(
      lu, sim::make_sandybridge(sim::Compiler::Intel), 8);
  kernels::SimulatedKernelEvaluator phi(
      lu, sim::make_xeon_phi(sim::Compiler::Intel), 60);
  const auto r = run_transfer_experiment(sb, phi, paper_settings());
  EXPECT_GE(r.biased_speedup.performance, 1.0);
  EXPECT_GT(r.biased_speedup.search, 1.0);
}

TEST(TransferPipeline, HplCorrelatesWeakly) {
  // Sec. V: "Except for HPL, the plots exhibit a high correlation."
  auto wm = apps::make_simulated_evaluator("HPL", "Westmere");
  auto sb = apps::make_simulated_evaluator("HPL", "Sandybridge");
  const auto r = run_transfer_experiment(*wm, *sb, paper_settings());
  EXPECT_LT(r.pearson, 0.5);

  auto lu_wm = apps::make_simulated_evaluator("LU", "Westmere");
  auto lu_sb = apps::make_simulated_evaluator("LU", "Sandybridge");
  const auto r_lu =
      run_transfer_experiment(*lu_wm, *lu_sb, paper_settings());
  EXPECT_GT(r_lu.pearson, r.pearson + 0.2);
}

TEST(TransferPipeline, SurvivesTenPercentTransientFaults) {
  // The whole experiment runs behind the resilience stack: a fault
  // injector failing 10% of attempts transiently, wrapped in a retrying
  // ResilientEvaluator. The pipeline must complete with finite speedups,
  // visible failure accounting — and deterministically for a fixed seed.
  const auto run_faulty = [] {
    auto lu = kernels::make_lu();
    kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
    kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
    tuner::FaultProfile profile;
    profile.transient_rate = 0.10;
    profile.seed = 7;
    tuner::FaultInjectingEvaluator wm_faulty(wm, profile);
    tuner::FaultInjectingEvaluator sb_faulty(sb, profile);
    tuner::ResilientEvaluator wm_res(wm_faulty);
    tuner::ResilientEvaluator sb_res(sb_faulty);
    ExperimentSettings s = paper_settings();
    s.nmax = 40;
    s.pool_size = 1000;
    s.forest.num_trees = 16;
    auto r = run_transfer_experiment(wm_res, sb_res, s);
    const std::size_t retries =
        wm_res.stats().retries + sb_res.stats().retries;
    return std::make_pair(std::move(r), retries);
  };

  const auto [r, retries] = run_faulty();
  EXPECT_EQ(r.source_rs.size(), 40u);
  EXPECT_GT(r.biased.size(), 0u);
  EXPECT_TRUE(std::isfinite(r.biased_speedup.performance));
  EXPECT_TRUE(std::isfinite(r.biased_speedup.search));
  EXPECT_GT(r.biased_speedup.performance, 0.0);
  EXPECT_GT(r.biased_speedup.search, 0.0);
  // The injected faults are visible in the failure accounting.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(r.failures.attempts,
            r.source_rs.size() + r.target_rs.size());
  EXPECT_GT(r.failures.overhead_seconds, 0.0);
  // No search hit its failure budget at this fault rate.
  EXPECT_TRUE(r.aborted_searches.empty());

  // Bit-for-bit reproducible: the fault schedule is a pure function of
  // (seed, config, attempt), so a second run is identical.
  const auto [r2, retries2] = run_faulty();
  EXPECT_EQ(retries2, retries);
  EXPECT_EQ(r2.failures.attempts, r.failures.attempts);
  EXPECT_EQ(r2.biased.best_seconds(), r.biased.best_seconds());
  EXPECT_EQ(r2.biased_speedup.search, r.biased_speedup.search);
}

TEST(TransferPipeline, EveryPaperProblemRunsEndToEnd) {
  ExperimentSettings quick = paper_settings();
  quick.nmax = 20;
  quick.pool_size = 300;
  quick.forest.num_trees = 16;
  for (const auto& prob : apps::all_problem_names()) {
    auto a = apps::make_simulated_evaluator(prob, "Westmere");
    auto b = apps::make_simulated_evaluator(prob, "Sandybridge");
    const auto r = run_transfer_experiment(*a, *b, quick);
    EXPECT_EQ(r.source_rs.size(), 20u) << prob;
    EXPECT_GT(r.biased.size(), 0u) << prob;
    EXPECT_GT(r.biased_speedup.performance, 0.0) << prob;
  }
}

}  // namespace
}  // namespace portatune
