#include <gtest/gtest.h>

#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace portatune::kernels {
namespace {

TEST(SpaptExtended, ParameterCounts) {
  EXPECT_EQ(make_bicg()->space().num_params(), 13u);
  EXPECT_EQ(make_gesummv()->space().num_params(), 8u);
  EXPECT_EQ(make_gemver()->space().num_params(), 15u);
  EXPECT_EQ(make_jacobi2d()->space().num_params(), 8u);
}

TEST(SpaptExtended, PhaseStructure) {
  EXPECT_EQ(make_bicg()->phases().size(), 2u);
  EXPECT_EQ(make_gesummv()->phases().size(), 1u);
  EXPECT_EQ(make_gemver()->phases().size(), 3u);
  EXPECT_EQ(make_jacobi2d()->phases().size(), 1u);
}

TEST(SpaptExtended, JacobiUsesOffsetIndices) {
  const auto jac = make_jacobi2d(100, 5);
  const auto& s = jac->phases()[0].nest.stmts[0];
  ASSERT_EQ(s.refs.size(), 6u);
  // The west neighbor b[i][j-1] has offset -1 in the last dimension.
  EXPECT_EQ(s.refs[2].indices[1].offset, -1);
  EXPECT_EQ(s.refs[3].indices[1].offset, +1);
  // The north neighbor b[i-1][j] offsets the first dimension.
  EXPECT_EQ(s.refs[4].indices[0].offset, -1);
}

TEST(SpaptExtended, JacobiTimeLoopIsUntunable) {
  const auto jac = make_jacobi2d();
  const auto& names = jac->space().names();
  for (const auto& n : names) EXPECT_EQ(n.find("_T"), std::string::npos);
  // Default transform leaves the t loop untouched.
  const auto ts = jac->transforms(jac->space().default_config(), 1);
  EXPECT_EQ(ts[0].loops[0].unroll, 1);
  EXPECT_EQ(ts[0].loops[0].cache_tile, 0);
}

TEST(SpaptExtended, FlopCounts) {
  // BICG: two phases of 2 n^2.
  EXPECT_NEAR(make_bicg(100)->total_flops(), 4e4, 1e-6);
  // GESUMMV: 4 n^2. GEMVER: (4 + 3 + 3) n^2.
  EXPECT_NEAR(make_gesummv(100)->total_flops(), 4e4, 1e-6);
  EXPECT_NEAR(make_gemver(100)->total_flops(), 10e4, 1e-6);
  // JACOBI2D: 5 flops x steps x n^2.
  EXPECT_NEAR(make_jacobi2d(100, 10)->total_flops(), 5.0 * 10 * 1e4, 1e-6);
}

TEST(SpaptExtended, ByNameLookup) {
  for (const char* name : {"BICG", "GESUMMV", "GEMVER", "JACOBI2D"})
    EXPECT_EQ(spapt_by_name(name)->name(), name);
  EXPECT_EQ(extended_problems().size(), 4u);
}

class ExtendedEvaluates : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtendedEvaluates, SimulatesOnEveryMachine) {
  const auto prob = spapt_by_name(GetParam());
  for (const auto& m : sim::table2_machines()) {
    SimulatedKernelEvaluator eval(prob, m);
    const auto r = eval.evaluate(prob->space().default_config());
    EXPECT_TRUE(r.ok) << GetParam() << " on " << m.name;
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_LT(r.seconds, 1e5);
  }
}

TEST_P(ExtendedEvaluates, IntelSiblingsStayCorrelated) {
  const auto prob = spapt_by_name(GetParam());
  SimulatedKernelEvaluator wm(prob, sim::make_westmere());
  SimulatedKernelEvaluator sb(prob, sim::make_sandybridge());
  Rng rng(31);
  int agreements = 0;
  constexpr int kPairs = 40;
  for (int i = 0; i < kPairs; ++i) {
    auto c1 = prob->space().random_config(rng);
    auto c2 = prob->space().random_config(rng);
    if (!prob->feasible(c1) || !prob->feasible(c2)) {
      ++agreements;  // count skipped as neutral
      continue;
    }
    const bool wm1 = wm.evaluate(c1).seconds < wm.evaluate(c2).seconds;
    const bool sb1 = sb.evaluate(c1).seconds < sb.evaluate(c2).seconds;
    agreements += (wm1 == sb1);
  }
  EXPECT_GT(agreements, kPairs * 6 / 10);
}

INSTANTIATE_TEST_SUITE_P(All, ExtendedEvaluates,
                         ::testing::Values("BICG", "GESUMMV", "GEMVER",
                                           "JACOBI2D"));

}  // namespace
}  // namespace portatune::kernels
