#include "kernels/native.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace portatune::kernels {
namespace {

std::vector<double> random_matrix(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (auto& v : m) v = rng.uniform(-1.0, 1.0);
  return m;
}

using TilePair = std::pair<std::int64_t, std::int64_t>;

class MmTiles : public ::testing::TestWithParam<std::tuple<std::int64_t,
                                                           std::int64_t,
                                                           std::int64_t>> {};

TEST_P(MmTiles, MatchesReferenceForAnyTiling) {
  const auto [ti, tj, tk] = GetParam();
  constexpr std::int64_t n = 33;  // odd size exercises ragged tiles
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  std::vector<double> c_ref(n * n, 0.0), c_tiled(n * n, 0.0);
  reference_mm(a.data(), b.data(), c_ref.data(), n);
  native_mm(a.data(), b.data(), c_tiled.data(), n, ti, tj, tk);
  for (std::int64_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(c_tiled[i], c_ref[i], 1e-10) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, MmTiles,
    ::testing::Values(std::tuple<std::int64_t, std::int64_t, std::int64_t>{
                          1, 1, 1},  // tile 1 = untiled by convention
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{
                          8, 8, 8},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{
                          16, 4, 32},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{
                          64, 64, 64},  // larger than n
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{
                          5, 7, 3}));

class AtaxTiles : public ::testing::TestWithParam<TilePair> {};

TEST_P(AtaxTiles, MatchesReference) {
  const auto [ti, tj] = GetParam();
  constexpr std::int64_t n = 41;
  const auto a = random_matrix(n, 3);
  std::vector<double> x(n), y_ref(n), y_tiled(n), tmp(n);
  Rng rng(4);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  reference_atax(a.data(), x.data(), y_ref.data(), n);
  native_atax(a.data(), x.data(), y_tiled.data(), tmp.data(), n, ti, tj);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(y_tiled[i], y_ref[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Tilings, AtaxTiles,
                         ::testing::Values(TilePair{1, 1}, TilePair{8, 8},
                                           TilePair{13, 4},
                                           TilePair{100, 100}));

TEST(NativeCor, UpperTriangleMatchesDirectComputation) {
  constexpr std::int64_t n = 24;
  const auto data = random_matrix(n, 5);
  std::vector<double> symmat(n * n);
  native_cor(data.data(), symmat.data(), n, 7, 5);
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t k = j; k < n; ++k) {
      double expect = 0.0;
      for (std::int64_t i = 0; i < n; ++i)
        expect += data[i * n + j] * data[i * n + k];
      EXPECT_NEAR(symmat[j * n + k], expect, 1e-10);
    }
}

TEST(NativeLu, ReconstructsMatrix) {
  constexpr std::int64_t n = 20;
  auto a = random_matrix(n, 6);
  for (std::int64_t i = 0; i < n; ++i) a[i * n + i] += n;  // dominance
  auto lu = a;
  native_lu(lu.data(), n, 6, 5);
  // Reconstruct L*U and compare with A.
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const std::int64_t kmax = std::min(i, j);
      for (std::int64_t k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : lu[i * n + k];
        acc += l * lu[k * n + j] * ((k <= j) ? 1.0 : 0.0);
      }
      EXPECT_NEAR(acc, a[i * n + j], 1e-8);
    }
}

TEST(NativeLu, TilingDoesNotChangeResult) {
  constexpr std::int64_t n = 30;
  auto base = random_matrix(n, 7);
  for (std::int64_t i = 0; i < n; ++i) base[i * n + i] += n;
  auto a1 = base, a2 = base;
  native_lu(a1.data(), n, 1, 1);
  native_lu(a2.data(), n, 8, 4);
  for (std::int64_t i = 0; i < n * n; ++i) EXPECT_NEAR(a1[i], a2[i], 1e-10);
}

TEST(NativeEvaluator, TimesRealKernels) {
  auto prob = spapt_by_name("MM", 64);
  NativeKernelEvaluator eval(prob, 1);
  const auto r = eval.evaluate(prob->space().default_config());
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.seconds, 10.0);
  EXPECT_EQ(eval.machine_name(), "host");
}

TEST(NativeEvaluator, RejectsPaperSizeInputs) {
  EXPECT_THROW(NativeKernelEvaluator(spapt_by_name("MM"), 1), Error);
}

TEST(NativeEvaluator, InfeasibleConfigReportsFailure) {
  auto prob = spapt_by_name("LU", 64);
  NativeKernelEvaluator eval(prob, 1);
  auto c = prob->space().default_config();
  c[prob->space().index_of("T_I")] = 1;
  c[prob->space().index_of("RT_I")] = 5;
  EXPECT_FALSE(eval.evaluate(c).ok);
}

class NativeKernelsRun : public ::testing::TestWithParam<const char*> {};

TEST_P(NativeKernelsRun, EveryKernelEvaluates) {
  auto prob = spapt_by_name(GetParam(), 48);
  NativeKernelEvaluator eval(prob, 1);
  Rng rng(8);
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    const auto c = prob->space().random_config(rng);
    const auto r = eval.evaluate(c);
    ok += r.ok;
    if (r.ok) {
      EXPECT_GT(r.seconds, 0.0);
    }
  }
  EXPECT_GT(ok, 0);
}

INSTANTIATE_TEST_SUITE_P(All, NativeKernelsRun,
                         ::testing::Values("MM", "ATAX", "COR", "LU"));

}  // namespace
}  // namespace portatune::kernels
