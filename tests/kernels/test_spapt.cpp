#include "kernels/spapt.hpp"

#include <gtest/gtest.h>

#include "kernels/sim_evaluator.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace portatune::kernels {
namespace {

TEST(Spapt, Table3ParameterCounts) {
  // ni column of Table III: MM 12, ATAX 13, COR 12, LU 9.
  EXPECT_EQ(make_mm()->space().num_params(), 12u);
  EXPECT_EQ(make_atax()->space().num_params(), 13u);
  EXPECT_EQ(make_cor()->space().num_params(), 12u);
  EXPECT_EQ(make_lu()->space().num_params(), 9u);
}

TEST(Spapt, SearchSpacesAreAstronomical) {
  // Table III magnitudes (ours are the same order, see DESIGN.md).
  EXPECT_GT(make_mm()->space().cardinality(), 1e10);
  EXPECT_GT(make_atax()->space().cardinality(), 1e12);
  EXPECT_GT(make_lu()->space().cardinality(), 1e9);
}

TEST(Spapt, InputSizesMatchTable3) {
  EXPECT_EQ(make_mm()->phases()[0].nest.loops[0].extent, 2000);
  EXPECT_EQ(make_atax()->phases()[0].nest.loops[0].extent, 10000);
  EXPECT_EQ(make_cor(1500)->phases()[0].nest.loops[0].extent, 1500);
}

TEST(Spapt, FlopCountsMatchKernelMath) {
  // MM: 2 n^3.
  EXPECT_NEAR(make_mm(100)->total_flops(), 2e6, 1e-6);
  // ATAX: two phases of 2 n^2.
  EXPECT_NEAR(make_atax(100)->total_flops(), 4e4, 1e-6);
  // LU with triangular occupancy 0.5 x 0.5: ~2 n^3 / 4 (+ division term).
  const double lu = make_lu(100)->total_flops();
  EXPECT_GT(lu, 0.4e6);
  EXPECT_LT(lu, 0.7e6);
}

TEST(Spapt, DefaultConfigIsIdentityTransform) {
  const auto mm = make_mm();
  const auto ts = mm->transforms(mm->space().default_config(), 1);
  ASSERT_EQ(ts.size(), 1u);
  for (const auto& lt : ts[0].loops) {
    EXPECT_EQ(lt.unroll, 1);
    EXPECT_EQ(lt.cache_tile, 0);
    EXPECT_EQ(lt.reg_tile, 1);
  }
  EXPECT_FALSE(ts[0].scalar_replacement);
}

TEST(Spapt, TransformMapsParameterValues) {
  const auto lu = make_lu();
  const auto& space = lu->space();
  auto c = space.default_config();
  c[space.index_of("U_I")] = 7;    // unroll 8
  c[space.index_of("T_J")] = 6;    // tile 64
  c[space.index_of("RT_J")] = 2;   // reg tile 4
  const auto ts = lu->transforms(c, 2);
  EXPECT_EQ(ts[0].loops[1].unroll, 8);
  EXPECT_EQ(ts[0].loops[2].cache_tile, 64);
  EXPECT_EQ(ts[0].loops[2].reg_tile, 4);
  EXPECT_EQ(ts[0].threads, 2);
}

TEST(Spapt, WholeLoopTileMeansUntiled) {
  const auto lu = make_lu(1000);
  const auto& space = lu->space();
  auto c = space.default_config();
  c[space.index_of("T_K")] = 11;  // tile 2048 > extent 1000
  const auto ts = lu->transforms(c, 1);
  EXPECT_EQ(ts[0].loops[0].cache_tile, 0);
}

TEST(Spapt, RegTileBiggerThanCacheTileIsInfeasible) {
  const auto lu = make_lu();
  const auto& space = lu->space();
  auto c = space.default_config();
  c[space.index_of("T_I")] = 1;   // tile 2
  c[space.index_of("RT_I")] = 3;  // reg tile 8 > tile 2
  EXPECT_FALSE(lu->feasible(c));
  EXPECT_THROW(lu->transforms(c, 1), Error);
}

TEST(Spapt, FeasibilityIsMachineIndependentByConstruction) {
  // The same configs are feasible regardless of target (preserves CRN).
  const auto mm = make_mm();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto c = mm->space().random_config(rng);
    EXPECT_EQ(mm->feasible(c), mm->feasible(c));
  }
}

TEST(Spapt, ByNameLookup) {
  EXPECT_EQ(spapt_by_name("MM")->name(), "MM");
  EXPECT_EQ(spapt_by_name("LU", 64)->phases()[0].nest.loops[0].extent, 64);
  EXPECT_THROW(spapt_by_name("NOPE"), Error);
}

TEST(Spapt, AtaxHasTwoPhases) {
  const auto atax = make_atax();
  EXPECT_EQ(atax->phases().size(), 2u);
  EXPECT_EQ(atax->phases()[0].nest.name, "ATAX.Ax");
  EXPECT_EQ(atax->phases()[1].nest.name, "ATAX.ATy");
}

TEST(Spapt, CorIsTriangular) {
  const auto cor = make_cor();
  EXPECT_DOUBLE_EQ(cor->phases()[1].nest.loops[1].occupancy, 0.5);
  EXPECT_FALSE(cor->phases()[1].nest.compiler_tilable);
}

TEST(SimEvaluator, DeterministicAndPositive) {
  auto lu = make_lu();
  SimulatedKernelEvaluator eval(lu, sim::make_westmere());
  const auto c = lu->space().default_config();
  const auto r1 = eval.evaluate(c);
  const auto r2 = eval.evaluate(c);
  EXPECT_TRUE(r1.ok);
  EXPECT_GT(r1.seconds, 0.0);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
}

TEST(SimEvaluator, InfeasibleConfigFailsGracefully) {
  auto lu = make_lu();
  SimulatedKernelEvaluator eval(lu, sim::make_westmere());
  auto c = lu->space().default_config();
  c[lu->space().index_of("T_I")] = 1;   // tile 2
  c[lu->space().index_of("RT_I")] = 5;  // reg tile 32
  const auto r = eval.evaluate(c);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(eval.evaluations(), 0u);  // failure did not count
}

TEST(SimEvaluator, DifferentMachinesDifferentTimes) {
  auto mm = make_mm();
  SimulatedKernelEvaluator wm(mm, sim::make_westmere());
  SimulatedKernelEvaluator sb(mm, sim::make_sandybridge());
  const auto c = mm->space().default_config();
  EXPECT_NE(wm.evaluate(c).seconds, sb.evaluate(c).seconds);
  // Sandybridge (8 x 3.4 GHz AVX) beats Westmere (6 x 2.4 GHz SSE).
  EXPECT_LT(sb.evaluate(c).seconds, wm.evaluate(c).seconds);
}

TEST(SimEvaluator, BreakdownExposesPhases) {
  auto atax = make_atax();
  SimulatedKernelEvaluator eval(atax, sim::make_power7());
  const auto b = eval.breakdown(atax->space().default_config());
  ASSERT_EQ(b.size(), 2u);
  EXPECT_GT(b[0].seconds, 0.0);
  EXPECT_GT(b[1].seconds, 0.0);
}

class SpaptFeasibilityRate : public ::testing::TestWithParam<const char*> {};

TEST_P(SpaptFeasibilityRate, MostConfigsAreFeasible) {
  const auto prob = spapt_by_name(GetParam());
  Rng rng(9);
  int feasible = 0;
  constexpr int kTrials = 300;
  for (int i = 0; i < kTrials; ++i)
    feasible += prob->feasible(prob->space().random_config(rng));
  // Like real SPAPT problems, a noticeable fraction of the raw space is
  // infeasible, but the majority must remain usable.
  EXPECT_GT(feasible, kTrials / 2);
  EXPECT_LE(feasible, kTrials);
}

INSTANTIATE_TEST_SUITE_P(All, SpaptFeasibilityRate,
                         ::testing::Values("MM", "ATAX", "COR", "LU"));

}  // namespace
}  // namespace portatune::kernels
