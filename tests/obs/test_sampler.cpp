#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace portatune::obs {
namespace {

std::vector<json::Value> read_rows(const std::string& path) {
  std::ifstream is(path);
  std::vector<json::Value> rows;
  for (std::string line; std::getline(is, line);)
    if (!line.empty()) rows.push_back(json::Value::parse(line));
  return rows;
}

TEST(MetricsSampler, WritesAnchorRowAndFinalRow) {
  const std::string path = testing::TempDir() + "/ts_anchor.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  reg.counter("evals").add(3);
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 60.0;  // only the anchor + final rows fire
    opt.registry = &reg;
    MetricsSampler sampler(std::move(opt));
    EXPECT_GE(sampler.samples_written(), 1u);
  }
  const auto rows = read_rows(path);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows.front().at("seq").as_number(), 0.0);
  EXPECT_EQ(rows.front().at("counters").at("evals").as_number(), 3.0);
  // Sequence numbers are strictly increasing, timestamps monotone.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].at("seq").as_number(),
              rows[i - 1].at("seq").as_number() + 1.0);
    EXPECT_GE(rows[i].at("t_mono").as_number(),
              rows[i - 1].at("t_mono").as_number());
  }
}

TEST(MetricsSampler, RatesAreCounterDeltasOverTheInterval) {
  const std::string path = testing::TempDir() + "/ts_rates.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 60.0;
    opt.registry = &reg;
    MetricsSampler sampler(std::move(opt));
    reg.counter("work").add(100);
    sampler.sample_now();
  }
  const auto rows = read_rows(path);
  ASSERT_GE(rows.size(), 2u);
  // The second row saw the counter go 0 -> 100 over dt seconds.
  const json::Value& row = rows[1];
  const double dt = row.at("dt").as_number();
  ASSERT_GT(dt, 0.0);
  EXPECT_NEAR(row.at("rates").at("work").as_number(), 100.0 / dt,
              1e-6 * (100.0 / dt));
}

TEST(MetricsSampler, CounterShrinkIsTreatedAsAReset) {
  MetricsRegistry reg;
  reg.counter("c").add(50);
  MetricsSnapshot snap = reg.snapshot();
  // Rendered via the static row renderer: rates are the caller's, so we
  // exercise the delta logic through a real sampler instead.
  const std::string path = testing::TempDir() + "/ts_reset.jsonl";
  std::remove(path.c_str());
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 60.0;
    opt.registry = &reg;
    MetricsSampler sampler(std::move(opt));
    reg.reset();          // registry reset between searches
    reg.counter("c").add(10);
    sampler.sample_now();
  }
  const auto rows = read_rows(path);
  ASSERT_GE(rows.size(), 2u);
  // 10 < 50: the counter restarted; the rate ramps from zero, never
  // negative.
  const double dt = rows[1].at("dt").as_number();
  EXPECT_NEAR(rows[1].at("rates").at("c").as_number(), 10.0 / dt,
              1e-6 * (10.0 / dt));
  (void)snap;
}

TEST(MetricsSampler, HistogramRowsCarryPercentiles) {
  const std::string path = testing::TempDir() + "/ts_hist.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i)
    reg.histogram("lat", {0.25, 0.5, 0.75, 1.0}).observe(i / 100.0);
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 60.0;
    opt.registry = &reg;
    MetricsSampler sampler(std::move(opt));
  }
  const auto rows = read_rows(path);
  ASSERT_GE(rows.size(), 1u);
  const json::Value& h = rows[0].at("histograms").at("lat");
  EXPECT_EQ(h.at("count").as_number(), 100.0);
  EXPECT_NEAR(h.at("p50").as_number(), 0.5, 0.05);
  EXPECT_NEAR(h.at("p95").as_number(), 0.95, 0.05);
  EXPECT_GE(h.at("p99").as_number(), h.at("p95").as_number());
}

TEST(MetricsSampler, OnTickRunsAfterEverySample) {
  const std::string path = testing::TempDir() + "/ts_tick.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  std::atomic<int> ticks{0};
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 60.0;
    opt.registry = &reg;
    opt.on_tick = [&ticks] { ++ticks; };
    MetricsSampler sampler(std::move(opt));
    const int after_anchor = ticks.load();
    EXPECT_GE(after_anchor, 1);  // the anchor row ticked too
    sampler.sample_now();
    EXPECT_EQ(ticks.load(), after_anchor + 1);
  }
  EXPECT_GE(ticks.load(), 3);  // anchor + explicit + final
}

TEST(MetricsSampler, BackgroundThreadSamplesAtThePeriod) {
  const std::string path = testing::TempDir() + "/ts_thread.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  {
    MetricsSampler::Options opt;
    opt.path = path;
    opt.period_seconds = 0.02;
    opt.registry = &reg;
    MetricsSampler sampler(std::move(opt));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_GE(sampler.samples_written(), 3u);
  }
  const auto rows = read_rows(path);
  EXPECT_GE(rows.size(), 3u);
}

TEST(MetricsSampler, UnopenablePathThrows) {
  MetricsSampler::Options opt;
  opt.path = "/nonexistent-dir/deeper/ts.jsonl";
  EXPECT_THROW({ MetricsSampler sampler(std::move(opt)); }, Error);
}

TEST(MetricsSampler, RenderRowIsValidJsonWithAllSections) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(0.01);
  const std::map<std::string, double> rates = {{"c", 4.0}};
  const std::string row =
      MetricsSampler::render_row(reg.snapshot(), 7, 1000.5, 3.25, 0.5,
                                 rates);
  const json::Value v = json::Value::parse(row);
  EXPECT_EQ(v.at("seq").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(v.at("t_wall").as_number(), 1000.5);
  EXPECT_DOUBLE_EQ(v.at("dt").as_number(), 0.5);
  EXPECT_EQ(v.at("counters").at("c").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(v.at("rates").at("c").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("g").as_number(), 1.5);
  EXPECT_EQ(v.at("histograms").at("h").at("count").as_number(), 1.0);
}

}  // namespace
}  // namespace portatune::obs
