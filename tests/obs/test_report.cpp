// portatune-report analysis: self/child time, causal attribution of
// evaluations to searches and cells, orphan detection, and the
// regression comparators the CI gate runs on.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/event.hpp"

namespace portatune::obs {
namespace {

Event span(std::string name, std::string cat, std::uint64_t id,
           std::uint64_t parent, double ts, double dur, std::uint64_t tid,
           std::vector<Field> fields = {}) {
  Event e;
  e.severity = Severity::Debug;
  e.name = std::move(name);
  e.category = std::move(cat);
  e.mono_seconds = ts;
  e.duration_seconds = dur;
  e.thread_id = tid;
  e.span_id = id;
  e.parent_span_id = parent;
  e.fields = std::move(fields);
  return e;
}

Event eval_event(std::uint64_t id, std::uint64_t parent, double ts,
                 double dur, std::uint64_t tid, bool ok, double seconds,
                 int attempts = 1, bool batched = false) {
  std::vector<Field> fields{{"ok", ok}, {"attempts", attempts}};
  if (ok) fields.emplace_back("seconds", seconds);
  if (batched) fields.emplace_back("batched", true);
  return span("eval", "eval", id, parent, ts, dur, tid, std::move(fields));
}

/// A small two-thread log: a search span with two windows, three evals
/// (one failed after a retry, one batched), all causally linked.
std::vector<Event> canned_log() {
  std::vector<Event> log;
  log.push_back(eval_event(4, 3, 0.002, 0.009, 2, true, 0.5));
  log.push_back(span("resilient.call", "eval", 3, 2, 0.002, 0.010, 2));
  log.push_back(eval_event(6, 5, 0.015, 0.018, 2, false, 0.0, 2));
  log.push_back(span("resilient.call", "eval", 5, 2, 0.015, 0.020, 2));
  log.push_back(span("search.window", "search", 2, 1, 0.001, 0.040, 1));
  log.push_back(eval_event(0, 7, 0.052, 0.010, 2, true, 0.4, 1, true));
  log.push_back(span("search.window", "search", 7, 1, 0.050, 0.045, 1));
  log.push_back(span("search.RS", "search", 1, 0, 0.000, 0.100, 1,
                     {{"algorithm", "RS"}, {"evals", 3}}));
  return log;
}

TEST(Report, SelfTimeSubtractsDirectChildren) {
  const auto rep = analyze_events(canned_log());
  ASSERT_EQ(rep.orphan_events, 0u);
  const PhaseStat* search = nullptr;
  const PhaseStat* window = nullptr;
  for (const auto& p : rep.phases) {
    if (p.name == "search.RS") search = &p;
    if (p.name == "search.window") window = &p;
  }
  ASSERT_NE(search, nullptr);
  ASSERT_NE(window, nullptr);
  // search.RS: 0.100 total minus its two windows (0.040 + 0.045).
  EXPECT_NEAR(search->total_seconds, 0.100, 1e-12);
  EXPECT_NEAR(search->self_seconds, 0.015, 1e-12);
  // first window: 0.040 minus two resilient.call children (0.030);
  // second window: 0.045 minus the batched eval (0.010).
  EXPECT_EQ(window->count, 2u);
  EXPECT_NEAR(window->self_seconds, 0.010 + 0.035, 1e-12);
}

TEST(Report, AttributesEvalsToTheEnclosingSearch) {
  const auto rep = analyze_events(canned_log());
  EXPECT_EQ(rep.eval_events, 3u);
  EXPECT_EQ(rep.eval_failures, 1u);
  EXPECT_EQ(rep.eval_retries, 1u);
  EXPECT_EQ(rep.batched_evals, 1u);

  ASSERT_EQ(rep.searches.size(), 1u);
  const SearchStat& s = rep.searches[0];
  EXPECT_EQ(s.algorithm, "RS");
  EXPECT_EQ(s.evals, 3u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.retried, 1u);
  // Evals in timestamp order: 0.5 (ok), fail, 0.4 (ok) -> best is #3.
  EXPECT_NEAR(s.best_seconds, 0.4, 1e-12);
  EXPECT_EQ(s.evals_to_best, 3u);
}

TEST(Report, TracksWorkersAndWall) {
  const auto rep = analyze_events(canned_log());
  EXPECT_EQ(rep.workers.size(), 2u);
  EXPECT_NEAR(rep.wall_seconds, 0.100, 1e-12);
  // Worker lanes are dense and in first-appearance order.
  EXPECT_EQ(rep.workers[0].lane, 0);
  EXPECT_EQ(rep.workers[0].thread_id, 2u);
  EXPECT_EQ(rep.workers[1].thread_id, 1u);
}

TEST(Report, CountsOrphans) {
  auto log = canned_log();
  Event stray = eval_event(0, 999, 0.09, 0.001, 2, true, 1.0);
  log.push_back(stray);
  const auto rep = analyze_events(log);
  EXPECT_EQ(rep.orphan_events, 1u);
}

TEST(Report, AttributesEvalsToExperimentCells) {
  std::vector<Event> log;
  log.push_back(eval_event(3, 2, 0.01, 0.01, 4, true, 0.9));
  log.push_back(eval_event(5, 2, 0.03, 0.01, 4, false, 0.0));
  log.push_back(span("search.RS", "search", 2, 1, 0.0, 0.05, 4,
                     {{"algorithm", "RS"}}));
  log.push_back(span("experiment.cell", "experiment", 1, 0, 0.0, 0.06, 4,
                     {{"label", "LU W->S"}}));
  const auto rep = analyze_events(log);
  ASSERT_EQ(rep.cells.size(), 1u);
  EXPECT_EQ(rep.cells[0].label, "LU W->S");
  EXPECT_EQ(rep.cells[0].evals, 2u);
  EXPECT_EQ(rep.cells[0].failures, 1u);
}

TEST(Report, CollectsGuardTimeline) {
  auto log = canned_log();
  Event g;
  g.severity = Severity::Warn;
  g.name = "guard.state";
  g.category = "search";
  g.mono_seconds = 0.06;
  g.thread_id = 1;
  g.fields = {{"search", "RS_p"},
              {"from", "trusted"},
              {"to", "degraded"},
              {"trust", 0.15},
              {"evals", std::uint64_t{20}},
              {"reason", "trust-floor"}};
  log.push_back(g);
  const auto rep = analyze_events(log);
  ASSERT_EQ(rep.guard_events.size(), 1u);
  EXPECT_EQ(rep.guard_events[0].search, "RS_p");
  EXPECT_EQ(rep.guard_events[0].from, "trusted");
  EXPECT_EQ(rep.guard_events[0].to, "degraded");
  EXPECT_EQ(rep.guard_events[0].reason, "trust-floor");
  EXPECT_NEAR(rep.guard_events[0].trust, 0.15, 1e-9);
  EXPECT_EQ(rep.guard_events[0].evals, 20u);

  std::ostringstream os;
  write_report(os, rep);
  EXPECT_NE(os.str().find("guard timeline"), std::string::npos);
  EXPECT_NE(os.str().find("trust-floor"), std::string::npos);
}

TEST(Report, ReportsSkippedLines) {
  Report rep = analyze_events(canned_log());
  rep.skipped_lines = 3;
  std::ostringstream os;
  write_report(os, rep);
  EXPECT_NE(os.str().find("skipped_lines 3"), std::string::npos);
}

TEST(Report, WriteReportMentionsEverySection) {
  std::ostringstream os;
  write_report(os, analyze_events(canned_log()));
  const std::string out = os.str();
  for (const char* needle :
       {"portatune report", "phases", "workers", "searches", "search.RS",
        "orphans 0"})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Comparison, FlagsRegressionsAtTheThreshold) {
  Report base, cur;
  PhaseStat p;
  p.name = "phase.fit";
  p.count = 1;
  p.total_seconds = 1.0;
  base.phases.push_back(p);
  p.total_seconds = 1.25;
  cur.phases.push_back(p);
  p.name = "gone";
  base.phases.push_back(p);
  p.name = "new";
  cur.phases.push_back(p);

  const auto strict = compare_reports(base, cur, 20.0);
  ASSERT_EQ(strict.rows.size(), 1u);
  EXPECT_NEAR(strict.rows[0].delta_percent, 25.0, 1e-9);
  EXPECT_TRUE(strict.rows[0].regressed);
  EXPECT_EQ(strict.regressions, 1u);
  EXPECT_TRUE(strict.regressed());
  ASSERT_EQ(strict.only_baseline.size(), 1u);
  EXPECT_EQ(strict.only_baseline[0], "gone");
  ASSERT_EQ(strict.only_current.size(), 1u);
  EXPECT_EQ(strict.only_current[0], "new");

  // A looser threshold lets the same delta pass.
  EXPECT_FALSE(compare_reports(base, cur, 30.0).regressed());
  // Speedups never trip the gate.
  EXPECT_FALSE(compare_reports(cur, base, 20.0).regressed());
}

TEST(Comparison, ReadsGoogleBenchmarkJson) {
  const std::string base_path = ::testing::TempDir() + "/bench_base.json";
  const std::string cur_path = ::testing::TempDir() + "/bench_cur.json";
  {
    std::ofstream b(base_path);
    b << R"({"context":{},"benchmarks":[)"
      << R"({"name":"BM_A","real_time":10.0,"time_unit":"ns"},)"
      << R"({"name":"BM_B","real_time":5.0,"time_unit":"ns"}]})";
    std::ofstream c(cur_path);
    c << R"({"context":{},"benchmarks":[)"
      << R"({"name":"BM_A","real_time":15.0,"time_unit":"ns"},)"
      << R"({"name":"BM_B","real_time":5.0,"time_unit":"ns"}]})";
  }
  const auto c = compare_bench_json(base_path, cur_path, 20.0);
  ASSERT_EQ(c.rows.size(), 2u);
  EXPECT_TRUE(c.rows[0].regressed);
  EXPECT_NEAR(c.rows[0].delta_percent, 50.0, 1e-9);
  EXPECT_FALSE(c.rows[1].regressed);
  EXPECT_EQ(c.regressions, 1u);
  std::remove(base_path.c_str());
  std::remove(cur_path.c_str());
}

}  // namespace
}  // namespace portatune::obs
