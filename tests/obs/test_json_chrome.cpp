#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/sink.hpp"
#include "support/error.hpp"

namespace portatune::obs {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::Value::parse("null").is_null());
  EXPECT_TRUE(json::Value::parse("true").as_bool());
  EXPECT_FALSE(json::Value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::Value::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(json::Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedDocuments) {
  const auto v = json::Value::parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":true})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), Error);
}

TEST(Json, DecodesEscapes) {
  const auto v = json::Value::parse(R"("tab\there\nquote\"uA")");
  EXPECT_EQ(v.as_string(), "tab\there\nquote\"uA");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse(""), Error);
  EXPECT_THROW(json::Value::parse("{"), Error);
  EXPECT_THROW(json::Value::parse("[1,]"), Error);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(json::Value::parse("'single'"), Error);
}

TEST(Json, DumpRoundTrips) {
  const std::string doc = R"({"a":[1,true,"x\n"],"b":null})";
  const auto v = json::Value::parse(doc);
  const auto again = json::Value::parse(v.dump());
  EXPECT_EQ(again.at("a").as_array()[2].as_string(), "x\n");
  EXPECT_TRUE(again.at("b").is_null());
}

TEST(ChromeTrace, ExportsSpansAndInstants) {
  std::vector<Event> events;
  events.push_back(make_span(Severity::Info, "phase.fit", "experiment", 0.25,
                             {{"rows", std::uint64_t{100}}}));
  events.push_back(make_instant(Severity::Warn, "search.abort", "search",
                                {{"reason", "budget"}}));

  std::ostringstream os;
  write_chrome_trace(os, events);
  const auto doc = json::Value::parse(os.str());
  const auto& items = doc.at("traceEvents").as_array();
  ASSERT_EQ(items.size(), 2u);

  const auto& span = items[0];
  EXPECT_EQ(span.at("name").as_string(), "phase.fit");
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_NEAR(span.at("dur").as_number(), 250000.0, 1.0);  // microseconds
  EXPECT_EQ(span.at("pid").as_number(), 1.0);
  EXPECT_EQ(span.at("args").at("rows").as_number(), 100.0);

  const auto& instant = items[1];
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("args").at("reason").as_string(), "budget");
}

TEST(ChromeTrace, ConvertsJsonlLogs) {
  // Produce a JSONL log the way JsonlSink would, then convert it.
  std::ostringstream log;
  JsonlSink sink(log);
  sink.log(make_span(Severity::Info, "eval", "eval", 0.001,
                     {{"ok", true}, {"config", "1/2/3"}}));
  sink.log(make_instant(Severity::Info, "tick", "test"));

  std::istringstream in(log.str());
  std::ostringstream out;
  EXPECT_EQ(jsonl_to_chrome_trace(in, out), 2u);
  const auto doc = json::Value::parse(out.str());
  const auto& items = doc.at("traceEvents").as_array();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].at("args").at("config").as_string(), "1/2/3");
}

TEST(ChromeTrace, RejectsMalformedJsonl) {
  std::istringstream in("this is not json\n");
  std::ostringstream out;
  EXPECT_THROW(jsonl_to_chrome_trace(in, out), Error);
}

TEST(ChromeTrace, StrictReadThrowsOnTornLine) {
  // Default (no stats out-param): malformed input is an error, exactly
  // as before the lenient mode existed.
  std::istringstream in(
      R"({"name":"a","cat":"c","sev":"info","ts":1.0})" "\n"
      R"({"name":"b","cat":"c","sev":)" "\n");  // torn mid-write
  EXPECT_THROW(read_event_log(in), Error);
}

TEST(ChromeTrace, LenientReadSkipsAndCountsTornLines) {
  // A crashed run tears its last JSONL line mid-write; with a stats
  // out-param the reader salvages every intact event and reports what it
  // dropped instead of throwing the whole log away.
  std::ostringstream log;
  JsonlSink sink(log);
  sink.log(make_instant(Severity::Info, "first", "test"));
  sink.log(make_instant(Severity::Info, "second", "test"));
  std::string text = log.str();
  text += R"({"name":"torn","cat":"test","sev":)";  // no newline, torn

  std::istringstream in(text);
  LogReadStats stats;
  const auto events = read_event_log(in, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_NE(stats.first_error.find("line 3"), std::string::npos)
      << stats.first_error;
}

TEST(ChromeTrace, LenientReadSkipsMidFileGarbage) {
  // Bit-flipped or interleaved junk between valid lines: each bad line
  // is skipped independently; the good ones all survive.
  std::ostringstream log;
  JsonlSink sink(log);
  sink.log(make_instant(Severity::Info, "keep.1", "test"));
  std::string text = log.str();
  text += "#### not json at all\n";
  text += R"({"cat":"test","sev":"info","ts":1.0})" "\n";  // missing name
  {
    std::ostringstream more;
    JsonlSink tail(more);
    tail.log(make_instant(Severity::Info, "keep.2", "test"));
    text += more.str();
  }

  std::istringstream in(text);
  LogReadStats stats;
  const auto events = read_event_log(in, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "keep.1");
  EXPECT_EQ(events[1].name, "keep.2");
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_FALSE(stats.first_error.empty());
}

TEST(ChromeTrace, LenientReadOnCleanLogCountsNothing) {
  std::ostringstream log;
  JsonlSink sink(log);
  sink.log(make_instant(Severity::Info, "only", "test"));
  std::istringstream in(log.str());
  LogReadStats stats;
  const auto events = read_event_log(in, &stats);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_EQ(stats.lines, 1u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(stats.first_error.empty());
}

namespace {

Event placed_span(std::string name, std::uint64_t id, std::uint64_t parent,
                  double ts, double dur, std::uint64_t tid) {
  Event e = make_span(Severity::Info, std::move(name), "test", dur);
  e.mono_seconds = ts;
  e.thread_id = tid;
  e.span_id = id;
  e.parent_span_id = parent;
  return e;
}

}  // namespace

TEST(ChromeTrace, SortsSlicesByThreadAndTimestamp) {
  // The sink logs in completion order; the exporter must serialize each
  // lane's slices in start order, parents before same-start children.
  std::vector<Event> events;
  events.push_back(placed_span("late", 0, 0, 5.0, 0.1, 7));
  events.push_back(placed_span("child", 2, 1, 1.0, 0.5, 7));
  events.push_back(placed_span("parent", 1, 0, 1.0, 2.0, 7));
  events.push_back(placed_span("other-thread", 0, 0, 0.5, 0.1, 3));

  std::ostringstream os;
  write_chrome_trace(os, events);
  const auto doc = json::Value::parse(os.str());
  const auto& items = doc.at("traceEvents").as_array();
  ASSERT_EQ(items.size(), 4u);
  std::vector<std::string> names;
  for (const auto& item : items) names.push_back(item.at("name").as_string());
  // Lanes serialise in thread-id order; within a lane, "parent" (same
  // start, longer) precedes "child" so the viewer nests them correctly.
  EXPECT_EQ(names,
            (std::vector<std::string>{"other-thread", "parent", "child",
                                      "late"}));
}

TEST(ChromeTrace, SpanIdsRoundTripThroughJsonl) {
  Event e = make_span(Severity::Info, "eval", "eval", 0.001);
  e.span_id = 42;
  e.parent_span_id = 7;
  std::ostringstream log;
  JsonlSink sink(log);
  sink.log(e);

  std::istringstream in(log.str());
  const auto events = read_event_log(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span_id, 42u);
  EXPECT_EQ(events[0].parent_span_id, 7u);
  // Causal ids are schema keys, not fields — no duplicate "span" field.
  for (const auto& f : events[0].fields)
    EXPECT_NE(f.key, "span");

  // The trace exporter surfaces them in args for the viewer.
  std::ostringstream trace;
  write_chrome_trace(trace, events);
  const auto doc = json::Value::parse(trace.str());
  const auto& items = doc.at("traceEvents").as_array();
  EXPECT_EQ(items[0].at("args").at("span").as_number(), 42.0);
  EXPECT_EQ(items[0].at("args").at("parent").as_number(), 7.0);
}

TEST(ChromeTrace, EmitsFlowArrowsForCrossThreadParents) {
  // window (tid 1) -> eval (tid 2): cross-thread, needs a flow pair.
  // window -> sibling (tid 1): same lane, slice nesting is enough.
  std::vector<Event> events;
  events.push_back(placed_span("window", 1, 0, 0.0, 1.0, 1));
  events.push_back(placed_span("eval", 2, 1, 0.2, 0.3, 2));
  events.push_back(placed_span("sibling", 3, 1, 0.6, 0.2, 1));

  std::ostringstream os;
  write_chrome_trace(os, events);
  const auto doc = json::Value::parse(os.str());
  const auto& items = doc.at("traceEvents").as_array();
  std::size_t starts = 0, finishes = 0;
  for (const auto& item : items) {
    const std::string& ph = item.at("ph").as_string();
    if (ph == "s") {
      ++starts;
      EXPECT_EQ(item.at("id").as_number(), 2.0);  // the child's span id
      EXPECT_EQ(item.at("cat").as_string(), "flow");
    } else if (ph == "f") {
      ++finishes;
      EXPECT_EQ(item.at("id").as_number(), 2.0);
      EXPECT_EQ(item.at("bp").as_string(), "e");
    }
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(finishes, 1u);
  EXPECT_EQ(items.size(), 3u + 2u);  // three slices + one flow pair
}

}  // namespace
}  // namespace portatune::obs
