#include "obs/observed_evaluator.hpp"

#include <gtest/gtest.h>

#include "obs/sink.hpp"
#include "tests/tuner/synthetic.hpp"
#include "tuner/faults.hpp"
#include "tuner/random_search.hpp"
#include "tuner/resilience.hpp"

namespace portatune::obs {
namespace {

using tuner::testing::QuadraticEvaluator;

TEST(ObservedEvaluator, CountsSuccessesAndLatency) {
  QuadraticEvaluator backend("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  MetricsRegistry reg;
  ObservedEvaluator observed(backend, "eval", &reg);

  const auto r = observed.evaluate({1, 2, 3, 4});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(reg.counter("eval.calls").value(), 1u);
  EXPECT_EQ(reg.counter("eval.failures").value(), 0u);
  EXPECT_EQ(reg.histogram("eval.seconds").count(), 1u);
  EXPECT_EQ(reg.histogram("eval.latency_seconds").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.histogram("eval.seconds").sum(), r.seconds);
}

TEST(ObservedEvaluator, ClassifiesInjectedFaults) {
  // Compose with the fault injector: the observer must see and classify
  // every injected failure by kind.
  QuadraticEvaluator backend("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  tuner::FaultProfile profile;
  profile.transient_rate = 1.0;  // every attempt fails transiently
  tuner::FaultInjectingEvaluator faulty(backend, profile);
  MetricsRegistry reg;
  ObservedEvaluator observed(faulty, "eval", &reg);

  MemorySink sink;
  ScopedSinkRedirect redirect(&sink, Severity::Debug);
  const auto r = observed.evaluate({1, 2, 3, 4});
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(reg.counter("eval.failures").value(), 1u);
  EXPECT_EQ(reg.counter("eval.failures.transient").value(), 1u);
  EXPECT_EQ(reg.counter("eval.failures.deterministic").value(), 0u);
  EXPECT_EQ(reg.histogram("eval.seconds").count(), 0u);  // no run time

  // One event per attempt, Warn (failures log a level up), FailureKind
  // riding along in the fields.
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "eval");
  EXPECT_EQ(events[0].severity, Severity::Warn);
  bool saw_kind = false;
  for (const auto& f : events[0].fields)
    if (f.key == "kind" && f.value == "transient") saw_kind = true;
  EXPECT_TRUE(saw_kind);
}

TEST(ObservedEvaluator, SeesEachAttemptInsideTheResilientStack) {
  // backend -> faults -> observer -> retry: the observer logs one event
  // per raw attempt, so retries show up as multiple events.
  QuadraticEvaluator backend("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  tuner::FaultProfile profile;
  profile.transient_rate = 1.0;
  tuner::FaultInjectingEvaluator faulty(backend, profile);
  MetricsRegistry reg;
  ObservedEvaluator observed(faulty, "eval", &reg);
  tuner::RetryPolicy policy;
  policy.max_attempts = 3;
  tuner::ResilientEvaluator resilient(observed, policy);

  MemorySink sink;
  ScopedSinkRedirect redirect(&sink, Severity::Debug);
  const auto r = resilient.evaluate({1, 2, 3, 4});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(reg.counter("eval.calls").value(), 3u);  // one per attempt

  // Three attempt events plus the retry-chain span they nest under —
  // the chain survives the watchdog's thread hop.
  std::uint64_t chain_span = 0;
  std::size_t attempts = 0;
  for (const auto& e : sink.events())
    if (e.name == "resilient.call") chain_span = e.span_id;
  ASSERT_NE(chain_span, 0u);
  for (const auto& e : sink.events())
    if (e.name == "eval") {
      ++attempts;
      EXPECT_EQ(e.parent_span_id, chain_span);
    }
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(sink.size(), 4u);
}

TEST(ObservedEvaluator, SearchAbortFlushesTheEventLog) {
  // A fault-injected search that exhausts its failure budget must leave a
  // Warn "search.abort" event in the (flushed) sink, so a truncated run
  // still explains why it stopped.
  QuadraticEvaluator backend("M", {5, 5, 5, 5}, {1, 1, 1, 1});
  tuner::FaultProfile profile;
  profile.transient_rate = 1.0;  // dead machine: every attempt fails
  tuner::FaultInjectingEvaluator faulty(backend, profile);
  MetricsRegistry reg;
  ObservedEvaluator observed(faulty, "eval", &reg);

  MemorySink sink;
  ScopedSinkRedirect redirect(&sink, Severity::Warn);
  tuner::RandomSearchOptions opt;
  opt.max_evals = 100;
  opt.seed = 7;
  opt.failure_budget.max_consecutive = 5;
  const auto trace = tuner::random_search(observed, opt);

  ASSERT_FALSE(trace.stop_reason().empty());
  bool saw_abort = false;
  for (const auto& e : sink.events())
    if (e.name == "search.abort") {
      saw_abort = true;
      EXPECT_EQ(e.severity, Severity::Warn);
      bool saw_reason = false;
      for (const auto& f : e.fields)
        if (f.key == "reason" && f.value == trace.stop_reason())
          saw_reason = true;
      EXPECT_TRUE(saw_reason);
    }
  EXPECT_TRUE(saw_abort);
}

TEST(ObservedEvaluator, RestoredStopReasonDoesNotReAnnounce) {
  // Loading a checkpoint of an aborted search restores the reason quietly.
  MemorySink sink;
  ScopedSinkRedirect redirect(&sink, Severity::Debug);
  tuner::SearchTrace trace("RS", "p", "m");
  trace.restore_stop_reason("failure budget exhausted");
  EXPECT_EQ(trace.stop_reason(), "failure budget exhausted");
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace portatune::obs
