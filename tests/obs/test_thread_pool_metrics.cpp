// Thread-pool telemetry: dormant by default, and publishing the pool.*
// instruments once a ThreadPoolMetrics observer is installed.
#include "obs/thread_pool_metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "support/thread_pool.hpp"

namespace portatune::obs {
namespace {

TEST(ThreadPoolMetrics, DormantByDefault) {
  EXPECT_EQ(thread_pool_observer(), nullptr);
  // A pool used with no observer must leave a fresh registry untouched.
  MetricsRegistry registry;
  {
    ThreadPool pool(2);
    pool.parallel_for(0, 32, [](std::size_t) {});
  }
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(ThreadPoolMetrics, PublishesPoolInstruments) {
  MetricsRegistry registry;
  {
    ScopedThreadPoolMetrics metrics(&registry);
    // One worker: its on_start/on_finish callbacks are serialized, so
    // the gauges have deterministic final values once the pool joins.
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { ran.fetch_add(1); }).wait();
    EXPECT_EQ(ran.load(), 8);
  }
  EXPECT_EQ(thread_pool_observer(), nullptr);  // scope uninstalled

  const auto snap = registry.snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(registry.counter("pool.tasks_submitted").value(), 8u);
  EXPECT_EQ(registry.counter("pool.tasks_completed").value(), 8u);
  EXPECT_EQ(registry.histogram("pool.queue_wait_seconds").count(), 8u);
  EXPECT_EQ(registry.histogram("pool.execute_seconds").count(), 8u);
  EXPECT_GE(registry.histogram("pool.queue_wait_seconds").min(), 0.0);
  // Occupancy settled back to zero; the queue never held more than the
  // single in-flight task (the submit-side gauge write races the
  // worker-side one, so only the bound is deterministic).
  EXPECT_EQ(registry.gauge("pool.workers_busy").value(), 0.0);
  EXPECT_LE(registry.gauge("pool.queue_depth").value(), 1.0);
}

TEST(ThreadPoolMetrics, ScopeRestoresThePreviousObserver) {
  MetricsRegistry outer_reg, inner_reg;
  ScopedThreadPoolMetrics outer(&outer_reg);
  ThreadPoolObserver* const installed = thread_pool_observer();
  ASSERT_NE(installed, nullptr);
  {
    ScopedThreadPoolMetrics inner(&inner_reg);
    EXPECT_NE(thread_pool_observer(), installed);
  }
  EXPECT_EQ(thread_pool_observer(), installed);
}

TEST(ThreadPoolMetrics, CountsEveryPoolInTheProcess) {
  // The observer is process-wide: two distinct pools both report to it.
  MetricsRegistry registry;
  ScopedThreadPoolMetrics metrics(&registry);
  ThreadPool a(1), b(2);
  a.parallel_for(0, 4, [](std::size_t) {});
  b.parallel_for(0, 4, [](std::size_t) {});
  EXPECT_EQ(registry.counter("pool.tasks_submitted").value(),
            registry.counter("pool.tasks_completed").value());
  EXPECT_GE(registry.counter("pool.tasks_completed").value(), 2u);
}

}  // namespace
}  // namespace portatune::obs
