#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"

namespace portatune::obs {
namespace {

TEST(Metrics, CountersFindOrCreateWithStableIdentity) {
  MetricsRegistry reg;
  Counter& c = reg.counter("search.draws");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name -> the same instrument, not a fresh zero.
  EXPECT_EQ(&reg.counter("search.draws"), &c);
  EXPECT_EQ(reg.counter("search.draws").value(), 5u);
}

TEST(Metrics, GaugesHoldTheLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("cache.miss_rate");
  g.set(0.25);
  g.set(0.125);
  EXPECT_DOUBLE_EQ(g.value(), 0.125);
}

TEST(Metrics, HistogramBucketsAndSummaryStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(5.0);    // bucket 1 (<= 10)
  h.observe(50.0);   // bucket 2 (<= 100)
  h.observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (std::uint64_t b : buckets) EXPECT_EQ(b, 1u);
}

TEST(Metrics, PercentilesInterpolateWithinBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {0.25, 0.5, 0.75, 1.0});
  for (int i = 1; i <= 100; ++i) h.observe(i / 100.0);  // uniform (0, 1]
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  // Uniform data: the q-th percentile is q, up to one bucket's width of
  // interpolation error.
  EXPECT_NEAR(hs.p50, 0.50, 0.05);
  EXPECT_NEAR(hs.p95, 0.95, 0.05);
  EXPECT_NEAR(hs.p99, 0.99, 0.05);
  EXPECT_LE(hs.p50, hs.p95);
  EXPECT_LE(hs.p95, hs.p99);
  // Extremes pin to the observed range.
  EXPECT_DOUBLE_EQ(hs.percentile(0.0), hs.min);
  EXPECT_DOUBLE_EQ(hs.percentile(1.0), hs.max);
}

TEST(Metrics, PercentilesOfAnEmptyHistogramAreZero) {
  MetricsRegistry reg;
  reg.histogram("empty");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p95, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p99, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].percentile(0.5), 0.0);
}

TEST(Metrics, PercentilesClampToTheObservedRange) {
  MetricsRegistry reg;
  // One observation deep inside a wide bucket: every percentile must be
  // that value, not an interpolated point the run never produced.
  reg.histogram("one", {100.0}).observe(2.5);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_DOUBLE_EQ(hs.p50, 2.5);
  EXPECT_DOUBLE_EQ(hs.p99, 2.5);
  // Overflow-bucket observations clamp to max rather than infinity.
  reg.histogram("over", {1.0}).observe(7.0);
  const MetricsSnapshot snap2 = reg.snapshot();
  for (const auto& s : snap2.histograms)
    if (s.name == "over") {
      EXPECT_DOUBLE_EQ(s.p50, 7.0);
      EXPECT_DOUBLE_EQ(s.p99, 7.0);
    }
}

TEST(Metrics, JsonAndTableCarryPercentiles) {
  MetricsRegistry reg;
  for (int i = 1; i <= 20; ++i)
    reg.histogram("sec", {0.5, 1.0}).observe(i / 20.0);
  const MetricsSnapshot snap = reg.snapshot();
  const auto v = json::Value::parse(snap.to_json());
  const auto& h = v.at("histograms").at("sec");
  EXPECT_DOUBLE_EQ(h.at("p50").as_number(), snap.histograms[0].p50);
  EXPECT_DOUBLE_EQ(h.at("p95").as_number(), snap.histograms[0].p95);
  EXPECT_DOUBLE_EQ(h.at("p99").as_number(), snap.histograms[0].p99);
  std::ostringstream os;
  snap.write_table(os);
  EXPECT_NE(os.str().find("p50="), std::string::npos);
  EXPECT_NE(os.str().find("p99="), std::string::npos);
}

TEST(Metrics, SecondsBoundariesSpanMicrosecondsToMinutes) {
  const auto b = Histogram::default_seconds_boundaries();
  ASSERT_FALSE(b.empty());
  EXPECT_LE(b.front(), 1e-6);
  EXPECT_GE(b.back(), 100.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, SnapshotSerialisesToParseableJson) {
  MetricsRegistry reg;
  reg.counter("evals").add(3);
  reg.gauge("rate").set(0.5);
  reg.histogram("sec").observe(0.01);
  const auto v = json::Value::parse(reg.snapshot().to_json());
  EXPECT_EQ(v.at("counters").at("evals").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("rate").as_number(), 0.5);
  const auto& h = v.at("histograms").at("sec");
  EXPECT_EQ(h.at("count").as_number(), 1.0);
  EXPECT_EQ(h.at("buckets").as_array().size(),
            h.at("boundaries").as_array().size() + 1);
}

TEST(Metrics, SnapshotTableIsHumanReadable) {
  MetricsRegistry reg;
  reg.counter("evals").add(42);
  std::ostringstream os;
  reg.snapshot().write_table(os);
  EXPECT_NE(os.str().find("evals"), std::string::npos);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Metrics, ResetClearsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(2.0);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(Metrics, ScopedRedirectIsolatesInstrumentedCode) {
  const std::uint64_t before =
      MetricsRegistry::global().counter("redirect.test").value();
  MetricsRegistry local;
  {
    ScopedMetricsRedirect redirect(local);
    MetricsRegistry::current().counter("redirect.test").add();
  }
  EXPECT_EQ(local.counter("redirect.test").value(), 1u);
  // The global registry never saw the increment...
  EXPECT_EQ(MetricsRegistry::global().counter("redirect.test").value(),
            before);
  // ...and current() is the global again after the redirect ends.
  EXPECT_EQ(&MetricsRegistry::current(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace portatune::obs
