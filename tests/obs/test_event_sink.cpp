#include "obs/sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace portatune::obs {
namespace {

TEST(Severity, RoundTripsThroughStrings) {
  for (Severity s : {Severity::Debug, Severity::Info, Severity::Warn,
                     Severity::Error})
    EXPECT_EQ(severity_from_string(to_string(s)), s);
  EXPECT_THROW(severity_from_string("verbose"), Error);
}

TEST(Event, InstantEventsCarryTimestampsAndThread) {
  const Event e = make_instant(Severity::Info, "tick", "test");
  EXPECT_GE(e.mono_seconds, 0.0);
  EXPECT_GT(e.wall_micros, 0);
  EXPECT_LT(e.duration_seconds, 0.0);  // instant, not a span
}

TEST(Event, SpansBackdateTheirStart) {
  const double now = mono_now();
  const Event e = make_span(Severity::Info, "work", "test", 0.5);
  EXPECT_DOUBLE_EQ(e.duration_seconds, 0.5);
  // The span's timestamp is its *start*, half a second before now.
  EXPECT_LT(e.mono_seconds, now);
}

TEST(Event, JsonSerialisationIsParseable) {
  Event e = make_instant(Severity::Warn, "abort", "search",
                         {{"reason", "it \"broke\"\n"},
                          {"evals", std::uint64_t{17}},
                          {"ok", false},
                          {"rate", 0.25}});
  const auto v = json::Value::parse(to_json(e));
  EXPECT_EQ(v.at("name").as_string(), "abort");
  EXPECT_EQ(v.at("cat").as_string(), "search");
  EXPECT_EQ(v.at("level").as_string(), "warn");
  EXPECT_EQ(v.at("reason").as_string(), "it \"broke\"\n");
  EXPECT_EQ(v.at("evals").as_number(), 17.0);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(v.at("rate").as_number(), 0.25);
}

TEST(Sink, DormantByDefault) {
  // No sink installed: nothing listens at any level and emit() is a no-op.
  ASSERT_EQ(default_sink(), nullptr);
  EXPECT_FALSE(enabled(Severity::Error));
  emit(make_instant(Severity::Error, "dropped", "test"));  // must not crash
}

TEST(Sink, ScopedRedirectInstallsAndRestores) {
  MemorySink sink;
  {
    ScopedSinkRedirect redirect(&sink, Severity::Debug);
    EXPECT_TRUE(enabled(Severity::Debug));
    emit(make_instant(Severity::Debug, "inside", "test"));
  }
  EXPECT_EQ(default_sink(), nullptr);
  EXPECT_FALSE(enabled(Severity::Error));
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].name, "inside");
}

TEST(Sink, LevelThresholdFiltersEmit) {
  MemorySink sink;
  ScopedSinkRedirect redirect(&sink, Severity::Warn);
  EXPECT_FALSE(enabled(Severity::Info));
  emit(make_instant(Severity::Info, "quiet", "test"));
  emit(make_instant(Severity::Warn, "loud", "test"));
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].name, "loud");
}

TEST(Sink, JsonlWritesOneObjectPerLine) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.log(make_instant(Severity::Info, "a", "test"));
  sink.log(make_instant(Severity::Info, "b", "test"));
  EXPECT_EQ(sink.events_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    const auto v = json::Value::parse(line);
    EXPECT_TRUE(v.find("ts") != nullptr);
    EXPECT_TRUE(v.find("name") != nullptr);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(Sink, JsonlDestructorFlushesTheFile) {
  const std::string path = ::testing::TempDir() + "/events.jsonl";
  {
    JsonlSink sink(path);
    sink.log(make_instant(Severity::Info, "persisted", "test"));
  }  // destructor must leave the file readable
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(json::Value::parse(line).at("name").as_string(), "persisted");
  std::remove(path.c_str());
}

TEST(Sink, TeeFansOutToAllChildren) {
  MemorySink a, b;
  TeeSink tee({&a, &b, nullptr});
  tee.log(make_instant(Severity::Info, "both", "test"));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace portatune::obs
