// Causal span-context propagation: thread-local scopes, id allocation,
// and the ThreadPool hop that carries a submitter's context onto the
// worker that runs its task.
#include "support/span_context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/thread_pool.hpp"

namespace portatune {
namespace {

TEST(SpanContext, IdsAreUniqueAndNonZero) {
  const std::uint64_t a = next_span_id();
  const std::uint64_t b = next_span_id();
  EXPECT_NE(a, 0u);  // 0 is reserved for "no span"
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(SpanContext, ScopesNestAndRestore) {
  const SpanContext before = current_span_context();
  {
    SpanScope outer(SpanContext{11});
    EXPECT_EQ(current_span_context().span, 11u);
    {
      SpanScope inner(SpanContext{22});
      EXPECT_EQ(current_span_context().span, 22u);
    }
    EXPECT_EQ(current_span_context().span, 11u);
  }
  EXPECT_EQ(current_span_context().span, before.span);
}

TEST(SpanContext, SubmitCarriesTheSubmittersContext) {
  ThreadPool pool(2);
  SpanScope scope(SpanContext{77});
  std::uint64_t seen = 0;
  pool.submit([&] { seen = current_span_context().span; }).wait();
  EXPECT_EQ(seen, 77u);

  // The context travels with each task, not with the worker: a task
  // submitted outside any scope must see none.
  std::uint64_t bare = 99;
  {
    SpanScope cleared(SpanContext{});
    pool.submit([&] { bare = current_span_context().span; }).wait();
  }
  EXPECT_EQ(bare, 0u);
}

TEST(SpanContext, ParallelForCarriesTheContextToEveryIteration) {
  ThreadPool pool(4);
  SpanScope scope(SpanContext{123});
  std::vector<std::uint64_t> seen(64, 0);
  pool.parallel_for(0, seen.size(), [&](std::size_t i) {
    seen[i] = current_span_context().span;
  });
  for (const auto v : seen) EXPECT_EQ(v, 123u);
}

}  // namespace
}  // namespace portatune
