#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "support/error.hpp"

namespace portatune::obs {
namespace {

Event instant(Severity sev, const std::string& name) {
  return make_instant(sev, name, "test", {});
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST(FlightRecorder, RingRetainsTheLastCapacityEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.log(instant(Severity::Info, "e" + std::to_string(i)));
  EXPECT_EQ(rec.events_seen(), 10u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: the ring wrapped, keeping e6..e9.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].name, "e" + std::to_string(6 + i));
}

TEST(FlightRecorder, SnapshotBeforeWrapIsInsertionOrder) {
  FlightRecorder rec(8);
  rec.log(instant(Severity::Debug, "first"));
  rec.log(instant(Severity::Error, "second"));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
}

TEST(FlightRecorder, SeesAllSeveritiesWhileFilterSinkThresholds) {
  // The CLI chain: Tee(FilterSink(user sink, user level), recorder) with
  // the global level at Debug. The recorder must retain what the user's
  // sink drops.
  FlightRecorder rec(16);
  MemorySink user;
  FilterSink filtered(&user, Severity::Warn);
  TeeSink tee({&filtered, &rec});
  tee.log(instant(Severity::Debug, "detail"));
  tee.log(instant(Severity::Warn, "trouble"));
  EXPECT_EQ(rec.events_seen(), 2u);
  const auto passed = user.events();
  ASSERT_EQ(passed.size(), 1u);
  EXPECT_EQ(passed[0].name, "trouble");
}

TEST(FlightRecorder, DumpWritesHeaderThenEventsOldestFirst) {
  const std::string path =
      testing::TempDir() + "/flight_recorder_dump.jsonl";
  FlightRecorder rec(3);
  rec.set_dump_path(path);
  for (int i = 0; i < 5; ++i)
    rec.log(instant(Severity::Info, "e" + std::to_string(i)));
  rec.dump("unit_test");
  EXPECT_EQ(rec.dumps_written(), 1u);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 retained events
  const json::Value header = json::Value::parse(lines[0]);
  const json::Value& meta = header.at("flight_recorder");
  EXPECT_EQ(meta.at("reason").as_string(), "unit_test");
  EXPECT_EQ(meta.at("events_seen").as_number(), 5.0);
  EXPECT_EQ(meta.at("retained").as_number(), 3.0);
  EXPECT_EQ(meta.at("capacity").as_number(), 3.0);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(json::Value::parse(lines[1 + i]).at("name").as_string(),
              "e" + std::to_string(2 + i));
}

TEST(FlightRecorder, DumpWithoutPathIsANoop) {
  FlightRecorder rec;
  rec.log(instant(Severity::Info, "x"));
  rec.dump("no_path");  // must not throw or write anything
  EXPECT_EQ(rec.dumps_written(), 0u);
}

TEST(FlightRecorder, DumpToUnwritablePathNeverThrows) {
  FlightRecorder rec;
  rec.set_dump_path("/nonexistent-dir/deeper/fr.jsonl");
  rec.log(instant(Severity::Info, "x"));
  rec.dump("bad_path");  // reported to stderr once, swallowed
  EXPECT_EQ(rec.dumps_written(), 0u);
}

TEST(FlightRecorder, GlobalTriggerDumpsTheInstalledRecorder) {
  const std::string path = testing::TempDir() + "/fr_global.jsonl";
  FlightRecorder rec;
  rec.set_dump_path(path);
  rec.log(instant(Severity::Warn, "before_crash"));
  {
    ScopedFlightRecorder scope(rec);
    EXPECT_EQ(global_flight_recorder(), &rec);
    dump_flight_recorder("trigger_site");
  }
  EXPECT_EQ(global_flight_recorder(), nullptr);
  EXPECT_EQ(rec.dumps_written(), 1u);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json::Value::parse(lines[1]).at("name").as_string(),
            "before_crash");
}

TEST(FlightRecorder, FailedRequirementTriggersADump) {
  const std::string path = testing::TempDir() + "/fr_require.jsonl";
  FlightRecorder rec;
  rec.set_dump_path(path);
  rec.log(instant(Severity::Info, "last_known_good"));
  ScopedFlightRecorder scope(rec);
  EXPECT_THROW(
      { PT_REQUIRE(false, "synthetic failure for the flight recorder"); },
      Error);
  EXPECT_EQ(rec.dumps_written(), 1u);
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 1u);
  const json::Value header = json::Value::parse(lines[0]);
  const std::string reason =
      header.at("flight_recorder").at("reason").as_string();
  EXPECT_NE(reason.find("pt_require"), std::string::npos);
  EXPECT_NE(reason.find("synthetic failure"), std::string::npos);
}

TEST(FlightRecorder, ScopeRestoresThePreviousRecorderAndHook) {
  FlightRecorder outer, inner;
  ScopedFlightRecorder outer_scope(outer);
  {
    ScopedFlightRecorder inner_scope(inner);
    EXPECT_EQ(global_flight_recorder(), &inner);
  }
  EXPECT_EQ(global_flight_recorder(), &outer);
  // The error hook is back on the outer recorder too: a failed
  // requirement must not touch the uninstalled inner one.
  outer.set_dump_path(testing::TempDir() + "/fr_outer.jsonl");
  EXPECT_THROW({ PT_REQUIRE(false, "outer hook check"); }, Error);
  EXPECT_EQ(inner.dumps_written(), 0u);
  EXPECT_EQ(outer.dumps_written(), 1u);
}

TEST(FlightRecorder, RepeatedDumpsOverwriteAtomically) {
  const std::string path = testing::TempDir() + "/fr_repeat.jsonl";
  FlightRecorder rec(4);
  rec.set_dump_path(path);
  rec.log(instant(Severity::Info, "one"));
  rec.dump("first");
  rec.log(instant(Severity::Info, "two"));
  rec.dump("second");
  EXPECT_EQ(rec.dumps_written(), 2u);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // the second dump replaced the first
  EXPECT_EQ(json::Value::parse(lines[0])
                .at("flight_recorder")
                .at("reason")
                .as_string(),
            "second");
}

}  // namespace
}  // namespace portatune::obs
