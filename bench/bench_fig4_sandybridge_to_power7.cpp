// Figure 4: Intel Sandybridge used to speed the search on IBM Power 7 —
// the paper's first demonstration of cross-vendor performance
// portability. Same panel layout as Figure 3.
#include "bench/figures_common.hpp"

int main(int argc, char** argv) {
  portatune::bench::print_figure(
      "Figure 4: Intel Sandybridge -> IBM Power 7", "Sandybridge",
      "Power7", {"ATAX", "LU", "HPL", "RT"},
      /*phi_experiment=*/false, portatune::bench::bench_threads(argc, argv));
  return 0;
}
