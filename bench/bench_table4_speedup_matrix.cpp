// Table IV: search-time and performance speedups of the biased model
// variant (RS_b) for every (problem, source, target) combination under
// the GNU compiler. Sources: Westmere, Sandybridge, Power 7. Targets add
// the ARM X-Gene. As in the paper, MM and COR rows have no X-Gene data
// (run/compile times were prohibitive there) and the diagonal is empty.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

using namespace portatune;

int main() {
  const std::vector<std::string> sources = {"Westmere", "Sandybridge",
                                            "Power7"};
  const std::vector<std::string> targets = {"Westmere", "Sandybridge",
                                            "Power7", "X-Gene"};
  const std::vector<std::string> problems = {"MM",  "ATAX", "LU",
                                             "COR", "HPL",  "RT"};

  std::printf("Table IV: Prf.Imp / Srh.Imp of the biased model variant "
              "(RS_b); '*' marks success\n"
              "(paper protocol: nmax=100, N=10000, GNU compiler, single "
              "run with common random numbers)\n\n");

  TextTable t({"Problem", "Target", "src Westmere", "src Sandybridge",
               "src Power7"});
  for (const auto& problem : problems) {
    for (const auto& target : targets) {
      // Paper Table IV leaves MM and COR unmeasured on X-Gene.
      const bool unavailable =
          target == "X-Gene" && (problem == "MM" || problem == "COR");
      std::vector<std::string> row{problem, target};
      for (const auto& source : sources) {
        if (source == target || unavailable) {
          row.push_back("-");
          continue;
        }
        const auto r = bench::run_cell(problem, source, target);
        row.push_back(bench::speedup_cell(r.biased_speedup));
      }
      t.add_row(row);
    }
  }
  t.print(std::cout);
  return 0;
}
