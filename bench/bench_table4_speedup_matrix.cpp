// Table IV: search-time and performance speedups of the biased model
// variant (RS_b) for every (problem, source, target) combination under
// the GNU compiler. Sources: Westmere, Sandybridge, Power 7. Targets add
// the ARM X-Gene. As in the paper, MM and COR rows have no X-Gene data
// (run/compile times were prohibitive there) and the diagonal is empty.
//
// Usage: bench_table4_speedup_matrix [threads] [bench.json]
// Cells are independent experiments; [threads] fans them out (0 = all
// hardware threads). The table is identical at any thread count. With a
// second argument, wall-clock timings are written in google-benchmark
// JSON shape for `portatune_report --compare-bench` regression gating.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "support/timer.hpp"

using namespace portatune;

int main(int argc, char** argv) {
  const std::size_t threads = bench::bench_threads(argc, argv);
  const std::vector<std::string> sources = {"Westmere", "Sandybridge",
                                            "Power7"};
  const std::vector<std::string> targets = {"Westmere", "Sandybridge",
                                            "Power7", "X-Gene"};
  const std::vector<std::string> problems = {"MM",  "ATAX", "LU",
                                             "COR", "HPL",  "RT"};

  std::printf("Table IV: Prf.Imp / Srh.Imp of the biased model variant "
              "(RS_b); '*' marks success\n"
              "(paper protocol: nmax=100, N=10000, GNU compiler, single "
              "run with common random numbers)\n\n");

  // Pass 1: enumerate the populated cells as jobs (paper Table IV leaves
  // MM and COR unmeasured on X-Gene, and the diagonal empty).
  const auto populated = [&](const std::string& problem,
                             const std::string& source,
                             const std::string& target) {
    if (source == target) return false;
    return !(target == "X-Gene" && (problem == "MM" || problem == "COR"));
  };
  std::vector<tuner::ExperimentJob> jobs;
  for (const auto& problem : problems)
    for (const auto& target : targets)
      for (const auto& source : sources)
        if (populated(problem, source, target))
          jobs.push_back(bench::cell_job(problem, source, target));

  WallTimer timer;
  const auto results = tuner::run_transfer_experiments(jobs, threads);
  const double wall = timer.seconds();
  if (argc > 2) {
    bench::write_bench_json(
        argv[2],
        {{"table4/total_wall", wall},
         {"table4/per_cell_wall", wall / static_cast<double>(jobs.size())}});
  }

  // Pass 2: walk the grid in the same order, consuming results in turn.
  TextTable t({"Problem", "Target", "src Westmere", "src Sandybridge",
               "src Power7"});
  std::size_t next = 0;
  for (const auto& problem : problems) {
    for (const auto& target : targets) {
      std::vector<std::string> row{problem, target};
      for (const auto& source : sources) {
        if (!populated(problem, source, target)) {
          row.push_back("-");
          continue;
        }
        row.push_back(bench::speedup_cell(results[next++].biased_speedup));
      }
      t.add_row(row);
    }
  }
  t.print(std::cout);
  return 0;
}
