// Figure 2: the decision tree obtained from matrix-multiplication data on
// Intel Sandybridge. The paper shows if-else rules over the unroll (U_*)
// and register-tiling (RT_*) parameters with leaf mean run times. We fit
// the surrogate exactly as the transfer pipeline does (RS data, random
// forest) and render the first tree, plus the forest's permutation
// feature importances.
#include <cstdio>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "ml/forest.hpp"
#include "tuner/random_search.hpp"

using namespace portatune;

int main() {
  const auto mm = kernels::make_mm();
  kernels::SimulatedKernelEvaluator sb(mm, sim::make_sandybridge());

  tuner::RandomSearchOptions rs_opt;
  rs_opt.max_evals = 100;
  rs_opt.seed = 20160401;
  const auto trace = tuner::random_search(sb, rs_opt);
  const auto data = trace.to_dataset(mm->space());

  // A shallow display tree (as in the figure)...
  ml::TreeParams shallow;
  shallow.max_depth = 4;
  shallow.min_samples_leaf = 5;
  ml::RegressionTree display_tree(shallow);
  display_tree.fit(data);
  std::printf(
      "Figure 2: decision tree from MM data on Sandybridge (run times in "
      "seconds)\n\n%s\n",
      display_tree.to_text(mm->space().names()).c_str());

  // ...and the full forest the searches actually use.
  ml::ForestParams fp;
  fp.seed = rs_opt.seed;
  ml::RandomForest forest(fp);
  forest.fit(data);
  std::printf("forest: %zu trees, OOB RMSE %.4f s\n", forest.num_trees(),
              forest.oob_rmse());
  std::printf("\npermutation feature importances:\n");
  const auto imp = forest.feature_importances();
  const auto names = mm->space().names();
  for (std::size_t i = 0; i < imp.size(); ++i)
    std::printf("  %-6s %.3f\n", names[i].c_str(), imp[i]);

  std::printf("\nDOT rendering of the display tree (head):\n%.400s...\n",
              display_tree.to_dot(names).c_str());
  return 0;
}
