// Extension addressing the paper's concluding open question: can machine
// dissimilarity be quantified cheaply enough to predict whether transfer
// will pay off? For every (problem, source, target) cell of Table IV, a
// 30-probe similarity measurement is taken *before* any surrogate is
// fitted; the advisor's go / no-go call is then compared against the
// realized RS_b outcome.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "tuner/similarity.hpp"

using namespace portatune;

int main() {
  const std::vector<std::string> problems = {"MM", "ATAX", "LU", "COR"};
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Westmere", "Sandybridge"}, {"Sandybridge", "Westmere"},
      {"Sandybridge", "Power7"},   {"Power7", "Sandybridge"},
      {"Sandybridge", "X-Gene"},   {"Westmere", "X-Gene"},
  };

  std::printf("Extension: probe-based transfer advisor vs realized RS_b "
              "outcome (30 probes per cell)\n\n");
  TextTable t({"Problem", "pair", "probe rho_s", "top20", "advice",
               "realized RS_b", "advice correct?"});
  int correct = 0, total = 0;
  for (const auto& problem : problems) {
    for (const auto& [src, dst] : pairs) {
      auto a = bench::paper_evaluator(problem, src);
      auto b = bench::paper_evaluator(problem, dst);
      const auto report = tuner::measure_similarity(*a, *b);
      const auto advice = tuner::advise(report);

      const auto r = bench::run_cell(problem, src, dst);
      const bool realized = r.biased_speedup.successful();
      const bool predicted_go =
          advice != tuner::TransferAdvice::DoNotTransfer;
      const bool agree = (predicted_go == realized);
      correct += agree;
      ++total;
      t.add_row({problem, src + "->" + dst,
                 TextTable::num(report.spearman, 2),
                 TextTable::num(report.top_overlap, 2),
                 to_string(advice),
                 bench::speedup_cell(r.biased_speedup),
                 agree ? "yes" : "no"});
    }
  }
  t.print(std::cout);
  std::printf("\nadvisor agreement with realized outcome: %d / %d "
              "(%.0f%%)\n",
              correct, total, 100.0 * correct / total);
  return 0;
}
