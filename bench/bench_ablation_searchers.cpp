// Ablation A4 (the paper's Sec. VII future work): does the cross-machine
// surrogate help search algorithms beyond random search? Each algorithm
// runs cold and warm-started (initial points taken from the surrogate's
// best predictions) on LU, transferring Westmere -> Sandybridge.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "tuner/adaptive.hpp"
#include "tuner/heuristics.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

using namespace portatune;

int main() {
  const auto lu = kernels::make_lu();
  const auto settings = bench::paper_settings();

  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  const auto source = tuner::run_reference_rs(wm, settings);
  ml::ForestParams fp = settings.forest;
  fp.seed = settings.seed;
  const auto model = tuner::fit_surrogate(source, lu->space(), fp);

  std::printf("Ablation A4: surrogate warm-starts beyond RS "
              "(LU, Westmere -> Sandybridge, 100-eval budget)\n\n");
  TextTable t({"algorithm", "cold best (s)", "cold t-to-best (s)",
               "warm best (s)", "warm t-to-best (s)"});

  const auto row = [&](const char* name, auto&& runner) {
    kernels::SimulatedKernelEvaluator cold_eval(lu, sim::make_sandybridge());
    const auto cold = runner(cold_eval, nullptr);
    kernels::SimulatedKernelEvaluator warm_eval(lu, sim::make_sandybridge());
    const auto warm = runner(warm_eval, model.get());
    t.add_row({name, TextTable::num(cold.best_seconds()),
               TextTable::num(cold.time_to_best(), 1),
               TextTable::num(warm.best_seconds()),
               TextTable::num(warm.time_to_best(), 1)});
  };

  row("genetic", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::GeneticOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::genetic_search(e, opt);
  });
  row("annealing", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::AnnealingOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::annealing_search(e, opt);
  });
  row("pattern", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::PatternSearchOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::pattern_search(e, opt);
  });
  row("ensemble", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::EnsembleOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::ensemble_search(e, opt);
  });
  row("nelder-mead", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::NelderMeadOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::nelder_mead_search(e, opt);
  });
  row("orthogonal", [&](tuner::Evaluator& e, const ml::Regressor* m) {
    tuner::OrthogonalSearchOptions opt;
    opt.max_evals = settings.nmax;
    opt.seed = settings.seed;
    opt.surrogate = m;
    return tuner::orthogonal_search(e, opt);
  });

  // The adaptive-refit variant ("warm" column uses the source data, the
  // "cold" column runs the same machinery with no source trace).
  {
    tuner::AdaptiveSearchOptions opt;
    opt.max_evals = settings.nmax;
    opt.pool_size = settings.pool_size;
    opt.seed = settings.seed;
    opt.forest = fp;
    kernels::SimulatedKernelEvaluator cold_eval(lu, sim::make_sandybridge());
    const auto cold = tuner::adaptive_biased_search(
        cold_eval, tuner::SearchTrace{}, opt);
    kernels::SimulatedKernelEvaluator warm_eval(lu, sim::make_sandybridge());
    const auto warm = tuner::adaptive_biased_search(warm_eval, source, opt);
    t.add_row({"adaptive RS_b", TextTable::num(cold.best_seconds()),
               TextTable::num(cold.time_to_best(), 1),
               TextTable::num(warm.best_seconds()),
               TextTable::num(warm.time_to_best(), 1)});
  }

  t.print(std::cout);
  return 0;
}
