// Reproduces the setup tables of Sec. IV:
//   Table I   — Orio transformations and ranges,
//   Table II  — machine specifications,
//   Table III — SPAPT problems (parameter counts, search-space sizes,
//               input sizes), computed from our implementations with the
//               paper's values alongside.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/spapt.hpp"
#include "sim/machine.hpp"

using namespace portatune;

namespace {

void table1() {
  TextTable t({"Transformation", "Description", "Range"});
  t.add_row({"Loop unrolling", "data reuse", "1, ..., 31, 32"});
  t.add_row({"Cache tiling", "cache hits", "2^0, ..., 2^10, 2^11"});
  t.add_row({"Register tiling", "cache to register loads",
             "2^0, ..., 2^4, 2^5"});
  t.print(std::cout, "Table I: Orio transformations considered");
}

void table2() {
  TextTable t({"Name", "Processor", "Cores", "Clock (GHz)", "L1 (KB)",
               "L2 (KB)", "L3 (MB)", "Compiler default"});
  for (const auto& m : sim::table2_machines()) {
    const auto kb = [](std::int64_t b) {
      return std::to_string(b / 1024);
    };
    std::string l3 = "-";
    if (m.caches.size() > 2) {
      l3 = std::to_string(m.caches[2].size_bytes / (1024 * 1024));
      l3 += m.caches[2].shared ? " (shared)" : " (per core)";
    }
    t.add_row({m.name, m.processor, std::to_string(m.cores),
               TextTable::num(m.clock_ghz, 2), kb(m.caches[0].size_bytes),
               kb(m.caches[1].size_bytes), l3, to_string(m.compiler)});
  }
  t.print(std::cout, "\nTable II: architecture set considered");
}

void table3() {
  // Paper values for comparison (Table III).
  struct PaperRow {
    const char* kernel;
    int ni;
    double space;
    const char* input;
  };
  const PaperRow paper[] = {{"MM", 12, 8.58e10, "2000x2000"},
                            {"ATAX", 13, 2.57e12, "10000"},
                            {"COR", 12, 8.57e10, "2000x2000"},
                            {"LU", 9, 5.83e8, "2000x2000"}};
  TextTable t({"Kernel", "ni (ours)", "ni (paper)", "|D| (ours)",
               "|D| (paper)", "Input size"});
  for (const auto& row : paper) {
    const auto prob = kernels::spapt_by_name(row.kernel);
    char ours[32], theirs[32];
    std::snprintf(ours, sizeof(ours), "%.2e", prob->space().cardinality());
    std::snprintf(theirs, sizeof(theirs), "%.2e", row.space);
    t.add_row({row.kernel, std::to_string(prob->space().num_params()),
               std::to_string(row.ni), ours, theirs, row.input});
  }
  t.print(std::cout, "\nTable III: collection of test kernels considered");
  std::printf(
      "note: |D| (ours) differs from the paper's SPAPT instances because\n"
      "the exact SPAPT constraint lists are not published; parameter\n"
      "counts, value ranges (Table I) and input sizes match.\n");
}

}  // namespace

int main() {
  table1();
  table2();
  table3();
  return 0;
}
