// Ablation A3: surrogate family. The paper argues (via its earlier
// performance-modeling studies) that recursive partitioning suits
// autotuning landscapes; here RS_b runs with a random forest, a single
// CART tree, kNN and a ridge linear model as the surrogate, on two
// kernels and two transfer pairs.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/tree.hpp"
#include "tuner/random_search.hpp"

using namespace portatune;

namespace {

std::vector<std::pair<std::string, ml::RegressorPtr>> surrogates(
    std::uint64_t seed) {
  std::vector<std::pair<std::string, ml::RegressorPtr>> out;
  ml::ForestParams fp;
  fp.seed = seed;
  out.emplace_back("random forest", std::make_unique<ml::RandomForest>(fp));
  ml::TreeParams tp;
  tp.seed = seed;
  tp.min_samples_leaf = 3;
  out.emplace_back("single tree", std::make_unique<ml::RegressionTree>(tp));
  out.emplace_back("kNN (k=5)", std::make_unique<ml::KnnRegressor>());
  out.emplace_back("ridge linear",
                   std::make_unique<ml::LinearRegressor>());
  return out;
}

}  // namespace

int main() {
  const auto settings = bench::paper_settings();
  std::printf("Ablation A3: surrogate family under RS_b "
              "(Prf.Imp / Srh.Imp vs RS)\n\n");
  TextTable t({"problem", "pair", "surrogate", "best (s)", "Prf.Imp",
               "Srh.Imp"});
  const std::pair<std::string, std::string> pairs[] = {
      {"Westmere", "Sandybridge"}, {"Sandybridge", "Power7"}};
  for (const auto& problem : {std::string("LU"), std::string("MM")}) {
    const auto prob = kernels::spapt_by_name(problem);
    for (const auto& [src, dst] : pairs) {
      kernels::SimulatedKernelEvaluator source_eval(
          prob, sim::machine_by_name(src));
      const auto source = tuner::run_reference_rs(source_eval, settings);
      kernels::SimulatedKernelEvaluator rs_eval(prob,
                                                sim::machine_by_name(dst));
      std::vector<tuner::ParamConfig> order;
      for (const auto& e : source.entries()) order.push_back(e.config);
      const auto rs = tuner::replay_search(rs_eval, order, settings.nmax);
      const auto data = source.to_dataset(prob->space());

      for (auto& [name, model] : surrogates(settings.seed)) {
        model->fit(data);
        kernels::SimulatedKernelEvaluator target(
            prob, sim::machine_by_name(dst));
        tuner::BiasedSearchOptions opt;
        opt.max_evals = settings.nmax;
        opt.pool_size = settings.pool_size;
        opt.seed = settings.seed;
        const auto trace = tuner::biased_random_search(target, *model, opt);
        const auto s = tuner::compare_to_rs(rs, trace);
        t.add_row({problem, src + "->" + dst, name,
                   TextTable::num(trace.best_seconds()),
                   TextTable::num(s.performance, 2),
                   TextTable::num(s.search, 2)});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
