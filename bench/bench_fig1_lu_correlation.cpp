// Figure 1: run times of 200 LU-decomposition code variants on Intel
// Westmere (E5645) and Sandybridge (E5-2687W). The paper reports Pearson
// and Spearman correlations both > 0.8. We print the scatter series and
// the coefficients, plus the full 5x5 machine correlation matrix as an
// extension.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "support/correlation.hpp"
#include "tuner/sampler.hpp"

using namespace portatune;

int main() {
  const auto lu = kernels::make_lu();
  const auto machines = sim::table2_machines();
  std::vector<kernels::SimulatedKernelEvaluator> evals;
  evals.reserve(machines.size());
  for (const auto& m : machines) evals.emplace_back(lu, m);

  // 200 feasible configurations, shared across machines (Fig. 1 setup).
  tuner::ConfigStream stream(lu->space(), 20160401);
  std::vector<std::vector<double>> times(machines.size());
  std::size_t configs = 0;
  while (configs < 200) {
    auto c = stream.next();
    if (!c) break;
    if (!lu->feasible(*c)) continue;
    for (std::size_t m = 0; m < evals.size(); ++m)
      times[m].push_back(evals[m].evaluate(*c).seconds);
    ++configs;
  }
  std::printf("Figure 1: %zu LU variants evaluated on all machines\n\n",
              configs);

  // The scatter the figure plots (first 20 rows shown; full data as CSV).
  TextTable scatter({"variant", "Westmere (s)", "Sandybridge (s)"});
  for (std::size_t i = 0; i < 20; ++i)
    scatter.add_row({std::to_string(i), TextTable::num(times[1][i]),
                     TextTable::num(times[0][i])});
  scatter.print(std::cout, "Run times (first 20 of 200 variants)");

  const double rp = pearson(times[1], times[0]);
  const double rs = spearman(times[1], times[0]);
  std::printf("\nWestmere vs Sandybridge: pearson %.3f spearman %.3f\n",
              rp, rs);
  std::printf("paper: rho_p and rho_s both > 0.8 -> %s\n\n",
              (rp > 0.8 && rs > 0.8) ? "REPRODUCED" : "NOT reproduced");

  TextTable matrix({"pearson \\ spearman", machines[0].name,
                    machines[1].name, machines[2].name, machines[3].name,
                    machines[4].name});
  for (std::size_t a = 0; a < machines.size(); ++a) {
    std::vector<std::string> row{machines[a].name};
    for (std::size_t b = 0; b < machines.size(); ++b) {
      const double v = a == b        ? 1.0
                       : a < b       ? pearson(times[a], times[b])
                                     : spearman(times[a], times[b]);
      row.push_back(TextTable::num(v, 2));
    }
    matrix.add_row(row);
  }
  matrix.print(std::cout,
               "Extension: all-pairs correlations (upper = pearson, "
               "lower = spearman)");
  return 0;
}
