// Ablation A5 (paper Sec. VII future work): does the transfer generalize
//   (a) across *input sizes* — fit the surrogate on LU at n=2000 on the
//       source machine, tune LU at a different n on the target machine;
//   (b) across *multiple sources* — pool T_a from two machines before
//       fitting (a crude multi-machine prior).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

using namespace portatune;

namespace {

tuner::SearchTrace reference_rs(kernels::SpaptProblemPtr prob,
                                const sim::MachineDescriptor& m,
                                const tuner::ExperimentSettings& s) {
  kernels::SimulatedKernelEvaluator eval(prob, m);
  return tuner::run_reference_rs(eval, s);
}

}  // namespace

int main() {
  const auto settings = bench::paper_settings();

  std::printf("Ablation A5a: input-size generalization (LU, Westmere "
              "n=2000 data -> Sandybridge at other sizes)\n\n");
  {
    const auto lu2000 = kernels::make_lu(2000);
    const auto source =
        reference_rs(lu2000, sim::make_westmere(), settings);
    ml::ForestParams fp = settings.forest;
    fp.seed = settings.seed;
    const auto model = tuner::fit_surrogate(source, lu2000->space(), fp);

    TextTable t({"target n", "Prf.Imp", "Srh.Imp", "successful"});
    for (const std::int64_t n : {500, 1000, 2000, 4000}) {
      const auto lu_n = kernels::make_lu(n);
      kernels::SimulatedKernelEvaluator rs_eval(lu_n,
                                                sim::make_sandybridge());
      const auto rs = tuner::run_reference_rs(rs_eval, settings);

      kernels::SimulatedKernelEvaluator target(lu_n,
                                               sim::make_sandybridge());
      tuner::BiasedSearchOptions opt;
      opt.max_evals = settings.nmax;
      opt.pool_size = settings.pool_size;
      opt.seed = settings.seed;
      const auto biased =
          tuner::biased_random_search(target, *model, opt);
      const auto s = tuner::compare_to_rs(rs, biased);
      t.add_row({std::to_string(n), TextTable::num(s.performance, 2),
                 TextTable::num(s.search, 2),
                 s.successful() ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  std::printf("\nAblation A5b: pooled multi-source surrogate "
              "(LU -> Power7)\n\n");
  {
    const auto lu = kernels::make_lu();
    const auto wm = reference_rs(lu, sim::make_westmere(), settings);
    auto sb_settings = settings;
    sb_settings.seed = settings.seed + 1;  // independent draw on SB
    const auto sb = reference_rs(lu, sim::make_sandybridge(), sb_settings);

    kernels::SimulatedKernelEvaluator rs_eval(lu, sim::make_power7());
    const auto rs = tuner::run_reference_rs(rs_eval, settings);

    const auto run_with = [&](const ml::Dataset& data, const char* label,
                              TextTable& t) {
      ml::ForestParams fp = settings.forest;
      fp.seed = settings.seed;
      ml::RandomForest model(fp);
      model.fit(data);
      kernels::SimulatedKernelEvaluator target(lu, sim::make_power7());
      tuner::BiasedSearchOptions opt;
      opt.max_evals = settings.nmax;
      opt.pool_size = settings.pool_size;
      opt.seed = settings.seed;
      const auto biased = tuner::biased_random_search(target, model, opt);
      const auto s = tuner::compare_to_rs(rs, biased);
      t.add_row({label, std::to_string(data.num_rows()),
                 TextTable::num(s.performance, 2),
                 TextTable::num(s.search, 2)});
    };

    TextTable t({"source data", "rows", "Prf.Imp", "Srh.Imp"});
    const auto wm_data = wm.to_dataset(lu->space());
    const auto sb_data = sb.to_dataset(lu->space());
    ml::Dataset pooled = wm_data;
    for (std::size_t i = 0; i < sb_data.num_rows(); ++i)
      pooled.add_row(sb_data.row(i), sb_data.target(i));
    run_with(wm_data, "Westmere only", t);
    run_with(sb_data, "Sandybridge only", t);
    run_with(pooled, "pooled (both)", t);
    t.print(std::cout);
  }
  return 0;
}
