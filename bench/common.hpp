// Shared helpers for the reproduction benches: every bench binary prints
// the rows/series of one paper table or figure (see DESIGN.md's
// per-experiment index). Output is aligned text plus optional CSV blocks.
#pragma once

#include <cstdio>
#include <string>

#include "apps/registry.hpp"
#include "support/table.hpp"
#include "tuner/experiment.hpp"

namespace portatune::bench {

/// Thread counts used in the Xeon Phi experiments (Sec. V): 8 on the
/// Xeon hosts, 60 on the Phi; 1 elsewhere (serial Orio runs).
inline int paper_threads(const std::string& machine, bool phi_experiment) {
  if (!phi_experiment) return 1;
  return machine == "XeonPhi" ? 60 : 8;
}

inline tuner::EvaluatorPtr paper_evaluator(const std::string& problem,
                                           const std::string& machine,
                                           bool phi_experiment = false) {
  const auto compiler =
      phi_experiment ? sim::Compiler::Intel : sim::Compiler::Gnu;
  return apps::make_simulated_evaluator(
      problem, machine, compiler, paper_threads(machine, phi_experiment));
}

inline tuner::ExperimentSettings paper_settings() {
  tuner::ExperimentSettings s;  // nmax=100, N=10000, delta=20%
  s.seed = 20160401;
  return s;
}

/// Run the full Sec. IV-D protocol for one (problem, source, target) cell.
inline tuner::TransferExperimentResult run_cell(const std::string& problem,
                                                const std::string& source,
                                                const std::string& target,
                                                bool phi_experiment = false) {
  auto a = paper_evaluator(problem, source, phi_experiment);
  auto b = paper_evaluator(problem, target, phi_experiment);
  return tuner::run_transfer_experiment(*a, *b, paper_settings());
}

/// Print a best-so-far curve as "(elapsed, best)" improvement points.
inline void print_curve(const char* label, const tuner::SearchTrace& trace) {
  std::printf("  %-6s", label);
  double last = -1.0;
  int shown = 0;
  for (const auto& [elapsed, best] : trace.best_curve()) {
    if (best == last) continue;
    std::printf(" (%.1fs, %.3fs)", elapsed, best);
    last = best;
    if (++shown >= 8) break;  // keep lines readable
  }
  std::printf("  [final best %.3fs at %.1fs]\n", trace.best_seconds(),
              trace.time_to_best());
}

/// Speedup cell rendering matching the paper's Table IV typography:
/// "Prf.Imp Srh.Imp", bold-equivalent marker '*' for successful variants.
inline std::string speedup_cell(const tuner::Speedups& s) {
  std::string out = TextTable::num(s.performance, 2) + " / " +
                    TextTable::num(s.search, 2);
  if (s.successful()) out += " *";
  return out;
}

}  // namespace portatune::bench
