// Shared helpers for the reproduction benches: every bench binary prints
// the rows/series of one paper table or figure (see DESIGN.md's
// per-experiment index). Output is aligned text plus optional CSV blocks.
//
// Parallelism: every cell of a table/figure is an independent transfer
// experiment, so the matrix drivers accept a thread count (first CLI
// argument, default 1) and fan cells out via run_transfer_experiments.
// All searches are seed-deterministic, so the printed numbers are
// identical at any thread count — only the wall time changes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/evaluator_factory.hpp"
#include "apps/registry.hpp"
#include "support/table.hpp"
#include "tuner/experiment.hpp"

namespace portatune::bench {

/// Thread counts used in the Xeon Phi experiments (Sec. V): 8 on the
/// Xeon hosts, 60 on the Phi; 1 elsewhere (serial Orio runs).
inline int paper_threads(const std::string& machine, bool phi_experiment) {
  if (!phi_experiment) return 1;
  return machine == "XeonPhi" ? 60 : 8;
}

/// Stack description for one paper evaluator; the benches add layers
/// (faults, observation, parallel fan-out) on top of this as needed.
inline apps::EvaluatorStackOptions paper_stack_options(
    const std::string& problem, const std::string& machine,
    bool phi_experiment = false, std::size_t eval_threads = 1) {
  apps::EvaluatorStackOptions o;
  o.problem = problem;
  o.machine = machine;
  o.compiler = phi_experiment ? sim::Compiler::Intel : sim::Compiler::Gnu;
  o.kernel_threads = paper_threads(machine, phi_experiment);
  o.eval_threads = eval_threads;
  return o;
}

inline tuner::EvaluatorPtr paper_evaluator(const std::string& problem,
                                           const std::string& machine,
                                           bool phi_experiment = false,
                                           std::size_t eval_threads = 1) {
  return apps::make_evaluator_stack(
      paper_stack_options(problem, machine, phi_experiment, eval_threads));
}

inline tuner::ExperimentSettings paper_settings() {
  tuner::ExperimentSettings s;  // nmax=100, N=10000, delta=20%
  s.seed = 20160401;
  return s;
}

/// One (problem, source, target) cell as a deferred job for
/// run_transfer_experiments: evaluators are built lazily on the worker
/// that runs the cell.
inline tuner::ExperimentJob cell_job(const std::string& problem,
                                     const std::string& source,
                                     const std::string& target,
                                     bool phi_experiment = false,
                                     std::size_t eval_threads = 1) {
  tuner::ExperimentJob job;
  job.label = problem + " " + source + "->" + target;
  job.settings = paper_settings();
  job.make_source = [=] {
    return paper_evaluator(problem, source, phi_experiment, eval_threads);
  };
  job.make_target = [=] {
    return paper_evaluator(problem, target, phi_experiment, eval_threads);
  };
  return job;
}

/// Run the full Sec. IV-D protocol for one (problem, source, target) cell.
inline tuner::TransferExperimentResult run_cell(const std::string& problem,
                                                const std::string& source,
                                                const std::string& target,
                                                bool phi_experiment = false,
                                                std::size_t eval_threads = 1) {
  auto a = paper_evaluator(problem, source, phi_experiment, eval_threads);
  auto b = paper_evaluator(problem, target, phi_experiment, eval_threads);
  return tuner::run_transfer_experiment(*a, *b, paper_settings());
}

/// Worker threads for a bench binary: first CLI argument, "0" meaning all
/// hardware threads; default 1 (the serial paper protocol).
inline std::size_t bench_threads(int argc, char** argv) {
  return argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 1;
}

/// Print a best-so-far curve as "(elapsed, best)" improvement points.
inline void print_curve(const char* label, const tuner::SearchTrace& trace) {
  std::printf("  %-6s", label);
  double last = -1.0;
  int shown = 0;
  for (const auto& [elapsed, best] : trace.best_curve()) {
    if (best == last) continue;
    std::printf(" (%.1fs, %.3fs)", elapsed, best);
    last = best;
    if (++shown >= 8) break;  // keep lines readable
  }
  std::printf("  [final best %.3fs at %.1fs]\n", trace.best_seconds(),
              trace.time_to_best());
}

/// One timing for write_bench_json.
struct BenchRecord {
  std::string name;
  double real_time = 0.0;
  std::string time_unit = "s";
};

/// Write timings in google-benchmark's --benchmark_out JSON shape, so
/// `portatune_report --compare-bench` gates every driver the same way
/// whether the numbers came from google-benchmark or a table driver.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"context\":{},\"benchmarks\":[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "{\"name\":\"%s\",\"run_type\":\"iteration\","
                 "\"iterations\":1,\"real_time\":%.9g,\"cpu_time\":%.9g,"
                 "\"time_unit\":\"%s\"}%s\n",
                 r.name.c_str(), r.real_time, r.real_time,
                 r.time_unit.c_str(), i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %zu benchmark records to %s\n", records.size(),
              path.c_str());
}

/// Speedup cell rendering matching the paper's Table IV typography:
/// "Prf.Imp Srh.Imp", bold-equivalent marker '*' for successful variants.
inline std::string speedup_cell(const tuner::Speedups& s) {
  std::string out = TextTable::num(s.performance, 2) + " / " +
                    TextTable::num(s.search, 2);
  if (s.successful()) out += " *";
  return out;
}

}  // namespace portatune::bench
