// Table V: speedups of the biased model variant for the Xeon Phi
// experiments — MM, LU and COR under the Intel compiler with OpenMP
// (8 threads on Westmere/Sandybridge, 60 on the Phi), across all
// source/target combinations of the three machines.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

using namespace portatune;

int main() {
  const std::vector<std::string> machines = {"Westmere", "Sandybridge",
                                             "XeonPhi"};
  const std::vector<std::string> problems = {"MM", "LU", "COR"};

  std::printf("Table V: Prf.Imp / Srh.Imp of RS_b for the Xeon Phi "
              "experiments (Intel compiler, OpenMP)\n\n");

  TextTable t({"Problem", "Target", "src Westmere", "src Sandybridge",
               "src XeonPhi"});
  for (const auto& problem : problems) {
    for (const auto& target : machines) {
      std::vector<std::string> row{problem, target};
      for (const auto& source : machines) {
        if (source == target) {
          row.push_back("-");
          continue;
        }
        const auto r = bench::run_cell(problem, source, target,
                                       /*phi_experiment=*/true);
        row.push_back(bench::speedup_cell(r.biased_speedup));
      }
      t.add_row(row);
    }
  }
  t.print(std::cout);
  return 0;
}
