// Table V: speedups of the biased model variant for the Xeon Phi
// experiments — MM, LU and COR under the Intel compiler with OpenMP
// (8 threads on Westmere/Sandybridge, 60 on the Phi), across all
// source/target combinations of the three machines.
//
// Usage: bench_table5_xeonphi_matrix [threads] [bench.json]
// Cells are independent experiments; [threads] fans them out (0 = all
// hardware threads). The table is identical at any thread count. With a
// second argument, wall-clock timings are written in google-benchmark
// JSON shape for `portatune_report --compare-bench` regression gating.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "support/timer.hpp"

using namespace portatune;

int main(int argc, char** argv) {
  const std::size_t threads = bench::bench_threads(argc, argv);
  const std::vector<std::string> machines = {"Westmere", "Sandybridge",
                                             "XeonPhi"};
  const std::vector<std::string> problems = {"MM", "LU", "COR"};

  std::printf("Table V: Prf.Imp / Srh.Imp of RS_b for the Xeon Phi "
              "experiments (Intel compiler, OpenMP)\n\n");

  std::vector<tuner::ExperimentJob> jobs;
  for (const auto& problem : problems)
    for (const auto& target : machines)
      for (const auto& source : machines)
        if (source != target)
          jobs.push_back(bench::cell_job(problem, source, target,
                                         /*phi_experiment=*/true));

  WallTimer timer;
  const auto results = tuner::run_transfer_experiments(jobs, threads);
  const double wall = timer.seconds();
  if (argc > 2) {
    bench::write_bench_json(
        argv[2],
        {{"table5/total_wall", wall},
         {"table5/per_cell_wall", wall / static_cast<double>(jobs.size())}});
  }

  TextTable t({"Problem", "Target", "src Westmere", "src Sandybridge",
               "src XeonPhi"});
  std::size_t next = 0;
  for (const auto& problem : problems) {
    for (const auto& target : machines) {
      std::vector<std::string> row{problem, target};
      for (const auto& source : machines) {
        if (source == target) {
          row.push_back("-");
          continue;
        }
        row.push_back(bench::speedup_cell(results[next++].biased_speedup));
      }
      t.add_row(row);
    }
  }
  t.print(std::cout);
  return 0;
}
