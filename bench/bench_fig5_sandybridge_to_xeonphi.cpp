// Figure 5: Intel Sandybridge used to speed the search on the Xeon Phi,
// with the Intel compiler and OpenMP threading (8 threads on the Xeons,
// 60 on the Phi), for MM, LU and COR. The MM panel reproduces the
// paper's observation that the untransformed source is the best variant
// on the Phi (icc performs the transformations itself).
#include <cstdio>

#include "bench/figures_common.hpp"

int main(int argc, char** argv) {
  using namespace portatune;
  bench::print_figure("Figure 5: Intel Sandybridge -> Intel Xeon Phi "
                      "(Intel compiler, OpenMP)",
                      "Sandybridge", "XeonPhi", {"MM", "LU", "COR"},
                      /*phi_experiment=*/true,
                      bench::bench_threads(argc, argv));

  // The MM "default is best" check, stated explicitly.
  auto phi = bench::paper_evaluator("MM", "XeonPhi", true);
  const double def =
      phi->evaluate(phi->space().default_config()).seconds;
  auto rs = tuner::run_reference_rs(*phi, bench::paper_settings());
  std::printf("\nMM on Xeon Phi: default (untransformed) %.3f s vs best "
              "of 100 random variants %.3f s -> default %s\n",
              def, rs.best_seconds(),
              def <= rs.best_seconds() ? "IS best (as in the paper)"
                                       : "is NOT best");
  return 0;
}
