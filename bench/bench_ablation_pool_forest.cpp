// Ablation A2: candidate-pool size N and forest size for RS_b. The paper
// fixes N = 10000 ("can be any large arbitrary value") and uses a stock
// random forest; this sweep shows how both knobs shape the transfer.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "support/timer.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

using namespace portatune;

int main() {
  const auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  const auto settings = bench::paper_settings();
  const auto source = tuner::run_reference_rs(wm, settings);

  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  std::vector<tuner::ParamConfig> order;
  for (const auto& e : source.entries()) order.push_back(e.config);
  const auto rs = tuner::replay_search(sb, order, settings.nmax);

  std::printf("Ablation A2a: RS_b pool size N (LU, Westmere -> "
              "Sandybridge; paper uses N = 10000, 64-tree forest)\n\n");
  {
    ml::ForestParams fp = settings.forest;
    fp.seed = settings.seed;
    const auto model = tuner::fit_surrogate(source, lu->space(), fp);
    TextTable t({"N", "best (s)", "Prf.Imp", "Srh.Imp"});
    for (const std::size_t pool : {100u, 1000u, 10000u, 50000u}) {
      kernels::SimulatedKernelEvaluator target(lu, sim::make_sandybridge());
      tuner::BiasedSearchOptions opt;
      opt.max_evals = settings.nmax;
      opt.pool_size = pool;
      opt.seed = settings.seed;
      const auto trace = tuner::biased_random_search(target, *model, opt);
      const auto s = tuner::compare_to_rs(rs, trace);
      t.add_row({std::to_string(pool), TextTable::num(trace.best_seconds()),
                 TextTable::num(s.performance, 2),
                 TextTable::num(s.search, 2)});
    }
    t.print(std::cout);
  }

  std::printf("\nAblation A2b: forest size (trees)\n\n");
  {
    TextTable t({"trees", "fit (ms)", "OOB RMSE", "Prf.Imp", "Srh.Imp"});
    for (const std::size_t trees : {1u, 4u, 16u, 64u, 200u}) {
      ml::ForestParams fp;
      fp.num_trees = trees;
      fp.seed = settings.seed;
      WallTimer timer;
      auto model = std::make_unique<ml::RandomForest>(fp);
      model->fit(source.to_dataset(lu->space()));
      const double fit_ms = timer.seconds() * 1e3;

      kernels::SimulatedKernelEvaluator target(lu, sim::make_sandybridge());
      tuner::BiasedSearchOptions opt;
      opt.max_evals = settings.nmax;
      opt.pool_size = settings.pool_size;
      opt.seed = settings.seed;
      const auto trace = tuner::biased_random_search(target, *model, opt);
      const auto s = tuner::compare_to_rs(rs, trace);
      t.add_row({std::to_string(trees), TextTable::num(fit_ms, 1),
                 TextTable::num(model->oob_rmse(), 3),
                 TextTable::num(s.performance, 2),
                 TextTable::num(s.search, 2)});
    }
    t.print(std::cout);
  }
  return 0;
}
