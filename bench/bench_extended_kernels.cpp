// Extension: the transfer methodology applied to four additional SPAPT
// problems beyond the paper's four — BiCG, GESUMMV, GEMVER and a Jacobi
// 2-D stencil (the latter exercising offset/stencil index expressions in
// the IR). Same protocol and metrics as Table IV.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"

using namespace portatune;

int main() {
  const auto settings = bench::paper_settings();
  std::printf("Extension: RS_b transfer on the extended SPAPT problems "
              "(Prf.Imp / Srh.Imp, * = successful)\n\n");

  TextTable t({"Problem", "ni", "|D|", "WM->SB", "SB->P7", "SB->XG"});
  for (const auto& prob : kernels::extended_problems()) {
    char card[32];
    std::snprintf(card, sizeof(card), "%.1e", prob->space().cardinality());
    std::vector<std::string> row{prob->name(),
                                 std::to_string(prob->space().num_params()),
                                 card};
    const std::pair<const char*, const char*> pairs[] = {
        {"Westmere", "Sandybridge"},
        {"Sandybridge", "Power7"},
        {"Sandybridge", "X-Gene"}};
    for (const auto& [src, dst] : pairs) {
      kernels::SimulatedKernelEvaluator a(prob, sim::machine_by_name(src));
      kernels::SimulatedKernelEvaluator b(prob, sim::machine_by_name(dst));
      const auto r = tuner::run_transfer_experiment(a, b, settings);
      row.push_back(bench::speedup_cell(r.biased_speedup));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return 0;
}
