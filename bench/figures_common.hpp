// Shared driver for Figs. 3-5: each figure is a grid of panels (one row
// per problem) with three columns — model-based variants, model-free
// variants, and the cross-machine correlation of the shared RS
// configurations.
#pragma once

#include <cstdio>
#include <vector>

#include "bench/common.hpp"

namespace portatune::bench {

inline void print_figure(const std::string& title,
                         const std::string& source,
                         const std::string& target,
                         const std::vector<std::string>& problems,
                         bool phi_experiment = false,
                         std::size_t threads = 1) {
  std::printf("%s\n", title.c_str());
  std::printf("(best-so-far improvement points: (elapsed search s, best "
              "run time s))\n");
  // One job per problem panel, fanned out over `threads` workers and
  // printed in problem order (identical output at any thread count).
  std::vector<tuner::ExperimentJob> jobs;
  jobs.reserve(problems.size());
  for (const auto& problem : problems)
    jobs.push_back(cell_job(problem, source, target, phi_experiment));
  const auto results = tuner::run_transfer_experiments(jobs, threads);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto& problem = problems[i];
    const auto& r = results[i];
    std::printf("\n== %s ==\n", problem.c_str());
    std::printf(" model-based variants:\n");
    print_curve("RS", r.target_rs);
    print_curve("RS_p", r.pruned);
    print_curve("RS_b", r.biased);
    std::printf(" model-free variants:\n");
    print_curve("RS_pf", r.pruned_mf);
    print_curve("RS_bf", r.biased_mf);
    std::printf(" correlation (shared RS configs on %s vs %s):\n",
                source.c_str(), target.c_str());
    std::printf("  pearson %.3f  spearman %.3f  top-20%% overlap %.2f\n",
                r.pearson, r.spearman, r.top_overlap);
    std::printf(" speedups vs RS (Prf.Imp / Srh.Imp, * = successful):\n");
    std::printf("  RS_p  %s\n", speedup_cell(r.pruned_speedup).c_str());
    std::printf("  RS_b  %s\n", speedup_cell(r.biased_speedup).c_str());
    std::printf("  RS_pf %s\n", speedup_cell(r.pruned_mf_speedup).c_str());
    std::printf("  RS_bf %s\n", speedup_cell(r.biased_mf_speedup).c_str());
  }
}

}  // namespace portatune::bench
