// Micro-benchmarks of the substrates (google-benchmark): surrogate fit
// and predict throughput, analytic cost-model evaluation rate, exact
// cache simulation rate, sampling and code generation throughput. These
// bound the "model overhead" that the paper argues is negligible next to
// empirical evaluations.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "ml/forest.hpp"
#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "obs/thread_pool_metrics.hpp"
#include "support/span_context.hpp"
#include "support/thread_pool.hpp"
#include "orio/codegen.hpp"
#include "service/protocol.hpp"
#include "service/resilient_client.hpp"
#include "service/server.hpp"
#include "support/cancellation.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace_sim.hpp"
#include "tuner/faults.hpp"
#include "tuner/guard.hpp"
#include "tuner/parallel.hpp"
#include "tuner/random_search.hpp"
#include "tuner/sampler.hpp"

namespace {

using namespace portatune;

std::vector<tuner::ParamConfig> feasible_configs(
    const kernels::SpaptProblemPtr& prob, std::size_t count) {
  Rng rng(2);
  std::vector<tuner::ParamConfig> configs;
  while (configs.size() < count) {
    auto c = prob->space().random_config(rng);
    if (prob->feasible(c)) configs.push_back(std::move(c));
  }
  return configs;
}

ml::Dataset lu_training_data() {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  tuner::RandomSearchOptions opt;
  opt.max_evals = 100;
  opt.seed = 1;
  return tuner::random_search(wm, opt).to_dataset(lu->space());
}

void BM_ForestFit(benchmark::State& state) {
  const auto data = lu_training_data();
  ml::ForestParams fp;
  fp.num_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(fp);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_ForestFit)->Arg(8)->Arg(64);

void BM_ForestPredict(benchmark::State& state) {
  const auto data = lu_training_data();
  ml::RandomForest forest;
  forest.fit(data);
  const std::vector<double> x(data.row(0).begin(), data.row(0).end());
  for (auto _ : state) benchmark::DoNotOptimize(forest.predict(x));
}
BENCHMARK(BM_ForestPredict);

void BM_AnalyticCostModel(benchmark::State& state) {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  Rng rng(2);
  std::vector<tuner::ParamConfig> configs;
  while (configs.size() < 64) {
    auto c = lu->space().random_config(rng);
    if (lu->feasible(c)) configs.push_back(std::move(c));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sb.evaluate(configs[i++ % configs.size()]));
  }
}
BENCHMARK(BM_AnalyticCostModel);

void BM_TraceSimulation(benchmark::State& state) {
  sim::LoopNest nest;
  nest.name = "mm";
  const std::int64_t n = state.range(0);
  nest.loops = {{"i", n, 1.0}, {"j", n, 1.0}, {"k", n, 1.0}};
  nest.arrays = {{"C", {n, n}, 8}, {"A", {n, n}, 8}, {"B", {n, n}, 8}};
  sim::Statement s;
  s.depth = 3;
  s.refs = {{0, {sim::idx(0), sim::idx(1)}, true},
            {1, {sim::idx(0), sim::idx(2)}, false},
            {2, {sim::idx(2), sim::idx(1)}, false}};
  nest.stmts = {s};
  const std::vector<sim::CacheLevelSpec> hierarchy{
      {"L1", 32 * 1024, 64, 8, 4, false, 0.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_nest(
        nest, sim::NestTransform::identity(3), hierarchy));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 3);
}
BENCHMARK(BM_TraceSimulation)->Arg(16)->Arg(32);

void BM_ConfigSampling(benchmark::State& state) {
  auto mm = kernels::make_mm();
  tuner::ConfigStream stream(mm->space(), 3);
  for (auto _ : state) benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_ConfigSampling);

// --- Observability overhead -----------------------------------------
// The instrumentation is compiled into every search path but must be
// dormant when no sink is installed: these bound the disabled-path cost
// (the acceptance bar is < 1 % on search throughput, see BM_RandomSearch).

void BM_ObsDisabledEnabledCheck(benchmark::State& state) {
  // The guard every instrumented site evaluates: one relaxed atomic load.
  for (auto _ : state)
    benchmark::DoNotOptimize(obs::enabled(obs::Severity::Info));
}
BENCHMARK(BM_ObsDisabledEnabledCheck);

void BM_ObsDisabledScopedTimer(benchmark::State& state) {
  // Inert span: no sink, no histogram -> no clock reads, no allocation.
  for (auto _ : state) {
    obs::ScopedTimer span("bench.noop", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsDisabledScopedTimer);

void BM_ObsDisabledSpanScope(benchmark::State& state) {
  // The causal-context install/restore every pool task pays: two TLS
  // word writes, no atomics, no clock.
  const SpanContext ctx{42};
  for (auto _ : state) {
    SpanScope scope(ctx);
    benchmark::DoNotOptimize(current_span_context().span);
  }
}
BENCHMARK(BM_ObsDisabledSpanScope);

void BM_PoolFanOutDormant(benchmark::State& state) {
  // Thread-pool fan-out with telemetry dormant (no observer installed):
  // bounds the per-task cost of the context capture + observer check.
  ThreadPool pool(4);
  for (auto _ : state)
    pool.parallel_for(0, 256, [](std::size_t i) {
      benchmark::DoNotOptimize(i);
    });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 256));
}
BENCHMARK(BM_PoolFanOutDormant)->UseRealTime();

void BM_PoolFanOutWithMetrics(benchmark::State& state) {
  // Same fan-out with ThreadPoolMetrics installed: adds two clock reads
  // and a handful of relaxed atomic RMWs per task.
  obs::MetricsRegistry registry;
  obs::ScopedThreadPoolMetrics metrics(&registry);
  ThreadPool pool(4);
  for (auto _ : state)
    pool.parallel_for(0, 256, [](std::size_t i) {
      benchmark::DoNotOptimize(i);
    });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 256));
}
BENCHMARK(BM_PoolFanOutWithMetrics)->UseRealTime();

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 10.0 ? v * 1.001 : 1e-6;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsFlightRecorderRecord(benchmark::State& state) {
  // The flight recorder in the sink chain: one ring-slot copy per event.
  // This is the per-event cost telemetry adds when logging is already on
  // (with logging off the recorder never sees the event at all — that
  // dormant path is BM_ObsDisabledEnabledCheck).
  obs::FlightRecorder rec(256);
  const obs::Event e =
      obs::make_instant(obs::Severity::Debug, "bench.event", "bench", {});
  for (auto _ : state) {
    rec.log(e);
    benchmark::DoNotOptimize(rec.events_seen());
  }
}
BENCHMARK(BM_ObsFlightRecorderRecord);

// --- Service protocol overhead ---------------------------------------
// The request path every daemon op pays: JSON parse -> dispatch ->
// JSON encode, plus (when telemetry is on) the per-op instrument
// updates. BM_ServerOpDormant is the regression gate for the dormant
// guarantee: with telemetry off and no sink installed a request costs
// no clock read and no instrument update.

service::TuningService& bench_service() {
  static service::TuningService* svc = [] {
    service::TuningServiceOptions opt;
    const auto dir =
        std::filesystem::temp_directory_path() / "portatune_bench_proto";
    std::filesystem::remove_all(dir);
    opt.data_dir = dir.string();
    return new service::TuningService(opt);
  }();
  return *svc;
}

void BM_ProtocolEncodeDecode(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRedirect redirect(registry);
  service::ServiceProtocol proto(bench_service());
  const std::string line = R"({"op":"status"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.handle_line(line).line.size());
  }
}
BENCHMARK(BM_ProtocolEncodeDecode);

void BM_ServerOpDormant(benchmark::State& state) {
  service::ProtocolOptions opt;
  opt.telemetry = false;  // and no sink installed => fully dormant
  service::ServiceProtocol proto(bench_service(), opt);
  const std::string line = R"({"op":"status"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.handle_line(line).line.size());
  }
}
BENCHMARK(BM_ServerOpDormant);

void BM_ProtocolRidDormant(benchmark::State& state) {
  // A mutating op *without* a rid: the exactly-once machinery's cost for
  // clients that never opt in — one member probe on the parsed request,
  // no cache lookups, no reply copies. This is the regression gate for
  // the "rids are free unless used" guarantee.
  service::ProtocolOptions opt;
  opt.telemetry = false;
  service::ServiceProtocol proto(bench_service(), opt);
  proto.handle_line(
      R"({"op":"open","id":"ridbench","problem":"LU",)"
      R"("machine":"Westmere","max_evals":10,"seed":3})");
  const std::string line = R"({"op":"suggest","id":"ridbench","n":0})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.handle_line(line).line.size());
  }
}
BENCHMARK(BM_ProtocolRidDormant);

#if defined(__unix__) || defined(__APPLE__)
// One real daemon + one ResilientClient over its Unix socket: the
// steady-state cost of a call when nothing goes wrong — rid stamping,
// poll-timed read, reply parse for the retry_after probe. Bounds the
// overhead the resilience layer adds to every healthy request.
struct ResilientBenchHarness {
  ResilientBenchHarness() {
    socket = (std::filesystem::temp_directory_path() /
              "portatune_bench_resilient.sock")
                 .string();
    service::ServeOptions sopt;
    sopt.protocol.telemetry = false;
    thread = std::thread([this, sopt] {
      service::serve_unix_socket(bench_service(), socket, cancel.token(),
                                 sopt);
    });
    while (!std::filesystem::exists(socket))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ~ResilientBenchHarness() {
    cancel.request_cancel();
    thread.join();
  }
  CancellationSource cancel;
  std::string socket;
  std::thread thread;
};

void BM_ResilientClientHappyPath(benchmark::State& state) {
  static ResilientBenchHarness harness;
  service::ResilientClient client(harness.socket);
  const std::string line = R"({"op":"status"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line).size());
  }
}
BENCHMARK(BM_ResilientClientHappyPath);
#endif  // UNIX

void BM_ObsHistogramPercentile(benchmark::State& state) {
  // Snapshot-time percentile interpolation: what every sampler tick pays
  // per histogram (observe() itself never computes percentiles).
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("bench.hist");
  double v = 1e-6;
  for (int i = 0; i < 4096; ++i) {
    h.observe(v);
    v = v < 10.0 ? v * 1.01 : 1e-6;
  }
  for (auto _ : state) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap.histograms[0].p99);
  }
}
BENCHMARK(BM_ObsHistogramPercentile);

// --- Guard overhead ---------------------------------------------------
// The surrogate-trust guard (tuner/guard.hpp) is compiled into RS_p and
// RS_b but must be free when GuardOptions::enabled is false: the monitor
// optional stays empty and every per-draw check is one boolean. These
// bound the dormant-path cost; BM_GuardTrustUpdate bounds the armed-path
// cost of one windowed-Spearman trust refresh for scale.

void BM_GuardDisabledPrunedSearch(benchmark::State& state) {
  // Full RS_p with the guard off: the baseline the --compare-bench gate
  // holds the guarded build to.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  ml::RandomForest model;
  model.fit(lu_training_data());
  tuner::PrunedSearchOptions opt;
  opt.max_evals = 50;
  opt.pool_size = 1000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(tuner::pruned_random_search(wm, model, opt));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_GuardDisabledPrunedSearch);

void BM_GuardDisabledBiasedSearch(benchmark::State& state) {
  // Full RS_b with the guard off (dormant reorder/refit plumbing).
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  ml::RandomForest model;
  model.fit(lu_training_data());
  tuner::BiasedSearchOptions opt;
  opt.max_evals = 50;
  opt.pool_size = 1000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(tuner::biased_random_search(wm, model, opt));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_GuardDisabledBiasedSearch);

void BM_GuardTrustUpdate(benchmark::State& state) {
  // Armed path: one observe() = window push + Spearman over 25 pairs.
  tuner::GuardOptions gopt;
  gopt.enabled = true;
  tuner::TrustMonitor monitor(gopt, "bench");
  double pred = 0.1;
  std::size_t evals = 0;
  for (auto _ : state) {
    pred = pred < 1.0 ? pred * 1.01 : 0.1;
    monitor.observe(pred, pred * 1.1, ++evals);
    benchmark::DoNotOptimize(monitor.trust());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GuardTrustUpdate);

void BM_RandomSearch(benchmark::State& state) {
  // Full instrumented search with observability dormant (no sink): the
  // throughput to compare pre/post-instrumentation builds on.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  tuner::RandomSearchOptions opt;
  opt.max_evals = 50;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(tuner::random_search(wm, opt));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_RandomSearch);

// --- Parallel evaluation scaling -------------------------------------
// The batched-evaluation seam: one window fanned out over N workers. Two
// regimes matter. Real autotuning evaluations are latency-bound — each
// measurement occupies its worker for a compile+run wall-clock interval —
// so the fan-out overlaps those waits and scales with the worker count
// even on a single core (modeled by an injected per-attempt delay). The
// pure cost-model regime is CPU-bound and scales only with physical
// cores. UseRealTime throughout: wall time is what the fan-out buys.

void BM_BatchEvalLatencyBound(benchmark::State& state) {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  tuner::FaultProfile fp;
  fp.delay_rate = 1.0;  // every attempt waits, like a real compile+run
  fp.delay_seconds = 0.001;
  tuner::FaultInjectingEvaluator slow(wm, fp);
  tuner::ParallelOptions popt;
  popt.threads = static_cast<std::size_t>(state.range(0));
  tuner::ParallelEvaluator par(slow, popt);
  const auto batch = feasible_configs(lu, 32);
  for (auto _ : state) benchmark::DoNotOptimize(par.evaluate_batch(batch));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch.size()));
}
BENCHMARK(BM_BatchEvalLatencyBound)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BatchEvalCpuBound(benchmark::State& state) {
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  tuner::ParallelOptions popt;
  popt.threads = static_cast<std::size_t>(state.range(0));
  tuner::ParallelEvaluator par(wm, popt);
  const auto batch = feasible_configs(lu, 32);
  for (auto _ : state) benchmark::DoNotOptimize(par.evaluate_batch(batch));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch.size()));
}
BENCHMARK(BM_BatchEvalCpuBound)->Arg(1)->Arg(8)->UseRealTime();

void BM_ParallelRandomSearch(benchmark::State& state) {
  // Full RS through the batched window loop, latency-bound evaluations.
  auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  tuner::FaultProfile fp;
  fp.delay_rate = 1.0;
  fp.delay_seconds = 0.0005;
  tuner::FaultInjectingEvaluator slow(wm, fp);
  tuner::ParallelOptions popt;
  popt.threads = static_cast<std::size_t>(state.range(0));
  tuner::ParallelEvaluator par(slow, popt);
  tuner::RandomSearchOptions opt;
  opt.max_evals = 64;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(tuner::random_search(par, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_ParallelRandomSearch)
    ->Arg(1)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

tuner::ExperimentJob latency_cell(const std::string& problem,
                                  const std::string& source,
                                  const std::string& target) {
  tuner::ExperimentJob job;
  job.label = problem + " " + source + "->" + target;
  job.settings = bench::paper_settings();
  job.settings.nmax = 30;
  job.settings.pool_size = 1000;
  const auto make = [problem](const std::string& machine) {
    auto o = bench::paper_stack_options(problem, machine);
    o.faults.delay_rate = 1.0;  // latency-bound, as real measurements are
    o.faults.delay_seconds = 0.0005;
    return apps::make_evaluator_stack(o);
  };
  job.make_source = [=] { return make(source); };
  job.make_target = [=] { return make(target); };
  return job;
}

void BM_TableIvCells(benchmark::State& state) {
  // Independent Table IV-style cells fanned out over the experiment
  // pool; latency-bound evaluations as above. The acceptance bar for the
  // parallel engine is >= 3x cell throughput at 8 workers vs 1.
  const std::vector<std::string> problems = {"ATAX", "LU"};
  const std::vector<std::string> targets = {"Sandybridge", "Power7",
                                            "X-Gene"};
  for (auto _ : state) {
    std::vector<tuner::ExperimentJob> jobs;
    for (const auto& p : problems)
      for (const auto& t : targets)
        jobs.push_back(latency_cell(p, "Westmere", t));
    const auto results = tuner::run_transfer_experiments(
        jobs, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 6));
}
BENCHMARK(BM_TableIvCells)
    ->Arg(1)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_CodeGeneration(benchmark::State& state) {
  auto prob = kernels::make_mm(256);
  auto c = prob->space().default_config();
  c[0] = 7;   // U_I = 8
  c[4] = 6;   // T_J = 64
  c[8] = 2;   // RT_K = 4
  while (!prob->feasible(c)) c[8]--;
  const auto t = prob->transforms(c, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orio::generate_c(prob->phases()[0].nest, t[0], "mm"));
  }
}
BENCHMARK(BM_CodeGeneration);

}  // namespace

BENCHMARK_MAIN();
