// Ablation A1: the RS_p cutoff parameter delta. The paper fixes delta at
// 20% and notes that the conservative pruning strategy "does not result
// in significant speedups, which can be attributed to the cutoff
// parameter". This sweep quantifies that: small delta prunes harder
// (more speedup, more risk), large delta degenerates to plain RS.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "kernels/sim_evaluator.hpp"
#include "kernels/spapt.hpp"
#include "tuner/random_search.hpp"
#include "tuner/transfer.hpp"

using namespace portatune;

int main() {
  const auto lu = kernels::make_lu();
  kernels::SimulatedKernelEvaluator wm(lu, sim::make_westmere());
  const auto settings = bench::paper_settings();

  const auto source = tuner::run_reference_rs(wm, settings);
  ml::ForestParams fp = settings.forest;
  fp.seed = settings.seed;
  const auto model = tuner::fit_surrogate(source, lu->space(), fp);

  // Reference RS on the target (CRN replay).
  kernels::SimulatedKernelEvaluator sb(lu, sim::make_sandybridge());
  std::vector<tuner::ParamConfig> order;
  for (const auto& e : source.entries()) order.push_back(e.config);
  const auto rs = tuner::replay_search(sb, order, settings.nmax);

  std::printf("Ablation A1: RS_p cutoff delta sweep (LU, Westmere -> "
              "Sandybridge; paper uses delta = 20%%)\n\n");
  TextTable t({"delta %", "evaluations", "best (s)", "Prf.Imp", "Srh.Imp",
               "successful"});
  for (const double delta : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    kernels::SimulatedKernelEvaluator target(lu, sim::make_sandybridge());
    tuner::PrunedSearchOptions opt;
    opt.max_evals = settings.nmax;
    opt.pool_size = settings.pool_size;
    opt.delta_percent = delta;
    opt.seed = settings.seed;
    const auto trace = tuner::pruned_random_search(target, *model, opt);
    const auto s = tuner::compare_to_rs(rs, trace);
    t.add_row({TextTable::num(delta, 0), std::to_string(trace.size()),
               TextTable::num(trace.best_seconds()),
               TextTable::num(s.performance, 2), TextTable::num(s.search, 2),
               s.successful() ? "yes" : "no"});
  }
  t.print(std::cout);
  return 0;
}
