// Figure 3: using Intel Westmere data to speed the search on Intel
// Sandybridge, for ATAX, LU, HPL and RT. Three columns per problem:
// model-based variants (RS, RS_p, RS_b), model-free variants (RS_pf,
// RS_bf), and the run-time correlation of the shared configurations.
#include "bench/figures_common.hpp"

int main(int argc, char** argv) {
  portatune::bench::print_figure(
      "Figure 3: Intel Westmere -> Intel Sandybridge", "Westmere",
      "Sandybridge", {"ATAX", "LU", "HPL", "RT"},
      /*phi_experiment=*/false, portatune::bench::bench_threads(argc, argv));
  return 0;
}
