// Mini-Orio annotation language.
//
// Orio consumes annotated C/Fortran describing a kernel, its tunable
// transformations and their value ranges, then generates and empirically
// evaluates code variants. This module implements the same pipeline on a
// compact line-oriented annotation grammar:
//
//   kernel MM
//   array  C[2000][2000]
//   array  A[2000][2000]
//   array  B[2000][2000]
//   loop   i 2000
//   loop   j 2000
//   loop   k 2000          # outermost..innermost, in order
//   stmt   "C[i][j] = C[i][j] + A[i][k] * B[k][j];" flops 2 (backslash)
//          reads A[i][k] B[k][j] C[i][j] writes C[i][j]
//   param  U_I  unroll  i 1..32
//   param  T_I  tile    i pow2 0..11
//   param  RT_I regtile i pow2 0..5
//   param  SCR  flag scalar_replacement
//   option compiler_tilable
//   option outer_parallel
//
// '#' starts a comment; '\' continues a line. parse_annotation() returns a
// ready-to-tune SpaptProblem; the code generator (codegen.hpp) turns any
// configuration into compilable C.
#pragma once

#include <string>

#include "kernels/spapt.hpp"

namespace portatune::orio {

/// Parse the annotation text. Throws portatune::Error with a line number
/// on malformed input.
kernels::SpaptProblemPtr parse_annotation(const std::string& text);

/// Convenience: read a file and parse it.
kernels::SpaptProblemPtr parse_annotation_file(const std::string& path);

/// The MM annotation shown above (used by examples and tests).
std::string example_mm_annotation(std::int64_t n = 2000);

}  // namespace portatune::orio
