#include "orio/compiled.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "orio/codegen.hpp"
#include "support/error.hpp"

namespace portatune::orio {

namespace {

/// Minimal scoped temporary directory.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/portatune-orio-XXXXXX";
    PT_REQUIRE(mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    path_ = tmpl;
  }
  ~TempDir() {
    if (!keep_) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      if (std::system(cmd.c_str()) != 0) {
        // Best-effort cleanup; nothing sensible to do on failure.
      }
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const noexcept { return path_; }
  void keep() noexcept { keep_ = true; }

 private:
  std::string path_;
  bool keep_ = false;
};

std::string run_and_capture(const std::string& cmd, int& exit_code) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  PT_REQUIRE(pipe != nullptr, "popen failed");
  std::array<char, 256> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  exit_code = pclose(pipe);
  return out;
}

}  // namespace

double compile_and_run_variant(const sim::LoopNest& nest,
                               const sim::NestTransform& t,
                               const CompileOptions& opt) {
  TempDir dir;
  if (opt.keep_files) dir.keep();
  const std::string src = dir.path() + "/variant.c";
  const std::string bin = dir.path() + "/variant";
  {
    std::ofstream os(src);
    PT_REQUIRE(os.good(), "cannot write " + src);
    os << generate_benchmark_program(nest, t, opt.reps);
  }
  int code = 0;
  const std::string compile_cmd =
      opt.compiler + " " + opt.flags + " -o '" + bin + "' '" + src + "' -lm";
  run_and_capture(compile_cmd, code);
  PT_REQUIRE(code == 0, "variant failed to compile (as real Orio variants "
                        "sometimes do): " + compile_cmd);
  const std::string out = run_and_capture("'" + bin + "'", code);
  PT_REQUIRE(code == 0, "variant crashed at run time");
  std::istringstream is(out);
  double seconds = 0.0;
  is >> seconds;
  PT_REQUIRE(is.good() || is.eof(), "variant produced no timing");
  PT_REQUIRE(seconds > 0.0, "variant reported non-positive time");
  return seconds;
}

CompiledOrioEvaluator::CompiledOrioEvaluator(kernels::SpaptProblemPtr problem,
                                             CompileOptions opt)
    : problem_(std::move(problem)), opt_(std::move(opt)) {
  PT_REQUIRE(problem_ != nullptr, "null problem");
  PT_REQUIRE(problem_->phases().size() == 1,
             "compiled evaluation supports single-phase problems");
}

tuner::EvalResult CompiledOrioEvaluator::evaluate(
    const tuner::ParamConfig& config) {
  try {
    const auto transforms = problem_->transforms(config, 1);
    const double s = compile_and_run_variant(
        problem_->phases()[0].nest, transforms[0], opt_);
    return {s, true, {}};
  } catch (const Error& e) {
    return tuner::EvalResult::failure(e.what());
  }
}

}  // namespace portatune::orio
