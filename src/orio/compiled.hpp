// Empirical (compile-and-run) evaluation of generated code variants —
// mini-Orio's native measurement path on the host machine.
#pragma once

#include <string>

#include "kernels/spapt.hpp"
#include "tuner/evaluator.hpp"

namespace portatune::orio {

struct CompileOptions {
  std::string compiler = "cc";
  std::string flags = "-O3 -std=c99";
  int reps = 3;          ///< timed repetitions; best is reported
  bool keep_files = false;
};

/// Generate the benchmark program for (nest, transform), compile it with
/// the host compiler, run it, and return the measured best seconds.
/// Throws portatune::Error on compile or run failure.
double compile_and_run_variant(const sim::LoopNest& nest,
                               const sim::NestTransform& t,
                               const CompileOptions& opt = {});

/// Evaluator that measures a (single-phase) SPAPT problem by generating,
/// compiling and running each configuration on the host — the full Orio
/// pipeline. Expensive: one compiler invocation per evaluation.
class CompiledOrioEvaluator final : public tuner::Evaluator {
 public:
  CompiledOrioEvaluator(kernels::SpaptProblemPtr problem,
                        CompileOptions opt = {});

  const tuner::ParamSpace& space() const override {
    return problem_->space();
  }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  std::string problem_name() const override { return problem_->name(); }
  std::string machine_name() const override { return "host"; }

 private:
  kernels::SpaptProblemPtr problem_;
  CompileOptions opt_;
};

}  // namespace portatune::orio
