#include "orio/codegen.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace portatune::orio {

namespace {

/// Replace whole-token occurrences of `var` in `text` with `repl`.
std::string subst_var(const std::string& text, const std::string& var,
                      const std::string& repl) {
  std::string out;
  std::size_t i = 0;
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < text.size()) {
    if (text.compare(i, var.size(), var) == 0 &&
        (i == 0 || !is_ident(text[i - 1])) &&
        (i + var.size() == text.size() || !is_ident(text[i + var.size()]))) {
      out += repl;
      i += var.size();
    } else {
      out += text[i++];
    }
  }
  return out;
}

class Generator {
 public:
  Generator(const sim::LoopNest& nest, const sim::NestTransform& t)
      : nest_(nest), t_(t) {
    nest.validate(t);
    steps_.resize(nest.loops.size());
    for (std::size_t l = 0; l < nest.loops.size(); ++l) {
      const auto& lt = t.loops[l];
      steps_[l] = static_cast<std::int64_t>(lt.unroll) * lt.reg_tile;
      steps_[l] = std::min(steps_[l], nest.loops[l].extent);
    }
    offsets_.assign(nest.loops.size(), {"0"});
  }

  std::string run(const std::string& fn_name) {
    out_.clear();
    indent_ = 0;
    emit_signature(fn_name);
    line("{");
    ++indent_;
    emit_level(0);
    --indent_;
    line("}");
    return out_;
  }

 private:
  void line(const std::string& s) {
    out_ += std::string(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += s;
    out_ += '\n';
  }

  void emit_signature(const std::string& fn_name) {
    std::ostringstream os;
    os << "void " << fn_name << "(";
    for (std::size_t a = 0; a < nest_.arrays.size(); ++a) {
      const auto& arr = nest_.arrays[a];
      if (a) os << ", ";
      if (arr.dims.size() == 1) {
        os << "double* restrict " << arr.name;
      } else {
        os << "double (* restrict " << arr.name << ")";
        for (std::size_t d = 1; d < arr.dims.size(); ++d)
          os << "[" << arr.dims[d] << "]";
      }
    }
    os << ")";
    line(os.str());
  }

  /// Emit all statement instances at depth d: the cartesian product of
  /// the unroll offsets of the enclosing loops.
  void emit_stmts(std::size_t d) {
    for (const auto& s : nest_.stmts) {
      if (s.depth != d) continue;
      PT_REQUIRE(!s.text.empty(),
                 "statement has no source template for codegen");
      std::vector<std::size_t> pick(d, 0);
      bool done = false;
      while (!done) {
        std::string body = s.text;
        for (std::size_t l = 0; l < d; ++l)
          body = subst_var(body, nest_.loops[l].name, offsets_[l][pick[l]]);
        line(body);
        // Odometer over the unroll offsets of the enclosing loops.
        done = true;
        for (std::size_t l = d; l-- > 0;) {
          if (++pick[l] < offsets_[l].size()) {
            done = false;
            break;
          }
          pick[l] = 0;
        }
      }
    }
  }

  void emit_level(std::size_t d) {
    emit_stmts(d);
    if (d == nest_.loops.size()) return;

    const auto& loop = nest_.loops[d];
    const auto& lt = t_.loops[d];
    const std::string v = loop.name;
    const std::string n = std::to_string(loop.extent);
    const bool tiled = lt.cache_tile > 1 && lt.cache_tile < loop.extent;

    std::string lo = "0", hi = n;
    if (tiled) {
      const std::string tv = v + "_t";
      const std::string tile = std::to_string(lt.cache_tile);
      if (d == 0 && nest_.outer_parallel && t_.threads > 1)
        line("#pragma omp parallel for num_threads(" +
             std::to_string(t_.threads) + ")");
      line("for (long " + tv + " = 0; " + tv + " < " + n + "; " + tv +
           " += " + tile + ") {");
      ++indent_;
      lo = tv;
      hi = "(" + tv + " + " + tile + " < " + n + " ? " + tv + " + " + tile +
           " : " + n + ")";
      line("long " + v + "_hi = " + hi + ";");
      hi = v + "_hi";
    } else if (d == 0 && nest_.outer_parallel && t_.threads > 1) {
      line("#pragma omp parallel for num_threads(" +
           std::to_string(t_.threads) + ")");
    }

    const std::int64_t step = steps_[d];
    if (t_.vector_pragma && d + 1 == nest_.loops.size())
      line("#pragma GCC ivdep");

    if (step > 1) {
      // Main unrolled/jammed loop.
      line("long " + v + ";");
      line("for (" + v + " = " + lo + "; " + v + " + " +
           std::to_string(step) + " <= " + hi + "; " + v + " += " +
           std::to_string(step) + ") {");
      ++indent_;
      offsets_[d].clear();
      for (std::int64_t o = 0; o < step; ++o)
        offsets_[d].push_back(o == 0 ? v : "(" + v + "+" +
                                                std::to_string(o) + ")");
      emit_level(d + 1);
      --indent_;
      line("}");
      // Remainder loop: step 1 through the rest of the range.
      line("for (; " + v + " < " + hi + "; ++" + v + ") {");
      ++indent_;
      offsets_[d] = {v};
      emit_level(d + 1);
      --indent_;
      line("}");
    } else {
      line("for (long " + v + " = " + lo + "; " + v + " < " + hi + "; ++" +
           v + ") {");
      ++indent_;
      offsets_[d] = {v};
      emit_level(d + 1);
      --indent_;
      line("}");
    }
    offsets_[d] = {"0"};

    if (tiled) {
      --indent_;
      line("}");
    }
  }

  const sim::LoopNest& nest_;
  const sim::NestTransform& t_;
  std::vector<std::int64_t> steps_;
  std::vector<std::vector<std::string>> offsets_;  ///< per-loop unroll exprs
  std::string out_;
  int indent_ = 0;
};

}  // namespace

std::string generate_c(const sim::LoopNest& nest,
                       const sim::NestTransform& t,
                       const std::string& fn_name) {
  Generator gen(nest, t);
  return gen.run(fn_name);
}

std::string generate_benchmark_program(const sim::LoopNest& nest,
                                       const sim::NestTransform& t,
                                       int reps) {
  PT_REQUIRE(reps >= 1, "need at least one repetition");
  std::ostringstream os;
  os << "#define _POSIX_C_SOURCE 199309L\n";
  os << "#include <stdio.h>\n#include <stdlib.h>\n#include <time.h>\n\n";
  os << generate_c(nest, t, "kernel_variant") << "\n";
  os << "static double now(void) {\n"
     << "  struct timespec ts;\n"
     << "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
     << "  return ts.tv_sec + 1e-9 * ts.tv_nsec;\n"
     << "}\n\n";
  os << "int main(void) {\n";
  for (const auto& arr : nest.arrays) {
    if (arr.dims.size() == 1) {
      os << "  double* " << arr.name << " = malloc(sizeof(double) * "
         << arr.dims[0] << ");\n";
    } else {
      os << "  double (*" << arr.name << ")";
      for (std::size_t d = 1; d < arr.dims.size(); ++d)
        os << "[" << arr.dims[d] << "]";
      os << " = malloc(sizeof(double) * " << arr.elements() << ");\n";
    }
    os << "  { double* p = (double*)" << arr.name << "; "
       << "for (long i = 0; i < " << arr.elements()
       << "; ++i) p[i] = (double)((i * 2654435761u) % 1000) / 1000.0; }\n";
  }
  os << "  double best = 1e300;\n";
  os << "  for (int rep = 0; rep < " << reps << "; ++rep) {\n";
  os << "    double t0 = now();\n";
  os << "    kernel_variant(";
  for (std::size_t a = 0; a < nest.arrays.size(); ++a)
    os << (a ? ", " : "") << nest.arrays[a].name;
  os << ");\n";
  os << "    double dt = now() - t0;\n";
  os << "    if (dt < best) best = dt;\n";
  os << "  }\n";
  // Checksum defeats dead-code elimination.
  os << "  double sum = 0;\n";
  for (const auto& arr : nest.arrays)
    os << "  { double* p = (double*)" << arr.name << "; for (long i = 0; i < "
       << arr.elements() << "; i += 97) sum += p[i]; }\n";
  os << "  fprintf(stderr, \"checksum %g\\n\", sum);\n";
  os << "  printf(\"%.9f\\n\", best);\n";
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace portatune::orio
