#include "orio/annotation.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace portatune::orio {

namespace {

using kernels::LoopBinding;
using kernels::PhaseSpec;
using kernels::SpaptProblem;

struct ParseState {
  sim::LoopNest nest;
  tuner::ParamSpace space;
  std::vector<LoopBinding> bindings;
  int scr_param = -1, vec_param = -1, pad_param = -1;
  std::string kernel_name = "anonymous";
};

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw Error("annotation line " + std::to_string(line) + ": " + why);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  bool quoted = false;
  for (char c : line) {
    if (c == '"') {
      quoted = !quoted;
      continue;
    }
    if (!quoted && std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) toks.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) toks.push_back(std::move(cur));
  return toks;
}

std::size_t find_loop(const ParseState& st, const std::string& name,
                      std::size_t line) {
  for (std::size_t l = 0; l < st.nest.loops.size(); ++l)
    if (st.nest.loops[l].name == name) return l;
  fail(line, "unknown loop variable: " + name);
}

/// Parse "A[i][k]" into an ArrayRef against the declared arrays/loops.
/// Each index is a loop variable or an integer literal.
sim::ArrayRef parse_ref(const ParseState& st, const std::string& text,
                        bool is_write, std::size_t line) {
  const auto lb = text.find('[');
  if (lb == std::string::npos) fail(line, "reference needs indices: " + text);
  const std::string array_name = text.substr(0, lb);
  sim::ArrayRef ref;
  ref.is_write = is_write;
  ref.array = SIZE_MAX;
  for (std::size_t a = 0; a < st.nest.arrays.size(); ++a)
    if (st.nest.arrays[a].name == array_name) ref.array = a;
  if (ref.array == SIZE_MAX) fail(line, "unknown array: " + array_name);

  std::size_t pos = lb;
  while (pos < text.size() && text[pos] == '[') {
    const auto rb = text.find(']', pos);
    if (rb == std::string::npos) fail(line, "unbalanced [] in " + text);
    const std::string idx_text = text.substr(pos + 1, rb - pos - 1);
    sim::IndexExpr e;
    if (!idx_text.empty() &&
        (std::isdigit(static_cast<unsigned char>(idx_text[0])) ||
         idx_text[0] == '-')) {
      e.offset = std::stoll(idx_text);
    } else {
      e.terms.push_back({find_loop(st, idx_text, line), 1});
    }
    ref.indices.push_back(std::move(e));
    pos = rb + 1;
  }
  const auto& arr = st.nest.arrays[ref.array];
  if (ref.indices.size() != arr.dims.size())
    fail(line, "index arity mismatch for " + array_name);
  return ref;
}

/// Parse a range token: "lo..hi".
std::pair<int, int> parse_range(const std::string& text, std::size_t line) {
  const auto dots = text.find("..");
  if (dots == std::string::npos) fail(line, "expected lo..hi, got " + text);
  return {std::stoi(text.substr(0, dots)), std::stoi(text.substr(dots + 2))};
}

}  // namespace

kernels::SpaptProblemPtr parse_annotation(const std::string& text) {
  ParseState st;

  // Pre-pass: join continuation lines.
  std::vector<std::pair<std::size_t, std::string>> lines;
  {
    std::istringstream is(text);
    std::string raw;
    std::size_t lineno = 0;
    std::string pending;
    std::size_t pending_line = 0;
    while (std::getline(is, raw)) {
      ++lineno;
      if (const auto hash = raw.find('#'); hash != std::string::npos)
        raw.erase(hash);
      bool continued = false;
      if (!raw.empty() && raw.back() == '\\') {
        raw.pop_back();
        continued = true;
      }
      if (pending.empty()) pending_line = lineno;
      pending += raw;
      if (continued) {
        pending += ' ';
        continue;
      }
      if (!tokenize(pending).empty()) lines.emplace_back(pending_line, pending);
      pending.clear();
    }
    if (!pending.empty() && !tokenize(pending).empty())
      lines.emplace_back(pending_line, pending);
  }

  for (const auto& [lineno, line] : lines) {
    const auto toks = tokenize(line);
    const std::string& head = toks[0];

    if (head == "kernel") {
      if (toks.size() != 2) fail(lineno, "kernel takes one name");
      st.kernel_name = toks[1];
      st.nest.name = toks[1];
    } else if (head == "array") {
      if (toks.size() != 2) fail(lineno, "array takes one declarator");
      const auto lb = toks[1].find('[');
      if (lb == std::string::npos) fail(lineno, "array needs dimensions");
      sim::ArrayDecl decl;
      decl.name = toks[1].substr(0, lb);
      std::size_t pos = lb;
      while (pos < toks[1].size() && toks[1][pos] == '[') {
        const auto rb = toks[1].find(']', pos);
        if (rb == std::string::npos) fail(lineno, "unbalanced []");
        decl.dims.push_back(std::stoll(toks[1].substr(pos + 1, rb - pos - 1)));
        pos = rb + 1;
      }
      st.nest.arrays.push_back(std::move(decl));
    } else if (head == "loop") {
      if (toks.size() < 3) fail(lineno, "loop takes a name and an extent");
      sim::Loop loop;
      loop.name = toks[1];
      loop.extent = std::stoll(toks[2]);
      if (toks.size() >= 4) loop.occupancy = std::stod(toks[3]);
      st.nest.loops.push_back(loop);
      st.bindings.push_back({});
    } else if (head == "stmt") {
      if (toks.size() < 2) fail(lineno, "stmt needs a body");
      sim::Statement s;
      s.text = toks[1];
      s.depth = st.nest.loops.size();
      std::size_t i = 2;
      enum { None, Reads, Writes } mode = None;
      while (i < toks.size()) {
        if (toks[i] == "flops") {
          if (i + 1 >= toks.size()) fail(lineno, "flops needs a value");
          s.flops = std::stod(toks[++i]);
        } else if (toks[i] == "reads") {
          mode = Reads;
        } else if (toks[i] == "writes") {
          mode = Writes;
        } else if (mode == Reads) {
          s.refs.push_back(parse_ref(st, toks[i], false, lineno));
        } else if (mode == Writes) {
          s.refs.push_back(parse_ref(st, toks[i], true, lineno));
        } else {
          fail(lineno, "unexpected token: " + toks[i]);
        }
        ++i;
      }
      st.nest.stmts.push_back(std::move(s));
    } else if (head == "param") {
      if (toks.size() < 3) fail(lineno, "param needs a name and a kind");
      const std::string& name = toks[1];
      const std::string& kind = toks[2];
      if (kind == "flag") {
        if (toks.size() != 4) fail(lineno, "flag param needs a target");
        const int idx =
            static_cast<int>(st.space.add(name, tuner::flag_values()));
        if (toks[3] == "scalar_replacement")
          st.scr_param = idx;
        else if (toks[3] == "vector_pragma")
          st.vec_param = idx;
        else if (toks[3] == "array_padding")
          st.pad_param = idx;
        else
          fail(lineno, "unknown flag target: " + toks[3]);
        continue;
      }
      if (toks.size() < 5) fail(lineno, "param needs a loop and a range");
      const std::size_t loop = find_loop(st, toks[3], lineno);
      std::vector<double> values;
      if (toks[4] == "pow2") {
        if (toks.size() != 6) fail(lineno, "pow2 needs lo..hi exponents");
        const auto [lo, hi] = parse_range(toks[5], lineno);
        values = tuner::pow2_values(lo, hi);
      } else {
        const auto [lo, hi] = parse_range(toks[4], lineno);
        values = tuner::range_values(lo, hi);
      }
      const int idx = static_cast<int>(st.space.add(name, std::move(values)));
      if (kind == "unroll")
        st.bindings[loop].unroll_param = idx;
      else if (kind == "tile")
        st.bindings[loop].tile_param = idx;
      else if (kind == "regtile")
        st.bindings[loop].regtile_param = idx;
      else
        fail(lineno, "unknown param kind: " + kind);
    } else if (head == "option") {
      if (toks.size() != 2) fail(lineno, "option takes one name");
      if (toks[1] == "compiler_tilable")
        st.nest.compiler_tilable = true;
      else if (toks[1] == "outer_parallel")
        st.nest.outer_parallel = true;
      else
        fail(lineno, "unknown option: " + toks[1]);
    } else {
      fail(lineno, "unknown directive: " + head);
    }
  }

  PT_REQUIRE(!st.nest.loops.empty(), "annotation declares no loops");
  PT_REQUIRE(!st.nest.stmts.empty(), "annotation declares no statements");

  PhaseSpec phase;
  phase.nest = std::move(st.nest);
  phase.bindings = std::move(st.bindings);
  return std::make_shared<SpaptProblem>(
      st.kernel_name, std::move(st.space),
      std::vector<PhaseSpec>{std::move(phase)}, st.scr_param, st.vec_param,
      st.pad_param);
}

kernels::SpaptProblemPtr parse_annotation_file(const std::string& path) {
  std::ifstream in(path);
  PT_REQUIRE(in.good(), "cannot open annotation file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_annotation(buf.str());
}

std::string example_mm_annotation(std::int64_t n) {
  const std::string ns = std::to_string(n);
  return "kernel MM\n"
         "array C[" + ns + "][" + ns + "]\n"
         "array A[" + ns + "][" + ns + "]\n"
         "array B[" + ns + "][" + ns + "]\n"
         "loop i " + ns + "\n"
         "loop j " + ns + "\n"
         "loop k " + ns + "\n"
         "stmt \"C[i][j] = C[i][j] + A[i][k] * B[k][j];\" flops 2 \\\n"
         "     reads C[i][j] A[i][k] B[k][j] writes C[i][j]\n"
         "param U_I unroll i 1..32\n"
         "param U_J unroll j 1..32\n"
         "param U_K unroll k 1..32\n"
         "param T_I tile i pow2 0..11\n"
         "param T_J tile j pow2 0..11\n"
         "param T_K tile k pow2 0..11\n"
         "param RT_I regtile i pow2 0..5\n"
         "param RT_J regtile j pow2 0..5\n"
         "param RT_K regtile k pow2 0..5\n"
         "param SCR flag scalar_replacement\n"
         "option compiler_tilable\n"
         "option outer_parallel\n";
}

}  // namespace portatune::orio
