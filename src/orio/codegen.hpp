// C code generation for transformed loop nests (the Orio half that turns
// a configuration into a compilable code variant).
//
// Given a loop nest whose statements carry source templates and a
// NestTransform, emits a C function applying:
//   * cache tiling   — strip-mine + interchange with min() tail guards,
//   * register tiling— unroll-and-jam of the innermost bands with a
//                      remainder loop per jammed level,
//   * unrolling      — innermost-loop body replication with a cleanup loop,
//   * pragmas        — ivdep/vector hints when requested.
//
// The generated text is valid C99 given the arrays in scope; it can be
// compiled and run by CompiledKernelRunner (mini-Orio's empirical path).
#pragma once

#include <string>

#include "sim/loopnest.hpp"

namespace portatune::orio {

/// Emit the transformed nest as the body of one C function named
/// `fn_name` taking the arrays as (restrict) pointer parameters.
std::string generate_c(const sim::LoopNest& nest,
                       const sim::NestTransform& t,
                       const std::string& fn_name);

/// Emit a full standalone benchmark program: the kernel function plus a
/// main() that allocates/initializes the arrays, runs the kernel `reps`
/// times and prints the best wall-clock seconds to stdout.
std::string generate_benchmark_program(const sim::LoopNest& nest,
                                       const sim::NestTransform& t,
                                       int reps = 3);

}  // namespace portatune::orio
