// Plain-text table and CSV emission for bench output.
//
// The bench binaries print the paper's tables/figure series as aligned
// text tables (human-readable) and can dump the same rows as CSV for
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace portatune {

/// Column-aligned text table with an optional title and rule lines.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats a double, rendering non-finite values as "-".
  static std::string num_or_dash(double v, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with box-drawing rules to `os`.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render as CSV (header + rows, RFC-4180 quoting).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace portatune
