#include "support/rng.hpp"

#include <numeric>
#include <unordered_set>

namespace portatune {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PT_REQUIRE(k <= n, "cannot sample more items than the population holds");
  if (k == 0) return {};
  // For dense draws, a partial Fisher–Yates over the full index vector is
  // cheapest; for sparse draws from a huge population, rejection via a hash
  // set avoids materializing n indices.
  if (k * 8 >= n) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto candidate = static_cast<std::size_t>(below(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

}  // namespace portatune
