// Stable 64-bit hashing.
//
// All stochastic behaviour in portatune that must be reproducible across
// runs and platforms (simulated measurement noise, seed derivation) is
// driven by these hashes rather than by std::hash, whose values are
// implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace portatune {

/// SplitMix64 finalizer: a high-quality 64-bit bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a hash with a new value (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over a byte string; stable across platforms.
constexpr std::uint64_t hash_bytes(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Hash a span of integers (order-sensitive).
inline std::uint64_t hash_ints(std::span<const int> values,
                               std::uint64_t seed = 0) noexcept {
  std::uint64_t h = mix64(seed ^ 0x5bd1e995u);
  for (int v : values)
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  return h;
}

/// Map a 64-bit hash to the unit interval [0, 1).
constexpr double hash_to_unit(std::uint64_t h) noexcept {
  // 53 significand bits give a uniformly spaced double in [0,1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace portatune
