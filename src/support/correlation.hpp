// Correlation coefficients used throughout the paper's analysis
// (Fig. 1 and the correlation columns of Figs. 3–5 report Pearson's rho_p
// and Spearman's rho_s between run times on two machines).
#pragma once

#include <span>

namespace portatune {

/// Pearson product-moment correlation. Returns 0 when either sample is
/// constant (the coefficient is undefined there; 0 is the conventional
/// "no linear association" fallback). Throws on size mismatch.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over tie-averaged ranks).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Kendall tau-b rank correlation (O(n^2) implementation; fine for the
/// sample sizes used in the experiments).
double kendall(std::span<const double> xs, std::span<const double> ys);

/// Fraction of the best `top_fraction` items of `xs` (by ascending value)
/// that also lie in the best `top_fraction` of `ys`. This "top-set overlap"
/// is the property the biasing strategy actually relies on: the paper notes
/// RS_b works even when global correlation is weak, provided the
/// high-performing configurations coincide.
double top_set_overlap(std::span<const double> xs, std::span<const double> ys,
                       double top_fraction);

}  // namespace portatune
