#include "support/cancellation.hpp"

#include <chrono>
#include <thread>

namespace portatune {

bool CancellationToken::wait_for(double seconds) const {
  const auto duration = std::chrono::duration<double>(seconds);
  if (state_ == nullptr) {
    if (seconds > 0.0) std::this_thread::sleep_for(duration);
    return false;
  }
  std::unique_lock lock(state_->mutex);
  return state_->cv.wait_for(lock, duration, [this] {
    return state_->cancelled.load(std::memory_order_acquire);
  });
}

void CancellationSource::request_cancel() noexcept {
  // The store happens under the lock so a waiter cannot check the flag,
  // decide to sleep, and miss the notify in between.
  {
    std::lock_guard lock(state_->mutex);
    state_->cancelled.store(true, std::memory_order_release);
  }
  state_->cv.notify_all();
}

namespace {
thread_local CancellationToken t_ambient_token{};
}  // namespace

CancellationToken current_cancellation_token() noexcept {
  return t_ambient_token;
}

CancellationScope::CancellationScope(CancellationToken token) noexcept
    : previous_(t_ambient_token) {
  t_ambient_token = std::move(token);
}

CancellationScope::~CancellationScope() { t_ambient_token = previous_; }

}  // namespace portatune
