// Causal span context: which span is "open" on the current thread.
//
// A span id is a process-unique 64-bit identifier allocated by an
// instrumentation site (ScopedTimer, SearchSpanGuard, ObservedEvaluator)
// when it opens a profiling span. The *context* — the id of the innermost
// open span — lives in a thread-local and is what turns a flat event
// stream into a tree: every event records the context current at its
// creation as its parent, so an evaluation span emitted on a worker
// thread still points at the search window that scheduled it.
//
// This header lives in support (not obs) on purpose: ThreadPool must
// capture the submitter's context and re-install it around each task so
// causality survives the thread hop, and support cannot link obs. The
// primitive is therefore obs-agnostic — two thread-local words and an
// atomic counter; the obs layer attaches meaning (event span_id /
// parent_span_id fields).
//
// Cost model: reading the context is one thread-local load; opening a
// scope is two thread-local stores. No locks, no allocation — safe for
// dormant instrumentation paths.
#pragma once

#include <atomic>
#include <cstdint>

namespace portatune {

/// The causal position of the current thread: the id of the innermost
/// open span (0 = no span open). Copyable by value across threads.
struct SpanContext {
  std::uint64_t span = 0;

  bool valid() const noexcept { return span != 0; }
};

namespace detail {
inline thread_local SpanContext t_span_context{};
/// 0 is reserved for "no span"; ids start at 1.
inline std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace detail

/// The context current on the calling thread (one TLS load).
inline SpanContext current_span_context() noexcept {
  return detail::t_span_context;
}

/// Allocate a fresh process-unique span id (relaxed atomic increment).
inline std::uint64_t next_span_id() noexcept {
  return detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

/// RAII: install `ctx` as the current context, restore the previous one
/// on destruction. Used both to *open* a span (ctx = the new span's id)
/// and to *adopt* a captured context on a worker thread.
class SpanScope {
 public:
  explicit SpanScope(SpanContext ctx) noexcept
      : previous_(detail::t_span_context) {
    detail::t_span_context = ctx;
  }
  ~SpanScope() { detail::t_span_context = previous_; }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanContext previous_;
};

}  // namespace portatune
