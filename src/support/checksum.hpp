// The shared `# checksum,<16 hex>` footer convention.
//
// Every persistence format in the repo (trace CSV v3, checkpoint CSV v3,
// the run-journal manifest) ends with one comment line carrying the
// FNV-1a hash of every byte before it. Loaders verify the footer before
// parsing, so truncation or bit-flips fail with a checksum diagnostic
// instead of a confusing parse error — FNV-1a's per-byte step is a
// bijection for a fixed byte, so any single corrupted byte is guaranteed
// to change the final hash. Factored here (out of tuner/persistence.cpp)
// so the journal and any future format share one implementation.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune {

inline constexpr std::string_view kChecksumPrefix = "# checksum,";

inline std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// `payload` + the checksum footer line (payload must end with '\n').
inline std::string append_checksum_footer(const std::string& payload) {
  return payload + std::string(kChecksumPrefix) + hex16(hash_bytes(payload)) +
         "\n";
}

/// Verify and strip the checksum footer: the last line must read
/// `# checksum,<16 hex digits>` and the hash of everything before it must
/// match. `what` names the artifact in diagnostics ("trace",
/// "checkpoint", "journal"). Throws portatune::Error on any mismatch.
inline std::string strip_verified_checksum_footer(const std::string& content,
                                                  const char* what) {
  const auto pos = content.rfind(kChecksumPrefix);
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n'))
    throw Error(std::string(what) +
                " checksum footer is missing — the file was truncated");
  std::size_t end = pos + kChecksumPrefix.size();
  std::size_t digits = 0;
  bool hex_ok = true;
  while (end < content.size() && content[end] != '\n') {
    hex_ok = hex_ok && std::isxdigit(static_cast<unsigned char>(content[end]));
    ++digits;
    ++end;
  }
  if (digits != 16 || !hex_ok ||
      content.find_first_not_of('\n', end) != std::string::npos)
    throw Error(std::string(what) +
                " checksum footer is malformed — the file was truncated "
                "or corrupted");
  const std::uint64_t expect = std::stoull(
      content.substr(pos + kChecksumPrefix.size(), 16), nullptr, 16);
  const std::string payload = content.substr(0, pos);
  if (hash_bytes(payload) != expect)
    throw Error(std::string(what) +
                " checksum mismatch — the file is truncated or corrupted");
  return payload;
}

}  // namespace portatune
