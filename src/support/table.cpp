#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace portatune {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PT_REQUIRE(cells.size() == header_.size(),
             "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::num_or_dash(double v, int precision) {
  if (!std::isfinite(v)) return "-";
  return num(v, precision);
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << " |";
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace portatune
