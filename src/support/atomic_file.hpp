// Crash-safe file replacement.
//
// atomic_write_file() is the single write path for every persistence
// artifact (checkpoints, traces, journal manifests, metrics snapshots):
// the contents go to `<path>.tmp`, are fsync'ed, and the temp file is
// renamed over the destination — and the parent directory is fsync'ed so
// the rename itself is durable. A SIGKILL (or power loss) at any instant
// therefore leaves either the complete old file or the complete new file,
// never a torn hybrid; the v3 checksum loaders then never see bytes our
// own writer produced half-way.
#pragma once

#include <string>

namespace portatune {

/// Atomically replace `path` with `contents` (write-temp + fsync +
/// rename + directory fsync). Throws portatune::Error on any I/O error;
/// the temp file is removed on failure.
void atomic_write_file(const std::string& path, const std::string& contents);

/// Whole-file read. Throws portatune::Error when the file cannot be
/// opened.
std::string read_file(const std::string& path);

/// mkdir -p. Throws portatune::Error on failure.
void ensure_directory(const std::string& path);

bool file_exists(const std::string& path);

/// Remove `path` if it exists (a missing file is not an error). Throws
/// portatune::Error when an existing file cannot be removed.
void remove_file(const std::string& path);

}  // namespace portatune
