#include "support/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/error.hpp"

namespace portatune {

namespace {

/// fsync an already-written file (POSIX; no-op elsewhere). Throws on
/// failure: an unsynced "atomic" write is a silent lie about durability.
void fsync_path(const std::string& path, bool directory) {
#ifndef _WIN32
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY;
  const int fd = open(path.c_str(), flags);
  PT_REQUIRE(fd >= 0, "cannot open for fsync: " + path);
  const int rc = fsync(fd);
  close(fd);
  PT_REQUIRE(rc == 0, "fsync failed: " + path);
#else
  (void)path;
  (void)directory;
#endif
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      PT_REQUIRE(os.good(), "cannot open for writing: " + tmp);
      os.write(contents.data(),
               static_cast<std::streamsize>(contents.size()));
      PT_REQUIRE(os.good(), "write failed: " + tmp);
    }
    fsync_path(tmp, /*directory=*/false);
    PT_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot move into place: " + path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  // Durable rename: sync the directory entry too. Without this a crash
  // can forget the rename even though both file versions were synced.
  const auto parent = std::filesystem::path(path).parent_path();
  fsync_path(parent.empty() ? "." : parent.string(), /*directory=*/true);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PT_REQUIRE(is.good(), "cannot open file: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  PT_REQUIRE(!ec, "cannot create directory " + path + ": " + ec.message());
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // removing a missing file is fine
  PT_REQUIRE(!ec, "cannot remove " + path + ": " + ec.message());
}

}  // namespace portatune
