#include "support/signal.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <thread>
#include <unistd.h>
#endif

namespace portatune {

namespace {

CancellationSource& shutdown_source() {
  // Function-local: valid regardless of static-init order, and the shared
  // state is intentionally leaked on exit (detached watcher threads and
  // late tokens may still touch it while the process unwinds).
  static CancellationSource* source = new CancellationSource();
  return *source;
}

struct ShutdownHooks {
  std::mutex mutex;
  std::vector<ShutdownHook> hooks;
  bool fired = false;
};

ShutdownHooks& shutdown_hooks() {
  // Leaked for the same reason as the shutdown source.
  static ShutdownHooks* hooks = new ShutdownHooks();
  return *hooks;
}

void run_shutdown_hooks() noexcept {
  ShutdownHooks& s = shutdown_hooks();
  std::vector<ShutdownHook> to_run;
  {
    std::lock_guard lock(s.mutex);
    if (s.fired) return;
    s.fired = true;
    to_run = s.hooks;
  }
  for (ShutdownHook hook : to_run)
    if (hook != nullptr) hook();
}

#ifndef _WIN32
// Written by install (main thread), read by the async handler.
std::atomic<int> g_signal_pipe_fd{-1};
// How many shutdown signals arrived; sig_atomic_t per POSIX handler rules.
volatile std::sig_atomic_t g_signals_seen = 0;

extern "C" void shutdown_signal_handler(int signo) {
  if (g_signals_seen++ > 0) {
    // Second signal: cooperative shutdown is taking too long (or is
    // itself stuck) — force-exit with the conventional signal status.
    _exit(128 + signo);
  }
  const int fd = g_signal_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; the watcher thread does the rest.
    [[maybe_unused]] const auto ignored = write(fd, &byte, 1);
  }
}
#endif

}  // namespace

CancellationToken shutdown_token() noexcept {
  return shutdown_source().token();
}

bool shutdown_requested() noexcept {
  return shutdown_source().cancel_requested();
}

void request_shutdown() noexcept {
  shutdown_source().request_cancel();
  run_shutdown_hooks();
}

void add_shutdown_hook(ShutdownHook hook) noexcept {
  if (hook == nullptr) return;
  bool already_fired;
  {
    ShutdownHooks& s = shutdown_hooks();
    std::lock_guard lock(s.mutex);
    already_fired = s.fired;
    if (!already_fired) s.hooks.push_back(hook);
  }
  if (already_fired) hook();  // late registration: honour the contract
}

void remove_shutdown_hook(ShutdownHook hook) noexcept {
  ShutdownHooks& s = shutdown_hooks();
  std::lock_guard lock(s.mutex);
  s.hooks.erase(std::remove(s.hooks.begin(), s.hooks.end(), hook),
                s.hooks.end());
}

void install_shutdown_signal_handler() {
#ifndef _WIN32
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;

  int fds[2];
  if (pipe(fds) != 0) return;  // no pipe, no handler — stay signal-default
  const int read_fd = fds[0];
  g_signal_pipe_fd.store(fds[1], std::memory_order_relaxed);

  // Detached on purpose: it blocks in read() for the process lifetime and
  // is reaped by process exit. It must not hold anything destructible.
  std::thread([read_fd] {
    char byte;
    while (read(read_fd, &byte, 1) == 1) request_shutdown();
  }).detach();

  struct sigaction sa = {};
  sa.sa_handler = shutdown_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#endif
}

}  // namespace portatune
