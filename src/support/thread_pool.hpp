// A small fixed-size thread pool with a parallel_for helper.
//
// Used to parallelize embarrassingly parallel inner loops (random-forest
// tree fitting, batch prediction, sweeps over configurations). All
// parallelism in portatune is explicit and goes through this pool, per the
// HPC guideline of keeping thread creation out of hot paths.
//
// Two observability seams, both dormant by default:
//   * Span propagation — submit() captures the submitter's SpanContext
//     and re-installs it around the task on the worker, so profiling
//     spans emitted worker-side still parent to the search window /
//     experiment cell that scheduled them (two TLS words, no locks).
//     The submitter's ambient CancellationToken rides along the same way,
//     so a cancelled search window reaches the evaluations it fanned out.
//   * Telemetry — an optional process-wide ThreadPoolObserver receives
//     queue-depth / queue-wait / execute callbacks per task. With none
//     installed the pool pays one relaxed atomic load per transition and
//     never reads the clock (obs::ThreadPoolMetrics is the standard
//     implementation, publishing pool.* instruments).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/cancellation.hpp"
#include "support/span_context.hpp"

namespace portatune {

/// Telemetry callbacks for thread-pool activity. Implementations must be
/// thread-safe and cheap (they run inline on submitters and workers).
/// Install process-wide with set_thread_pool_observer; all pools (the
/// global pool, parallel evaluators, the experiment pool, watchdogs)
/// report to the same observer.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;

  /// A task was enqueued; `queue_depth` is the depth after the push.
  virtual void on_submit(std::size_t queue_depth) noexcept = 0;
  /// A worker dequeued a task and is about to run it. `queue_wait_seconds`
  /// is the time the task spent queued (0 when the observer was installed
  /// after the task was enqueued); `queue_depth` is the depth after the
  /// pop.
  virtual void on_start(double queue_wait_seconds,
                        std::size_t queue_depth) noexcept = 0;
  /// The task returned after `execute_seconds` on the worker.
  virtual void on_finish(double execute_seconds) noexcept = 0;
};

namespace detail {
inline std::atomic<ThreadPoolObserver*> g_pool_observer{nullptr};
}  // namespace detail

/// The installed observer (nullptr = telemetry off, the dormant default).
inline ThreadPoolObserver* thread_pool_observer() noexcept {
  return detail::g_pool_observer.load(std::memory_order_acquire);
}
/// Install a process-wide observer (non-owning; nullptr to disable). The
/// observer must outlive its installation.
inline void set_thread_pool_observer(ThreadPoolObserver* observer) noexcept {
  detail::g_pool_observer.store(observer, std::memory_order_release);
}

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion. The task runs
  /// under the submitter's SpanContext and ambient CancellationToken, so
  /// both causality and cancellation survive the thread hop.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    const SpanContext ctx = current_span_context();
    const CancellationToken cancel = current_cancellation_token();
    ThreadPoolObserver* const observer = thread_pool_observer();
    std::size_t depth;
    {
      std::lock_guard lock(mutex_);
      queue_.push(QueuedTask{
          [task, ctx, cancel] {
            SpanScope scope(ctx);
            CancellationScope cancel_scope(cancel);
            (*task)();
          },
          observer != nullptr ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{}});
      depth = queue_.size();
    }
    if (observer != nullptr) observer->on_submit(depth);
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Exceptions from the body are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  /// One queued task plus its enqueue timestamp (default-constructed —
  /// "unknown" — when no observer was installed at submit time, so the
  /// dormant path never reads the clock).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace portatune
