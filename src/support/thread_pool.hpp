// A small fixed-size thread pool with a parallel_for helper.
//
// Used to parallelize embarrassingly parallel inner loops (random-forest
// tree fitting, batch prediction, sweeps over configurations). All
// parallelism in portatune is explicit and goes through this pool, per the
// HPC guideline of keeping thread creation out of hot paths.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace portatune {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Exceptions from the body are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace portatune
