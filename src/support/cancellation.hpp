// Cooperative cancellation: the primitive behind graceful shutdown and
// the hang watchdog.
//
// A CancellationSource owns a flag; every CancellationToken copied from
// it observes that flag. Cancellation is *cooperative*: nothing is
// interrupted — long-running work (an evaluation stall, a search window
// loop) polls cancelled() or parks on wait_for(), and unwinds on its own
// terms. That is what keeps cancelled runs deterministic enough to
// resume: a search that stops "because cancelled" stops at a window
// boundary with a consistent checkpoint, never mid-record.
//
// Like SpanContext, a thread-local *ambient* token rides along so layers
// deep inside an evaluator stack (e.g. the fault injector's simulated
// hang) can observe the cancellation of the attempt or search that
// scheduled them without a token threaded through every signature.
// ThreadPool::submit captures the submitter's ambient token and
// re-installs it around the task, so the ambient token survives the
// thread hop exactly like the span context does.
//
// This header lives in support (not tuner) because ThreadPool needs it,
// and support cannot link tuner.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace portatune {

namespace detail {

/// Shared state of one cancellation domain. The mutex/cv pair exists so
/// wait_for() wakes *immediately* on cancellation instead of timing out;
/// the flag alone would only support polling.
struct CancelState {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> cancelled{false};
};

}  // namespace detail

/// Read-only view of a cancellation domain. Default-constructed tokens
/// are *invalid*: they never report cancellation and wait_for() degrades
/// to a plain sleep — so APIs can take a token by value with `{}` as the
/// "not cancellable" default.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// True once the source requested cancellation (acquire load).
  bool cancelled() const noexcept {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// Park for up to `seconds`: returns true the moment cancellation is
  /// requested, false when the full duration elapsed without it. An
  /// invalid token sleeps the whole duration and returns false.
  bool wait_for(double seconds) const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owner of a cancellation domain. Copyable — copies share the domain, so
/// a watchdog can hold a source whose token is parked on by a worker.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<detail::CancelState>()) {}

  CancellationToken token() const noexcept {
    return CancellationToken(state_);
  }

  /// Idempotent: sets the flag and wakes every wait_for().
  void request_cancel() noexcept;

  bool cancel_requested() const noexcept {
    return state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// The ambient token of the calling thread (invalid when none installed).
CancellationToken current_cancellation_token() noexcept;

/// RAII: install `token` as the calling thread's ambient token, restore
/// the previous one on destruction (mirrors SpanScope).
class CancellationScope {
 public:
  explicit CancellationScope(CancellationToken token) noexcept;
  ~CancellationScope();

  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

 private:
  CancellationToken previous_;
};

}  // namespace portatune
