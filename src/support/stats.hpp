// Descriptive statistics and quantiles.
#pragma once

#include <span>
#include <vector>

namespace portatune {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than two items.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Population (biased, n denominator) variance; used by tree split scoring.
double population_variance(std::span<const double> xs);

/// Quantile with linear interpolation (R type-7, the numpy default).
/// `q` in [0, 1]. Throws on empty input.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Five-number + mean summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0, mean = 0, stddev = 0;
};
Summary summarize(std::span<const double> xs);

/// Indices that would sort `xs` ascending (stable).
std::vector<std::size_t> argsort(std::span<const double> xs);

/// Fractional ranks (1-based, ties receive the average rank), as used by
/// the Spearman correlation coefficient.
std::vector<double> ranks(std::span<const double> xs);

}  // namespace portatune
