#include "support/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace portatune {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  PT_REQUIRE(xs.size() == ys.size(), "pearson: samples differ in length");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  PT_REQUIRE(xs.size() == ys.size(), "spearman: samples differ in length");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double kendall(std::span<const double> xs, std::span<const double> ys) {
  PT_REQUIRE(xs.size() == ys.size(), "kendall: samples differ in length");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                 (n0 - static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double top_set_overlap(std::span<const double> xs, std::span<const double> ys,
                       double top_fraction) {
  PT_REQUIRE(xs.size() == ys.size(), "top_set_overlap: length mismatch");
  PT_REQUIRE(top_fraction > 0.0 && top_fraction <= 1.0,
             "top_fraction must lie in (0,1]");
  if (xs.empty()) return 0.0;
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             top_fraction * static_cast<double>(xs.size()))));
  const auto ox = argsort(xs);
  const auto oy = argsort(ys);
  std::unordered_set<std::size_t> top_y(oy.begin(),
                                        oy.begin() + static_cast<long>(k));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) hits += top_y.count(ox[i]);
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace portatune
