#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace portatune {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double population_variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  PT_REQUIRE(!xs.empty(), "quantile of empty sample");
  PT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile fraction must lie in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.50);
  s.q75 = quantile(xs, 0.75);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

std::vector<std::size_t> argsort(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<double> ranks(std::span<const double> xs) {
  const auto order = argsort(xs);
  std::vector<double> r(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    // Find the run of tied values and assign each the average rank.
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = 0.5 * (static_cast<double>(i + 1) +
                              static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace portatune
