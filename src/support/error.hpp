// Error handling primitives for portatune.
//
// The library throws `portatune::Error` (a std::runtime_error) on contract
// violations in public API entry points. Internal invariants use PT_ASSERT,
// which is compiled in all build types: this is research infrastructure and
// a wrong answer is worse than an abort.
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace portatune {

/// Exception type thrown by all portatune libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Observer invoked (before the throw) every time a PT_REQUIRE /
/// PT_ASSERT fires. Must not throw. The flight recorder registers one so
/// a failed requirement dumps the black box even when the exception is
/// later swallowed; support cannot link obs, hence a plain function
/// pointer rather than a dependency.
using ErrorHook = void (*)(const char* what) noexcept;

namespace detail {

inline std::atomic<ErrorHook> g_error_hook{nullptr};

[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "portatune: requirement `" << cond << "` failed at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  const std::string what = os.str();
  if (ErrorHook hook = g_error_hook.load(std::memory_order_acquire))
    hook(what.c_str());
  throw Error(what);
}

}  // namespace detail

/// Install (or clear, with nullptr) the requirement-failure observer.
/// Returns the previous hook so scoped installers can restore it.
inline ErrorHook set_error_hook(ErrorHook hook) noexcept {
  return detail::g_error_hook.exchange(hook, std::memory_order_acq_rel);
}

}  // namespace portatune

/// Check a caller-facing precondition; throws portatune::Error on failure.
#define PT_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::portatune::detail::throw_error(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Check an internal invariant; also throws (never compiled out).
#define PT_ASSERT(cond) PT_REQUIRE(cond, "internal invariant")
