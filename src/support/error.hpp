// Error handling primitives for portatune.
//
// The library throws `portatune::Error` (a std::runtime_error) on contract
// violations in public API entry points. Internal invariants use PT_ASSERT,
// which is compiled in all build types: this is research infrastructure and
// a wrong answer is worse than an abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace portatune {

/// Exception type thrown by all portatune libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "portatune: requirement `" << cond << "` failed at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace portatune

/// Check a caller-facing precondition; throws portatune::Error on failure.
#define PT_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::portatune::detail::throw_error(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Check an internal invariant; also throws (never compiled out).
#define PT_ASSERT(cond) PT_REQUIRE(cond, "internal invariant")
