#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace portatune {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    std::size_t depth;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    ThreadPoolObserver* const observer = thread_pool_observer();
    if (observer == nullptr) {
      task.fn();
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    // A zero enqueue stamp means the observer was installed after this
    // task was queued; report an unknown (zero) wait rather than a bogus
    // epoch-relative one.
    const double wait =
        task.enqueued.time_since_epoch().count() != 0
            ? std::chrono::duration<double>(start - task.enqueued).count()
            : 0.0;
    observer->on_start(wait, depth);
    task.fn();
    observer->on_finish(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t grain = std::max<std::size_t>(1, n / chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, grain] {
      for (;;) {
        const std::size_t lo = next.fetch_add(grain);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + grain);
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace portatune
