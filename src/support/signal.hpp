// Process-wide graceful shutdown.
//
// One global cancellation domain represents "this process was asked to
// stop". Drivers wire shutdown_token() into their search options and
// evaluator stacks; long-running loops then unwind at the next window
// boundary, flush their checkpoints/journals, and exit with resumable
// state on disk.
//
// install_shutdown_signal_handler() maps SIGINT/SIGTERM onto that domain
// using the self-pipe pattern: the handler only write()s one byte (async-
// signal-safe), and a lazily started watcher thread does the actual
// request_shutdown() — which takes locks and notifies condition variables,
// neither of which is legal inside a signal handler. A *second* signal
// force-exits immediately (handler-side _exit, no flushing): the escape
// hatch when cooperative shutdown itself is stuck.
#pragma once

#include "support/cancellation.hpp"

namespace portatune {

/// Token of the process-wide shutdown domain. Valid from the first call.
CancellationToken shutdown_token() noexcept;

/// True once shutdown was requested (signal or programmatic).
bool shutdown_requested() noexcept;

/// Programmatic shutdown (tests, embedders): cancels the shutdown domain
/// exactly as the first SIGINT/SIGTERM would.
void request_shutdown() noexcept;

/// A function run (on the shutdown watcher thread, not in the signal
/// handler) exactly once when shutdown is first requested — the seam the
/// flight recorder uses to dump its ring before the cooperative unwind
/// begins. Hooks must be fast and must not throw. Registering after
/// shutdown was already requested invokes the hook immediately. A plain
/// function pointer on purpose: hooks reach their state through their own
/// globals, and support stays free of ownership questions.
using ShutdownHook = void (*)() noexcept;
void add_shutdown_hook(ShutdownHook hook) noexcept;
/// Remove a previously added hook (scoped installers; no-op if absent).
void remove_shutdown_hook(ShutdownHook hook) noexcept;

/// Install the SIGINT/SIGTERM handler (POSIX; no-op elsewhere and on
/// repeat calls). First signal: graceful shutdown via the self-pipe;
/// second signal: _exit(128 + signo).
void install_shutdown_signal_handler();

}  // namespace portatune
