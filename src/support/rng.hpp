// Deterministic pseudo-random number generation.
//
// portatune does not use std::mt19937 or the std distributions because the
// distribution algorithms are implementation-defined; every sampled value
// here is reproducible bit-for-bit across standard libraries. The engine is
// xoshiro256** seeded via SplitMix64 (Blackman & Vigna).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune {

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // Expand the 64-bit seed into four lanes via SplitMix64.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      lane = mix64(x);
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // avoid all-zero state
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return hash_to_unit((*this)()); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's rejection method (unbiased).
  std::uint64_t below(std::uint64_t n) noexcept {
    // Debiased multiply-shift; n == 0 is a caller bug but we avoid UB.
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar (deterministic given state).
  double normal() noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (order randomized).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for parallel substreams).
  Rng spawn() noexcept { return Rng(hash_combine((*this)(), (*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace portatune
