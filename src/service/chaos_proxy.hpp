// ChaosProxy: a seeded socket-level fault injector for the tuning
// service.
//
// The proxy listens on its own Unix socket and forwards the
// line-delimited JSON protocol to an upstream daemon, injecting the
// transport failures a real deployment suffers — exactly the ones the
// exactly-once protocol (protocol.hpp) and ResilientClient exist to
// survive:
//
//   delay      hold a reply `delay_seconds` before delivering it
//   hangup     execute the request upstream, then close the client
//              connection without sending any reply bytes
//   tear       deliver only the first half of the reply, then close —
//              the client sees a torn line and must retry
//   blackhole  swallow the request (never forwarded), go silent for
//              `blackhole_hold_seconds`, then close — exercises the
//              client's poll()-based attempt timeout
//
// Faults are applied *per request line*, chosen by a deterministic
// per-connection Rng seeded from `seed ^ connection-index`, so a chaos
// run is replayable. Request lines are forwarded atomically — the proxy
// never tears a *request*: a half-request would be invisible to the
// server's counters and break the loadgen's exact cross-check; replies
// are where the damage goes. hangup and tear close both sides, so the
// server sees a disconnect (which it already tolerates) and the client
// reconnects through its retry loop.
//
// Exactly-once under this proxy is the PR's acceptance proof: for
// hangup/tear faults the request *did execute* upstream, the client
// just never learned — its retry carries the same rid and the server
// replays the cached reply, so the loadgen's client/server op-counter
// cross-check still balances to the request.
//
// Threading: one blocking thread per client connection (each with its
// own fresh upstream connection), plus the accept loop in run(). All
// reads are poll()-timed at 200ms so the cancel token stops the proxy
// promptly. `portatune_chaosproxy` (examples/) wraps run() as a
// standalone tool; `portatune_loadgen --chaos` forks one in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/cancellation.hpp"

namespace portatune::service {

struct ChaosProxyOptions {
  std::uint64_t seed = 1;  ///< fault schedule seed (deterministic)
  double delay_rate = 0.0;
  double delay_seconds = 0.05;
  double tear_rate = 0.0;
  double hangup_rate = 0.0;
  double blackhole_rate = 0.0;
  /// How long a blackholed connection stays silent before closing.
  double blackhole_hold_seconds = 0.5;
};

/// Point-in-time fault tally (safe to read while run() is live).
struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;  ///< lines forwarded upstream
  std::uint64_t delays = 0;
  std::uint64_t tears = 0;
  std::uint64_t hangups = 0;
  std::uint64_t blackholes = 0;
};

class ChaosProxy {
 public:
  ChaosProxy(std::string listen_path, std::string upstream_path,
             ChaosProxyOptions opt = {});

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Serve until `cancel` fires; returns 0. Throws portatune::Error when
  /// the listen socket cannot be created (an unreachable *upstream* is
  /// not an error — connections just close, and clients retry).
  int run(CancellationToken cancel);

  ChaosStats stats() const;

  const std::string& listen_path() const noexcept { return listen_path_; }

 private:
  void serve_connection(int client_fd, std::uint64_t index,
                        CancellationToken cancel);

  std::string listen_path_;
  std::string upstream_path_;
  ChaosProxyOptions opt_;
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> tears_{0};
  std::atomic<std::uint64_t> hangups_{0};
  std::atomic<std::uint64_t> blackholes_{0};
};

}  // namespace portatune::service
