// ResilientClient: the client half of the exactly-once protocol.
//
// ServiceClient (server.hpp) is one connection, and every transport
// failure — a daemon restart, a torn reply, a proxy hangup — surfaces as
// a thrown Error the caller must deal with. ResilientClient wraps that
// transport in the retry discipline that makes such failures invisible:
//
//   * reconnect: a dead connection is re-dialed on the next attempt
//     (counted under stats().reconnects);
//   * per-call deadlines: call() gives up only when
//     `call_deadline_seconds` (or the per-call override) expires — reads
//     are poll()-timed so a blackholed server cannot hang the client
//     past `attempt_timeout_seconds` per attempt;
//   * capped exponential backoff with seeded jitter between attempts
//     (deterministic per `jitter_seed`, so chaos runs are replayable);
//   * automatic rid stamping: every *mutating* request that does not
//     already carry one gets "rid":"<client_id>:<seq>" — the server's
//     reply cache (protocol.hpp) then makes the retry loop exactly-once:
//     a request whose reply was lost is re-sent with the same rid and
//     the server replays the stored reply instead of re-executing;
//   * typed overload handling: a reply carrying a numeric `retry_after`
//     (the server's rate limiter) sleeps exactly that long and retries,
//     counted under stats().throttled, without burning backoff.
//
// A SIGTERM -> restart of the daemon mid-session is therefore invisible
// to a caller looping on call(): the reconnect lands on the restarted
// daemon, the rid replay covers the request that straddled the restart,
// and the protocol's session auto-restore covers the session state.
// `portatune_cli call`, `status --socket`, and the loadgen all sit on
// this class.
//
// Error replies ({"ok":false,...}) without retry_after are returned to
// the caller verbatim — they are the protocol's answer, not a transport
// failure. call() throws portatune::Error only when the deadline expires
// without any reply.
//
// Not thread-safe (one per client thread, like ServiceClient).
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace portatune::service {

struct ResilientClientOptions {
  /// Default per-call budget; call(line, deadline) overrides per call.
  double call_deadline_seconds = 30.0;
  /// Longest a single attempt waits for a reply before reconnecting.
  double attempt_timeout_seconds = 5.0;
  /// Backoff between failed attempts: initial * multiplier^n, capped,
  /// then jittered to [0.5, 1.5)x so restarting fleets do not stampede.
  double backoff_initial_seconds = 0.02;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 1.0;
  std::uint64_t jitter_seed = 1;
  /// The rid prefix. Empty = derived from the pid (distinct per process,
  /// stable within one — exactly what the per-client reply cache keys
  /// on). Forked workers must set their own (the loadgen does).
  std::string client_id;
  /// Stamp rids onto mutating requests that lack one. Off = the caller
  /// manages idempotency itself (or accepts at-least-once).
  bool stamp_rids = true;
};

struct ResilientClientStats {
  std::uint64_t calls = 0;       ///< call() invocations that returned
  std::uint64_t retries = 0;     ///< extra attempts beyond the first
  std::uint64_t reconnects = 0;  ///< re-dials after a dead connection
  std::uint64_t throttled = 0;   ///< retry_after replies honored
};

class ResilientClient {
 public:
  /// Does NOT connect: the first call() dials, so constructing a client
  /// before the daemon is up is fine (the retry loop absorbs the wait).
  explicit ResilientClient(std::string socket_path,
                           ResilientClientOptions opt = {});
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Send `line` (rid-stamped when mutating), return the reply line.
  /// Retries through transport failures until the deadline; throws
  /// portatune::Error when it expires without a reply.
  std::string call(const std::string& line);
  std::string call(const std::string& line, double deadline_seconds);

  const ResilientClientStats& stats() const noexcept { return stats_; }
  const std::string& client_id() const noexcept { return client_id_; }

 private:
  void disconnect() noexcept;
  bool connect_once() noexcept;
  bool send_all(const std::string& bytes) noexcept;
  /// Poll-timed read of one reply line; false = connection dead or
  /// attempt timed out (caller reconnects).
  bool read_reply(double attempt_deadline_mono, std::string& reply);
  std::string stamp_rid(const std::string& line);

  std::string socket_path_;
  ResilientClientOptions opt_;
  std::string client_id_;
  Rng jitter_;
  std::uint64_t seq_ = 0;
  int fd_ = -1;
  std::string buf_;  ///< reply bytes past the last returned line
  bool connected_once_ = false;
  ResilientClientStats stats_;
};

}  // namespace portatune::service
