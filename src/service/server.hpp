// Unix-domain-socket front end for the tuning service.
//
// `portatune_cli serve --socket <path>` runs this loop: a stream socket
// accepting multiple concurrent clients, each speaking the line-delimited
// JSON protocol (protocol.hpp). The loop is single-threaded poll()-based —
// requests from all clients serialize through one ServiceProtocol, which
// is plenty for a control plane (the expensive work, evaluation fan-out,
// happens inside the service's thread pool during `step`).
//
// Shutdown has two distinct exits, mirroring the run orchestration:
//   * a client sends {"op":"shutdown"}  -> checkpoint all sessions,
//     remove the socket, exit code 0 (deliberate stop);
//   * the cancel token fires (SIGTERM/SIGINT via the installed handler)
//     -> checkpoint all sessions, remove the socket, exit code 3
//     (interrupted but resumable — the same convention the run
//     orchestrator uses, so wrappers treat both uniformly).
// Either way every open session's checkpoint.csv is current on exit, and
// a later `serve` on the same data dir can `resume` each one.
#pragma once

#include <string>

#include "service/service.hpp"
#include "support/cancellation.hpp"

namespace portatune::service {

/// Serve `svc` on a Unix socket at `socket_path` (an existing socket file
/// there is replaced). Blocks until a shutdown op (returns 0) or until
/// `cancel` fires (returns 3). Throws portatune::Error when the socket
/// cannot be created. On non-UNIX builds, throws unconditionally.
int serve_unix_socket(TuningService& svc, const std::string& socket_path,
                      CancellationToken cancel);

/// One-shot client: connect to the socket, send `line` (a newline is
/// appended), and return the single reply line (without its newline).
/// Throws portatune::Error when the server is unreachable or hangs up
/// before replying. `portatune_cli call` and the CI chaos test use this.
std::string call_unix_socket(const std::string& socket_path,
                             const std::string& line);

}  // namespace portatune::service
