// Unix-domain-socket front end for the tuning service.
//
// `portatune_cli serve --socket <path>` runs this loop: a stream socket
// accepting multiple concurrent clients, each speaking the line-delimited
// JSON protocol (protocol.hpp). The loop is single-threaded poll()-based —
// requests from all clients serialize through one ServiceProtocol, which
// is plenty for a control plane (the expensive work, evaluation fan-out,
// happens inside the service's thread pool during `step`).
//
// Shutdown has two distinct exits, mirroring the run orchestration:
//   * a client sends {"op":"shutdown"}  -> checkpoint all sessions,
//     remove the socket, exit code 0 (deliberate stop);
//   * the cancel token fires (SIGTERM/SIGINT via the installed handler)
//     -> checkpoint all sessions, remove the socket, exit code 3
//     (interrupted but resumable — the same convention the run
//     orchestrator uses, so wrappers treat both uniformly).
// Either way every open session's checkpoint.csv is current on exit, and
// a later `serve` on the same data dir can `resume` each one.
//
// Wire observability (the transport half; the per-op half lives in the
// protocol): the loop maintains
//
//   server.clients_accepted / .clients_disconnected    counters
//   server.clients_connected / .requests_in_flight     gauges
//   server.bytes_in / .bytes_out                       counters
//   server.lines_rejected                              counter (oversized)
//   server.poll.wait_seconds                           histogram
//
// and, when `ServeOptions::status_path` is set, writes an atomic
// `server_status.json` heartbeat every `status_every_seconds` (schema
// `portatune_server_status` v1: pid, uptime, client/request totals,
// session/store/cache summary, and a per-op count/errors/p50/p95/p99
// table) — the service twin of the run orchestrator's status file, and
// what `portatune_cli status` reads when the daemon is unreachable.
//
// Defence: a line longer than `max_line_bytes` (complete or still
// unterminated) answers {"ok":false,"error":...} and closes that client —
// a runaway or malicious writer cannot grow a buffer unboundedly or
// starve the other clients.
//
// Session leases: with `lease_seconds` > 0 the loop's tick sweeps for
// sessions no client op has touched within the lease. Each one is
// checkpointed and evicted from the live map (counted under
// `server.sessions_reclaimed`, Warn `server.session_reclaimed`) — NOT
// closed: a returning client's next op transparently resumes it from
// the lease checkpoint through the protocol's restore fallback. An
// abandoned client therefore leaks nothing but a directory on disk.
//
// Overload protection: with `client_rate_limit` > 0 each connection gets
// a token bucket (`client_rate_burst` deep, refilled at the limit). A
// request arriving with the bucket empty is answered by a typed error —
// {"ok":false,"error":"rate limit exceeded","retry_after":<seconds>} —
// without touching the protocol (it does not consume op counters), and
// ResilientClient sleeps `retry_after` before retrying. Counted under
// `server.requests_throttled`.
//
// Exactly-once across restarts: teardown (both exit paths) flushes every
// client's pending reply bytes, then persists the protocol's reply cache
// and counters via persist_state() — see protocol.hpp.
#pragma once

#include <string>

#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/cancellation.hpp"

namespace portatune::service {

struct ServeOptions {
  /// Heartbeat period; <= 0 disables the status file entirely.
  double status_every_seconds = 1.0;
  /// Where the heartbeat goes (atomically replaced). Empty = disabled.
  std::string status_path;
  /// Longest accepted request line (bytes, newline excluded).
  std::size_t max_line_bytes = 1 << 20;
  /// Sessions idle longer than this are checkpointed and evicted by the
  /// loop's lease sweep; <= 0 disables leasing (sessions live forever).
  double lease_seconds = 0.0;
  /// How often the lease sweep runs (it walks every session).
  double lease_check_every_seconds = 1.0;
  /// Per-client sustained requests/second; <= 0 disables throttling.
  double client_rate_limit = 0.0;
  /// Token-bucket depth: bursts up to this many requests are absorbed.
  double client_rate_burst = 32.0;
  /// Request-layer knobs (telemetry, slow-request threshold, the rid
  /// replay cache and its state_path).
  ProtocolOptions protocol;
};

/// Serve `svc` on a Unix socket at `socket_path` (an existing socket file
/// there is replaced). Blocks until a shutdown op (returns 0) or until
/// `cancel` fires (returns 3). Throws portatune::Error when the socket
/// cannot be created. On non-UNIX builds, throws unconditionally.
int serve_unix_socket(TuningService& svc, const std::string& socket_path,
                      CancellationToken cancel, ServeOptions opt = {});

/// Persistent client: one connection, many calls. Each call() sends one
/// request line (newline appended) and blocks for the single reply line.
/// Throws portatune::Error when the server is unreachable or hangs up.
/// The loadgen's sessions live on one of these; `portatune_cli call`
/// wraps one per invocation. Not thread-safe.
class ServiceClient {
 public:
  /// Connects immediately; throws when the socket is unreachable.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Send `line`, return the reply line (without its newline).
  std::string call(const std::string& line);

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::string buf_;  ///< reply bytes past the last returned line
};

/// One-shot client: connect, send `line`, return the single reply line.
/// `portatune_cli call` and the CI chaos test use this.
std::string call_unix_socket(const std::string& socket_path,
                             const std::string& line);

}  // namespace portatune::service
