#include "service/service.hpp"

#include <cctype>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "tuner/persistence.hpp"
#include "tuner/transfer.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;

std::string session_dir(const std::string& data_dir, const std::string& id) {
  return data_dir + "/sessions/" + id;
}

SurrogateStoreOptions store_options(const TuningServiceOptions& opt) {
  PT_REQUIRE(!opt.data_dir.empty(), "service needs a data directory");
  return SurrogateStoreOptions{opt.data_dir + "/store", opt.forest};
}

Value fingerprint_json(const std::vector<double>& fp) {
  std::vector<Value> items;
  items.reserve(fp.size());
  for (double v : fp) items.push_back(Value::make_number(v));
  return Value::make_array(std::move(items));
}

/// Session ids become directory names; keep them filesystem- and
/// protocol-safe.
void require_valid_id(const std::string& id) {
  PT_REQUIRE(!id.empty() && id.size() <= 128, "session id must be 1..128 chars");
  for (char c : id)
    PT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                   c == '_' || c == '.',
               "session id '" + id +
                   "' may only contain [A-Za-z0-9._-]");
  PT_REQUIRE(id != "." && id != "..", "session id '" + id + "' is reserved");
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionHandle

tuner::SessionStepStats SessionHandle::step(std::size_t n) {
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  const tuner::SessionStepStats stats = session_->step(n);
  publish_gauges_locked();
  return stats;
}

std::vector<tuner::ParamConfig> SessionHandle::suggest(std::size_t n) {
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  return session_->suggest(n);
}

void SessionHandle::report(const tuner::ParamConfig& config, double seconds) {
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  session_->report(config, seconds);
  // An externally measured result is as reusable as a service-side one.
  if (seconds > 0.0)
    service_->cache().insert(cached_->scope(),
                             space().config_hash(config), seconds);
  publish_gauges_locked();
}

void SessionHandle::checkpoint() {
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  persist_checkpoint_locked();
  persist_meta_locked();
}

tuner::SearchTrace SessionHandle::close() {
  std::lock_guard lock(mutex_);
  if (closed_) return session_->trace();
  persist_checkpoint_locked();
  session_->close();
  closed_ = true;
  persist_meta_locked();
  const tuner::SearchTrace& trace = session_->trace();
  // Publish the training trace so future sessions on similar machines
  // start warm. An empty trace (closed before any step) has nothing to
  // teach.
  if (!trace.empty())
    service_->publish_trace(cfg_.problem(), cfg_.machine(), trace, space(),
                            fingerprint_);
  publish_gauges_locked();
  return trace;
}

SessionInfo SessionHandle::info() const {
  std::lock_guard lock(mutex_);
  SessionInfo s;
  s.id = id_;
  s.problem = cfg_.problem();
  s.machine = cfg_.machine();
  s.evals = session_->trace().size();
  s.budget = cfg_.max_evals();
  s.best_seconds = session_->trace().best_seconds();
  s.warm = warm_model_ != nullptr;
  s.warm_source = warm_source_;
  s.closed = closed_;
  return s;
}

tuner::SearchTrace SessionHandle::trace_snapshot() const {
  std::lock_guard lock(mutex_);
  return session_->trace();
}

void SessionHandle::persist_meta_locked() const {
  std::vector<std::pair<std::string, Value>> m;
  m.emplace_back("portatune_session", Value::make_number(1));
  m.emplace_back("id", Value::make_string(id_));
  m.emplace_back("problem", Value::make_string(cfg_.problem()));
  m.emplace_back("machine", Value::make_string(cfg_.machine()));
  m.emplace_back("seed", Value::make_number(static_cast<double>(cfg_.seed())));
  m.emplace_back("max_evals",
                 Value::make_number(static_cast<double>(cfg_.max_evals())));
  m.emplace_back("pool_size",
                 Value::make_number(static_cast<double>(cfg_.pool_size())));
  m.emplace_back("eval_threads",
                 Value::make_number(static_cast<double>(cfg_.eval_threads())));
  m.emplace_back("kernel_threads",
                 Value::make_number(static_cast<double>(cfg_.kernel_threads())));
  m.emplace_back("warm_key", Value::make_string(warm_key_));
  m.emplace_back("warm_source", Value::make_string(warm_source_));
  m.emplace_back("fingerprint", fingerprint_json(fingerprint_));
  m.emplace_back("closed", Value::make_bool(closed_));
  m.emplace_back("evals", Value::make_number(
                              static_cast<double>(session_->trace().size())));
  m.emplace_back("best_seconds",
                 Value::make_number(session_->trace().best_seconds()));
  atomic_write_file(dir_ + "/meta.json",
                    Value::make_object(std::move(m)).dump() + "\n");
}

void SessionHandle::persist_checkpoint_locked() const {
  tuner::save_checkpoint_csv(dir_ + "/checkpoint.csv",
                             session_->checkpoint(), space());
}

void SessionHandle::publish_gauges_locked() const {
  auto& reg = obs::MetricsRegistry::current();
  const std::string prefix = "service.session." + id_;
  reg.gauge(prefix + ".evals")
      .set(static_cast<double>(session_->trace().size()));
  reg.gauge(prefix + ".best_seconds").set(session_->trace().best_seconds());
}

// ---------------------------------------------------------------------------
// TuningService

TuningService::TuningService(TuningServiceOptions opt)
    : opt_(std::move(opt)),
      cache_(EvalCacheOptions{opt_.cache_capacity}),
      store_(store_options(opt_)) {
  ensure_directory(opt_.data_dir + "/sessions");
}

TuningService::~TuningService() {
  try {
    checkpoint_all();
  } catch (...) {
    // Destructor path: best-effort persistence only.
  }
}

std::unique_ptr<SessionHandle> TuningService::build_session(
    const std::string& id, const apps::TuningConfig& cfg, bool resuming) {
  cfg.validate();
  auto h = std::unique_ptr<SessionHandle>(new SessionHandle());
  h->service_ = this;
  h->id_ = id;
  h->dir_ = session_dir(opt_.data_dir, id);
  h->cfg_ = cfg;
  ensure_directory(h->dir_);

  h->stack_ = cfg.make_stack(apps::StackRole::Single);
  h->cached_ = std::make_unique<CachedEvaluator>(*h->stack_, cache_);

  if (resuming) {
    // The fingerprint was measured at open; reuse it (same machine, same
    // canonical probes — re-measuring is pure cache traffic).
    const Value meta =
        Value::parse(read_file(h->dir_ + "/meta.json"));
    for (const Value& v : meta.at("fingerprint").as_array())
      h->fingerprint_.push_back(v.as_number());
    // The warm decision is part of the session's identity: replaying the
    // draw/rank order requires the *same* surrogate, so resume loads the
    // recorded store entry rather than re-running nearest() against a
    // store that may have changed underneath.
    h->warm_key_ = meta.at("warm_key").as_string();
    h->warm_source_ = meta.at("warm_source").as_string();
    if (!h->warm_key_.empty()) {
      const StoreEntry* entry = store_.find(h->warm_key_);
      PT_REQUIRE(entry != nullptr,
                 "session '" + id + "' warmed from store entry '" +
                     h->warm_key_ + "', which no longer exists");
      h->warm_model_ = store_.load_surrogate(*entry, h->cached_->space());
    }
    if (file_exists(h->dir_ + "/checkpoint.csv"))
      h->resume_snapshot_ = tuner::load_checkpoint_csv(
          h->dir_ + "/checkpoint.csv", h->cached_->space());
  } else {
    h->fingerprint_ =
        measure_fingerprint(*h->cached_, opt_.fingerprint_probes);
    if (const auto match = store_.nearest(cfg.problem(), h->fingerprint_)) {
      h->warm_key_ = match->entry.key;
      h->warm_source_ = match->entry.machine;
      h->warm_model_ =
          store_.load_surrogate(match->entry, h->cached_->space());
    }
  }

  tuner::SessionOptions opts = cfg.session_options(id);
  opts.warm_model = h->warm_model_.get();
  if (h->resume_snapshot_) opts.resume = &*h->resume_snapshot_;
  h->session_ = std::make_unique<tuner::TuningSession>(*h->cached_, opts);
  h->resume_snapshot_.reset();  // replayed; the session owns state now

  h->persist_meta_locked();  // handle not yet visible: no lock needed
  h->publish_gauges_locked();
  return h;
}

SessionHandle& TuningService::open(const std::string& id,
                                   const apps::TuningConfig& cfg) {
  require_valid_id(id);
  std::lock_guard lock(mutex_);
  PT_REQUIRE(sessions_.find(id) == sessions_.end(),
             "session '" + id + "' is already open");
  const std::string meta_path =
      session_dir(opt_.data_dir, id) + "/meta.json";
  if (file_exists(meta_path)) {
    const Value meta = Value::parse(read_file(meta_path));
    const Value* closed = meta.find("closed");
    PT_REQUIRE(closed != nullptr && closed->as_bool(),
               "session '" + id +
                   "' has a live checkpoint on disk; resume it instead "
                   "of opening a new session with the same id");
  }
  auto h = build_session(id, cfg, /*resuming=*/false);
  SessionHandle& ref = *h;
  sessions_.emplace(id, std::move(h));
  return ref;
}

SessionHandle& TuningService::resume(const std::string& id) {
  require_valid_id(id);
  std::lock_guard lock(mutex_);
  PT_REQUIRE(sessions_.find(id) == sessions_.end(),
             "session '" + id + "' is already open in this service");
  const std::string dir = session_dir(opt_.data_dir, id);
  PT_REQUIRE(file_exists(dir + "/meta.json"),
             "no checkpointed session '" + id + "' under " + opt_.data_dir);
  const Value meta = Value::parse(read_file(dir + "/meta.json"));
  PT_REQUIRE(!meta.at("closed").as_bool(),
             "session '" + id + "' was closed; open a new session instead");
  apps::TuningConfig cfg;
  cfg.problem(meta.at("problem").as_string())
      .machine(meta.at("machine").as_string())
      .seed(static_cast<std::uint64_t>(meta.at("seed").as_number()))
      .max_evals(static_cast<std::size_t>(meta.at("max_evals").as_number()))
      .pool_size(static_cast<std::size_t>(meta.at("pool_size").as_number()))
      .eval_threads(
          static_cast<std::size_t>(meta.at("eval_threads").as_number()))
      .kernel_threads(
          static_cast<int>(meta.at("kernel_threads").as_number()));
  auto h = build_session(id, cfg, /*resuming=*/true);
  SessionHandle& ref = *h;
  sessions_.emplace(id, std::move(h));
  return ref;
}

SessionHandle* TuningService::find(const std::string& id) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<SessionInfo> TuningService::sessions() const {
  // Copy the handle pointers under the registry lock, then query each
  // without it (info() takes the per-handle lock; holding both here
  // would invert the close() -> publish_trace() lock order).
  std::vector<const SessionHandle*> handles;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (const auto& [_, h] : sessions_) handles.push_back(h.get());
  }
  std::vector<SessionInfo> out;
  out.reserve(handles.size());
  for (const SessionHandle* h : handles) out.push_back(h->info());
  return out;
}

void TuningService::checkpoint_all() {
  std::vector<SessionHandle*> handles;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (auto& [_, h] : sessions_) handles.push_back(h.get());
  }
  for (SessionHandle* h : handles)
    if (!h->info().closed) h->checkpoint();
}

const StoreEntry& TuningService::publish_trace(
    const std::string& problem, const std::string& machine,
    const tuner::SearchTrace& trace, const tuner::ParamSpace& space,
    std::vector<double> fingerprint) {
  std::lock_guard lock(mutex_);
  return store_.put(problem, machine, trace, space, std::move(fingerprint));
}

void TuningService::publish_metrics() {
  cache_.publish_metrics();
  std::vector<const SessionHandle*> handles;
  std::size_t store_entries = 0;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (const auto& [_, h] : sessions_) handles.push_back(h.get());
    store_entries = store_.size();
  }
  std::size_t open = 0;
  for (const SessionHandle* h : handles)
    if (!h->info().closed) ++open;
  auto& reg = obs::MetricsRegistry::current();
  reg.gauge("service.sessions_active").set(static_cast<double>(open));
  reg.gauge("service.store.entries").set(static_cast<double>(store_entries));
}

}  // namespace portatune::service
