#include "service/service.hpp"

#include <cctype>
#include <utility>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "tuner/persistence.hpp"
#include "tuner/transfer.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;

std::string session_dir(const std::string& data_dir, const std::string& id) {
  return data_dir + "/sessions/" + id;
}

SurrogateStoreOptions store_options(const TuningServiceOptions& opt) {
  PT_REQUIRE(!opt.data_dir.empty(), "service needs a data directory");
  return SurrogateStoreOptions{opt.data_dir + "/store", opt.forest};
}

Value fingerprint_json(const std::vector<double>& fp) {
  std::vector<Value> items;
  items.reserve(fp.size());
  for (double v : fp) items.push_back(Value::make_number(v));
  return Value::make_array(std::move(items));
}

using Members = std::vector<std::pair<std::string, Value>>;

Value num(double v) { return Value::make_number(v); }
Value num(std::size_t v) { return Value::make_number(static_cast<double>(v)); }

/// The full builder state, so resume() reconstructs the exact evaluator
/// stack and search options the session was opened with. Runtime-only
/// members — the cancel token, the guard's on_transition callback and
/// refit_source pointer — cannot be persisted and reset to defaults.
Value config_to_json(const apps::TuningConfig& cfg) {
  const ml::ForestParams& fp = cfg.forest();
  Members forest;
  forest.emplace_back("num_trees", num(fp.num_trees));
  forest.emplace_back("max_features", num(fp.max_features));
  forest.emplace_back("max_depth", num(fp.max_depth));
  forest.emplace_back("min_samples_leaf", num(fp.min_samples_leaf));
  forest.emplace_back("min_samples_split", num(fp.min_samples_split));
  forest.emplace_back("seed", num(static_cast<double>(fp.seed)));
  forest.emplace_back("parallel_fit", Value::make_bool(fp.parallel_fit));

  const tuner::FailureBudget& fb = cfg.failure_budget();
  Members budget;
  budget.emplace_back("max_consecutive", num(fb.max_consecutive));
  budget.emplace_back("max_total", num(fb.max_total));

  const tuner::GuardOptions& g = cfg.guard();
  Members guard;
  guard.emplace_back("enabled", Value::make_bool(g.enabled));
  guard.emplace_back("window", num(g.window));
  guard.emplace_back("min_observations", num(g.min_observations));
  guard.emplace_back("floor", num(g.floor));
  guard.emplace_back("disable_floor", num(g.disable_floor));
  guard.emplace_back("max_consecutive_prunes", num(g.max_consecutive_prunes));
  guard.emplace_back("refit_after", num(g.refit_after));
  guard.emplace_back("refit_target_weight", num(g.refit_target_weight));
  guard.emplace_back("sync_window", num(g.sync_window));

  const tuner::FaultProfile& fa = cfg.faults();
  Members faults;
  faults.emplace_back("transient_rate", num(fa.transient_rate));
  faults.emplace_back("deterministic_rate", num(fa.deterministic_rate));
  faults.emplace_back("hang_rate", num(fa.hang_rate));
  faults.emplace_back("hang_stall_seconds", num(fa.hang_stall_seconds));
  faults.emplace_back("delay_rate", num(fa.delay_rate));
  faults.emplace_back("delay_seconds", num(fa.delay_seconds));
  faults.emplace_back("spike_rate", num(fa.spike_rate));
  faults.emplace_back("spike_factor", num(fa.spike_factor));
  faults.emplace_back("seed", num(static_cast<double>(fa.seed)));

  const tuner::RetryPolicy& rp = cfg.retry();
  Members retry;
  retry.emplace_back("max_attempts", num(rp.max_attempts));
  retry.emplace_back("backoff_initial", num(rp.backoff_initial));
  retry.emplace_back("backoff_multiplier", num(rp.backoff_multiplier));
  retry.emplace_back("backoff_max", num(rp.backoff_max));
  retry.emplace_back("sleep_on_backoff", Value::make_bool(rp.sleep_on_backoff));
  retry.emplace_back("timeout_seconds", num(rp.timeout_seconds));
  retry.emplace_back("quarantine_deterministic",
                     Value::make_bool(rp.quarantine_deterministic));
  retry.emplace_back("quarantine_timeout",
                     Value::make_bool(rp.quarantine_timeout));
  retry.emplace_back("quarantine_exhausted",
                     Value::make_bool(rp.quarantine_exhausted));

  Members m;
  m.emplace_back("problem", Value::make_string(cfg.problem()));
  m.emplace_back("machine", Value::make_string(cfg.machine()));
  m.emplace_back("source_machine", Value::make_string(cfg.source_machine()));
  m.emplace_back("compiler", num(static_cast<double>(
                                 static_cast<int>(cfg.compiler()))));
  m.emplace_back("kernel_threads", num(static_cast<double>(
                                       cfg.kernel_threads())));
  m.emplace_back("max_evals", num(cfg.max_evals()));
  m.emplace_back("seed", num(static_cast<double>(cfg.seed())));
  m.emplace_back("pool_size", num(cfg.pool_size()));
  m.emplace_back("delta_percent", num(cfg.delta_percent()));
  m.emplace_back("forest", Value::make_object(std::move(forest)));
  m.emplace_back("failure_budget", Value::make_object(std::move(budget)));
  m.emplace_back("guard", Value::make_object(std::move(guard)));
  m.emplace_back("faults", Value::make_object(std::move(faults)));
  m.emplace_back("observe", Value::make_bool(cfg.observe()));
  m.emplace_back("observe_label", Value::make_string(cfg.observe_label()));
  m.emplace_back("resilient", Value::make_bool(cfg.resilient()));
  m.emplace_back("retry", Value::make_object(std::move(retry)));
  m.emplace_back("eval_threads", num(cfg.eval_threads()));
  m.emplace_back("batch_width", num(cfg.batch_width()));
  m.emplace_back("eval_deadline_seconds", num(cfg.eval_deadline_seconds()));
  return Value::make_object(std::move(m));
}

apps::TuningConfig config_from_json(const Value& v) {
  const auto size_at = [](const Value& o, const char* key) {
    return static_cast<std::size_t>(o.at(key).as_number());
  };

  ml::ForestParams fp;
  const Value& forest = v.at("forest");
  fp.num_trees = size_at(forest, "num_trees");
  fp.max_features = size_at(forest, "max_features");
  fp.max_depth = size_at(forest, "max_depth");
  fp.min_samples_leaf = size_at(forest, "min_samples_leaf");
  fp.min_samples_split = size_at(forest, "min_samples_split");
  fp.seed = static_cast<std::uint64_t>(forest.at("seed").as_number());
  fp.parallel_fit = forest.at("parallel_fit").as_bool();

  tuner::FailureBudget fb;
  const Value& budget = v.at("failure_budget");
  fb.max_consecutive = size_at(budget, "max_consecutive");
  fb.max_total = size_at(budget, "max_total");

  tuner::GuardOptions g;
  const Value& guard = v.at("guard");
  g.enabled = guard.at("enabled").as_bool();
  g.window = size_at(guard, "window");
  g.min_observations = size_at(guard, "min_observations");
  g.floor = guard.at("floor").as_number();
  g.disable_floor = guard.at("disable_floor").as_number();
  g.max_consecutive_prunes = size_at(guard, "max_consecutive_prunes");
  g.refit_after = size_at(guard, "refit_after");
  g.refit_target_weight = size_at(guard, "refit_target_weight");
  g.sync_window = size_at(guard, "sync_window");

  tuner::FaultProfile fa;
  const Value& faults = v.at("faults");
  fa.transient_rate = faults.at("transient_rate").as_number();
  fa.deterministic_rate = faults.at("deterministic_rate").as_number();
  fa.hang_rate = faults.at("hang_rate").as_number();
  fa.hang_stall_seconds = faults.at("hang_stall_seconds").as_number();
  fa.delay_rate = faults.at("delay_rate").as_number();
  fa.delay_seconds = faults.at("delay_seconds").as_number();
  fa.spike_rate = faults.at("spike_rate").as_number();
  fa.spike_factor = faults.at("spike_factor").as_number();
  fa.seed = static_cast<std::uint64_t>(faults.at("seed").as_number());

  tuner::RetryPolicy rp;
  const Value& retry = v.at("retry");
  rp.max_attempts = size_at(retry, "max_attempts");
  rp.backoff_initial = retry.at("backoff_initial").as_number();
  rp.backoff_multiplier = retry.at("backoff_multiplier").as_number();
  rp.backoff_max = retry.at("backoff_max").as_number();
  rp.sleep_on_backoff = retry.at("sleep_on_backoff").as_bool();
  rp.timeout_seconds = retry.at("timeout_seconds").as_number();
  rp.quarantine_deterministic =
      retry.at("quarantine_deterministic").as_bool();
  rp.quarantine_timeout = retry.at("quarantine_timeout").as_bool();
  rp.quarantine_exhausted = retry.at("quarantine_exhausted").as_bool();

  apps::TuningConfig cfg;
  cfg.problem(v.at("problem").as_string())
      .machine(v.at("machine").as_string())
      .source_machine(v.at("source_machine").as_string())
      .compiler(static_cast<sim::Compiler>(
          static_cast<int>(v.at("compiler").as_number())))
      .kernel_threads(static_cast<int>(v.at("kernel_threads").as_number()))
      .max_evals(size_at(v, "max_evals"))
      .seed(static_cast<std::uint64_t>(v.at("seed").as_number()))
      .pool_size(size_at(v, "pool_size"))
      .delta_percent(v.at("delta_percent").as_number())
      .forest(fp)
      .failure_budget(fb)
      .guard(std::move(g))
      .faults(fa)
      .observe(v.at("observe").as_bool())
      .observe_label(v.at("observe_label").as_string())
      .resilient(v.at("resilient").as_bool())
      .retry(rp)
      .eval_threads(size_at(v, "eval_threads"))
      .batch_width(size_at(v, "batch_width"))
      .eval_deadline_seconds(v.at("eval_deadline_seconds").as_number());
  return cfg;
}

/// Session ids become directory names; keep them filesystem- and
/// protocol-safe.
void require_valid_id(const std::string& id) {
  PT_REQUIRE(!id.empty() && id.size() <= 128, "session id must be 1..128 chars");
  for (char c : id)
    PT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                   c == '_' || c == '.',
               "session id '" + id +
                   "' may only contain [A-Za-z0-9._-]");
  PT_REQUIRE(id != "." && id != "..", "session id '" + id + "' is reserved");
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionHandle

tuner::SessionStepStats SessionHandle::step(std::size_t n) {
  // Span before the lock: lock wait is part of what the caller endured,
  // and the evaluations the step fans out parent under this scope.
  obs::ScopedTimer span("session.step", "service", {{"session", id_}});
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  last_touched_ = obs::mono_now();
  const tuner::SessionStepStats stats = session_->step(n);
  publish_gauges_locked();
  return stats;
}

std::vector<tuner::ParamConfig> SessionHandle::suggest(std::size_t n) {
  obs::ScopedTimer span("session.suggest", "service", {{"session", id_}});
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  last_touched_ = obs::mono_now();
  return session_->suggest(n);
}

void SessionHandle::report(const tuner::ParamConfig& config, double seconds) {
  obs::ScopedTimer span("session.report", "service", {{"session", id_}});
  std::lock_guard lock(mutex_);
  PT_REQUIRE(!closed_, "session '" + id_ + "' is closed");
  last_touched_ = obs::mono_now();
  session_->report(config, seconds);
  // An externally measured result is as reusable as a service-side one.
  if (seconds > 0.0)
    service_->cache().insert(cached_->scope(),
                             space().config_hash(config), seconds);
  publish_gauges_locked();
}

void SessionHandle::checkpoint() {
  std::lock_guard lock(mutex_);
  // A closed session persisted its final state at close; a checkpoint
  // racing with close() (the SIGTERM sweep) is a no-op, not an error.
  if (closed_) return;
  last_touched_ = obs::mono_now();
  persist_checkpoint_locked();
  persist_meta_locked();
}

tuner::SearchTrace SessionHandle::close() {
  obs::ScopedTimer span("session.close", "service", {{"session", id_}});
  std::lock_guard lock(mutex_);
  if (closed_) return session_->trace();
  last_touched_ = obs::mono_now();
  persist_checkpoint_locked();
  session_->close();
  closed_ = true;
  persist_meta_locked();
  const tuner::SearchTrace& trace = session_->trace();
  // Publish the training trace so future sessions on similar machines
  // start warm. An empty trace (closed before any step) has nothing to
  // teach.
  if (!trace.empty())
    service_->publish_trace(cfg_.problem(), cfg_.machine(), trace, space(),
                            fingerprint_);
  publish_gauges_locked();
  return trace;
}

SessionInfo SessionHandle::info() const {
  std::lock_guard lock(mutex_);
  SessionInfo s;
  s.id = id_;
  s.problem = cfg_.problem();
  s.machine = cfg_.machine();
  s.evals = session_->trace().size();
  s.budget = cfg_.max_evals();
  s.best_seconds = session_->trace().best_seconds();
  s.warm = warm_model_ != nullptr;
  s.warm_source = warm_source_;
  s.idle_seconds = obs::mono_now() - last_touched_;
  s.closed = closed_;
  return s;
}

tuner::SearchTrace SessionHandle::trace_snapshot() const {
  std::lock_guard lock(mutex_);
  return session_->trace();
}

double SessionHandle::idle_seconds() const {
  std::lock_guard lock(mutex_);
  return obs::mono_now() - last_touched_;
}

void SessionHandle::persist_meta_locked() const {
  std::vector<std::pair<std::string, Value>> m;
  m.emplace_back("portatune_session", Value::make_number(1));
  m.emplace_back("id", Value::make_string(id_));
  m.emplace_back("problem", Value::make_string(cfg_.problem()));
  m.emplace_back("machine", Value::make_string(cfg_.machine()));
  m.emplace_back("config", config_to_json(cfg_));
  m.emplace_back("warm_key", Value::make_string(warm_key_));
  m.emplace_back("warm_source", Value::make_string(warm_source_));
  m.emplace_back("fingerprint", fingerprint_json(fingerprint_));
  m.emplace_back("closed", Value::make_bool(closed_));
  m.emplace_back("evals", Value::make_number(
                              static_cast<double>(session_->trace().size())));
  m.emplace_back("best_seconds",
                 Value::make_number(session_->trace().best_seconds()));
  atomic_write_file(dir_ + "/meta.json",
                    Value::make_object(std::move(m)).dump() + "\n");
}

void SessionHandle::persist_checkpoint_locked() const {
  tuner::save_checkpoint_csv(dir_ + "/checkpoint.csv",
                             session_->checkpoint(), space());
}

void SessionHandle::publish_gauges_locked() const {
  auto& reg = obs::MetricsRegistry::current();
  const std::string prefix = "service.session." + id_;
  reg.gauge(prefix + ".evals")
      .set(static_cast<double>(session_->trace().size()));
  reg.gauge(prefix + ".best_seconds").set(session_->trace().best_seconds());
}

// ---------------------------------------------------------------------------
// TuningService

TuningService::TuningService(TuningServiceOptions opt)
    : opt_(std::move(opt)),
      cache_(EvalCacheOptions{opt_.cache_capacity}),
      store_(store_options(opt_)) {
  ensure_directory(opt_.data_dir + "/sessions");
}

TuningService::~TuningService() {
  try {
    checkpoint_all();
  } catch (...) {
    // Destructor path: best-effort persistence only.
  }
}

std::unique_ptr<SessionHandle> TuningService::build_session(
    const std::string& id, const apps::TuningConfig& cfg, bool resuming) {
  cfg.validate();
  auto h = std::unique_ptr<SessionHandle>(new SessionHandle());
  h->service_ = this;
  h->id_ = id;
  h->dir_ = session_dir(opt_.data_dir, id);
  h->cfg_ = cfg;
  ensure_directory(h->dir_);

  h->stack_ = cfg.make_stack(apps::StackRole::Single);
  h->cached_ = std::make_unique<CachedEvaluator>(*h->stack_, cache_);

  if (resuming) {
    // The fingerprint was measured at open; reuse it (same machine, same
    // canonical probes — re-measuring is pure cache traffic).
    const Value meta =
        Value::parse(read_file(h->dir_ + "/meta.json"));
    for (const Value& v : meta.at("fingerprint").as_array())
      h->fingerprint_.push_back(v.as_number());
    // The warm decision is part of the session's identity: replaying the
    // draw/rank order requires the *same* surrogate, so resume loads the
    // recorded store entry rather than re-running nearest() against a
    // store that may have changed underneath.
    h->warm_key_ = meta.at("warm_key").as_string();
    h->warm_source_ = meta.at("warm_source").as_string();
    if (!h->warm_key_.empty()) {
      const StoreEntry* entry = store_.find(h->warm_key_);
      PT_REQUIRE(entry != nullptr,
                 "session '" + id + "' warmed from store entry '" +
                     h->warm_key_ + "', which no longer exists");
      h->warm_model_ = store_.load_surrogate(*entry, h->cached_->space());
    }
    if (file_exists(h->dir_ + "/checkpoint.csv"))
      h->resume_snapshot_ = tuner::load_checkpoint_csv(
          h->dir_ + "/checkpoint.csv", h->cached_->space());
  } else {
    h->fingerprint_ =
        measure_fingerprint(*h->cached_, opt_.fingerprint_probes);
    if (const auto match = store_.nearest(cfg.problem(), h->fingerprint_)) {
      try {
        h->warm_model_ =
            store_.load_surrogate(match->entry, h->cached_->space());
        h->warm_key_ = match->entry.key;
        h->warm_source_ = match->entry.machine;
      } catch (const std::exception& e) {
        // The checksum passed at load but the trace would not parse (a
        // forged footer over tampered bytes): quarantine the entry at
        // the point of use and start this session cold — a corrupt
        // store entry must degrade a warm start, never fail an open.
        h->warm_model_.reset();
        h->warm_key_.clear();
        h->warm_source_.clear();
        store_.quarantine(match->entry.key, e.what());
      }
    }
  }
  h->last_touched_ = obs::mono_now();

  tuner::SessionOptions opts = cfg.session_options(id);
  opts.warm_model = h->warm_model_.get();
  if (h->resume_snapshot_) opts.resume = &*h->resume_snapshot_;
  h->session_ = std::make_unique<tuner::TuningSession>(*h->cached_, opts);
  h->resume_snapshot_.reset();  // replayed; the session owns state now

  h->persist_meta_locked();  // handle not yet visible: no lock needed
  h->publish_gauges_locked();
  return h;
}

SessionHandle& TuningService::open(const std::string& id,
                                   const apps::TuningConfig& cfg) {
  require_valid_id(id);
  std::lock_guard lock(mutex_);
  PT_REQUIRE(sessions_.find(id) == sessions_.end(),
             "session '" + id + "' is already open");
  const std::string meta_path =
      session_dir(opt_.data_dir, id) + "/meta.json";
  if (file_exists(meta_path)) {
    const Value meta = Value::parse(read_file(meta_path));
    const Value* closed = meta.find("closed");
    PT_REQUIRE(closed != nullptr && closed->as_bool(),
               "session '" + id +
                   "' has a live checkpoint on disk; resume it instead "
                   "of opening a new session with the same id");
    // The old session's final checkpoint must not outlive its meta: were
    // the fresh session to crash before its first checkpoint, resume()
    // would replay the previous trace against the new config.
    remove_file(session_dir(opt_.data_dir, id) + "/checkpoint.csv");
  }
  auto h = build_session(id, cfg, /*resuming=*/false);
  SessionHandle& ref = *h;
  sessions_.emplace(id, std::move(h));
  return ref;
}

SessionHandle& TuningService::resume(const std::string& id) {
  require_valid_id(id);
  std::lock_guard lock(mutex_);
  PT_REQUIRE(sessions_.find(id) == sessions_.end(),
             "session '" + id + "' is already open in this service");
  const std::string dir = session_dir(opt_.data_dir, id);
  PT_REQUIRE(file_exists(dir + "/meta.json"),
             "no checkpointed session '" + id + "' under " + opt_.data_dir);
  const Value meta = Value::parse(read_file(dir + "/meta.json"));
  PT_REQUIRE(!meta.at("closed").as_bool(),
             "session '" + id + "' was closed; open a new session instead");
  // The meta carries the complete builder state: the resumed evaluator
  // stack (compiler, faults, resilience, parallelism, deadlines) and
  // search options are exactly what the session was opened with, so the
  // replayed trace — and the shared cache scope it feeds — stay
  // bit-identical. Runtime-only members (cancel token, guard callbacks)
  // reset to defaults.
  const apps::TuningConfig cfg = config_from_json(meta.at("config"));
  auto h = build_session(id, cfg, /*resuming=*/true);
  SessionHandle& ref = *h;
  sessions_.emplace(id, std::move(h));
  return ref;
}

SessionHandle* TuningService::find(const std::string& id) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

SessionHandle* TuningService::try_restore(const std::string& id) {
  try {
    SessionHandle& h = resume(id);
    obs::MetricsRegistry::current()
        .counter("service.sessions_restored")
        .add(1);
    if (obs::enabled(obs::Severity::Info))
      obs::emit(obs::make_instant(obs::Severity::Info,
                                  "service.session_restored", "service",
                                  {{"session", id}}));
    return &h;
  } catch (const std::exception&) {
    // No checkpoint, a closed session, an invalid id: the caller turns
    // nullptr into its own "no open session" error.
    return nullptr;
  }
}

std::vector<std::string> TuningService::reclaim_idle(
    double max_idle_seconds) {
  std::vector<std::string> reclaimed;
  std::vector<SessionHandle*> handles;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (auto& [_, h] : sessions_) handles.push_back(h.get());
  }
  for (SessionHandle* h : handles) {
    if (h->idle_seconds() < max_idle_seconds) continue;
    const SessionInfo info = h->info();
    if (!info.closed) {
      // Checkpoint before eviction so a later op on the session resumes
      // it exactly where the client left it. The meta is NOT marked
      // closed — closed means finished, and this session is merely
      // unattended. A failed checkpoint keeps the session live:
      // reclaiming it anyway would lose the un-persisted evaluations.
      try {
        h->checkpoint();
      } catch (const std::exception& e) {
        obs::MetricsRegistry::current()
            .counter("service.checkpoint_failures")
            .add(1);
        if (obs::enabled(obs::Severity::Warn))
          obs::emit(obs::make_instant(
              obs::Severity::Warn, "service.checkpoint_failed", "service",
              {{"session", info.id}, {"error", std::string(e.what())}}));
        continue;
      }
    }
    std::lock_guard lock(mutex_);
    const auto it = sessions_.find(info.id);
    // Skip a handle that was concurrently erased and re-opened: the new
    // incarnation's idle clock starts fresh.
    if (it == sessions_.end() || it->second.get() != h) continue;
    sessions_.erase(it);
    reclaimed.push_back(info.id);
  }
  return reclaimed;
}

std::vector<SessionInfo> TuningService::sessions() const {
  // Copy the handle pointers under the registry lock, then query each
  // without it (info() takes the per-handle lock; holding both here
  // would invert the close() -> publish_trace() lock order).
  std::vector<const SessionHandle*> handles;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (const auto& [_, h] : sessions_) handles.push_back(h.get());
  }
  std::vector<SessionInfo> out;
  out.reserve(handles.size());
  for (const SessionHandle* h : handles) out.push_back(h->info());
  return out;
}

void TuningService::checkpoint_all() {
  std::vector<SessionHandle*> handles;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (auto& [_, h] : sessions_) handles.push_back(h.get());
  }
  // Best-effort sweep: one session's persistence failure (disk full,
  // directory vanished) must not cost the remaining sessions their
  // checkpoints on the SIGTERM path — but it must not be *silent*
  // either: count it and put it in the event stream.
  for (SessionHandle* h : handles) {
    try {
      h->checkpoint();
    } catch (const std::exception& e) {
      obs::MetricsRegistry::current()
          .counter("service.checkpoint_failures")
          .add(1);
      if (obs::enabled(obs::Severity::Warn))
        obs::emit(obs::make_instant(
            obs::Severity::Warn, "service.checkpoint_failed", "service",
            {{"session", h->id()}, {"error", std::string(e.what())}}));
    }
  }
}

const StoreEntry& TuningService::publish_trace(
    const std::string& problem, const std::string& machine,
    const tuner::SearchTrace& trace, const tuner::ParamSpace& space,
    std::vector<double> fingerprint) {
  std::lock_guard lock(mutex_);
  return store_.put(problem, machine, trace, space, std::move(fingerprint));
}

void TuningService::publish_metrics() {
  cache_.publish_metrics();
  std::vector<const SessionHandle*> handles;
  std::size_t store_entries = 0;
  std::size_t quarantined = 0;
  {
    std::lock_guard lock(mutex_);
    handles.reserve(sessions_.size());
    for (const auto& [_, h] : sessions_) handles.push_back(h.get());
    store_entries = store_.size();
    quarantined = store_.quarantined();
  }
  std::size_t open = 0;
  for (const SessionHandle* h : handles)
    if (!h->info().closed) ++open;
  auto& reg = obs::MetricsRegistry::current();
  reg.gauge("service.sessions_active").set(static_cast<double>(open));
  reg.gauge("service.store.entries").set(static_cast<double>(store_entries));
  reg.gauge("service.store.quarantined")
      .set(static_cast<double>(quarantined));
}

}  // namespace portatune::service
