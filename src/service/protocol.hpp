// Wire protocol of the tuning service: line-delimited JSON requests.
//
// Each request is one JSON object on one line with an "op" member; each
// reply is one JSON object on one line with an "ok" member. The protocol
// layer is transport-agnostic — the Unix-socket server (server.hpp)
// feeds it lines, and tests drive it directly.
//
// Ops (members beyond "op"):
//   open        id, problem, machine, max_evals?, seed?, pool_size?,
//               eval_threads?            -> {ok,id,warm,warm_source}
//   resume      id                       -> {ok,id,warm,warm_source}
//   step        id, n?                   -> {ok,evaluated,failures,
//                                            best_seconds,exhausted,evals}
//   suggest     id, n?                   -> {ok,configs:[[idx,...],...]}
//   report      id, config:[idx,...], seconds
//                                        -> {ok}
//   checkpoint  id                       -> {ok}
//   close       id                       -> {ok,evals,best_seconds}
//   status                               -> {ok,sessions:[...],cache:{...},
//                                            store:{entries}}
//   shutdown                             -> {ok,shutdown:true} and the
//                                           reply asks the server to stop
//
// Configurations travel as JSON arrays of parameter *value indices*
// (the tuner's ParamConfig representation), in the space's parameter
// order. Any error — unknown op, malformed JSON, unknown session, failed
// evaluation — becomes {"ok":false,"error":"..."}; the connection stays
// usable.
#pragma once

#include <string>

#include "service/service.hpp"

namespace portatune::service {

struct ProtocolReply {
  std::string line;       ///< one JSON object, no trailing newline
  bool shutdown = false;  ///< the client asked the server to stop
};

class ServiceProtocol {
 public:
  explicit ServiceProtocol(TuningService& svc) : svc_(svc) {}

  /// Handle one request line. Never throws: every failure is an
  /// {"ok":false} reply.
  ProtocolReply handle_line(const std::string& line);

 private:
  TuningService& svc_;
};

}  // namespace portatune::service
