// Wire protocol of the tuning service: line-delimited JSON requests.
//
// Each request is one JSON object on one line with an "op" member; each
// reply is one JSON object on one line with an "ok" member. The protocol
// layer is transport-agnostic — the Unix-socket server (server.hpp)
// feeds it lines, and tests drive it directly.
//
// Ops (members beyond "op"):
//   open        id, problem, machine, max_evals?, seed?, pool_size?,
//               eval_threads?            -> {ok,id,warm,warm_source}
//   resume      id                       -> {ok,id,warm,warm_source}
//   step        id, n?                   -> {ok,evaluated,failures,
//                                            best_seconds,exhausted,evals}
//   suggest     id, n?                   -> {ok,configs:[[idx,...],...]}
//   report      id, config:[idx,...], seconds
//                                        -> {ok}
//   checkpoint  id                       -> {ok}
//   close       id                       -> {ok,evals,best_seconds}
//   status                               -> {ok,sessions:[...],cache:{...},
//                                            store:{entries,quarantined}}
//   stats                                -> {ok,server:{pid,uptime,...},
//                                            metrics:{counters,gauges,
//                                            histograms}} — a full metrics
//                                           snapshot over the wire; what
//                                           `portatune_cli status --socket`
//                                           and the loadgen cross-check read
//   shutdown                             -> {ok,shutdown:true} and the
//                                           reply asks the server to stop
//
// Exactly-once retries: every *mutating* op (open/resume/step/suggest/
// report/checkpoint/close) may carry an optional string "rid" — a
// client-generated idempotency key, by convention "<client id>:<seq>".
// The protocol remembers the reply it gave each rid in a bounded
// per-client cache; a retried request with a seen rid *replays* the
// stored reply instead of re-executing, so a client that lost a reply to
// a hangup can retry without double-consuming draws — the trace stays
// bit-identical to an unfailed run (the CRN discipline). Replays count
// under `server.rid.replays`, NOT under `server.op.<op>.count`, so the
// loadgen's exact client/server cross-check holds under retries: the op
// counters record *executions*, exactly one per logical client call.
// Requests without a rid never touch the cache (BM_ProtocolRidDormant
// holds that line). A non-string rid is an error.
//
// When `ProtocolOptions::state_path` is set, persist_state() (called by
// the server's teardown on both exit paths) writes the exactly-once
// state — the reply cache plus the op counters — and a later protocol
// constructed with the same path restores it, so retries that span a
// SIGTERM -> restart of the daemon still replay and the counters stay
// continuous across the restart.
//
// A session op whose handle is not live (the daemon restarted, or the
// lease sweep reclaimed an idle session) transparently resumes the
// session from its on-disk checkpoint before dispatching — counted under
// `service.sessions_restored`. Only genuinely unknown (or closed)
// sessions error.
//
// Configurations travel as JSON arrays of parameter *value indices*
// (the tuner's ParamConfig representation), in the space's parameter
// order. Any error — unknown op, malformed JSON, unknown session, failed
// evaluation — becomes {"ok":false,"error":"..."}; the connection stays
// usable.
//
// Request observability (this layer is where a wire request becomes a
// *traced* request): every handled line is assigned a process-unique
// request id and — when a sink is listening — wrapped in a causal span
// named `server.op.<op>` (category "service", fields req/op/session/
// bytes_in/bytes_out/ok). The span installs itself as the thread-local
// SpanContext for the dispatch, so the session op span and every
// evaluation the step fans out nest under it: one Chrome trace shows
// wire-receive -> dispatch -> session step -> eval for each request.
// With telemetry enabled the protocol also maintains per-op instruments
// in the registry current at construction:
//
//   server.requests                 counter, every line handled
//   server.requests_failed          counter, lines answered {"ok":false}
//   server.rid.replays              counter, retried rids answered from
//                                   the reply cache (not re-executed)
//   server.op.<name>.count          counter  (name "invalid" = the line
//   server.op.<name>.errors         counter   failed before an op was
//   server.op.<name>.latency        histogram known: bad JSON/unknown op)
//
// Counts are recorded on arrival (as soon as the op is known), so the
// snapshot a `stats` reply carries includes the stats request itself;
// errors and latency are recorded on completion.
//
// and emits a Warn `server.slow_request` event when a request exceeds
// the slow threshold. Failed ops additionally emit a Warn
// `service.op_error` event (op, session id, error string) so the flight
// recorder's ring carries recent per-client failures into crash dumps.
// Dormant path: with telemetry disabled and no sink installed a
// handled line costs no clock read, no instrument update and no
// allocation beyond the reply itself (BM_ServerOpDormant holds the line).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "service/service.hpp"

namespace portatune::service {

struct ProtocolReply {
  std::string line;       ///< one JSON object, no trailing newline
  bool shutdown = false;  ///< the client asked the server to stop
};

struct ProtocolOptions {
  /// Maintain the per-op counters/latency histograms. Off = the only
  /// observability left is event spans when a sink is installed.
  bool telemetry = true;
  /// Requests slower than this emit a Warn `server.slow_request` event
  /// (0 disables the check).
  double slow_request_seconds = 1.0;
  /// Reply-cache bounds for the exactly-once rid protocol: replies
  /// remembered per client (the rid prefix before the last ':'), and
  /// distinct clients remembered (LRU-evicted beyond that). A synchronous
  /// client only ever needs its latest reply; the slack absorbs
  /// pipelining and slow reconnects.
  std::size_t replay_cache_per_client = 128;
  std::size_t replay_cache_clients = 256;
  /// When non-empty, persist_state() writes the exactly-once state (the
  /// reply cache + op counters) here atomically, and construction
  /// restores it — retries spanning a daemon restart still replay.
  std::string state_path;
};

class ServiceProtocol {
 public:
  /// With telemetry on, the per-op instruments are bound to the metrics
  /// registry current at construction (the ObservedEvaluator idiom), so
  /// a protocol must not outlive a registry redirect it was built under.
  /// When `opt.state_path` names an existing state file, the reply cache
  /// and counters persisted by a previous protocol are restored.
  explicit ServiceProtocol(TuningService& svc, ProtocolOptions opt = {});

  /// Handle one request line. Never throws: every failure is an
  /// {"ok":false} reply. Not thread-safe — one protocol instance per
  /// server loop (requests from all clients already serialize there).
  ProtocolReply handle_line(const std::string& line);

  /// Total lines handled (assigned request ids 1..n). Restored across a
  /// restart when state_path is set.
  std::uint64_t requests_handled() const noexcept { return requests_; }

  /// Rids currently remembered across all clients (tests, status).
  std::size_t replay_cache_size() const noexcept;

  /// Write the exactly-once state to `state_path` (atomic replace).
  /// No-op when state_path is empty; persistence failures are swallowed
  /// after counting `server.state_persist_failures` — losing the replay
  /// cache degrades retries, it must not kill the daemon.
  void persist_state() const;

 private:
  struct OpInstruments {
    obs::Counter* count = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };
  OpInstruments& instruments(const std::string& op);

  /// One client's remembered replies, FIFO-bounded; `last_used` orders
  /// clients for LRU eviction.
  struct ReplayCache {
    std::map<std::string, std::string> replies;  ///< rid -> reply line
    std::deque<std::string> order;               ///< insertion order
    std::uint64_t last_used = 0;
  };
  const std::string* replay_lookup(const std::string& client,
                                   const std::string& rid);
  void replay_store(const std::string& client, const std::string& rid,
                    const std::string& reply);
  void load_state();

  TuningService& svc_;
  ProtocolOptions opt_;
  std::uint64_t requests_ = 0;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* requests_failed_ = nullptr;
  obs::Counter* replays_ = nullptr;
  std::map<std::string, OpInstruments> per_op_;
  std::map<std::string, ReplayCache> replay_;
  std::uint64_t replay_tick_ = 0;
};

}  // namespace portatune::service
