#include "service/eval_cache.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace portatune::service {

EvalCache::EvalCache(EvalCacheOptions opt) : opt_(opt) {
  PT_REQUIRE(opt_.capacity > 0, "EvalCache capacity must be positive");
}

std::optional<double> EvalCache::lookup(const std::string& scope,
                                        std::uint64_t config_hash) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(Key{scope, config_hash});
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->seconds;
}

void EvalCache::insert(const std::string& scope, std::uint64_t config_hash,
                       double seconds) {
  std::lock_guard lock(mutex_);
  const Key key{scope, config_hash};
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, seconds});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  if (lru_.size() > opt_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard lock(mutex_);
  EvalCacheStats s = stats_;
  s.size = lru_.size();
  return s;
}

void EvalCache::publish_metrics() const {
  const EvalCacheStats s = stats();
  auto& reg = obs::MetricsRegistry::current();
  // Counters are monotone: republish the delta since the last call.
  const auto bump = [&](const char* name, std::uint64_t target) {
    auto& c = reg.counter(name);
    const std::uint64_t current = c.value();
    if (target > current) c.add(target - current);
  };
  bump("service.cache.hits", s.hits);
  bump("service.cache.misses", s.misses);
  bump("service.cache.insertions", s.insertions);
  bump("service.cache.evictions", s.evictions);
  reg.gauge("service.cache.size").set(static_cast<double>(s.size));
}

CachedEvaluator::CachedEvaluator(tuner::Evaluator& inner, EvalCache& cache)
    : inner_(inner),
      cache_(cache),
      scope_(inner.problem_name() + "|" + inner.machine_name()) {}

tuner::EvalResult CachedEvaluator::evaluate(const tuner::ParamConfig& config) {
  const std::uint64_t hash = inner_.space().config_hash(config);
  if (const auto hit = cache_.lookup(scope_, hash))
    return tuner::EvalResult::success(*hit);
  const tuner::EvalResult r = inner_.evaluate(config);
  if (r.ok) cache_.insert(scope_, hash, r.seconds);
  return r;
}

std::vector<tuner::EvalResult> CachedEvaluator::evaluate_batch(
    std::span<const tuner::ParamConfig> batch) {
  std::vector<tuner::EvalResult> out(batch.size());
  std::vector<std::size_t> miss_pos;
  std::vector<tuner::ParamConfig> miss_configs;
  std::vector<std::uint64_t> miss_hash;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::uint64_t hash = inner_.space().config_hash(batch[i]);
    if (const auto hit = cache_.lookup(scope_, hash)) {
      out[i] = tuner::EvalResult::success(*hit);
      continue;
    }
    miss_pos.push_back(i);
    miss_configs.push_back(batch[i]);
    miss_hash.push_back(hash);
  }
  if (miss_configs.empty()) return out;
  const std::vector<tuner::EvalResult> results =
      inner_.evaluate_batch(miss_configs);
  // A short vector means the inner window was cancelled mid-flight; the
  // session layer treats a short window the same way the searches do, so
  // truncate at the first unevaluated miss (later cache hits must not
  // leapfrog an unevaluated draw — accounting is strictly in order).
  for (std::size_t j = 0; j < results.size(); ++j) {
    out[miss_pos[j]] = results[j];
    if (results[j].ok)
      cache_.insert(scope_, miss_hash[j], results[j].seconds);
  }
  if (results.size() < miss_configs.size())
    out.resize(miss_pos[results.size()]);
  return out;
}

}  // namespace portatune::service
