// Persistent surrogate store keyed by (problem, machine fingerprint).
//
// The paper's transferable asset is T_a — the (configuration, run time)
// trace a surrogate is fitted from. The store persists exactly that: one
// entry per (problem, machine), holding the training trace (CSV v3, the
// existing checksum codec) plus the machine's *fingerprint* — the run
// times of the canonical seeded probe set (tuner::probe_configs with
// kFingerprintSeed), measured on that machine. Surrogates themselves are
// never serialized: a forest refit from the same trace with the same
// hyperparameters and seed is deterministic, so load_surrogate() refits
// on demand and two processes loading the same entry agree exactly.
//
// Similarity-indexed lookup: nearest() compares a querying machine's
// fingerprint against every stored entry of the same problem with
// tuner::summarize_probe_vectors — the two vectors are aligned
// element-for-element because both sides measured the same canonical
// probe draws — and gates on tuner::advise(): an entry whose advice is
// DoNotTransfer never warms a session, no matter how empty the store is
// (a hostile X-Gene-style surrogate is worse than cold). Among the
// admissible entries the highest probe Spearman wins.
//
// Layout under dir/:
//   index.csv                 one line per entry (atomic rewrite)
//   entries/<key>/trace.csv   the training trace (atomic write)
//   quarantine/               corrupt state moved aside, never deleted
//
// Corruption tolerance: the store is shared, long-lived state, so one
// bad entry must never cost the daemon its startup. Loading verifies
// every entry's trace checksum; an entry that fails (torn file, flipped
// bytes, bad footer) is *quarantined* — its directory moved to
// quarantine/, the index rewritten without it — and counted under the
// `store.quarantined` metric with a Warn `store.entry_quarantined`
// event. Malformed index lines are appended to quarantine/
// index_rejected.csv the same way, and an index.csv that is not a store
// index at all is moved aside whole. quarantine() is also the escape
// hatch for corruption detected later (a forged-checksum trace that
// parses no further), used by the service's warm-start path.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/forest.hpp"
#include "ml/model.hpp"
#include "tuner/similarity.hpp"
#include "tuner/trace.hpp"

namespace portatune::service {

struct StoreEntry {
  std::string key;      ///< directory name under entries/, unique
  std::string problem;
  std::string machine;  ///< descriptive only; matching is by fingerprint
  std::size_t evals = 0;
  double best_seconds = 0.0;
  std::vector<double> fingerprint;  ///< canonical probe run times
};

struct SurrogateStoreOptions {
  std::string dir = "portatune_store";
  /// Forest hyperparameters for load_surrogate() refits. The seed is
  /// part of the determinism contract: same trace + same params -> same
  /// forest in every process.
  ml::ForestParams forest{};
};

/// A nearest() result: the winning entry plus the probe similarity that
/// admitted it.
struct StoreMatch {
  StoreEntry entry;
  tuner::SimilarityReport report;
  tuner::TransferAdvice advice = tuner::TransferAdvice::Transfer;
};

/// Not thread-safe: the owning TuningService serializes access.
class SurrogateStore {
 public:
  /// Opens (and if necessary creates) the store directory; loads the
  /// index when one exists.
  explicit SurrogateStore(SurrogateStoreOptions opt = {});

  /// Persist a training trace + fingerprint for (problem, machine).
  /// An existing entry for the same pair is replaced in place (same
  /// key); otherwise a new key is minted. Returns the stored entry.
  const StoreEntry& put(const std::string& problem,
                        const std::string& machine,
                        const tuner::SearchTrace& trace,
                        const tuner::ParamSpace& space,
                        std::vector<double> fingerprint);

  const std::vector<StoreEntry>& entries() const noexcept {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Entries (and index lines) quarantined since construction —
  /// including load-time quarantines, so a freshly opened store already
  /// reports what it moved aside.
  std::size_t quarantined() const noexcept { return quarantined_; }

  /// Move entry `key`'s directory to quarantine/, drop it from the
  /// index, count it and emit the Warn event. Safe for unknown keys
  /// (counts the quarantine, nothing to move). Never throws: failure to
  /// move still drops the entry from the index, which is what loading
  /// trusts.
  void quarantine(const std::string& key, const std::string& reason);

  /// Entry by key; nullptr when absent.
  const StoreEntry* find(const std::string& key) const;

  /// Most similar admissible entry for `problem` given the querying
  /// machine's fingerprint: aligned probe vectors are summarized, entries
  /// advised DoNotTransfer are skipped, the highest Spearman wins (ties
  /// break on key order, so lookup is deterministic). nullopt when no
  /// entry is admissible.
  std::optional<StoreMatch> nearest(
      const std::string& problem,
      std::span<const double> fingerprint) const;

  /// Load an entry's training trace (validating against `space`).
  tuner::SearchTrace load_trace(const StoreEntry& entry,
                                const tuner::ParamSpace& space) const;

  /// Refit the entry's surrogate deterministically from its stored trace.
  ml::RegressorPtr load_surrogate(const StoreEntry& entry,
                                  const tuner::ParamSpace& space) const;

  const std::string& dir() const noexcept { return opt_.dir; }

 private:
  void save_index() const;
  void load_index();
  std::string entry_dir(const StoreEntry& entry) const;
  std::string quarantine_slot(const std::string& name) const;

  SurrogateStoreOptions opt_;
  std::vector<StoreEntry> entries_;
  std::size_t quarantined_ = 0;
  bool loading_ = false;  ///< suppress per-quarantine index rewrites
};

/// Measure the canonical fingerprint of a machine behind `eval`: the run
/// times of the first `probes` *successful* canonical probe draws
/// (kFingerprintSeed; failing draws are configuration-invalidity, which
/// is machine-independent, so every machine skips the same draws and the
/// vectors stay aligned). Routed through whatever stack `eval` is — in
/// the service, the shared EvalCache sits on top, so re-fingerprinting a
/// known machine is free. Throws when fewer than three probes succeed.
std::vector<double> measure_fingerprint(tuner::Evaluator& eval,
                                        std::size_t probes);

}  // namespace portatune::service
