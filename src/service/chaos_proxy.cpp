#include "service/chaos_proxy.hpp"

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace portatune::service {

namespace {

int dial_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One '\n'-terminated line (returned *with* its newline, ready to
/// forward verbatim); poll-timed at 200ms so cancellation is observed.
/// nullopt = peer closed, error, or cancelled.
std::optional<std::string> read_line(int fd, std::string& buf,
                                     const CancellationToken& cancel) {
  char tmp[4096];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl + 1);
      buf.erase(0, nl + 1);
      return line;
    }
    if (cancel.cancelled()) return std::nullopt;
    pollfd p{fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) return std::nullopt;
    buf.append(tmp, static_cast<std::size_t>(n));
  }
}

/// Cancellation-aware sleep (50ms chunks).
void chaos_sleep(double seconds, const CancellationToken& cancel) {
  double remaining = seconds;
  while (remaining > 0.0 && !cancel.cancelled()) {
    const double chunk = remaining < 0.05 ? remaining : 0.05;
    std::this_thread::sleep_for(std::chrono::duration<double>(chunk));
    remaining -= chunk;
  }
}

enum class Fault { None, Delay, Tear, Hangup, Blackhole };

}  // namespace

ChaosProxy::ChaosProxy(std::string listen_path, std::string upstream_path,
                       ChaosProxyOptions opt)
    : listen_path_(std::move(listen_path)),
      upstream_path_(std::move(upstream_path)),
      opt_(opt) {
  PT_REQUIRE(!listen_path_.empty() && !upstream_path_.empty(),
             "chaos proxy needs listen and upstream socket paths");
  PT_REQUIRE(listen_path_ != upstream_path_,
             "chaos proxy cannot listen on its own upstream");
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.delays = delays_.load();
  s.tears = tears_.load();
  s.hangups = hangups_.load();
  s.blackholes = blackholes_.load();
  return s;
}

void ChaosProxy::serve_connection(int client_fd, std::uint64_t index,
                                  CancellationToken cancel) {
  // Deterministic per-connection fault schedule: connection k of a run
  // with seed s always rolls the same faults, so a failing chaos run is
  // replayable bit for bit.
  Rng rng(opt_.seed ^ (index * 0x9e3779b97f4a7c15ULL) ^ 0x5bf0'3635);
  const int up_fd = dial_unix(upstream_path_);
  std::string cbuf, ubuf;
  bool done = up_fd < 0;  // upstream down: hang up; the client retries
  while (!done && !cancel.cancelled()) {
    const auto line = read_line(client_fd, cbuf, cancel);
    if (!line) break;
    const double roll = rng.uniform();
    double acc = opt_.blackhole_rate;
    Fault fault = Fault::None;
    if (roll < acc) fault = Fault::Blackhole;
    else if (roll < (acc += opt_.hangup_rate)) fault = Fault::Hangup;
    else if (roll < (acc += opt_.tear_rate)) fault = Fault::Tear;
    else if (roll < (acc += opt_.delay_rate)) fault = Fault::Delay;

    if (fault == Fault::Blackhole) {
      // Never forwarded: the server must not execute (and not count)
      // this request. Go silent long enough to exercise the client's
      // attempt timeout, then close.
      ++blackholes_;
      chaos_sleep(opt_.blackhole_hold_seconds, cancel);
      break;
    }
    // Requests forward line-atomically, always: tearing a *request*
    // would feed the server a half-line it silently discards (or a
    // corrupted line it counts as invalid), breaking the loadgen's
    // exact invalid-line cross-check. Replies are where faults land.
    ++requests_;
    if (!send_all(up_fd, line->data(), line->size())) break;
    const auto reply = read_line(up_fd, ubuf, cancel);
    if (!reply) break;  // upstream died mid-request (daemon SIGTERM)
    switch (fault) {
      case Fault::Hangup:
        // The op executed upstream; the client never hears. Its retry
        // (same rid) must be answered from the server's reply cache.
        ++hangups_;
        done = true;
        break;
      case Fault::Tear:
        ++tears_;
        send_all(client_fd, reply->data(), reply->size() / 2);
        done = true;
        break;
      case Fault::Delay:
        ++delays_;
        chaos_sleep(opt_.delay_seconds, cancel);
        if (!send_all(client_fd, reply->data(), reply->size())) done = true;
        break;
      default:
        if (!send_all(client_fd, reply->data(), reply->size())) done = true;
        break;
    }
  }
  if (up_fd >= 0) ::close(up_fd);
  ::close(client_fd);
}

int ChaosProxy::run(CancellationToken cancel) {
  sockaddr_un addr{};
  PT_REQUIRE(listen_path_.size() < sizeof(addr.sun_path),
             "socket path too long: " + listen_path_);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PT_REQUIRE(listen_fd >= 0,
             std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, listen_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(listen_path_.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw Error("bind(" + listen_path_ + "): " + why);
  }
  if (::listen(listen_fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    ::unlink(listen_path_.c_str());
    throw Error("listen(" + listen_path_ + "): " + why);
  }

  std::vector<std::thread> workers;
  std::uint64_t index = 0;
  while (!cancel.cancelled()) {
    pollfd p{listen_fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    ++connections_;
    workers.emplace_back(&ChaosProxy::serve_connection, this, fd, index++,
                         cancel);
  }
  ::close(listen_fd);
  ::unlink(listen_path_.c_str());
  for (std::thread& t : workers) t.join();
  return 0;
}

}  // namespace portatune::service

#else  // non-UNIX build: no AF_UNIX transport

namespace portatune::service {

ChaosProxy::ChaosProxy(std::string listen_path, std::string upstream_path,
                       ChaosProxyOptions opt)
    : listen_path_(std::move(listen_path)),
      upstream_path_(std::move(upstream_path)),
      opt_(opt) {}

ChaosStats ChaosProxy::stats() const { return {}; }

void ChaosProxy::serve_connection(int, std::uint64_t, CancellationToken) {}

int ChaosProxy::run(CancellationToken) {
  throw Error("the chaos proxy requires a UNIX system");
}

}  // namespace portatune::service

#endif
