// Shared cross-session evaluation cache.
//
// Every service session measures configurations of "a problem on a
// machine" — a pure function for the simulated backends — so two sessions
// tuning the same (problem, machine) repeat each other's work, and a
// resumed session repeats its own. EvalCache is the service-wide memo:
// keyed by (scope, config hash) where scope is "problem|machine", LRU
// bounded, admitting successful measurements only (failures keep their
// live retry/quarantine semantics — caching a transient failure would
// make it deterministic).
//
// Determinism: a hit is returned as EvalResult::success(seconds) —
// attempts = 1, no overhead — which on the pure simulated backends is
// byte-identical to what a fresh evaluation would produce. Cached and
// uncached sessions therefore record identical traces; only wall-clock
// and the hit/miss counters differ. (Journaled experiment runs bypass
// the cache entirely: their parity guarantee is against evaluator stacks
// with fault injection, where a memoised result would NOT be identical.)
//
// Observability: hits/misses/insertions/evictions are counted locally
// and published to the process metrics registry (service.cache.*), so
// the PR 7 sampler/status.json sees cache traffic live.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "tuner/evaluator.hpp"

namespace portatune::service {

struct EvalCacheOptions {
  /// Maximum resident entries; the least recently used entry is evicted
  /// on overflow. Must be positive.
  std::size_t capacity = 1 << 16;
};

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
};

/// Thread-safe LRU memo of successful evaluations. Sessions share one
/// instance through their CachedEvaluator layers.
class EvalCache {
 public:
  explicit EvalCache(EvalCacheOptions opt = {});

  /// Measured run time of (scope, config hash), or nullopt. Counts a
  /// hit/miss and refreshes recency on hit.
  std::optional<double> lookup(const std::string& scope,
                               std::uint64_t config_hash);

  /// Admit a successful measurement (idempotent for an existing key:
  /// refreshes recency, keeps the first value — backends are
  /// deterministic, so the values agree anyway).
  void insert(const std::string& scope, std::uint64_t config_hash,
              double seconds);

  EvalCacheStats stats() const;

  /// Push the current counters into the process metrics registry as
  /// service.cache.{hits,misses,insertions,evictions} counters and a
  /// service.cache.size gauge. Called by the service's status paths.
  void publish_metrics() const;

 private:
  struct Key {
    std::string scope;
    std::uint64_t hash = 0;
    bool operator==(const Key& o) const {
      return hash == o.hash && scope == o.scope;
    }
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      // FNV-1a over the scope, folded with the config hash.
      std::uint64_t h = 1469598103934665603ull;
      for (char c : k.scope) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h ^ k.hash);
    }
  };
  struct Entry {
    Key key;
    double seconds = 0.0;
  };

  mutable std::mutex mutex_;
  EvalCacheOptions opt_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index_;
  EvalCacheStats stats_;
};

/// Evaluator decorator that consults the shared cache before touching the
/// inner evaluator. Hits never reach the backend; misses are evaluated
/// and (when successful) admitted. Batch windows preserve result order:
/// result i always corresponds to batch[i], with the misses evaluated
/// through the inner evaluator's own batch path (so a ParallelEvaluator
/// underneath still fans the uncached remainder out).
class CachedEvaluator final : public tuner::Evaluator {
 public:
  /// Both the inner evaluator and the cache must outlive this object.
  CachedEvaluator(tuner::Evaluator& inner, EvalCache& cache);

  const tuner::ParamSpace& space() const override { return inner_.space(); }
  tuner::EvalResult evaluate(const tuner::ParamConfig& config) override;
  std::vector<tuner::EvalResult> evaluate_batch(
      std::span<const tuner::ParamConfig> batch) override;
  tuner::EvalCapabilities capabilities() const override {
    return inner_.capabilities();
  }
  tuner::Evaluator* inner_evaluator() noexcept override { return &inner_; }
  std::string problem_name() const override { return inner_.problem_name(); }
  std::string machine_name() const override { return inner_.machine_name(); }

  const std::string& scope() const noexcept { return scope_; }

 private:
  tuner::Evaluator& inner_;
  EvalCache& cache_;
  std::string scope_;  ///< "problem|machine", fixed at construction
};

}  // namespace portatune::service
