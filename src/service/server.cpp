#include "service/server.hpp"

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"

namespace portatune::service {

namespace {

struct Client {
  int fd = -1;
  std::string inbuf;   ///< bytes received, not yet newline-terminated
  std::string outbuf;  ///< reply bytes not yet written
};

void emit_server_event(const char* name, const std::string& socket_path) {
  if (!obs::enabled(obs::Severity::Info)) return;
  obs::emit(obs::make_instant(obs::Severity::Info, name, "service",
                              {{"socket", socket_path}}));
}

/// Write as much of the client's outbuf as the socket accepts.
/// Returns false when the connection is dead.
bool flush_client(Client& c) {
  while (!c.outbuf.empty()) {
    const ssize_t n = ::send(c.fd, c.outbuf.data(), c.outbuf.size(),
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      c.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

int serve_unix_socket(TuningService& svc, const std::string& socket_path,
                      CancellationToken cancel) {
  PT_REQUIRE(!socket_path.empty(), "serve needs a socket path");
  sockaddr_un addr{};
  PT_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PT_REQUIRE(listen_fd >= 0,
             std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw Error("bind(" + socket_path + "): " + why);
  }
  if (::listen(listen_fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    throw Error("listen(" + socket_path + "): " + why);
  }

  emit_server_event("service.serve", socket_path);
  ServiceProtocol protocol(svc);
  std::vector<Client> clients;
  bool shutdown_requested = false;

  const auto teardown = [&] {
    for (Client& c : clients) ::close(c.fd);
    clients.clear();
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    svc.checkpoint_all();
    svc.publish_metrics();
  };

  while (!shutdown_requested) {
    if (cancel.cancelled()) {
      emit_server_event("service.interrupted", socket_path);
      teardown();
      return 3;  // interrupted but resumable, like the run orchestrator
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const Client& c : clients)
      fds.push_back({c.fd,
                     static_cast<short>(POLLIN |
                                        (c.outbuf.empty() ? 0 : POLLOUT)),
                     0});
    // Short timeout so the cancel token is observed promptly even when
    // the socket is idle.
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal delivery; loop re-checks
      teardown();
      throw Error(std::string("poll(): ") + std::strerror(errno));
    }
    if (ready == 0) continue;

    // Stage accepts until after the per-client loop: `fds[i + 1]` mirrors
    // the client list the poll set was built from, so appending to
    // `clients` here would make the loop read past the end of `fds`.
    std::vector<Client> accepted;
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        accepted.push_back(Client{fd, {}, {}});
        obs::MetricsRegistry::current()
            .counter("service.clients_accepted")
            .add(1);
      }
    }

    // Iterate over a stable index range; dead clients are compacted after.
    std::vector<bool> dead(clients.size(), false);
    for (std::size_t i = 0; i < clients.size(); ++i) {
      Client& c = clients[i];
      const pollfd& p = fds[i + 1];
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        dead[i] = true;
        continue;
      }
      if (p.revents & POLLIN) {
        char buf[4096];
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          if (!(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                          errno == EINTR)))
            dead[i] = true;
        } else {
          c.inbuf.append(buf, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = c.inbuf.find('\n')) != std::string::npos) {
            std::string line = c.inbuf.substr(0, nl);
            c.inbuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            const ProtocolReply reply = protocol.handle_line(line);
            c.outbuf += reply.line;
            c.outbuf += '\n';
            if (reply.shutdown) shutdown_requested = true;
          }
        }
      }
      if (!dead[i] && !flush_client(c)) dead[i] = true;
    }
    std::vector<Client> alive;
    alive.reserve(clients.size() + accepted.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (dead[i])
        ::close(clients[i].fd);
      else
        alive.push_back(std::move(clients[i]));
    }
    for (Client& c : accepted) alive.push_back(std::move(c));
    clients = std::move(alive);

    if (shutdown_requested) {
      // Best-effort: drain the shutdown acknowledgement before closing.
      for (Client& c : clients) flush_client(c);
    }
  }

  emit_server_event("service.shutdown", socket_path);
  teardown();
  return 0;
}

std::string call_unix_socket(const std::string& socket_path,
                             const std::string& line) {
  sockaddr_un addr{};
  PT_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PT_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("connect(" + socket_path + "): " + why);
  }
  const std::string request = line + "\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      throw Error("send(" + socket_path + "): connection lost");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      throw Error("the service hung up before replying on " + socket_path);
    }
    reply.append(buf, static_cast<std::size_t>(n));
    const std::size_t nl = reply.find('\n');
    if (nl != std::string::npos) {
      ::close(fd);
      return reply.substr(0, nl);
    }
  }
}

}  // namespace portatune::service

#else  // non-UNIX build: no AF_UNIX transport

namespace portatune::service {

int serve_unix_socket(TuningService&, const std::string&,
                      CancellationToken) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

std::string call_unix_socket(const std::string&, const std::string&) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

}  // namespace portatune::service

#endif
