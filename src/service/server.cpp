#include "service/server.hpp"

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/atomic_file.hpp"
#include "support/span_context.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;
using Members = std::vector<std::pair<std::string, Value>>;

struct Client {
  int fd = -1;
  std::string inbuf;   ///< bytes received, not yet newline-terminated
  std::string outbuf;  ///< reply bytes not yet written
  bool closing = false;  ///< close after the outbuf drains (oversized line)
  double tokens = 0.0;       ///< rate-limit token bucket level
  double last_refill = 0.0;  ///< mono_now() of the last bucket refill
};

/// Transport-level instruments, bound once per serve loop (nullptr when
/// telemetry is off — every update site checks).
struct WireInstruments {
  obs::Counter* clients_accepted = nullptr;
  obs::Counter* clients_disconnected = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* lines_rejected = nullptr;
  obs::Counter* requests_throttled = nullptr;
  obs::Counter* sessions_reclaimed = nullptr;
  obs::Gauge* clients_connected = nullptr;
  obs::Gauge* requests_in_flight = nullptr;
  obs::Histogram* poll_wait = nullptr;

  static WireInstruments bind() {
    auto& reg = obs::MetricsRegistry::current();
    WireInstruments w;
    w.clients_accepted = &reg.counter("server.clients_accepted");
    w.clients_disconnected = &reg.counter("server.clients_disconnected");
    w.bytes_in = &reg.counter("server.bytes_in");
    w.bytes_out = &reg.counter("server.bytes_out");
    w.lines_rejected = &reg.counter("server.lines_rejected");
    w.requests_throttled = &reg.counter("server.requests_throttled");
    w.sessions_reclaimed = &reg.counter("server.sessions_reclaimed");
    w.clients_connected = &reg.gauge("server.clients_connected");
    w.requests_in_flight = &reg.gauge("server.requests_in_flight");
    w.poll_wait = &reg.histogram("server.poll.wait_seconds");
    return w;
  }
};

void emit_server_event(const char* name, const std::string& socket_path) {
  if (!obs::enabled(obs::Severity::Info)) return;
  obs::emit(obs::make_instant(obs::Severity::Info, name, "service",
                              {{"socket", socket_path}}));
}

/// The typed overload reply: ResilientClient recognizes `retry_after`
/// and backs off exactly that long before retrying the same request.
std::string throttle_reply(double retry_after_seconds) {
  Members m;
  m.emplace_back("ok", Value::make_bool(false));
  m.emplace_back("error", Value::make_string("rate limit exceeded"));
  m.emplace_back("retry_after", Value::make_number(retry_after_seconds));
  return Value::make_object(std::move(m)).dump();
}

/// Write as much of the client's outbuf as the socket accepts.
/// Returns false when the connection is dead.
bool flush_client(Client& c, obs::Counter* bytes_out) {
  while (!c.outbuf.empty()) {
    const ssize_t n = ::send(c.fd, c.outbuf.data(), c.outbuf.size(),
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      if (bytes_out != nullptr)
        bytes_out->add(static_cast<std::uint64_t>(n));
      c.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Render the heartbeat document. Schema `portatune_server_status` v1 —
/// the per-op table is distilled from the live registry snapshot so a
/// reader gets rates and tails without speaking the protocol.
std::string render_status(TuningService& svc, const std::string& socket_path,
                          const ServiceProtocol& protocol,
                          std::size_t clients_connected) {
  Members m;
  m.emplace_back("schema", Value::make_string("portatune_server_status"));
  m.emplace_back("version", Value::make_number(1.0));
  m.emplace_back("pid",
                 Value::make_number(static_cast<double>(::getpid())));
  m.emplace_back("t_wall", Value::make_number(obs::wall_unix_now()));
  m.emplace_back("uptime_seconds", Value::make_number(obs::mono_now()));
  m.emplace_back("socket", Value::make_string(socket_path));
  m.emplace_back(
      "clients_connected",
      Value::make_number(static_cast<double>(clients_connected)));
  m.emplace_back("requests_total",
                 Value::make_number(
                     static_cast<double>(protocol.requests_handled())));
  std::size_t open = 0, closed = 0;
  for (const SessionInfo& s : svc.sessions()) (s.closed ? closed : open)++;
  m.emplace_back("sessions_open",
                 Value::make_number(static_cast<double>(open)));
  m.emplace_back("sessions_closed",
                 Value::make_number(static_cast<double>(closed)));
  m.emplace_back(
      "store_entries",
      Value::make_number(static_cast<double>(svc.store().size())));
  const EvalCacheStats cs = svc.cache().stats();
  Members cache;
  cache.emplace_back("hits",
                     Value::make_number(static_cast<double>(cs.hits)));
  cache.emplace_back("misses",
                     Value::make_number(static_cast<double>(cs.misses)));
  cache.emplace_back("size",
                     Value::make_number(static_cast<double>(cs.size)));
  m.emplace_back("cache", Value::make_object(std::move(cache)));

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::current().snapshot();
  const auto counter_value = [&](const std::string& name) -> double {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return static_cast<double>(v);
    return 0.0;
  };
  Members ops;
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    const std::string prefix = "server.op.";
    const std::string suffix = ".latency";
    if (h.count == 0 || h.name.rfind(prefix, 0) != 0 ||
        h.name.size() <= prefix.size() + suffix.size() ||
        h.name.compare(h.name.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
      continue;
    const std::string op = h.name.substr(
        prefix.size(), h.name.size() - prefix.size() - suffix.size());
    Members o;
    o.emplace_back("count",
                   Value::make_number(static_cast<double>(h.count)));
    o.emplace_back("errors",
                   Value::make_number(counter_value(prefix + op + ".errors")));
    o.emplace_back("p50_seconds", Value::make_number(h.p50));
    o.emplace_back("p95_seconds", Value::make_number(h.p95));
    o.emplace_back("p99_seconds", Value::make_number(h.p99));
    ops.emplace_back(op, Value::make_object(std::move(o)));
  }
  m.emplace_back("ops", Value::make_object(std::move(ops)));
  return Value::make_object(std::move(m)).dump() + "\n";
}

}  // namespace

int serve_unix_socket(TuningService& svc, const std::string& socket_path,
                      CancellationToken cancel, ServeOptions opt) {
  PT_REQUIRE(!socket_path.empty(), "serve needs a socket path");
  PT_REQUIRE(opt.max_line_bytes > 0, "max_line_bytes must be positive");
  sockaddr_un addr{};
  PT_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PT_REQUIRE(listen_fd >= 0,
             std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw Error("bind(" + socket_path + "): " + why);
  }
  if (::listen(listen_fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    throw Error("listen(" + socket_path + "): " + why);
  }

  emit_server_event("service.serve", socket_path);
  const bool telemetry = opt.protocol.telemetry;
  WireInstruments wire;
  if (telemetry) wire = WireInstruments::bind();
  ServiceProtocol protocol(svc, opt.protocol);
  std::vector<Client> clients;
  bool shutdown_requested = false;

  const bool heartbeat =
      !opt.status_path.empty() && opt.status_every_seconds > 0.0;
  double last_status = -1e18;  // first loop iteration writes immediately
  double last_lease = obs::mono_now();
  const auto write_status = [&] {
    try {
      atomic_write_file(opt.status_path,
                        render_status(svc, socket_path, protocol,
                                      clients.size()));
    } catch (const std::exception& e) {
      // Heartbeat is advisory; a full disk must not kill the server —
      // but the operator should see the degradation.
      if (telemetry)
        obs::MetricsRegistry::current()
            .counter("server.status_write_failures")
            .add(1);
      if (obs::enabled(obs::Severity::Warn))
        obs::emit(obs::make_instant(obs::Severity::Warn,
                                    "server.status_write_failed", "service",
                                    {{"error", e.what()}}));
    }
  };

  const auto teardown = [&] {
    // Deliver any computed-but-unsent replies first: a reply lost at
    // SIGTERM forces the client into a retry the restarted daemon must
    // replay — correct, but avoidable wire traffic.
    for (Client& c : clients)
      flush_client(c, telemetry ? wire.bytes_out : nullptr);
    for (Client& c : clients) ::close(c.fd);
    clients.clear();
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    svc.checkpoint_all();
    // Persist the exactly-once state after the checkpoints: a restarted
    // daemon then both resumes the sessions and replays cached replies.
    protocol.persist_state();
    svc.publish_metrics();
    if (telemetry) wire.clients_connected->set(0.0);
    if (heartbeat) write_status();  // final state, clients_connected = 0
  };

  while (!shutdown_requested) {
    if (cancel.cancelled()) {
      emit_server_event("service.interrupted", socket_path);
      teardown();
      return 3;  // interrupted but resumable, like the run orchestrator
    }
    if (heartbeat) {
      const double now = obs::mono_now();
      if (now - last_status >= opt.status_every_seconds) {
        last_status = now;
        svc.publish_metrics();
        write_status();
      }
    }
    if (opt.lease_seconds > 0.0) {
      const double now = obs::mono_now();
      if (now - last_lease >= opt.lease_check_every_seconds) {
        last_lease = now;
        for (const std::string& id : svc.reclaim_idle(opt.lease_seconds)) {
          if (telemetry) wire.sessions_reclaimed->add(1);
          if (obs::enabled(obs::Severity::Warn))
            obs::emit(obs::make_instant(
                obs::Severity::Warn, "server.session_reclaimed", "service",
                {{"session", id}, {"lease_seconds", opt.lease_seconds}}));
        }
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const Client& c : clients)
      fds.push_back({c.fd,
                     static_cast<short>(POLLIN |
                                        (c.outbuf.empty() ? 0 : POLLOUT)),
                     0});
    // Short timeout so the cancel token is observed promptly even when
    // the socket is idle.
    const double poll_t0 = telemetry ? obs::mono_now() : 0.0;
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (telemetry) wire.poll_wait->observe(obs::mono_now() - poll_t0);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal delivery; loop re-checks
      teardown();
      throw Error(std::string("poll(): ") + std::strerror(errno));
    }
    if (ready == 0) continue;

    // Stage accepts until after the per-client loop: `fds[i + 1]` mirrors
    // the client list the poll set was built from, so appending to
    // `clients` here would make the loop read past the end of `fds`.
    std::vector<Client> accepted;
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        Client c;
        c.fd = fd;
        // A fresh connection starts with a full burst allowance.
        c.tokens = opt.client_rate_burst;
        c.last_refill =
            opt.client_rate_limit > 0.0 ? obs::mono_now() : 0.0;
        accepted.push_back(std::move(c));
        if (telemetry) wire.clients_accepted->add(1);
      }
    }

    // Iterate over a stable index range; dead clients are compacted after.
    std::vector<bool> dead(clients.size(), false);
    for (std::size_t i = 0; i < clients.size(); ++i) {
      Client& c = clients[i];
      const pollfd& p = fds[i + 1];
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        dead[i] = true;
        continue;
      }
      if ((p.revents & POLLIN) && !c.closing) {
        char buf[4096];
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          if (!(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                          errno == EINTR)))
            dead[i] = true;
        } else {
          if (telemetry) wire.bytes_in->add(static_cast<std::uint64_t>(n));
          c.inbuf.append(buf, static_cast<std::size_t>(n));
          std::size_t nl;
          while (!c.closing &&
                 (nl = c.inbuf.find('\n')) != std::string::npos) {
            std::string line = c.inbuf.substr(0, nl);
            c.inbuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            if (line.size() > opt.max_line_bytes) {
              if (telemetry) wire.lines_rejected->add(1);
              c.outbuf +=
                  "{\"ok\":false,\"error\":\"request line exceeds " +
                  std::to_string(opt.max_line_bytes) + " bytes\"}\n";
              c.closing = true;  // deliver the verdict, then hang up
              break;
            }
            if (opt.client_rate_limit > 0.0) {
              // Token bucket per connection: sustained rate above the
              // limit drains it, and the typed retry_after tells the
              // client exactly how long until the next token. The check
              // sits *before* the protocol so an abusive client cannot
              // consume op counters or replay-cache slots.
              const double now = obs::mono_now();
              c.tokens = std::min(
                  opt.client_rate_burst,
                  c.tokens + (now - c.last_refill) * opt.client_rate_limit);
              c.last_refill = now;
              if (c.tokens < 1.0) {
                if (telemetry) wire.requests_throttled->add(1);
                c.outbuf +=
                    throttle_reply((1.0 - c.tokens) /
                                   opt.client_rate_limit);
                c.outbuf += '\n';
                continue;
              }
              c.tokens -= 1.0;
            }
            // The wire-receive span: parent of the protocol's op span, so
            // the trace tree reads request -> dispatch -> session -> eval.
            const bool tracing = obs::enabled(obs::Severity::Info);
            const double t0 = tracing ? obs::mono_now() : 0.0;
            const std::uint64_t span_id = tracing ? next_span_id() : 0;
            std::optional<SpanScope> scope;
            if (tracing) scope.emplace(SpanContext{span_id});
            if (telemetry) wire.requests_in_flight->set(1.0);
            const ProtocolReply reply = protocol.handle_line(line);
            if (telemetry) wire.requests_in_flight->set(0.0);
            if (tracing) {
              scope.reset();
              obs::Event ev = obs::make_span(
                  obs::Severity::Info, "server.request", "service",
                  obs::mono_now() - t0,
                  {{"client", c.fd},
                   {"bytes_in",
                    static_cast<std::uint64_t>(line.size())},
                   {"bytes_out",
                    static_cast<std::uint64_t>(reply.line.size())}});
              ev.span_id = span_id;
              obs::emit(ev);
            }
            c.outbuf += reply.line;
            c.outbuf += '\n';
            if (reply.shutdown) shutdown_requested = true;
          }
          if (!c.closing && c.inbuf.size() > opt.max_line_bytes) {
            // A line that can no longer fit even before its newline
            // arrives: reject it now rather than buffering unboundedly.
            if (telemetry) wire.lines_rejected->add(1);
            c.inbuf.clear();
            c.outbuf +=
                "{\"ok\":false,\"error\":\"request line exceeds " +
                std::to_string(opt.max_line_bytes) + " bytes\"}\n";
            c.closing = true;
          }
        }
      }
      if (!dead[i] &&
          !flush_client(c, telemetry ? wire.bytes_out : nullptr))
        dead[i] = true;
      if (!dead[i] && c.closing && c.outbuf.empty()) dead[i] = true;
    }
    std::vector<Client> alive;
    alive.reserve(clients.size() + accepted.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (dead[i]) {
        ::close(clients[i].fd);
        if (telemetry) wire.clients_disconnected->add(1);
      } else {
        alive.push_back(std::move(clients[i]));
      }
    }
    for (Client& c : accepted) alive.push_back(std::move(c));
    clients = std::move(alive);
    if (telemetry)
      wire.clients_connected->set(static_cast<double>(clients.size()));

    if (shutdown_requested) {
      // Best-effort: drain the shutdown acknowledgement before closing.
      for (Client& c : clients)
        flush_client(c, telemetry ? wire.bytes_out : nullptr);
    }
  }

  emit_server_event("service.shutdown", socket_path);
  teardown();
  return 0;
}

ServiceClient::ServiceClient(const std::string& socket_path)
    : socket_path_(socket_path) {
  sockaddr_un addr{};
  PT_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PT_REQUIRE(fd_ >= 0, std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("connect(" + socket_path + "): " + why);
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServiceClient::call(const std::string& line) {
  PT_REQUIRE(fd_ >= 0, "client is not connected");
  const std::string request = line + "\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent,
                             request.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw Error("send(" + socket_path_ + "): connection lost");
    sent += static_cast<std::size_t>(n);
  }
  char buf[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return reply;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw Error("the service hung up before replying on " + socket_path_);
    buf_.append(buf, static_cast<std::size_t>(n));
  }
}

std::string call_unix_socket(const std::string& socket_path,
                             const std::string& line) {
  ServiceClient client(socket_path);
  return client.call(line);
}

}  // namespace portatune::service

#else  // non-UNIX build: no AF_UNIX transport

namespace portatune::service {

int serve_unix_socket(TuningService&, const std::string&,
                      CancellationToken, ServeOptions) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

ServiceClient::ServiceClient(const std::string&) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

ServiceClient::~ServiceClient() = default;

std::string ServiceClient::call(const std::string&) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

std::string call_unix_socket(const std::string&, const std::string&) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

}  // namespace portatune::service

#endif
