#include "service/protocol.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;

using Members = std::vector<std::pair<std::string, Value>>;

std::string ok_reply(Members members) {
  Members m;
  m.emplace_back("ok", Value::make_bool(true));
  for (auto& kv : members) m.push_back(std::move(kv));
  return Value::make_object(std::move(m)).dump();
}

std::string error_reply(const std::string& message) {
  Members m;
  m.emplace_back("ok", Value::make_bool(false));
  m.emplace_back("error", Value::make_string(message));
  return Value::make_object(std::move(m)).dump();
}

std::string required_string(const Value& req, const char* key) {
  const Value* v = req.find(key);
  PT_REQUIRE(v != nullptr && v->is_string(),
             std::string("request needs a string '") + key + "' member");
  return v->as_string();
}

std::size_t size_member(const Value& req, const char* key,
                        std::size_t fallback) {
  const Value* v = req.find(key);
  if (v == nullptr) return fallback;
  PT_REQUIRE(v->is_number() && v->as_number() >= 0 &&
                 v->as_number() == std::floor(v->as_number()),
             std::string("'") + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(v->as_number());
}

SessionHandle& required_session(TuningService& svc, const Value& req) {
  const std::string id = required_string(req, "id");
  SessionHandle* h = svc.find(id);
  PT_REQUIRE(h != nullptr, "no open session '" + id + "'");
  return *h;
}

tuner::ParamConfig parse_config(const Value& v,
                                const tuner::ParamSpace& space) {
  PT_REQUIRE(v.is_array(), "'config' must be an array of value indices");
  tuner::ParamConfig config;
  config.reserve(v.as_array().size());
  for (const Value& item : v.as_array()) {
    PT_REQUIRE(item.is_number() &&
                   item.as_number() == std::floor(item.as_number()),
               "'config' entries must be integer value indices");
    config.push_back(static_cast<int>(item.as_number()));
  }
  space.validate(config);  // throws naming the malformed dimension
  return config;
}

Value config_json(const tuner::ParamConfig& config) {
  std::vector<Value> items;
  items.reserve(config.size());
  for (int idx : config) items.push_back(Value::make_number(idx));
  return Value::make_array(std::move(items));
}

Members session_members(const SessionHandle& h) {
  Members m;
  m.emplace_back("id", Value::make_string(h.id()));
  m.emplace_back("warm", Value::make_bool(h.warm()));
  m.emplace_back("warm_source", Value::make_string(h.warm_source()));
  return m;
}

std::string op_open(TuningService& svc, const Value& req) {
  apps::TuningConfig cfg;
  cfg.problem(required_string(req, "problem"))
      .machine(required_string(req, "machine"));
  if (const Value* v = req.find("max_evals"))
    cfg.max_evals(static_cast<std::size_t>(v->as_number()));
  if (const Value* v = req.find("seed"))
    cfg.seed(static_cast<std::uint64_t>(v->as_number()));
  if (const Value* v = req.find("pool_size"))
    cfg.pool_size(static_cast<std::size_t>(v->as_number()));
  if (const Value* v = req.find("eval_threads"))
    cfg.eval_threads(static_cast<std::size_t>(v->as_number()));
  SessionHandle& h = svc.open(required_string(req, "id"), cfg);
  return ok_reply(session_members(h));
}

std::string op_resume(TuningService& svc, const Value& req) {
  SessionHandle& h = svc.resume(required_string(req, "id"));
  return ok_reply(session_members(h));
}

std::string op_step(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const tuner::SessionStepStats stats = h.step(size_member(req, "n", 1));
  Members m;
  m.emplace_back("evaluated",
                 Value::make_number(static_cast<double>(stats.evaluated)));
  m.emplace_back("failures",
                 Value::make_number(static_cast<double>(stats.failures)));
  m.emplace_back("best_seconds", Value::make_number(stats.best_seconds));
  m.emplace_back("exhausted", Value::make_bool(stats.exhausted));
  m.emplace_back("evals",
                 Value::make_number(static_cast<double>(h.info().evals)));
  return ok_reply(std::move(m));
}

std::string op_suggest(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const auto configs = h.suggest(size_member(req, "n", 1));
  std::vector<Value> items;
  items.reserve(configs.size());
  for (const auto& c : configs) items.push_back(config_json(c));
  Members m;
  m.emplace_back("configs", Value::make_array(std::move(items)));
  return ok_reply(std::move(m));
}

std::string op_report(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const Value* config = req.find("config");
  PT_REQUIRE(config != nullptr, "request needs a 'config' member");
  const Value* seconds = req.find("seconds");
  PT_REQUIRE(seconds != nullptr && seconds->is_number(),
             "request needs a numeric 'seconds' member");
  h.report(parse_config(*config, h.space()), seconds->as_number());
  return ok_reply({});
}

std::string op_checkpoint(TuningService& svc, const Value& req) {
  required_session(svc, req).checkpoint();
  return ok_reply({});
}

std::string op_close(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const tuner::SearchTrace trace = h.close();
  Members m;
  m.emplace_back("evals",
                 Value::make_number(static_cast<double>(trace.size())));
  m.emplace_back("best_seconds", Value::make_number(trace.best_seconds()));
  return ok_reply(std::move(m));
}

std::string op_status(TuningService& svc) {
  svc.publish_metrics();
  std::vector<Value> sessions;
  for (const SessionInfo& s : svc.sessions()) {
    Members m;
    m.emplace_back("id", Value::make_string(s.id));
    m.emplace_back("problem", Value::make_string(s.problem));
    m.emplace_back("machine", Value::make_string(s.machine));
    m.emplace_back("evals",
                   Value::make_number(static_cast<double>(s.evals)));
    m.emplace_back("budget",
                   Value::make_number(static_cast<double>(s.budget)));
    m.emplace_back("best_seconds", Value::make_number(s.best_seconds));
    m.emplace_back("warm", Value::make_bool(s.warm));
    m.emplace_back("warm_source", Value::make_string(s.warm_source));
    m.emplace_back("closed", Value::make_bool(s.closed));
    sessions.push_back(Value::make_object(std::move(m)));
  }
  const EvalCacheStats cs = svc.cache().stats();
  Members cache;
  cache.emplace_back("hits",
                     Value::make_number(static_cast<double>(cs.hits)));
  cache.emplace_back("misses",
                     Value::make_number(static_cast<double>(cs.misses)));
  cache.emplace_back("insertions",
                     Value::make_number(static_cast<double>(cs.insertions)));
  cache.emplace_back("evictions",
                     Value::make_number(static_cast<double>(cs.evictions)));
  cache.emplace_back("size",
                     Value::make_number(static_cast<double>(cs.size)));
  Members store;
  store.emplace_back(
      "entries",
      Value::make_number(static_cast<double>(svc.store().size())));
  Members m;
  m.emplace_back("sessions", Value::make_array(std::move(sessions)));
  m.emplace_back("cache", Value::make_object(std::move(cache)));
  m.emplace_back("store", Value::make_object(std::move(store)));
  return ok_reply(std::move(m));
}

}  // namespace

ProtocolReply ServiceProtocol::handle_line(const std::string& line) {
  try {
    const Value req = Value::parse(line);
    PT_REQUIRE(req.is_object(), "request must be a JSON object");
    const std::string op = required_string(req, "op");
    if (op == "open") return {op_open(svc_, req), false};
    if (op == "resume") return {op_resume(svc_, req), false};
    if (op == "step") return {op_step(svc_, req), false};
    if (op == "suggest") return {op_suggest(svc_, req), false};
    if (op == "report") return {op_report(svc_, req), false};
    if (op == "checkpoint") return {op_checkpoint(svc_, req), false};
    if (op == "close") return {op_close(svc_, req), false};
    if (op == "status") return {op_status(svc_), false};
    if (op == "shutdown") {
      Members m;
      m.emplace_back("shutdown", Value::make_bool(true));
      return {ok_reply(std::move(m)), true};
    }
    return {error_reply("unknown op '" + op + "'"), false};
  } catch (const std::exception& e) {
    return {error_reply(e.what()), false};
  }
}

}  // namespace portatune::service
