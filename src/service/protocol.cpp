#include "service/protocol.hpp"

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "support/span_context.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;

using Members = std::vector<std::pair<std::string, Value>>;

/// Every op an instrument set is maintained for. "invalid" absorbs lines
/// that fail before an op is known (bad JSON, missing/unknown "op"), so
/// client input can never mint unbounded metric names.
const char* const kOps[] = {"open",   "resume",     "step",  "suggest",
                            "report", "checkpoint", "close", "status",
                            "stats",  "shutdown",   "invalid"};

/// The ops a retried rid may replay: everything that mutates session or
/// store state. status/stats/shutdown are read-only or terminal and are
/// always re-executed (a retried shutdown should still shut down).
bool mutating_op(const std::string& op) {
  return op == "open" || op == "resume" || op == "step" ||
         op == "suggest" || op == "report" || op == "checkpoint" ||
         op == "close";
}

std::string ok_reply(Members members) {
  Members m;
  m.emplace_back("ok", Value::make_bool(true));
  for (auto& kv : members) m.push_back(std::move(kv));
  return Value::make_object(std::move(m)).dump();
}

std::string error_reply(const std::string& message) {
  Members m;
  m.emplace_back("ok", Value::make_bool(false));
  m.emplace_back("error", Value::make_string(message));
  return Value::make_object(std::move(m)).dump();
}

std::string required_string(const Value& req, const char* key) {
  const Value* v = req.find(key);
  PT_REQUIRE(v != nullptr && v->is_string(),
             std::string("request needs a string '") + key + "' member");
  return v->as_string();
}

std::size_t size_member(const Value& req, const char* key,
                        std::size_t fallback) {
  const Value* v = req.find(key);
  if (v == nullptr) return fallback;
  PT_REQUIRE(v->is_number() && v->as_number() >= 0 &&
                 v->as_number() == std::floor(v->as_number()),
             std::string("'") + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(v->as_number());
}

SessionHandle& required_session(TuningService& svc, const Value& req) {
  const std::string id = required_string(req, "id");
  SessionHandle* h = svc.find(id);
  // Not live does not mean unknown: the daemon may have restarted, or
  // the lease sweep reclaimed the session. Try its on-disk checkpoint
  // before erroring so both cases stay invisible to clients.
  if (h == nullptr) h = svc.try_restore(id);
  PT_REQUIRE(h != nullptr, "no open session '" + id + "'");
  return *h;
}

tuner::ParamConfig parse_config(const Value& v,
                                const tuner::ParamSpace& space) {
  PT_REQUIRE(v.is_array(), "'config' must be an array of value indices");
  tuner::ParamConfig config;
  config.reserve(v.as_array().size());
  for (const Value& item : v.as_array()) {
    PT_REQUIRE(item.is_number() &&
                   item.as_number() == std::floor(item.as_number()),
               "'config' entries must be integer value indices");
    config.push_back(static_cast<int>(item.as_number()));
  }
  space.validate(config);  // throws naming the malformed dimension
  return config;
}

Value config_json(const tuner::ParamConfig& config) {
  std::vector<Value> items;
  items.reserve(config.size());
  for (int idx : config) items.push_back(Value::make_number(idx));
  return Value::make_array(std::move(items));
}

Members session_members(const SessionHandle& h) {
  Members m;
  m.emplace_back("id", Value::make_string(h.id()));
  m.emplace_back("warm", Value::make_bool(h.warm()));
  m.emplace_back("warm_source", Value::make_string(h.warm_source()));
  return m;
}

std::string op_open(TuningService& svc, const Value& req) {
  apps::TuningConfig cfg;
  cfg.problem(required_string(req, "problem"))
      .machine(required_string(req, "machine"));
  // Service sessions are always observed: the per-eval spans are what
  // lets a request span show its evaluation fan-out, and the layer is
  // dormant (no clock reads) when no sink listens at Debug.
  cfg.observe(true);
  if (const Value* v = req.find("max_evals"))
    cfg.max_evals(static_cast<std::size_t>(v->as_number()));
  if (const Value* v = req.find("seed"))
    cfg.seed(static_cast<std::uint64_t>(v->as_number()));
  if (const Value* v = req.find("pool_size"))
    cfg.pool_size(static_cast<std::size_t>(v->as_number()));
  if (const Value* v = req.find("eval_threads"))
    cfg.eval_threads(static_cast<std::size_t>(v->as_number()));
  SessionHandle& h = svc.open(required_string(req, "id"), cfg);
  return ok_reply(session_members(h));
}

std::string op_resume(TuningService& svc, const Value& req) {
  SessionHandle& h = svc.resume(required_string(req, "id"));
  return ok_reply(session_members(h));
}

std::string op_step(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const tuner::SessionStepStats stats = h.step(size_member(req, "n", 1));
  Members m;
  m.emplace_back("evaluated",
                 Value::make_number(static_cast<double>(stats.evaluated)));
  m.emplace_back("failures",
                 Value::make_number(static_cast<double>(stats.failures)));
  m.emplace_back("best_seconds", Value::make_number(stats.best_seconds));
  m.emplace_back("exhausted", Value::make_bool(stats.exhausted));
  m.emplace_back("evals",
                 Value::make_number(static_cast<double>(h.info().evals)));
  return ok_reply(std::move(m));
}

std::string op_suggest(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const auto configs = h.suggest(size_member(req, "n", 1));
  std::vector<Value> items;
  items.reserve(configs.size());
  for (const auto& c : configs) items.push_back(config_json(c));
  Members m;
  m.emplace_back("configs", Value::make_array(std::move(items)));
  return ok_reply(std::move(m));
}

std::string op_report(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const Value* config = req.find("config");
  PT_REQUIRE(config != nullptr, "request needs a 'config' member");
  const Value* seconds = req.find("seconds");
  PT_REQUIRE(seconds != nullptr && seconds->is_number(),
             "request needs a numeric 'seconds' member");
  h.report(parse_config(*config, h.space()), seconds->as_number());
  return ok_reply({});
}

std::string op_checkpoint(TuningService& svc, const Value& req) {
  required_session(svc, req).checkpoint();
  return ok_reply({});
}

std::string op_close(TuningService& svc, const Value& req) {
  SessionHandle& h = required_session(svc, req);
  const tuner::SearchTrace trace = h.close();
  Members m;
  m.emplace_back("evals",
                 Value::make_number(static_cast<double>(trace.size())));
  m.emplace_back("best_seconds", Value::make_number(trace.best_seconds()));
  return ok_reply(std::move(m));
}

Members cache_members(const EvalCacheStats& cs) {
  Members cache;
  cache.emplace_back("hits",
                     Value::make_number(static_cast<double>(cs.hits)));
  cache.emplace_back("misses",
                     Value::make_number(static_cast<double>(cs.misses)));
  cache.emplace_back("insertions",
                     Value::make_number(static_cast<double>(cs.insertions)));
  cache.emplace_back("evictions",
                     Value::make_number(static_cast<double>(cs.evictions)));
  cache.emplace_back("size",
                     Value::make_number(static_cast<double>(cs.size)));
  return cache;
}

std::string op_status(TuningService& svc) {
  svc.publish_metrics();
  std::vector<Value> sessions;
  for (const SessionInfo& s : svc.sessions()) {
    Members m;
    m.emplace_back("id", Value::make_string(s.id));
    m.emplace_back("problem", Value::make_string(s.problem));
    m.emplace_back("machine", Value::make_string(s.machine));
    m.emplace_back("evals",
                   Value::make_number(static_cast<double>(s.evals)));
    m.emplace_back("budget",
                   Value::make_number(static_cast<double>(s.budget)));
    m.emplace_back("best_seconds", Value::make_number(s.best_seconds));
    m.emplace_back("warm", Value::make_bool(s.warm));
    m.emplace_back("warm_source", Value::make_string(s.warm_source));
    m.emplace_back("idle_seconds", Value::make_number(s.idle_seconds));
    m.emplace_back("closed", Value::make_bool(s.closed));
    sessions.push_back(Value::make_object(std::move(m)));
  }
  Members store;
  store.emplace_back(
      "entries",
      Value::make_number(static_cast<double>(svc.store().size())));
  store.emplace_back(
      "quarantined",
      Value::make_number(static_cast<double>(svc.store().quarantined())));
  Members m;
  m.emplace_back("sessions", Value::make_array(std::move(sessions)));
  m.emplace_back("cache", Value::make_object(cache_members(svc.cache().stats())));
  m.emplace_back("store", Value::make_object(std::move(store)));
  return ok_reply(std::move(m));
}

/// The observability counterpart of `status`: a process summary plus the
/// full metrics snapshot of the registry current *now* (= the server's
/// registry), compact enough for one reply line. `portatune_cli status
/// --socket` renders it; the loadgen cross-checks its client-side op
/// counts against the server.op.* counters in here.
std::string op_stats(TuningService& svc, std::uint64_t requests_handled) {
  svc.publish_metrics();
  Members server;
#if defined(__unix__) || defined(__APPLE__)
  server.emplace_back("pid",
                      Value::make_number(static_cast<double>(::getpid())));
#else
  server.emplace_back("pid", Value::make_number(0.0));
#endif
  server.emplace_back("uptime_seconds", Value::make_number(obs::mono_now()));
  server.emplace_back(
      "requests",
      Value::make_number(static_cast<double>(requests_handled)));
  std::size_t open = 0, closed = 0;
  for (const SessionInfo& s : svc.sessions()) (s.closed ? closed : open)++;
  server.emplace_back("sessions_open",
                      Value::make_number(static_cast<double>(open)));
  server.emplace_back("sessions_closed",
                      Value::make_number(static_cast<double>(closed)));
  server.emplace_back(
      "store_entries",
      Value::make_number(static_cast<double>(svc.store().size())));
  server.emplace_back("cache",
                      Value::make_object(cache_members(svc.cache().stats())));
  Members m;
  m.emplace_back("server", Value::make_object(std::move(server)));
  m.emplace_back("metrics",
                 obs::MetricsRegistry::current().snapshot().to_value());
  return ok_reply(std::move(m));
}

}  // namespace

ServiceProtocol::ServiceProtocol(TuningService& svc, ProtocolOptions opt)
    : svc_(svc), opt_(std::move(opt)) {
  if (opt_.telemetry) {
    auto& reg = obs::MetricsRegistry::current();
    requests_total_ = &reg.counter("server.requests");
    requests_failed_ = &reg.counter("server.requests_failed");
    replays_ = &reg.counter("server.rid.replays");
    for (const char* op : kOps) {
      const std::string prefix = std::string("server.op.") + op;
      OpInstruments ins;
      ins.count = &reg.counter(prefix + ".count");
      ins.errors = &reg.counter(prefix + ".errors");
      ins.latency = &reg.histogram(prefix + ".latency");
      per_op_.emplace(op, ins);
    }
  }
  load_state();
}

ServiceProtocol::OpInstruments& ServiceProtocol::instruments(
    const std::string& op) {
  const auto it = per_op_.find(op);
  return it != per_op_.end() ? it->second : per_op_.find("invalid")->second;
}

std::size_t ServiceProtocol::replay_cache_size() const noexcept {
  std::size_t n = 0;
  for (const auto& [client, cache] : replay_) n += cache.replies.size();
  return n;
}

const std::string* ServiceProtocol::replay_lookup(const std::string& client,
                                                  const std::string& rid) {
  const auto it = replay_.find(client);
  if (it == replay_.end()) return nullptr;
  it->second.last_used = ++replay_tick_;
  const auto rit = it->second.replies.find(rid);
  return rit != it->second.replies.end() ? &rit->second : nullptr;
}

void ServiceProtocol::replay_store(const std::string& client,
                                   const std::string& rid,
                                   const std::string& reply) {
  if (opt_.replay_cache_per_client == 0 || opt_.replay_cache_clients == 0)
    return;
  auto it = replay_.find(client);
  if (it == replay_.end()) {
    // New client: evict the least-recently-used one when full. Bounded
    // state is the whole point — an adversarial client minting ids can
    // only displace other clients' caches, never grow the daemon.
    while (replay_.size() >= opt_.replay_cache_clients) {
      auto lru = replay_.begin();
      for (auto cit = replay_.begin(); cit != replay_.end(); ++cit)
        if (cit->second.last_used < lru->second.last_used) lru = cit;
      replay_.erase(lru);
    }
    it = replay_.emplace(client, ReplayCache{}).first;
  }
  ReplayCache& cache = it->second;
  cache.last_used = ++replay_tick_;
  if (cache.replies.count(rid) != 0) return;  // retried before we replied
  while (cache.replies.size() >= opt_.replay_cache_per_client) {
    cache.replies.erase(cache.order.front());
    cache.order.pop_front();
  }
  cache.replies.emplace(rid, reply);
  cache.order.push_back(rid);
}

void ServiceProtocol::persist_state() const {
  if (opt_.state_path.empty()) return;
  try {
    Members counters;
    if (opt_.telemetry) {
      counters.emplace_back(
          "server.requests",
          Value::make_number(static_cast<double>(requests_total_->value())));
      counters.emplace_back(
          "server.requests_failed",
          Value::make_number(static_cast<double>(requests_failed_->value())));
      counters.emplace_back(
          "server.rid.replays",
          Value::make_number(static_cast<double>(replays_->value())));
      for (const auto& [op, ins] : per_op_) {
        const std::string prefix = "server.op." + op;
        counters.emplace_back(
            prefix + ".count",
            Value::make_number(static_cast<double>(ins.count->value())));
        counters.emplace_back(
            prefix + ".errors",
            Value::make_number(static_cast<double>(ins.errors->value())));
      }
    }
    Members clients;
    for (const auto& [client, cache] : replay_) {
      std::vector<Value> pairs;
      pairs.reserve(cache.order.size());
      for (const std::string& rid : cache.order) {
        std::vector<Value> pair;
        pair.push_back(Value::make_string(rid));
        pair.push_back(Value::make_string(cache.replies.at(rid)));
        pairs.push_back(Value::make_array(std::move(pair)));
      }
      clients.emplace_back(client, Value::make_array(std::move(pairs)));
    }
    Members m;
    m.emplace_back("portatune_protocol_state", Value::make_number(1.0));
    m.emplace_back("requests",
                   Value::make_number(static_cast<double>(requests_)));
    m.emplace_back("counters", Value::make_object(std::move(counters)));
    m.emplace_back("clients", Value::make_object(std::move(clients)));
    atomic_write_file(opt_.state_path,
                      Value::make_object(std::move(m)).dump() + "\n");
  } catch (const std::exception& e) {
    // Losing the replay cache degrades retry behaviour; it must never
    // kill the daemon's shutdown path. Count it so operators see it.
    obs::MetricsRegistry::current()
        .counter("server.state_persist_failures")
        .add(1);
    if (obs::enabled(obs::Severity::Warn))
      obs::emit(obs::make_instant(obs::Severity::Warn,
                                  "server.state_persist_failed", "service",
                                  {{"path", opt_.state_path},
                                   {"error", std::string(e.what())}}));
  }
}

void ServiceProtocol::load_state() {
  if (opt_.state_path.empty() || !file_exists(opt_.state_path)) return;
  try {
    const Value state = Value::parse(read_file(opt_.state_path));
    PT_REQUIRE(state.is_object() &&
                   state.find("portatune_protocol_state") != nullptr,
               "not a protocol state file");
    if (const Value* v = state.find("requests"); v != nullptr && v->is_number())
      requests_ = static_cast<std::uint64_t>(v->as_number());
    // Counter continuity across the restart: the registry starts at
    // zero, so *add* the persisted totals back. A loadgen stats delta
    // spanning the restart then sees one monotone sequence.
    if (opt_.telemetry) {
      if (const Value* counters = state.find("counters");
          counters != nullptr && counters->is_object()) {
        auto& reg = obs::MetricsRegistry::current();
        for (const auto& [name, v] : counters->as_object())
          if (v.is_number() && v.as_number() > 0)
            reg.counter(name).add(static_cast<std::uint64_t>(v.as_number()));
      }
    }
    if (const Value* clients = state.find("clients");
        clients != nullptr && clients->is_object()) {
      for (const auto& [client, pairs] : clients->as_object()) {
        if (!pairs.is_array()) continue;
        for (const Value& pair : pairs.as_array()) {
          if (!pair.is_array() || pair.as_array().size() != 2) continue;
          const Value& rid = pair.as_array()[0];
          const Value& reply = pair.as_array()[1];
          if (rid.is_string() && reply.is_string())
            replay_store(client, rid.as_string(), reply.as_string());
        }
      }
    }
  } catch (const std::exception& e) {
    // A torn or foreign state file must not stop the daemon from
    // starting; it just starts with an empty replay cache.
    replay_.clear();
    obs::MetricsRegistry::current()
        .counter("server.state_restore_failures")
        .add(1);
    if (obs::enabled(obs::Severity::Warn))
      obs::emit(obs::make_instant(obs::Severity::Warn,
                                  "server.state_restore_failed", "service",
                                  {{"path", opt_.state_path},
                                   {"error", std::string(e.what())}}));
  }
}

ProtocolReply ServiceProtocol::handle_line(const std::string& line) {
  const std::uint64_t req_id = ++requests_;
  // Dormant path: telemetry off and nothing listening => no clock reads,
  // no span bookkeeping; the request costs parse + dispatch + reply.
  const bool tracing = obs::enabled(obs::Severity::Info);
  const bool timed = opt_.telemetry || tracing;
  const double t0 = timed ? obs::mono_now() : 0.0;

  // Open the request span *before* dispatch so everything the op does —
  // the session op span, every evaluation the step fans out to pool
  // threads — parents under this request in the trace tree.
  const std::uint64_t span_id = tracing ? next_span_id() : 0;
  const std::uint64_t parent_span = current_span_context().span;
  std::optional<SpanScope> scope;
  if (tracing) scope.emplace(SpanContext{span_id});

  std::string op = "invalid";
  std::string session_id;
  std::string error;
  std::string rid;
  std::string rid_client;
  bool replayed = false;
  ProtocolReply reply;
  // Requests are *counted* on arrival (as soon as the op is known), so a
  // `stats` reply's snapshot includes the very request that produced it;
  // errors and latency are recorded on completion below. Replays are the
  // exception: they count only under server.requests and
  // server.rid.replays — the per-op counters record executions, exactly
  // one per logical client call, which is what the loadgen cross-checks.
  bool counted = false;
  const auto count_arrival = [&] {
    if (opt_.telemetry && !counted) {
      counted = true;
      requests_total_->add(1);
      if (replayed) replays_->add(1);
      else instruments(op).count->add(1);
    }
  };
  try {
    const Value req = Value::parse(line);
    PT_REQUIRE(req.is_object(), "request must be a JSON object");
    if (const Value* v = req.find("id"); v != nullptr && v->is_string())
      session_id = v->as_string();
    const std::string requested = required_string(req, "op");
    for (const char* known : kOps)
      if (requested == known && requested != "invalid") op = requested;
    PT_REQUIRE(op != "invalid", "unknown op '" + requested + "'");
    if (const Value* v = req.find("rid"); v != nullptr && mutating_op(op)) {
      PT_REQUIRE(v->is_string(), "'rid' must be a string");
      rid = v->as_string();
      const std::size_t colon = rid.rfind(':');
      rid_client = colon == std::string::npos ? rid : rid.substr(0, colon);
      if (const std::string* cached = replay_lookup(rid_client, rid)) {
        // Exactly-once: this rid already executed and we remember what
        // we said. Replay it verbatim — re-executing a step/report
        // would double-consume draws and fork the CRN trace.
        replayed = true;
        reply = {*cached, false};
        count_arrival();
        return reply;
      }
    }
    count_arrival();
    if (op == "open") reply = {op_open(svc_, req), false};
    else if (op == "resume") reply = {op_resume(svc_, req), false};
    else if (op == "step") reply = {op_step(svc_, req), false};
    else if (op == "suggest") reply = {op_suggest(svc_, req), false};
    else if (op == "report") reply = {op_report(svc_, req), false};
    else if (op == "checkpoint") reply = {op_checkpoint(svc_, req), false};
    else if (op == "close") reply = {op_close(svc_, req), false};
    else if (op == "status") reply = {op_status(svc_), false};
    else if (op == "stats") reply = {op_stats(svc_, requests_), false};
    else {  // shutdown
      Members m;
      m.emplace_back("shutdown", Value::make_bool(true));
      reply = {ok_reply(std::move(m)), true};
    }
  } catch (const std::exception& e) {
    error = e.what();
    reply = {error_reply(error), false};
  }
  count_arrival();  // parse/validation failures count under "invalid"
  const bool failed = !error.empty();

  // Error replies are cached too: a deterministic failure (bad config,
  // closed session) must answer a retry the same way, not re-execute
  // into a *different* failure — or worse, a success — on the retry.
  if (!rid.empty()) replay_store(rid_client, rid, reply.line);

  if (failed && obs::enabled(obs::Severity::Warn)) {
    // Satellite: op errors reach the event stream (and so the flight
    // recorder's ring), not just the failing client.
    obs::emit(obs::make_instant(obs::Severity::Warn, "service.op_error",
                                "service",
                                {{"req", req_id},
                                 {"op", op},
                                 {"session", session_id},
                                 {"error", error}}));
  }

  if (timed) {
    const double elapsed = obs::mono_now() - t0;
    if (opt_.telemetry) {
      if (failed) requests_failed_->add(1);
      OpInstruments& ins = instruments(op);
      if (failed) ins.errors->add(1);
      ins.latency->observe(elapsed);
    }
    if (opt_.slow_request_seconds > 0.0 &&
        elapsed > opt_.slow_request_seconds &&
        obs::enabled(obs::Severity::Warn)) {
      obs::emit(obs::make_instant(obs::Severity::Warn, "server.slow_request",
                                  "service",
                                  {{"req", req_id},
                                   {"op", op},
                                   {"session", session_id},
                                   {"seconds", elapsed},
                                   {"threshold",
                                    opt_.slow_request_seconds}}));
    }
    if (tracing) {
      obs::Event ev = obs::make_span(
          obs::Severity::Info, "server.op." + op, "service", elapsed,
          {{"req", req_id},
           {"op", op},
           {"session", session_id},
           {"ok", !failed},
           {"bytes_in", static_cast<std::uint64_t>(line.size())},
           {"bytes_out", static_cast<std::uint64_t>(reply.line.size())}});
      ev.span_id = span_id;
      ev.parent_span_id = parent_span;
      obs::emit(ev);
    }
  }
  return reply;
}

}  // namespace portatune::service
