#include "service/surrogate_store.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "support/atomic_file.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/persistence.hpp"
#include "tuner/sampler.hpp"
#include "tuner/transfer.hpp"

namespace portatune::service {

namespace {

/// Filesystem-safe entry key fragment: alnum kept, everything else '-'.
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
  return out;
}

std::string join_fingerprint(const std::vector<double>& fp) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (i > 0) os << ';';
    os << fp[i];
  }
  return os.str();
}

std::vector<double> split_fingerprint(const std::string& s) {
  std::vector<double> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ';'))
    if (!item.empty()) out.push_back(std::stod(item));
  return out;
}

void note_quarantine(const std::string& what, const std::string& reason) {
  obs::MetricsRegistry::current().counter("store.quarantined").add(1);
  if (obs::enabled(obs::Severity::Warn))
    obs::emit(obs::make_instant(obs::Severity::Warn,
                                "store.entry_quarantined", "service",
                                {{"entry", what}, {"reason", reason}}));
}

}  // namespace

SurrogateStore::SurrogateStore(SurrogateStoreOptions opt)
    : opt_(std::move(opt)) {
  PT_REQUIRE(!opt_.dir.empty(), "surrogate store needs a directory");
  ensure_directory(opt_.dir);
  ensure_directory(opt_.dir + "/entries");
  if (file_exists(opt_.dir + "/index.csv")) load_index();
}

std::string SurrogateStore::entry_dir(const StoreEntry& entry) const {
  return opt_.dir + "/entries/" + entry.key;
}

/// First free path under quarantine/ for `name` (suffixing -2, -3, ...
/// when a previous quarantine already used it).
std::string SurrogateStore::quarantine_slot(const std::string& name) const {
  std::error_code ec;
  std::filesystem::create_directories(opt_.dir + "/quarantine", ec);
  std::string dst = opt_.dir + "/quarantine/" + name;
  for (std::size_t n = 2; std::filesystem::exists(dst, ec); ++n)
    dst = opt_.dir + "/quarantine/" + name + "-" + std::to_string(n);
  return dst;
}

void SurrogateStore::quarantine(const std::string& key,
                                const std::string& reason) {
  std::error_code ec;
  const std::string src = opt_.dir + "/entries/" + key;
  if (std::filesystem::exists(src, ec))
    std::filesystem::rename(src, quarantine_slot(key), ec);
  // Even when the move failed, drop the entry from the index: nothing
  // may serve it again, and the next load skips unindexed directories.
  const auto it = std::remove_if(
      entries_.begin(), entries_.end(),
      [&](const StoreEntry& e) { return e.key == key; });
  const bool indexed = it != entries_.end();
  entries_.erase(it, entries_.end());
  ++quarantined_;
  note_quarantine(key, reason);
  if (indexed && !loading_) save_index();
}

const StoreEntry* SurrogateStore::find(const std::string& key) const {
  for (const auto& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

const StoreEntry& SurrogateStore::put(const std::string& problem,
                                      const std::string& machine,
                                      const tuner::SearchTrace& trace,
                                      const tuner::ParamSpace& space,
                                      std::vector<double> fingerprint) {
  PT_REQUIRE(!trace.empty(), "refusing to store an empty trace");
  PT_REQUIRE(fingerprint.size() >= 3,
             "fingerprint too short to index (need >= 3 probes)");
  StoreEntry* slot = nullptr;
  for (auto& e : entries_)
    if (e.problem == problem && e.machine == machine) slot = &e;
  if (slot == nullptr) {
    StoreEntry e;
    e.key = sanitize(problem) + "_" + sanitize(machine);
    // Key collisions (two machines sanitizing identically) get a suffix.
    std::size_t n = 1;
    while (find(e.key) != nullptr)
      e.key = sanitize(problem) + "_" + sanitize(machine) + "_" +
              std::to_string(++n);
    entries_.push_back(std::move(e));
    slot = &entries_.back();
  }
  slot->problem = problem;
  slot->machine = machine;
  slot->evals = trace.size();
  slot->best_seconds = trace.best_seconds();
  slot->fingerprint = std::move(fingerprint);

  ensure_directory(entry_dir(*slot));
  std::ostringstream os;
  tuner::save_trace_csv(os, trace, space);
  // Atomic trace first, index after: a crash between the two leaves an
  // orphaned trace file, never an index line without its trace.
  atomic_write_file(entry_dir(*slot) + "/trace.csv", os.str());
  save_index();
  return *slot;
}

std::optional<StoreMatch> SurrogateStore::nearest(
    const std::string& problem, std::span<const double> fingerprint) const {
  std::optional<StoreMatch> best;
  for (const auto& e : entries_) {
    if (e.problem != problem) continue;
    if (e.fingerprint.size() != fingerprint.size()) continue;
    if (fingerprint.size() < 3) continue;
    const tuner::SimilarityReport report =
        tuner::summarize_probe_vectors(e.fingerprint, fingerprint);
    const tuner::TransferAdvice advice = tuner::advise(report);
    if (advice == tuner::TransferAdvice::DoNotTransfer) continue;
    if (!best || report.spearman > best->report.spearman)
      best = StoreMatch{e, report, advice};
  }
  return best;
}

tuner::SearchTrace SurrogateStore::load_trace(
    const StoreEntry& entry, const tuner::ParamSpace& space) const {
  return tuner::load_trace_csv(entry_dir(entry) + "/trace.csv", space);
}

ml::RegressorPtr SurrogateStore::load_surrogate(
    const StoreEntry& entry, const tuner::ParamSpace& space) const {
  const tuner::SearchTrace trace = load_trace(entry, space);
  return tuner::fit_surrogate(trace, space, opt_.forest);
}

void SurrogateStore::save_index() const {
  // Simple line format, atomically replaced as a whole:
  //   # portatune-store v1
  //   key,problem,machine,evals,best_seconds,fp0;fp1;...
  std::ostringstream os;
  os << "# portatune-store v1\n";
  os.precision(17);
  for (const auto& e : entries_)
    os << e.key << ',' << e.problem << ',' << e.machine << ',' << e.evals
       << ',' << e.best_seconds << ',' << join_fingerprint(e.fingerprint)
       << '\n';
  atomic_write_file(opt_.dir + "/index.csv", os.str());
}

void SurrogateStore::load_index() {
  loading_ = true;
  const std::size_t quarantined_before = quarantined_;
  const std::string index_path = opt_.dir + "/index.csv";
  const std::string text = read_file(index_path);
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind("# portatune-store v1", 0) != 0) {
    // Not our index at all (overwritten, torn at byte zero): move the
    // file aside whole and start empty — startup must survive it.
    std::error_code ec;
    std::filesystem::rename(index_path, quarantine_slot("index.csv"), ec);
    ++quarantined_;
    note_quarantine("index.csv",
                    "'" + index_path + "' is not a surrogate store index");
    loading_ = false;
    return;
  }
  std::string rejected_lines;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    StoreEntry e;
    try {
      std::istringstream ls(line);
      std::string evals, best, fp;
      PT_REQUIRE(std::getline(ls, e.key, ',') &&
                     std::getline(ls, e.problem, ',') &&
                     std::getline(ls, e.machine, ',') &&
                     std::getline(ls, evals, ',') &&
                     std::getline(ls, best, ',') && std::getline(ls, fp),
                 "malformed store index line: " + line);
      e.evals = std::stoul(evals);
      e.best_seconds = std::stod(best);
      e.fingerprint = split_fingerprint(fp);
    } catch (const std::exception& ex) {
      // A torn or hand-edited line quarantines that *line*, not the
      // store: survivors keep serving.
      rejected_lines += line + "\n";
      ++quarantined_;
      note_quarantine("index line", ex.what());
      continue;
    }
    // Entries whose trace file vanished are dropped silently: the index
    // is a cache of the entries/ directory, not the other way round.
    const std::string trace_path =
        opt_.dir + "/entries/" + e.key + "/trace.csv";
    if (!file_exists(trace_path)) continue;
    // Verify the trace's v3 checksum footer up front — cheap (one hash
    // over the file) and it catches truncation and byte flips before a
    // session warms from the entry.
    try {
      const std::string what = "store entry '" + e.key + "' trace";
      strip_verified_checksum_footer(read_file(trace_path), what.c_str());
    } catch (const std::exception& ex) {
      quarantine(e.key, ex.what());
      continue;
    }
    entries_.push_back(std::move(e));
  }
  loading_ = false;
  if (!rejected_lines.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt_.dir + "/quarantine", ec);
    std::ofstream out(opt_.dir + "/quarantine/index_rejected.csv",
                      std::ios::app);
    out << rejected_lines;
  }
  if (quarantined_ != quarantined_before) save_index();
}

std::vector<double> measure_fingerprint(tuner::Evaluator& eval,
                                        std::size_t probes) {
  PT_REQUIRE(probes >= 3, "need at least three fingerprint probes");
  // Walk the canonical probe stream, skipping configurations that fail.
  // A failure here is a deterministic property of the configuration (an
  // invalid tile combination, say), not of the machine, so every machine
  // skips the same draws and the vectors stay element-aligned — the same
  // discipline measure_similarity applies when probing two machines
  // side by side.
  tuner::ConfigStream stream(eval.space(), tuner::kFingerprintSeed);
  std::vector<double> fp;
  fp.reserve(probes);
  std::size_t attempts = 0;
  while (fp.size() < probes && attempts < probes * 50) {
    ++attempts;
    auto c = stream.next();
    if (!c) break;
    const tuner::EvalResult r = eval.evaluate(*c);
    if (!r.ok) continue;
    fp.push_back(r.seconds);
  }
  PT_REQUIRE(fp.size() >= 3,
             "too few fingerprint probes succeeded (" +
                 std::to_string(fp.size()) + " of " +
                 std::to_string(probes) + " requested)");
  return fp;
}

}  // namespace portatune::service
