#include "service/resilient_client.hpp"

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"

namespace portatune::service {

namespace {

using obs::json::Value;
using Members = std::vector<std::pair<std::string, Value>>;

/// Must match the protocol's replayable set (protocol.cpp): only these
/// ops get a rid, so read-only traffic never grows the reply cache.
bool mutating_op(const std::string& op) {
  return op == "open" || op == "resume" || op == "step" ||
         op == "suggest" || op == "report" || op == "checkpoint" ||
         op == "close";
}

void sleep_seconds(double s) {
  if (s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

ResilientClient::ResilientClient(std::string socket_path,
                                 ResilientClientOptions opt)
    : socket_path_(std::move(socket_path)),
      opt_(std::move(opt)),
      jitter_(opt_.jitter_seed) {
  sockaddr_un addr{};
  PT_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path_);
  PT_REQUIRE(opt_.attempt_timeout_seconds > 0.0,
             "attempt_timeout_seconds must be positive");
  client_id_ = opt_.client_id.empty()
                   ? "c" + std::to_string(::getpid())
                   : opt_.client_id;
}

ResilientClient::~ResilientClient() { disconnect(); }

void ResilientClient::disconnect() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();  // half a reply from a dead connection is garbage
}

bool ResilientClient::connect_once() noexcept {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool ResilientClient::send_all(const std::string& bytes) noexcept {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ResilientClient::read_reply(double attempt_deadline_mono,
                                 std::string& reply) {
  char buf[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    const double remaining = attempt_deadline_mono - obs::mono_now();
    if (remaining <= 0.0) return false;
    // poll() before recv(): the timeout is what stops a blackholed or
    // hung server from wedging the client (the chaos proxy's blackhole
    // fault exists to prove exactly this path).
    pollfd p{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min(remaining * 1000.0 + 1.0, 3600000.0));
    const int ready = ::poll(&p, 1, std::max(1, timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // attempt timed out
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK))
      continue;
    if (n <= 0) return false;  // hangup (possibly mid-reply; buf_ is
                               // dropped by the disconnect that follows)
    buf_.append(buf, static_cast<std::size_t>(n));
  }
}

std::string ResilientClient::stamp_rid(const std::string& line) {
  if (!opt_.stamp_rids) return line;
  try {
    const Value req = Value::parse(line);
    if (!req.is_object()) return line;
    const Value* op = req.find("op");
    if (op == nullptr || !op->is_string() || !mutating_op(op->as_string()))
      return line;
    if (req.find("rid") != nullptr) return line;  // caller-managed rid
    Members m = req.as_object();
    m.emplace_back("rid", Value::make_string(
                              client_id_ + ":" + std::to_string(++seq_)));
    return Value::make_object(std::move(m)).dump();
  } catch (const std::exception&) {
    // Unparseable lines pass through unstamped: the server's error
    // reply is deterministic, so the retry loop stays idempotent.
    return line;
  }
}

std::string ResilientClient::call(const std::string& line) {
  return call(line, opt_.call_deadline_seconds);
}

std::string ResilientClient::call(const std::string& line,
                                  double deadline_seconds) {
  // One rid for the whole call: every retry re-sends these exact bytes,
  // so the server either executes once or replays the cached reply.
  const std::string request = stamp_rid(line) + "\n";
  const double deadline =
      obs::mono_now() + std::max(0.0, deadline_seconds);
  std::string last_error = "no attempt completed";
  std::size_t failures = 0;

  // Jittered capped exponential backoff; false = the deadline expired.
  const auto backoff = [&]() -> bool {
    const double now = obs::mono_now();
    if (now >= deadline) return false;
    double b = opt_.backoff_initial_seconds;
    for (std::size_t i = 0; i < failures && b < opt_.backoff_max_seconds;
         ++i)
      b *= opt_.backoff_multiplier;
    b = std::min(b, opt_.backoff_max_seconds);
    b *= 0.5 + jitter_.uniform();  // [0.5, 1.5)x, seeded
    sleep_seconds(std::min(b, deadline - now));
    ++failures;
    return true;
  };

  for (std::size_t attempt = 0;; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (fd_ < 0) {
      if (connect_once()) {
        if (connected_once_) ++stats_.reconnects;
        connected_once_ = true;
      } else {
        last_error =
            "connect(" + socket_path_ + "): " + std::strerror(errno);
        if (!backoff()) break;
        continue;
      }
    }
    if (!send_all(request)) {
      last_error = "send(" + socket_path_ + "): connection lost";
      disconnect();
      if (!backoff()) break;
      continue;
    }
    const double attempt_deadline = std::min(
        deadline, obs::mono_now() + opt_.attempt_timeout_seconds);
    std::string reply;
    if (!read_reply(attempt_deadline, reply)) {
      last_error = "no reply from " + socket_path_ + " within " +
                   std::to_string(opt_.attempt_timeout_seconds) + "s";
      disconnect();
      if (!backoff()) break;
      continue;
    }
    // The server's typed overload signal: back off exactly as told,
    // without consuming the exponential-backoff schedule.
    double retry_after = -1.0;
    try {
      const Value v = Value::parse(reply);
      if (v.is_object()) {
        const Value* ok = v.find("ok");
        const Value* ra = v.find("retry_after");
        if (ok != nullptr && ok->is_bool() && !ok->as_bool() &&
            ra != nullptr && ra->is_number())
          retry_after = ra->as_number();
      }
    } catch (const std::exception&) {
      // Not JSON: hand it to the caller as-is below.
    }
    if (retry_after >= 0.0) {
      ++stats_.throttled;
      last_error = "rate limited (retry_after " +
                   std::to_string(retry_after) + "s)";
      if (obs::mono_now() + retry_after >= deadline) break;
      sleep_seconds(retry_after);
      continue;
    }
    ++stats_.calls;
    return reply;
  }
  throw Error("call deadline of " + std::to_string(deadline_seconds) +
              "s exceeded on " + socket_path_ + ": " + last_error);
}

}  // namespace portatune::service

#else  // non-UNIX build: no AF_UNIX transport

namespace portatune::service {

ResilientClient::ResilientClient(std::string socket_path,
                                 ResilientClientOptions opt)
    : socket_path_(std::move(socket_path)),
      opt_(std::move(opt)),
      jitter_(opt_.jitter_seed) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

ResilientClient::~ResilientClient() = default;

void ResilientClient::disconnect() noexcept {}
bool ResilientClient::connect_once() noexcept { return false; }
bool ResilientClient::send_all(const std::string&) noexcept { return false; }
bool ResilientClient::read_reply(double, std::string&) { return false; }
std::string ResilientClient::stamp_rid(const std::string& line) {
  return line;
}

std::string ResilientClient::call(const std::string& line) {
  return call(line, opt_.call_deadline_seconds);
}

std::string ResilientClient::call(const std::string&, double) {
  throw Error("the tuning service socket transport requires a UNIX system");
}

}  // namespace portatune::service

#endif
