// TuningService: autotuning as a long-running service.
//
// The service multiplexes concurrent *sessions* (tuner/session.hpp) over
// shared infrastructure:
//
//   * one EvalCache — sessions tuning the same (problem, machine) reuse
//     each other's measurements (and a resumed session reuses its own);
//   * one SurrogateStore — a closing session publishes its trace keyed
//     by (problem, machine fingerprint); a new session fingerprints its
//     machine (through the cache: free when the machine is known) and,
//     when the store holds an admissibly similar machine, starts *warm*:
//     the stored surrogate is refit and the session evaluates a ranked
//     candidate pool (RS_b) instead of the cold draw stream;
//   * the process thread pool — each session's evaluator stack fans its
//     windows out exactly as the one-shot drivers do.
//
// Crash-safety mirrors the run journal discipline: every session has a
// directory under <data_dir>/sessions/<id>/ with an atomically written
// meta.json and checkpoint.csv; checkpoint() (or checkpoint_all(), which
// the server calls on SIGTERM) snapshots the live state, and resume(id)
// reconstructs the session exactly — same seed, same store surrogate,
// same replayed draw position.
//
// Threading: open/resume/list serialize on the service registry lock;
// step/suggest/report/checkpoint/close serialize per session, so two
// sessions advance concurrently (sharing the cache, which locks itself).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "apps/tuning_config.hpp"
#include "service/eval_cache.hpp"
#include "service/surrogate_store.hpp"
#include "tuner/session.hpp"

namespace portatune::service {

struct TuningServiceOptions {
  /// Root of all service state: sessions/ and store/ live under it.
  std::string data_dir = "portatune_service";
  /// Canonical probe draws per machine fingerprint.
  std::size_t fingerprint_probes = 16;
  std::size_t cache_capacity = 1 << 16;
  /// Forest hyperparameters for store surrogate refits.
  ml::ForestParams forest{};
};

/// Point-in-time session summary (status command, gauges).
struct SessionInfo {
  std::string id;
  std::string problem;
  std::string machine;
  std::size_t evals = 0;
  std::size_t budget = 0;
  double best_seconds = 0.0;
  bool warm = false;
  std::string warm_source;  ///< machine the warm surrogate came from
  double idle_seconds = 0.0;  ///< since the last client op touched it
  bool closed = false;
};

class TuningService;

/// One open session, owned by the service. All methods are safe to call
/// concurrently with other sessions' methods; calls on the *same* handle
/// serialize on its internal lock.
class SessionHandle {
 public:
  SessionHandle(const SessionHandle&) = delete;
  SessionHandle& operator=(const SessionHandle&) = delete;

  const std::string& id() const noexcept { return id_; }
  const std::string& dir() const noexcept { return dir_; }
  bool warm() const noexcept { return warm_model_ != nullptr; }
  const std::string& warm_source() const noexcept { return warm_source_; }

  /// Evaluate up to n configurations service-side.
  tuner::SessionStepStats step(std::size_t n);
  /// Hand out candidates for external measurement.
  std::vector<tuner::ParamConfig> suggest(std::size_t n);
  /// Feed an externally measured result back.
  void report(const tuner::ParamConfig& config, double seconds);
  /// Atomically persist checkpoint.csv (and refresh meta.json). No-op
  /// once closed: close() already persisted the final state.
  void checkpoint();
  /// Close: final checkpoint, publish the trace to the surrogate store,
  /// mark meta closed. Returns the final trace. Idempotent.
  tuner::SearchTrace close();

  SessionInfo info() const;
  const tuner::ParamSpace& space() const { return cached_->space(); }
  /// Snapshot of the trace (copy: the session may advance concurrently).
  tuner::SearchTrace trace_snapshot() const;
  /// Seconds since a client op (step/suggest/report/checkpoint/close)
  /// last touched this session — the lease sweep's eviction signal.
  double idle_seconds() const;

 private:
  friend class TuningService;
  SessionHandle() = default;
  void persist_meta_locked() const;
  void persist_checkpoint_locked() const;
  void publish_gauges_locked() const;

  std::string id_;
  std::string dir_;
  apps::TuningConfig cfg_;
  std::unique_ptr<apps::EvaluatorStack> stack_;
  std::unique_ptr<CachedEvaluator> cached_;
  std::vector<double> fingerprint_;
  ml::RegressorPtr warm_model_;  ///< owns the refit store surrogate
  std::string warm_source_;
  std::string warm_key_;         ///< store entry key the model came from
  std::optional<tuner::SearchCheckpoint> resume_snapshot_;
  std::unique_ptr<tuner::TuningSession> session_;
  TuningService* service_ = nullptr;  ///< owner; outlives the handle
  bool closed_ = false;
  double last_touched_ = 0.0;  ///< obs::mono_now() of the last client op
  mutable std::mutex mutex_;
};

class TuningService {
 public:
  explicit TuningService(TuningServiceOptions opt = {});
  /// Destruction checkpoints every open session (best-effort).
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Open a new session. `cfg` names the problem/machine/budget/seed;
  /// the service fingerprints the machine, consults the store, and
  /// decides cold vs warm. Throws when `id` is already open.
  SessionHandle& open(const std::string& id, const apps::TuningConfig& cfg);

  /// Reconstruct a checkpointed session from <data_dir>/sessions/<id>/.
  /// The full TuningConfig persisted at open is restored — evaluator
  /// stack, search options, seeds — so the resumed session is the opened
  /// one; only runtime members (cancel token, guard callbacks) reset.
  /// Throws when the directory is missing or the session was closed.
  SessionHandle& resume(const std::string& id);

  /// Live handle by id; nullptr when unknown.
  SessionHandle* find(const std::string& id);

  /// resume(id) that answers failure with nullptr instead of throwing —
  /// the protocol's fallback when a session op arrives for a session
  /// that is not live (daemon restarted, or the lease sweep reclaimed
  /// it) but has a resumable checkpoint on disk. Successful restores
  /// count under `service.sessions_restored` (+ an Info event).
  SessionHandle* try_restore(const std::string& id);

  /// Lease sweep: checkpoint-and-evict every open session idle longer
  /// than `max_idle_seconds` (also drop closed sessions idle that long —
  /// their state is final on disk). The session is NOT marked closed, so
  /// a later op on it transparently resumes from the lease checkpoint.
  /// A session whose checkpoint write fails stays live (counted under
  /// `service.checkpoint_failures`) — reclaiming it would lose state.
  /// Returns the reclaimed session ids.
  std::vector<std::string> reclaim_idle(double max_idle_seconds);

  std::vector<SessionInfo> sessions() const;
  /// Checkpoint every open session (the server's SIGTERM path). Failures
  /// degrade to counted warnings (`service.checkpoint_failures`).
  void checkpoint_all();

  EvalCache& cache() noexcept { return cache_; }
  SurrogateStore& store() noexcept { return store_; }
  const TuningServiceOptions& options() const noexcept { return opt_; }

  /// Thread-safe store publication (the store itself is not thread-safe;
  /// this serializes on the service lock). Closing sessions use it.
  const StoreEntry& publish_trace(const std::string& problem,
                                  const std::string& machine,
                                  const tuner::SearchTrace& trace,
                                  const tuner::ParamSpace& space,
                                  std::vector<double> fingerprint);

  /// Refresh the service-level gauges (active sessions, store entries,
  /// cache counters) in the process metrics registry.
  void publish_metrics();

 private:
  std::unique_ptr<SessionHandle> build_session(
      const std::string& id, const apps::TuningConfig& cfg, bool resuming);

  TuningServiceOptions opt_;
  EvalCache cache_;
  SurrogateStore store_;
  mutable std::mutex mutex_;  ///< guards sessions_
  std::map<std::string, std::unique_ptr<SessionHandle>> sessions_;
};

}  // namespace portatune::service
