// Tabular regression dataset (row-major features + targets).
//
// This is the `T_a = {(x_1,y_1),...,(x_l,y_l)}` object of the paper: each
// row is a parameter configuration encoded as doubles, the target is the
// run time measured on the source machine.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace portatune::ml {

class Dataset {
 public:
  Dataset() = default;

  /// Construct with named feature columns (names optional; used by tree
  /// rendering for Fig. 2-style output).
  explicit Dataset(std::size_t num_features,
                   std::vector<std::string> feature_names = {});

  std::size_t num_rows() const noexcept { return targets_.size(); }
  std::size_t num_features() const noexcept { return num_features_; }
  bool empty() const noexcept { return targets_.empty(); }

  /// Append one (x, y) pair; x must have num_features entries.
  void add_row(std::span<const double> features, double target);

  std::span<const double> row(std::size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  double target(std::size_t i) const { return targets_[i]; }
  std::span<const double> targets() const noexcept { return targets_; }

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }
  /// Name of feature `j`, or "x<j>" when unnamed.
  std::string feature_name(std::size_t j) const;

  /// Bootstrap resample of the same size (sampling rows with replacement).
  Dataset bootstrap(Rng& rng) const;

  /// Split into (train, test) with `test_fraction` of rows held out,
  /// shuffled by `rng`.
  std::pair<Dataset, Dataset> split(double test_fraction, Rng& rng) const;

  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> rows) const;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> features_;  // row-major, num_rows * num_features
  std::vector<double> targets_;
  std::vector<std::string> feature_names_;
};

}  // namespace portatune::ml
