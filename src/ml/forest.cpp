#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace portatune::ml {

void RandomForest::fit(const Dataset& train) {
  PT_REQUIRE(!train.empty(), "cannot fit a forest on an empty dataset");
  PT_REQUIRE(params_.num_trees > 0, "forest needs at least one tree");

  // Model-fit cost is one of the "search overhead" quantities the paper
  // argues is negligible; measure it so the claim is checkable.
  auto& metrics = obs::MetricsRegistry::current();
  obs::ScopedTimer fit_span("forest.fit", "ml",
                            {{"rows", train.num_rows()},
                             {"features", train.num_features()},
                             {"trees", params_.num_trees}},
                            &metrics.histogram("forest.fit_seconds"));
  metrics.counter("forest.fits").add();

  const std::size_t m = train.num_features();
  const std::size_t max_features =
      params_.max_features > 0
          ? params_.max_features
          : std::max<std::size_t>(1, (m + 2) / 3);  // ceil(m/3)

  trees_.clear();
  trees_.reserve(params_.num_trees);
  std::vector<std::vector<std::size_t>> bags(params_.num_trees);

  // Derive per-tree seeds up front so results are identical whether fitting
  // runs serially or across the pool.
  Rng seeder(params_.seed);
  std::vector<std::uint64_t> bag_seeds, tree_seeds;
  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    bag_seeds.push_back(seeder());
    tree_seeds.push_back(seeder());
  }
  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    TreeParams tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = params_.min_samples_leaf;
    tp.min_samples_split = params_.min_samples_split;
    tp.max_features = max_features;
    tp.seed = tree_seeds[t];
    trees_.emplace_back(tp);
  }

  const auto fit_one = [&](std::size_t t) {
    Rng rng(bag_seeds[t]);
    std::vector<std::size_t>& bag = bags[t];
    bag.resize(train.num_rows());
    for (auto& r : bag) r = static_cast<std::size_t>(rng.below(train.num_rows()));
    trees_[t].fit(train.subset(bag));
  };

  if (params_.parallel_fit && params_.num_trees > 1) {
    ThreadPool::global().parallel_for(0, params_.num_trees, fit_one);
  } else {
    for (std::size_t t = 0; t < params_.num_trees; ++t) fit_one(t);
  }

  // Out-of-bag error: for each training row, average the predictions of the
  // trees whose bootstrap bag does not contain it.
  double sse = 0.0;
  std::size_t covered = 0;
  std::vector<std::vector<char>> bag_masks(params_.num_trees,
                                           std::vector<char>(train.num_rows(), 0));
  for (std::size_t t = 0; t < params_.num_trees; ++t)
    for (std::size_t r : bags[t]) bag_masks[t][r] = 1;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    double sum = 0.0;
    std::size_t votes = 0;
    for (std::size_t t = 0; t < params_.num_trees; ++t) {
      if (!bag_masks[t][i]) {
        sum += trees_[t].predict(train.row(i));
        ++votes;
      }
    }
    if (votes == 0) continue;
    const double err = sum / static_cast<double>(votes) - train.target(i);
    sse += err * err;
    ++covered;
  }
  oob_rmse_ = covered > 0
                  ? std::sqrt(sse / static_cast<double>(covered))
                  : std::numeric_limits<double>::quiet_NaN();
  if (covered > 0) metrics.gauge("forest.oob_rmse").set(oob_rmse_);
  fit_span.add_field({"oob_rmse", oob_rmse_});

  // Permutation feature importance on the training set: importance of
  // feature j = increase in MSE when column j is shuffled.
  importances_.assign(m, 0.0);
  const std::size_t n = train.num_rows();
  std::vector<double> base_pred(n);
  for (std::size_t i = 0; i < n; ++i) base_pred[i] = predict(train.row(i));
  double base_mse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = base_pred[i] - train.target(i);
    base_mse += e * e;
  }
  base_mse /= static_cast<double>(n);
  Rng perm_rng(params_.seed ^ 0xabcdef12345ULL);
  std::vector<double> x;
  for (std::size_t j = 0; j < m; ++j) {
    auto order = perm_rng.permutation(n);
    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x.assign(train.row(i).begin(), train.row(i).end());
      x[j] = train.row(order[i])[j];
      const double e = predict(x) - train.target(i);
      mse += e * e;
    }
    mse /= static_cast<double>(n);
    importances_[j] = std::max(0.0, mse - base_mse);
  }
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0)
    for (auto& v : importances_) v /= total;
}

double RandomForest::predict(std::span<const double> x) const {
  PT_REQUIRE(is_fitted(), "predict() before fit()");
  double sum = 0.0;
  for (const auto& t : trees_) sum += t.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_batch(const Dataset& rows) const {
  PT_REQUIRE(is_fitted(), "predict_batch() before fit()");
  std::vector<double> out(rows.num_rows());
  ThreadPool::global().parallel_for(0, rows.num_rows(), [&](std::size_t i) {
    out[i] = predict(rows.row(i));
  });
  return out;
}

}  // namespace portatune::ml
