#include "ml/tree.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/error.hpp"

namespace portatune::ml {

void RegressionTree::fit(const Dataset& train) {
  PT_REQUIRE(!train.empty(), "cannot fit a tree on an empty dataset");
  nodes_.clear();
  num_features_ = train.num_features();
  std::vector<std::size_t> rows(train.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(params_.seed);
  build(train, rows, 0, rng);
}

std::size_t RegressionTree::build(const Dataset& data,
                                  std::vector<std::size_t>& rows,
                                  std::size_t depth, Rng& rng) {
  const std::size_t index = nodes_.size();
  nodes_.emplace_back();
  {
    double sum = 0.0;
    for (std::size_t r : rows) sum += data.target(r);
    nodes_[index].value = sum / static_cast<double>(rows.size());
    nodes_[index].samples = rows.size();
  }

  const bool depth_ok = params_.max_depth == 0 || depth < params_.max_depth;
  if (!depth_ok || rows.size() < params_.min_samples_split) return index;

  const auto split = best_split(data, rows, rng);
  if (!split || split->gain <= params_.min_gain) return index;

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    if (data.row(r)[split->feature] <= split->threshold)
      left_rows.push_back(r);
    else
      right_rows.push_back(r);
  }
  if (left_rows.size() < params_.min_samples_leaf ||
      right_rows.size() < params_.min_samples_leaf)
    return index;

  rows.clear();
  rows.shrink_to_fit();  // release before recursing; trees can be deep

  nodes_[index].feature = split->feature;
  nodes_[index].threshold = split->threshold;
  const std::size_t left = build(data, left_rows, depth + 1, rng);
  nodes_[index].left = left;
  const std::size_t right = build(data, right_rows, depth + 1, rng);
  nodes_[index].right = right;
  return index;
}

std::optional<RegressionTree::Split> RegressionTree::best_split(
    const Dataset& data, std::span<const std::size_t> rows, Rng& rng) const {
  const std::size_t n = rows.size();
  PT_ASSERT(n >= 2);

  // Candidate features: all, or a uniform subsample of max_features.
  std::vector<std::size_t> features;
  if (params_.max_features == 0 || params_.max_features >= num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(num_features_,
                                              params_.max_features);
  }

  // Parent impurity as sum of squared deviations; gain is the reduction in
  // total SSE, which is equivalent to variance-reduction scoring.
  double parent_sum = 0.0, parent_sq = 0.0;
  for (std::size_t r : rows) {
    const double y = data.target(r);
    parent_sum += y;
    parent_sq += y * y;
  }
  const double parent_sse =
      parent_sq - parent_sum * parent_sum / static_cast<double>(n);

  Split best;
  std::vector<std::pair<double, double>> vals;  // (feature value, target)
  vals.reserve(n);
  for (std::size_t f : features) {
    vals.clear();
    for (std::size_t r : rows) vals.emplace_back(data.row(r)[f],
                                                 data.target(r));
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant column

    // Scan split positions left-to-right, maintaining prefix sums.
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double y = vals[i].second;
      left_sum += y;
      left_sq += y * y;
      if (vals[i].first == vals[i + 1].first) continue;  // can't split a tie
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (i + 1 < params_.min_samples_leaf ||
          n - i - 1 < params_.min_samples_leaf)
        continue;
      const double right_sum = parent_sum - left_sum;
      const double right_sq = parent_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / nl) +
                         (right_sq - right_sum * right_sum / nr);
      const double gain = parent_sse - sse;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        best.gain = gain;
      }
    }
  }
  if (best.gain < 0.0) return std::nullopt;
  return best;
}

double RegressionTree::predict(std::span<const double> x) const {
  PT_REQUIRE(is_fitted(), "predict() before fit()");
  PT_REQUIRE(x.size() == num_features_, "feature arity mismatch");
  std::size_t node = 0;
  while (!nodes_[node].is_leaf()) {
    node = (x[nodes_[node].feature] <= nodes_[node].threshold)
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::size_t RegressionTree::leaf_count() const noexcept {
  std::size_t leaves = 0;
  for (const auto& n : nodes_) leaves += n.is_leaf() ? 1 : 0;
  return leaves;
}

std::size_t RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[node].is_leaf()) {
      stack.push_back({nodes_[node].left, d + 1});
      stack.push_back({nodes_[node].right, d + 1});
    }
  }
  return max_depth;
}

namespace {
std::string feature_label(const std::vector<std::string>& names,
                          std::size_t f) {
  if (f < names.size()) return names[f];
  return "x" + std::to_string(f);
}
}  // namespace

void RegressionTree::render(std::size_t node, std::size_t depth,
                            const std::vector<std::string>& names,
                            std::string& out) const {
  const std::string indent(depth * 2, ' ');
  const Node& n = nodes_[node];
  std::ostringstream os;
  if (n.is_leaf()) {
    os << indent << "-> " << n.value << "  [n=" << n.samples << "]\n";
    out += os.str();
    return;
  }
  os << indent << "if " << feature_label(names, n.feature)
     << " <= " << n.threshold << ":\n";
  out += os.str();
  render(n.left, depth + 1, names, out);
  out += indent + "else:\n";
  render(n.right, depth + 1, names, out);
}

std::string RegressionTree::to_text(
    const std::vector<std::string>& feature_names) const {
  PT_REQUIRE(is_fitted(), "to_text() before fit()");
  std::string out;
  render(0, 0, feature_names, out);
  return out;
}

std::string RegressionTree::to_dot(
    const std::vector<std::string>& feature_names) const {
  PT_REQUIRE(is_fitted(), "to_dot() before fit()");
  std::ostringstream os;
  os << "digraph tree {\n  node [shape=box];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      os << "  n" << i << " [label=\"" << n.value << "\\nn=" << n.samples
         << "\"];\n";
    } else {
      os << "  n" << i << " [label=\""
         << feature_label(feature_names, n.feature) << " <= " << n.threshold
         << "\"];\n";
      os << "  n" << i << " -> n" << n.left << " [label=\"yes\"];\n";
      os << "  n" << i << " -> n" << n.right << " [label=\"no\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace portatune::ml
