#include "ml/metrics.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace portatune::ml {

double rmse(std::span<const double> pred, std::span<const double> truth) {
  PT_REQUIRE(pred.size() == truth.size(), "rmse: length mismatch");
  PT_REQUIRE(!pred.empty(), "rmse of empty sample");
  double sse = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - truth[i];
    sse += e * e;
  }
  return std::sqrt(sse / static_cast<double>(pred.size()));
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  PT_REQUIRE(pred.size() == truth.size(), "mae: length mismatch");
  PT_REQUIRE(!pred.empty(), "mae of empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    acc += std::abs(pred[i] - truth[i]);
  return acc / static_cast<double>(pred.size());
}

double r_squared(std::span<const double> pred,
                 std::span<const double> truth) {
  PT_REQUIRE(pred.size() == truth.size(), "r2: length mismatch");
  PT_REQUIRE(!pred.empty(), "r2 of empty sample");
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double kfold_rmse(const Dataset& data, std::size_t folds,
                  const std::function<RegressorPtr()>& factory,
                  std::uint64_t seed) {
  PT_REQUIRE(folds >= 2, "need at least two folds");
  PT_REQUIRE(data.num_rows() >= folds, "more folds than rows");
  Rng rng(seed);
  const auto order = rng.permutation(data.num_rows());

  double sse = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_rows, test_rows;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i % folds == f)
        test_rows.push_back(order[i]);
      else
        train_rows.push_back(order[i]);
    }
    auto model = factory();
    model->fit(data.subset(train_rows));
    for (std::size_t r : test_rows) {
      const double e = model->predict(data.row(r)) - data.target(r);
      sse += e * e;
      ++count;
    }
  }
  return std::sqrt(sse / static_cast<double>(count));
}

}  // namespace portatune::ml
