// Random forest regressor (Breiman 2001).
//
// The paper's surrogate of choice: an ensemble of CART trees, each fit on a
// bootstrap resample of T_a with per-split feature subsampling; the
// prediction is the mean of the trees' predictions. Tree fitting is
// parallelized over the support thread pool.
#pragma once

#include <cstdint>

#include "ml/tree.hpp"

namespace portatune::ml {

struct ForestParams {
  std::size_t num_trees = 64;
  /// Per-split feature subsample size; 0 = ceil(m/3) (regression default).
  std::size_t max_features = 0;
  std::size_t max_depth = 0;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 5;
  std::uint64_t seed = 1;
  /// Fit trees across the global thread pool.
  bool parallel_fit = true;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  double predict(std::span<const double> x) const override;
  std::vector<double> predict_batch(const Dataset& rows) const override;
  bool is_fitted() const noexcept override { return !trees_.empty(); }
  std::string name() const override { return "random_forest"; }

  std::size_t num_trees() const noexcept { return trees_.size(); }
  const RegressionTree& tree(std::size_t i) const { return trees_.at(i); }

  /// Out-of-bag RMSE estimate computed during fit (NaN if unavailable).
  double oob_rmse() const noexcept { return oob_rmse_; }

  /// Mean-decrease-in-variance feature importances, normalized to sum 1.
  /// Computed by permutation on the training set after fit.
  std::vector<double> feature_importances() const noexcept {
    return importances_;
  }

 private:
  ForestParams params_;
  std::vector<RegressionTree> trees_;
  double oob_rmse_ = 0.0;
  std::vector<double> importances_;
};

}  // namespace portatune::ml
