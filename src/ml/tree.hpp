// CART regression tree (recursive partitioning).
//
// Implements the recursive-partitioning surrogate of Sec. III-A: the input
// space is split into hyperrectangles by axis-aligned if-else rules chosen
// to minimize within-partition run-time variance; each leaf predicts the
// mean run time of the training configurations it contains (paper Fig. 2).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "ml/model.hpp"
#include "support/rng.hpp"

namespace portatune::ml {

struct TreeParams {
  /// Maximum tree depth (root has depth 0); 0 means unlimited.
  std::size_t max_depth = 0;
  /// A split is attempted only on nodes with at least this many rows.
  std::size_t min_samples_split = 2;
  /// Each child of an accepted split must hold at least this many rows.
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 = all (single tree), forests typically
  /// pass ceil(m/3) for regression.
  std::size_t max_features = 0;
  /// Minimum variance-reduction gain for a split to be accepted.
  double min_gain = 0.0;
  /// Seed for feature subsampling (only consulted when max_features > 0).
  std::uint64_t seed = 1;
};

class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(TreeParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return !nodes_.empty(); }
  std::string name() const override { return "regression_tree"; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  std::size_t depth() const noexcept;

  /// Render as an indented if-else rule listing (Fig. 2 style).
  std::string to_text(const std::vector<std::string>& feature_names = {})
      const;
  /// Render as Graphviz DOT.
  std::string to_dot(const std::vector<std::string>& feature_names = {}) const;

 private:
  struct Node {
    // Internal node: feature/threshold valid, children indices set.
    // Leaf: left == npos, `value` is the mean target of its rows.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = npos;
    std::size_t right = npos;
    double value = 0.0;
    std::size_t samples = 0;
    bool is_leaf() const noexcept { return left == npos; }
  };
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  struct Split {
    std::size_t feature = 0;
    double threshold = 0.0;
    double gain = -1.0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    std::size_t depth, Rng& rng);
  std::optional<Split> best_split(const Dataset& data,
                                  std::span<const std::size_t> rows,
                                  Rng& rng) const;
  void render(std::size_t node, std::size_t depth,
              const std::vector<std::string>& names, std::string& out) const;

  TreeParams params_;
  std::vector<Node> nodes_;
  std::size_t num_features_ = 0;
};

}  // namespace portatune::ml
