#include "ml/linear.hpp"

#include <cmath>

#include "support/error.hpp"

namespace portatune::ml {

namespace {

// In-place Cholesky solve of A w = b for symmetric positive-definite A
// (dense, row-major, n x n). Small n only (number of tuning parameters).
void cholesky_solve(std::vector<double>& a, std::vector<double>& b,
                    std::size_t n) {
  // Factor A = L L^T.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        PT_REQUIRE(sum > 0.0, "matrix not positive definite");
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward solve L z = b (in place in b).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back solve L^T w = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= a[k * n + ii] * b[k];
    b[ii] = sum / a[ii * n + ii];
  }
}

}  // namespace

void LinearRegressor::fit(const Dataset& train) {
  PT_REQUIRE(!train.empty(), "cannot fit linear model on an empty dataset");
  const std::size_t m = train.num_features();
  const std::size_t n = m + 1;  // + intercept column
  std::vector<double> ata(n * n, 0.0);
  std::vector<double> atb(n, 0.0);

  for (std::size_t r = 0; r < train.num_rows(); ++r) {
    const auto row = train.row(r);
    const double y = train.target(r);
    // Augmented feature vector [x, 1].
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = (i < m) ? row[i] : 1.0;
      atb[i] += xi * y;
      for (std::size_t j = 0; j <= i; ++j) {
        const double xj = (j < m) ? row[j] : 1.0;
        ata[i * n + j] += xi * xj;
      }
    }
  }
  // Mirror and regularize.
  for (std::size_t i = 0; i < n; ++i) {
    ata[i * n + i] += params_.lambda;
    for (std::size_t j = i + 1; j < n; ++j) ata[i * n + j] = ata[j * n + i];
  }
  cholesky_solve(ata, atb, n);
  weights_.assign(atb.begin(), atb.begin() + static_cast<long>(m));
  intercept_ = atb[m];
  fitted_ = true;
}

double LinearRegressor::predict(std::span<const double> x) const {
  PT_REQUIRE(fitted_, "predict() before fit()");
  PT_REQUIRE(x.size() == weights_.size(), "feature arity mismatch");
  double y = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) y += weights_[j] * x[j];
  return y;
}

}  // namespace portatune::ml
