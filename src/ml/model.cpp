#include "ml/model.hpp"

namespace portatune::ml {

std::vector<double> Regressor::predict_batch(const Dataset& rows) const {
  std::vector<double> out;
  out.reserve(rows.num_rows());
  for (std::size_t i = 0; i < rows.num_rows(); ++i)
    out.push_back(predict(rows.row(i)));
  return out;
}

}  // namespace portatune::ml
