// k-nearest-neighbour regressor (baseline surrogate for the ablation that
// compares surrogate families, DESIGN.md A3).
#pragma once

#include "ml/model.hpp"

namespace portatune::ml {

struct KnnParams {
  std::size_t k = 5;
  /// Inverse-distance weighting of the k neighbours (vs plain mean).
  bool distance_weighted = true;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return fitted_; }
  std::string name() const override { return "knn"; }

 private:
  KnnParams params_;
  Dataset train_;
  // Per-feature min/max for range normalization; distances are computed in
  // the normalized space so unroll (1..32) and cache tile (1..2048) weigh
  // equally.
  std::vector<double> lo_, scale_;
  bool fitted_ = false;
};

}  // namespace portatune::ml
