// Ridge-regularized linear regressor (baseline surrogate).
//
// Solves (X^T X + lambda I) w = X^T y by Cholesky factorization. A linear
// model cannot capture the tile/working-set interactions that dominate
// autotuning landscapes, which is exactly why it serves as the weak
// baseline in the surrogate-family ablation.
#pragma once

#include "ml/model.hpp"

namespace portatune::ml {

struct LinearParams {
  double lambda = 1e-6;  ///< ridge penalty (also stabilizes the solve)
};

class LinearRegressor final : public Regressor {
 public:
  explicit LinearRegressor(LinearParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const noexcept override { return fitted_; }
  std::string name() const override { return "linear"; }

  /// Weights (one per feature) after fit.
  const std::vector<double>& weights() const noexcept { return weights_; }
  double intercept() const noexcept { return intercept_; }

 private:
  LinearParams params_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace portatune::ml
