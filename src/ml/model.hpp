// Abstract regressor interface.
//
// The surrogate performance model M of the paper: fit on T_a, predict run
// times of unseen configurations. All portatune surrogates (random forest,
// single tree, kNN, ridge) implement this interface, which is what the
// transfer-accelerated searches consume.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace portatune::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit the model on the training data. Must be called before predict().
  virtual void fit(const Dataset& train) = 0;

  /// Predict the target for one feature vector.
  virtual double predict(std::span<const double> x) const = 0;

  /// Predict a batch of rows (default: loop over predict()).
  virtual std::vector<double> predict_batch(const Dataset& rows) const;

  virtual bool is_fitted() const noexcept = 0;

  /// Short human-readable identifier ("random_forest", "knn", ...).
  virtual std::string name() const = 0;
};

using RegressorPtr = std::unique_ptr<Regressor>;

}  // namespace portatune::ml
