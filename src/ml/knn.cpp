#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace portatune::ml {

void KnnRegressor::fit(const Dataset& train) {
  PT_REQUIRE(!train.empty(), "cannot fit kNN on an empty dataset");
  PT_REQUIRE(params_.k > 0, "k must be positive");
  train_ = train;
  const std::size_t m = train.num_features();
  lo_.assign(m, std::numeric_limits<double>::infinity());
  std::vector<double> hi(m, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    const auto row = train.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      lo_[j] = std::min(lo_[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  scale_.assign(m, 1.0);
  for (std::size_t j = 0; j < m; ++j)
    scale_[j] = (hi[j] > lo_[j]) ? 1.0 / (hi[j] - lo_[j]) : 0.0;
  fitted_ = true;
}

double KnnRegressor::predict(std::span<const double> x) const {
  PT_REQUIRE(fitted_, "predict() before fit()");
  PT_REQUIRE(x.size() == train_.num_features(), "feature arity mismatch");
  const std::size_t k = std::min(params_.k, train_.num_rows());

  // Keep the k smallest (distance, target) pairs with a partial sort over a
  // scratch vector; training sets here are small (hundreds of rows).
  std::vector<std::pair<double, double>> dist;
  dist.reserve(train_.num_rows());
  for (std::size_t i = 0; i < train_.num_rows(); ++i) {
    const auto row = train_.row(i);
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double d = (x[j] - row[j]) * scale_[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, train_.target(i));
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());

  if (!params_.distance_weighted) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += dist[i].second;
    return sum / static_cast<double>(k);
  }
  double wsum = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (dist[i].first == 0.0) return dist[i].second;  // exact match
    const double w = 1.0 / std::sqrt(dist[i].first);
    wsum += w;
    sum += w * dist[i].second;
  }
  return sum / wsum;
}

}  // namespace portatune::ml
