// Regression quality metrics and cross-validation.
#pragma once

#include <functional>
#include <span>

#include "ml/model.hpp"

namespace portatune::ml {

/// Root-mean-squared error between predictions and truth.
double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error.
double mae(std::span<const double> pred, std::span<const double> truth);

/// Coefficient of determination R^2 (1 = perfect, 0 = mean predictor,
/// negative = worse than the mean predictor).
double r_squared(std::span<const double> pred, std::span<const double> truth);

/// k-fold cross-validated RMSE of the regressor produced by `factory`.
/// Folds are contiguous after a seeded shuffle; deterministic.
double kfold_rmse(const Dataset& data, std::size_t folds,
                  const std::function<RegressorPtr()>& factory,
                  std::uint64_t seed = 1);

}  // namespace portatune::ml
