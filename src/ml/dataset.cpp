#include "ml/dataset.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace portatune::ml {

Dataset::Dataset(std::size_t num_features,
                 std::vector<std::string> feature_names)
    : num_features_(num_features), feature_names_(std::move(feature_names)) {
  PT_REQUIRE(feature_names_.empty() || feature_names_.size() == num_features_,
             "feature name count must match feature count");
}

void Dataset::add_row(std::span<const double> features, double target) {
  if (num_rows() == 0 && num_features_ == 0) num_features_ = features.size();
  PT_REQUIRE(features.size() == num_features_,
             "feature vector arity does not match dataset");
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

std::string Dataset::feature_name(std::size_t j) const {
  PT_REQUIRE(j < num_features_, "feature index out of range");
  if (j < feature_names_.size()) return feature_names_[j];
  return "x" + std::to_string(j);
}

Dataset Dataset::bootstrap(Rng& rng) const {
  Dataset out(num_features_, feature_names_);
  out.features_.reserve(features_.size());
  out.targets_.reserve(targets_.size());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    const auto pick = static_cast<std::size_t>(rng.below(num_rows()));
    out.add_row(row(pick), target(pick));
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double test_fraction,
                                           Rng& rng) const {
  PT_REQUIRE(test_fraction >= 0.0 && test_fraction <= 1.0,
             "test_fraction must lie in [0,1]");
  auto order = rng.permutation(num_rows());
  const auto test_count = static_cast<std::size_t>(
      test_fraction * static_cast<double>(num_rows()));
  Dataset train(num_features_, feature_names_);
  Dataset test(num_features_, feature_names_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = (i < test_count) ? test : train;
    dst.add_row(row(order[i]), target(order[i]));
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out(num_features_, feature_names_);
  for (std::size_t i : rows) {
    PT_REQUIRE(i < num_rows(), "subset row index out of range");
    out.add_row(row(i), target(i));
  }
  return out;
}

}  // namespace portatune::ml
