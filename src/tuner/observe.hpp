// Search-level observability glue.
//
// SearchSpanGuard wraps one search-algorithm invocation: constructed at
// entry, it emits a "search.<algo>" span event at scope exit summarising
// the run (evals, attempts, failures, best, simulated search time, stop
// reason). It also opens the causal span every window/evaluation event
// of the search nests under — including events emitted on worker threads,
// whose SpanContext is carried across the ThreadPool hop. Inert (no
// clock reads, no allocation) when no sink is listening, so the search
// hot loops cost nothing with observability disabled.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "support/span_context.hpp"
#include "support/timer.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

class SearchSpanGuard {
 public:
  /// `trace` must outlive the guard (the usual pattern: guard the trace
  /// local of the search function).
  explicit SearchSpanGuard(const SearchTrace& trace)
      : trace_(trace), active_(obs::enabled(obs::Severity::Info)) {
    if (!active_) return;
    span_id_ = next_span_id();
    parent_span_id_ = current_span_context().span;
    scope_.emplace(SpanContext{span_id_});
    timer_.reset();
  }

  ~SearchSpanGuard() {
    if (!active_ || !obs::enabled(obs::Severity::Info)) return;
    const auto& fs = trace_.failure_stats();
    std::vector<obs::Field> fields{
        {"algorithm", trace_.algorithm()},
        {"problem", trace_.problem()},
        {"machine", trace_.machine()},
        {"evals", trace_.size()},
        {"attempts", fs.attempts},
        {"failures", fs.failures},
        {"search_seconds", trace_.total_time()},
    };
    if (!trace_.empty())
      fields.emplace_back("best_seconds", trace_.best_seconds());
    if (!trace_.stop_reason().empty())
      fields.emplace_back("stop", trace_.stop_reason());
    obs::Event e = obs::make_span(obs::Severity::Info,
                                  "search." + trace_.algorithm(), "search",
                                  timer_.seconds(), std::move(fields));
    e.span_id = span_id_;
    e.parent_span_id = parent_span_id_;
    obs::emit(e);
  }

  SearchSpanGuard(const SearchSpanGuard&) = delete;
  SearchSpanGuard& operator=(const SearchSpanGuard&) = delete;

 private:
  const SearchTrace& trace_;
  bool active_;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::optional<SpanScope> scope_;
  WallTimer timer_;
};

}  // namespace portatune::tuner
