// Search-level observability glue.
//
// SearchSpanGuard wraps one search-algorithm invocation: constructed at
// entry, it emits a "search.<algo>" span event at scope exit summarising
// the run (evals, attempts, failures, best, simulated search time, stop
// reason). Inert (no clock reads, no allocation) when no sink is
// listening, so the search hot loops cost nothing with observability
// disabled.
#pragma once

#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "support/timer.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

class SearchSpanGuard {
 public:
  /// `trace` must outlive the guard (the usual pattern: guard the trace
  /// local of the search function).
  explicit SearchSpanGuard(const SearchTrace& trace)
      : trace_(trace), active_(obs::enabled(obs::Severity::Info)) {
    if (active_) timer_.reset();
  }

  ~SearchSpanGuard() {
    if (!active_ || !obs::enabled(obs::Severity::Info)) return;
    const auto& fs = trace_.failure_stats();
    std::vector<obs::Field> fields{
        {"algorithm", trace_.algorithm()},
        {"problem", trace_.problem()},
        {"machine", trace_.machine()},
        {"evals", trace_.size()},
        {"attempts", fs.attempts},
        {"failures", fs.failures},
        {"search_seconds", trace_.total_time()},
    };
    if (!trace_.empty())
      fields.emplace_back("best_seconds", trace_.best_seconds());
    if (!trace_.stop_reason().empty())
      fields.emplace_back("stop", trace_.stop_reason());
    obs::emit(obs::make_span(obs::Severity::Info,
                             "search." + trace_.algorithm(), "search",
                             timer_.seconds(), std::move(fields)));
  }

  SearchSpanGuard(const SearchSpanGuard&) = delete;
  SearchSpanGuard& operator=(const SearchSpanGuard&) = delete;

 private:
  const SearchTrace& trace_;
  bool active_;
  WallTimer timer_;
};

}  // namespace portatune::tuner
