// Options shared by every search algorithm.
//
// Each algorithm's option struct embeds SearchCommon as a base, so the
// evaluation budget, the CRN stream seed, and the failure budget are
// declared once instead of being repeated across a dozen structs. The
// option structs remain aggregates: `Options{.field = x}` designated
// initialization at call sites keeps working (the base is then
// default-initialized), as does plain member assignment.
//
// Legacy note: new driver code should not assemble these by hand —
// apps::TuningConfig (apps/tuning_config.hpp) is the validated builder
// that produces SearchCommon (and its sibling option structs)
// consistently; these aggregates remain as its construction targets.
#pragma once

#include <cstdint>

#include "support/cancellation.hpp"
#include "tuner/guard.hpp"
#include "tuner/resilience.hpp"

namespace portatune::tuner {

/// stop_reason() recorded when a search is stopped by cooperative
/// cancellation (graceful shutdown). Resume paths clear it: a cancelled
/// search is interrupted, not finished.
inline constexpr const char* kCancelledStopReason =
    "cancelled: shutdown requested";

struct SearchCommon {
  std::size_t max_evals = 100;  ///< n_max, the evaluation budget
  std::uint64_t seed = 1;       ///< shared stream seed (CRN, Sec. IV-D)
  /// Abort (with a diagnostic stop_reason) once failures exceed this.
  FailureBudget failure_budget{};
  /// Surrogate-trust guard (RS_p / RS_b only; inert everywhere else and
  /// inert by default — see tuner/guard.hpp for the state machine).
  GuardOptions guard{};
  /// Cooperative cancellation: checked at window boundaries. A cancelled
  /// search stops cleanly (kCancelledStopReason on the trace, final
  /// checkpoint taken) so the run can be resumed. Invalid by default.
  CancellationToken cancel{};
};

}  // namespace portatune::tuner
