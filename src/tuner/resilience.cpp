#include "tuner/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/scoped_timer.hpp"
#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "tuner/watchdog.hpp"

namespace portatune::tuner {

std::string FailureBudgetTracker::reason() const {
  if (consecutive_ >= budget_.max_consecutive)
    return "failure budget exhausted: " + std::to_string(consecutive_) +
           " consecutive failed evaluations (cap " +
           std::to_string(budget_.max_consecutive) + ")";
  if (total_ >= budget_.max_total)
    return "failure budget exhausted: " + std::to_string(total_) +
           " failed evaluations in total (cap " +
           std::to_string(budget_.max_total) + ")";
  return {};
}

namespace {

/// Shared slot for one watchdog-supervised attempt. The worker fills it;
/// the caller may have given up waiting, so the slot owns all state.
struct WatchdogSlot {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  EvalResult result;
};

}  // namespace

ResilientEvaluator::ResilientEvaluator(Evaluator& inner, RetryPolicy policy)
    : inner_(inner), policy_(policy) {
  PT_REQUIRE(policy_.max_attempts >= 1, "RetryPolicy needs >= 1 attempt");
  PT_REQUIRE(policy_.backoff_multiplier >= 1.0,
             "backoff multiplier must be >= 1");
  if (policy_.timeout_seconds > 0.0) {
    // A few workers so one hung attempt does not stall the next
    // evaluation behind it in the queue.
    watchdog_ = std::make_unique<ThreadPool>(4);
  }
}

// Defined where ThreadPool is complete (unique_ptr member).
ResilientEvaluator::~ResilientEvaluator() = default;

bool ResilientEvaluator::is_quarantined(const ParamConfig& config) const {
  const std::uint64_t hash = inner_.space().config_hash(config);
  std::lock_guard lock(mutex_);
  return quarantine_.count(hash) > 0;
}

std::vector<std::uint64_t> ResilientEvaluator::quarantined_hashes() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(quarantine_.size());
  for (const auto& [hash, kind] : quarantine_) out.push_back(hash);
  std::sort(out.begin(), out.end());
  return out;
}

void ResilientEvaluator::restore_quarantine(
    const std::vector<std::uint64_t>& hashes) {
  std::lock_guard lock(mutex_);
  for (const auto h : hashes)
    if (quarantine_.emplace(h, FailureKind::Deterministic).second)
      ++stats_.quarantined;
}

void ResilientEvaluator::quarantine(std::uint64_t hash, FailureKind kind) {
  std::lock_guard lock(mutex_);
  if (quarantine_.emplace(hash, kind).second) ++stats_.quarantined;
}

EvalResult ResilientEvaluator::attempt(const ParamConfig& config) {
  if (!watchdog_) {
    try {
      return inner_.evaluate(config);
    } catch (const std::exception& e) {
      // A throwing backend (e.g. compile pipeline) is a deterministic
      // failure of this configuration, not of the search.
      return EvalResult::failure(e.what());
    }
  }

  auto slot = std::make_shared<WatchdogSlot>();
  Evaluator* inner = &inner_;
  // Per-attempt cancellation domain, registered with the global deadline
  // watchdog: a cooperatively hung attempt (parked on the ambient token)
  // wakes the moment the deadline fires — or the process shuts down —
  // instead of stalling its worker for the hang's full duration. The
  // attempt runs under the domain's token; ThreadPool::submit would
  // propagate the *caller's* ambient token, so the scope is re-installed
  // inside the task.
  CancellationSource attempt_cancel;
  EvalWatchdog::Ticket ticket = EvalWatchdog::global().watch(
      attempt_cancel, policy_.timeout_seconds,
      inner_.problem_name() + "@" + inner_.machine_name());
  watchdog_->submit([slot, inner, config,
                     token = attempt_cancel.token()] {
    CancellationScope cancel_scope(token);
    EvalResult r;
    try {
      r = inner->evaluate(config);
    } catch (const std::exception& e) {
      r = EvalResult::failure(e.what());
    }
    std::lock_guard lock(slot->mutex);
    slot->result = std::move(r);
    slot->done = true;
    slot->cv.notify_all();
  });

  std::unique_lock lock(slot->mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(policy_.timeout_seconds);
  if (!slot->cv.wait_until(lock, deadline, [&] { return slot->done; })) {
    // Abandon the attempt: the worker keeps running and will discard its
    // result into the slot; the pool reaps it at destruction. expire()
    // cancels the attempt's domain and reports the hang (exactly once —
    // the monitor backs this up if the caller never reaches here).
    ticket.expire();
    return EvalResult::failure(
        "evaluation exceeded the " +
            std::to_string(policy_.timeout_seconds) + " s deadline",
        FailureKind::Timeout);
  }
  return slot->result;
}

EvalResult ResilientEvaluator::evaluate(const ParamConfig& config) {
  // One causal span per call: the per-attempt events the inner observer
  // emits (including retries, and the watchdog-thread hop — ThreadPool
  // carries the SpanContext into the supervised attempt) all nest under
  // this retry chain. Dormant path: one enabled() check.
  std::optional<obs::ScopedTimer> call_span;
  if (obs::enabled(obs::Severity::Debug))
    call_span.emplace("resilient.call", "eval", std::vector<obs::Field>{},
                      nullptr, obs::Severity::Debug);
  const std::uint64_t hash = inner_.space().config_hash(config);
  {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
    if (const auto it = quarantine_.find(hash); it != quarantine_.end()) {
      ++stats_.quarantine_hits;
      EvalResult r = EvalResult::failure(
          "configuration is quarantined (prior " +
              std::string(to_string(it->second)) + " failure)",
          it->second);
      r.attempts = 0;
      return r;
    }
  }

  double overhead = 0.0;
  double backoff = policy_.backoff_initial;
  EvalResult last;
  for (std::size_t attempt_no = 1; attempt_no <= policy_.max_attempts;
       ++attempt_no) {
    // The backend attempt runs outside the lock: concurrent callers (a
    // ParallelEvaluator window) only serialize on the counter updates.
    EvalResult r = attempt(config);
    {
      std::lock_guard lock(mutex_);
      ++stats_.attempts;
      if (attempt_no > 1) ++stats_.retries;
      if (r.ok) {
        ++stats_.successes;
      } else {
        switch (r.failure_kind) {
          case FailureKind::Timeout: ++stats_.timeouts; break;
          case FailureKind::Transient: ++stats_.transient_failures; break;
          default: ++stats_.deterministic_failures; break;
        }
      }
    }

    if (r.ok) {
      r.failure_kind = FailureKind::None;
      r.attempts = attempt_no;
      r.overhead_seconds += overhead;
      return r;
    }

    // Classify. Backends that predate classification report Deterministic
    // via EvalResult::failure's default, which is the safe direction: a
    // config that failed once is never hammered with retries by mistake.
    switch (r.failure_kind) {
      case FailureKind::Timeout:
        overhead += policy_.timeout_seconds;  // wall-clock spent waiting
        if (policy_.quarantine_timeout) quarantine(hash, FailureKind::Timeout);
        r.attempts = attempt_no;
        r.overhead_seconds = overhead;
        return r;
      case FailureKind::Transient:
        break;
      default:
        r.failure_kind = FailureKind::Deterministic;
        if (policy_.quarantine_deterministic)
          quarantine(hash, FailureKind::Deterministic);
        r.attempts = attempt_no;
        r.overhead_seconds = overhead;
        return r;
    }

    last = std::move(r);
    if (attempt_no < policy_.max_attempts) {
      const double delay = std::min(backoff, policy_.backoff_max);
      overhead += delay;
      {
        std::lock_guard lock(mutex_);
        stats_.backoff_seconds += delay;
      }
      backoff *= policy_.backoff_multiplier;
      if (policy_.sleep_on_backoff)
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }

  // Transient failures on every attempt: treat the configuration as bad.
  if (policy_.quarantine_exhausted) quarantine(hash, FailureKind::Transient);
  last.error += " (after " + std::to_string(policy_.max_attempts) +
                " attempts)";
  last.attempts = policy_.max_attempts;
  last.overhead_seconds = overhead;
  return last;
}

}  // namespace portatune::tuner
