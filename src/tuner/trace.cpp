#include "tuner/trace.hpp"

#include <algorithm>

#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sink.hpp"
#include "support/error.hpp"
#include "tuner/search_options.hpp"

namespace portatune::tuner {

void SearchTrace::record(ParamConfig config, double seconds,
                         std::size_t draw_index, double wall_unix) {
  clock_ += seconds;
  if (wall_unix < 0.0) wall_unix = obs::wall_unix_now();
  entries_.push_back(
      {std::move(config), seconds, clock_, draw_index, wall_unix});
}

void SearchTrace::set_stop_reason(std::string reason) {
  stop_reason_ = std::move(reason);
  if (stop_reason_.empty()) return;
  // Announce and flush: an aborted search must leave its diagnostic on
  // disk even when the process dies before the sink is torn down.
  if (obs::enabled(obs::Severity::Warn))
    obs::emit(obs::make_instant(
        obs::Severity::Warn, "search.abort", "search",
        {{"algorithm", algorithm_},
         {"problem", problem_},
         {"machine", machine_},
         {"reason", stop_reason_},
         {"evals", entries_.size()},
         {"failures", failures_.failures}}));
  obs::flush_default_sink();
  // Aborts ship the black box too — but not cooperative cancellation,
  // which is a *normal* (resumable) exit the shutdown hook already
  // covers, and which every cancelled search in a fan-out would
  // otherwise re-dump.
  if (stop_reason_ != kCancelledStopReason)
    obs::dump_flight_recorder("search.abort");
}

void SearchTrace::note_result(const EvalResult& r) {
  failures_.attempts += r.attempts;
  failures_.overhead_seconds += r.overhead_seconds;
  clock_ += r.overhead_seconds;
  if (r.ok) return;
  ++failures_.failures;
  switch (r.failure_kind) {
    case FailureKind::Transient: ++failures_.transient; break;
    case FailureKind::Timeout: ++failures_.timeouts; break;
    default: ++failures_.deterministic; break;
  }
}

void SearchTrace::restore_entry(ParamConfig config, double seconds,
                                double elapsed, std::size_t draw_index,
                                double wall_unix) {
  entries_.push_back(
      {std::move(config), seconds, elapsed, draw_index, wall_unix});
  clock_ = std::max(clock_, elapsed);
}

double SearchTrace::best_seconds() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) best = std::min(best, e.seconds);
  return best;
}

const ParamConfig& SearchTrace::best_config() const {
  PT_REQUIRE(!entries_.empty(), "best_config() on empty trace");
  const TraceEntry* best = &entries_.front();
  for (const auto& e : entries_)
    if (e.seconds < best->seconds) best = &e;
  return best->config;
}

double SearchTrace::time_to_best() const {
  return time_to_reach(best_seconds());
}

double SearchTrace::time_to_reach(double threshold) const {
  for (const auto& e : entries_)
    if (e.seconds <= threshold) return e.elapsed;
  return std::numeric_limits<double>::infinity();
}

double SearchTrace::total_time() const { return clock_; }

std::vector<std::pair<double, double>> SearchTrace::best_curve() const {
  std::vector<std::pair<double, double>> curve;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    best = std::min(best, e.seconds);
    curve.emplace_back(e.elapsed, best);
  }
  return curve;
}

ml::Dataset SearchTrace::to_dataset(const ParamSpace& space) const {
  ml::Dataset data(space.num_params(), space.names());
  for (const auto& e : entries_)
    data.add_row(space.features(e.config), e.seconds);
  return data;
}

}  // namespace portatune::tuner
