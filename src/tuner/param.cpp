#include "tuner/param.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune::tuner {

std::vector<double> range_values(int lo, int hi) {
  PT_REQUIRE(lo <= hi, "empty range");
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int i = lo; i <= hi; ++i) v.push_back(i);
  return v;
}

std::vector<double> pow2_values(int lo_exp, int hi_exp) {
  PT_REQUIRE(lo_exp <= hi_exp && lo_exp >= 0 && hi_exp < 63,
             "bad power-of-two range");
  std::vector<double> v;
  for (int e = lo_exp; e <= hi_exp; ++e)
    v.push_back(static_cast<double>(std::int64_t{1} << e));
  return v;
}

std::vector<double> flag_values() { return {0.0, 1.0}; }

std::size_t ParamSpace::add(std::string name, std::vector<double> values) {
  PT_REQUIRE(!values.empty(), "parameter needs at least one value");
  for (const auto& p : params_)
    PT_REQUIRE(p.name != name, "duplicate parameter name: " + name);
  params_.push_back({std::move(name), std::move(values)});
  return params_.size() - 1;
}

double ParamSpace::cardinality() const {
  double card = 1.0;
  for (const auto& p : params_)
    card *= static_cast<double>(p.values.size());
  return card;
}

std::vector<std::string> ParamSpace::names() const {
  std::vector<std::string> out;
  out.reserve(params_.size());
  for (const auto& p : params_) out.push_back(p.name);
  return out;
}

ParamConfig ParamSpace::default_config() const {
  return ParamConfig(params_.size(), 0);
}

ParamConfig ParamSpace::random_config(Rng& rng) const {
  ParamConfig c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    c[i] = static_cast<int>(rng.below(params_[i].values.size()));
  return c;
}

double ParamSpace::value(const ParamConfig& c, std::size_t p) const {
  validate(c);
  return params_[p].values[static_cast<std::size_t>(c[p])];
}

std::size_t ParamSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name == name) return i;
  throw Error("unknown parameter: " + name);
}

double ParamSpace::value(const ParamConfig& c, const std::string& name) const {
  return value(c, index_of(name));
}

std::vector<double> ParamSpace::features(const ParamConfig& c) const {
  validate(c);
  std::vector<double> f(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    f[i] = params_[i].values[static_cast<std::size_t>(c[i])];
  return f;
}

std::uint64_t ParamSpace::config_hash(const ParamConfig& c) const {
  return hash_ints(c, 0x70617261ULL);
}

void ParamSpace::validate(const ParamConfig& c) const {
  PT_REQUIRE(c.size() == params_.size(), "configuration arity mismatch");
  for (std::size_t i = 0; i < c.size(); ++i)
    PT_REQUIRE(c[i] >= 0 && static_cast<std::size_t>(c[i]) <
                                params_[i].values.size(),
               "value index out of range for " + params_[i].name);
}

std::vector<ParamConfig> ParamSpace::neighbors(const ParamConfig& c) const {
  validate(c);
  std::vector<ParamConfig> out;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (c[i] > 0) {
      ParamConfig n = c;
      --n[i];
      out.push_back(std::move(n));
    }
    if (static_cast<std::size_t>(c[i]) + 1 < params_[i].values.size()) {
      ParamConfig n = c;
      ++n[i];
      out.push_back(std::move(n));
    }
  }
  return out;
}

std::string ParamSpace::describe(const ParamConfig& c) const {
  validate(c);
  std::ostringstream os;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i) os << ", ";
    os << params_[i].name << "="
       << params_[i].values[static_cast<std::size_t>(c[i])];
  }
  return os.str();
}

}  // namespace portatune::tuner
