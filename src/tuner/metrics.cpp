#include "tuner/metrics.hpp"

#include <cmath>

#include "support/error.hpp"

namespace portatune::tuner {

Speedups compare_to_rs(const SearchTrace& rs, const SearchTrace& variant) {
  PT_REQUIRE(!rs.empty(), "reference RS trace is empty");
  Speedups s;
  if (variant.empty()) return s;  // 0 / 0: total failure of the variant

  const double rs_best = rs.best_seconds();
  const double variant_best = variant.best_seconds();
  s.performance = rs_best / variant_best;

  const double t_rs = rs.time_to_best();
  const double t_variant = variant.time_to_reach(rs_best);
  s.search = std::isinf(t_variant) ? 0.0 : t_rs / t_variant;
  return s;
}

}  // namespace portatune::tuner
