// Cross-machine surrogate transfer — the paper's headline method.
//
// fit_surrogate() turns a source-machine search trace T_a into the
// surrogate performance model M_a; the RS_p / RS_b searches then consume
// that model on the target machine. This header is the minimal public
// "transfer API": trace in, fitted model out.
#pragma once

#include "ml/forest.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

/// Fit the paper's random-forest surrogate on a source trace.
ml::RegressorPtr fit_surrogate(const SearchTrace& source,
                               const ParamSpace& space,
                               const ml::ForestParams& params = {});

/// Fit an arbitrary regressor (surrogate-family ablation).
void fit_surrogate_into(ml::Regressor& model, const SearchTrace& source,
                        const ParamSpace& space);

/// Training set mixing source rows (when `source` is non-null) with the
/// target rows repeated `target_weight` times — cheap importance
/// weighting of on-target evidence against the source prior. Shared by
/// the adaptive search's periodic refits and the guard's rescue refit.
ml::Dataset hybrid_dataset(const SearchTrace* source,
                           const SearchTrace& target,
                           const ParamSpace& space,
                           std::size_t target_weight);

/// Fit a random forest on hybrid_dataset(). Requires at least one row
/// between the two traces.
ml::RegressorPtr fit_hybrid_surrogate(const SearchTrace* source,
                                      const SearchTrace& target,
                                      const ParamSpace& space,
                                      std::size_t target_weight,
                                      const ml::ForestParams& params = {});

}  // namespace portatune::tuner
