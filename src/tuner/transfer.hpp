// Cross-machine surrogate transfer — the paper's headline method.
//
// fit_surrogate() turns a source-machine search trace T_a into the
// surrogate performance model M_a; the RS_p / RS_b searches then consume
// that model on the target machine. This header is the minimal public
// "transfer API": trace in, fitted model out.
#pragma once

#include "ml/forest.hpp"
#include "tuner/trace.hpp"

namespace portatune::tuner {

/// Fit the paper's random-forest surrogate on a source trace.
ml::RegressorPtr fit_surrogate(const SearchTrace& source,
                               const ParamSpace& space,
                               const ml::ForestParams& params = {});

/// Fit an arbitrary regressor (surrogate-family ablation).
void fit_surrogate_into(ml::Regressor& model, const SearchTrace& source,
                        const ParamSpace& space);

}  // namespace portatune::tuner
