// Crash-safe experiment orchestration: the run journal.
//
// A journaled run executes an experiment fan-out (run_transfer_experiments)
// inside a *run directory* with a write-ahead manifest:
//
//   <run-dir>/journal.csv        the manifest (cell states, see below)
//   <run-dir>/cell-000/          one directory per experiment cell
//       source_rs.csv            completed phases, as checkpoint CSVs
//       target_rs.csv            (elapsed clock / failure stats / stop
//       pruned.csv ...           reason all preserved)
//       source_rs.partial.csv    mid-flight snapshot of the long RS phase
//
// Manifest format (checksummed like every other persistence artifact):
//
//   # portatune-journal v1,<ncells>
//   state,checksum,label
//   done,0f3a...c1,MM idataplex->e5
//   pending,0000000000000000,MM e5->epyc
//   # checksum,<16 hex FNV-1a over everything above>
//
// The state machine per cell is pending -> running -> done; every
// transition rewrites the whole manifest through atomic_write_file, so a
// SIGKILL at any instant leaves a parseable manifest describing exactly
// which cells can be trusted. `done` rows carry the FNV-1a chain over the
// cell's six phase files; open() re-verifies it and demotes any cell whose
// artifacts are missing or corrupted back to pending (it simply re-runs).
// `running` rows found by open() are crashes mid-cell: they also demote to
// pending, but their completed phase files are picked up by the phase
// restore hooks, so only the interrupted phase is re-executed.
//
// Determinism: searches are seed-deterministic and the derived metrics are
// a pure function of the six traces (finalize_transfer_result), so a run
// that is killed and resumed produces results byte-identical to an
// uninterrupted run (modulo the wall_unix column, which records real
// time).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/cancellation.hpp"
#include "tuner/experiment.hpp"

namespace portatune::tuner {

/// The engine's phase names, in protocol order. Phase artifact files are
/// named `<phase>.csv` inside the cell directory.
inline constexpr const char* kExperimentPhases[] = {
    "source_rs", "target_rs", "pruned", "biased", "pruned_mf", "biased_mf"};
inline constexpr std::size_t kNumExperimentPhases = 6;

enum class CellState { Pending, Running, Done };

const char* to_string(CellState s) noexcept;

/// The write-ahead manifest of one journaled run. Thread-safe: concurrent
/// cells transition their rows under one mutex, and every mutation
/// rewrites the manifest atomically before returning.
class RunJournal {
 public:
  /// Start a fresh run: creates the run directory, the per-cell
  /// directories, and a manifest with every cell pending. Throws when the
  /// directory already contains a journal (resume instead — silently
  /// clobbering a resumable run is how results get lost).
  static RunJournal create(std::string run_dir,
                           std::vector<std::string> labels);

  /// Reopen an existing run for resumption. The labels must match the
  /// manifest row-for-row (same jobs, same order). Done cells have their
  /// artifact bundles re-verified against the recorded checksum; cells
  /// that fail verification — and cells left `running` by a crash — are
  /// demoted to pending.
  static RunJournal open(std::string run_dir,
                         std::vector<std::string> labels);

  static bool exists(const std::string& run_dir);

  /// Read-only manifest snapshot for status tooling: parses journal.csv
  /// without rewriting it or demoting cells (open() does both), so a
  /// reader can inspect a *live* run another process owns. States are
  /// reported exactly as recorded — a `running` row may mean in-flight
  /// or crashed; pair with the heartbeat (run_status.hpp) to tell which.
  struct Peek {
    std::vector<CellState> states;
    std::vector<std::string> labels;
  };
  static Peek peek(const std::string& run_dir);

  std::size_t size() const noexcept { return cells_.size(); }
  CellState state(std::size_t cell) const;
  const std::string& label(std::size_t cell) const;
  const std::string& run_dir() const noexcept { return run_dir_; }

  std::string cell_dir(std::size_t cell) const;
  std::string phase_path(std::size_t cell, const std::string& phase) const;
  std::string partial_rs_path(std::size_t cell) const;

  void mark_running(std::size_t cell);
  /// Records the artifact-bundle checksum and removes the partial RS
  /// snapshot (the completed source_rs.csv supersedes it).
  void mark_done(std::size_t cell, std::uint64_t bundle_checksum);
  void mark_pending(std::size_t cell);

  /// FNV-1a chain over the cell's six phase files, in protocol order.
  /// Throws portatune::Error when any phase file is unreadable.
  std::uint64_t cell_bundle_checksum(std::size_t cell) const;

 private:
  struct Cell {
    CellState state = CellState::Pending;
    std::uint64_t checksum = 0;
    std::string label;
  };

  RunJournal(std::string run_dir, std::vector<Cell> cells)
      : run_dir_(std::move(run_dir)), cells_(std::move(cells)) {}

  /// Shared manifest parser behind open() and peek(); verifies the
  /// checksum footer, magic line, and row shapes, mutates nothing.
  static std::vector<Cell> parse_manifest(const std::string& run_dir);

  void set_state(std::size_t cell, CellState state, std::uint64_t checksum);
  void write_manifest_locked() const;

  std::string run_dir_;
  std::vector<Cell> cells_;
  /// Behind a pointer so the factory functions can move the journal.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

struct JournaledRunOptions {
  std::string run_dir;
  /// False: the run directory must be fresh. True: reopen and skip /
  /// restore what the journal already holds.
  bool resume = false;
  /// Worker threads for the cell fan-out (0 = hardware concurrency,
  /// 1 = inline), as in run_transfer_experiments.
  std::size_t threads = 0;
  /// Periodic checkpoint cadence of each cell's source RS phase.
  std::size_t rs_checkpoint_every = 5;
  /// Cooperative cancellation (graceful shutdown). Cancelled cells stop
  /// at a window boundary with their journal row left `running`; the next
  /// resume demotes them to pending and restores their completed phases.
  CancellationToken cancel{};
  /// Heartbeat cadence of the live status file (<run-dir>/status.json,
  /// see run_status.hpp). 0 keeps the telemetry fully dormant: no board,
  /// no writer thread, no file.
  double status_every_seconds = 0.0;
};

struct JournaledRunSummary {
  std::size_t cells_total = 0;
  std::size_t cells_restored = 0;   ///< done before this invocation
  std::size_t cells_completed = 0;  ///< newly completed by this invocation
  bool interrupted = false;         ///< cancelled before every cell finished
};

/// run_transfer_experiments with the journal wrapped around it: every
/// cell's phases are persisted as they complete, done cells are restored
/// (and re-finalized) instead of re-run, and cancellation leaves a
/// resumable journal behind. Results come back in job order; interrupted
/// cells are default-constructed (check summary->interrupted).
std::vector<TransferExperimentResult> run_transfer_experiments_journaled(
    std::span<const ExperimentJob> jobs, const JournaledRunOptions& opt,
    JournaledRunSummary* summary = nullptr);

}  // namespace portatune::tuner
