#include "tuner/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <unordered_map>

#include "support/error.hpp"
#include "support/stats.hpp"
#include "tuner/observe.hpp"
#include "tuner/sampler.hpp"

namespace portatune::tuner {

namespace {

/// Draw `count` starting configurations: either the surrogate's best
/// predictions over a random pool, or plain uniform draws.
std::vector<ParamConfig> seeded_starts(const ParamSpace& space,
                                       const ml::Regressor* surrogate,
                                       std::size_t pool_size,
                                       std::size_t count, Rng& rng) {
  if (surrogate == nullptr) {
    std::vector<ParamConfig> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(space.random_config(rng));
    return out;
  }
  ConfigStream stream(space, rng());
  std::vector<ParamConfig> pool;
  while (pool.size() < pool_size) {
    auto c = stream.next();
    if (!c) break;
    pool.push_back(std::move(*c));
  }
  PT_REQUIRE(!pool.empty(), "empty seeding pool");
  std::vector<double> pred(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    pred[i] = surrogate->predict(space.features(pool[i]));
  const auto order = argsort(pred);
  std::vector<ParamConfig> out;
  for (std::size_t i = 0; i < order.size() && out.size() < count; ++i)
    out.push_back(pool[order[i]]);
  return out;
}

/// Evaluate with dedup; returns false when the evaluation budget or the
/// failure budget is exhausted, or the evaluation failed.
class BudgetedEvaluator {
 public:
  BudgetedEvaluator(Evaluator& eval, SearchTrace& trace,
                    std::size_t max_evals, const FailureBudget& budget = {})
      : eval_(eval), trace_(trace), max_evals_(max_evals), budget_(budget) {}

  bool exhausted() const {
    return trace_.size() >= max_evals_ || budget_.exhausted();
  }

  /// Returns the run time, or nullopt on failure/duplicate/budget end.
  std::optional<double> operator()(const ParamConfig& c) {
    if (exhausted()) return std::nullopt;
    const auto h = eval_.space().config_hash(c);
    if (const auto it = cache_.find(h); it != cache_.end())
      return it->second;  // duplicate: return known value, no budget spent
    const EvalResult r = eval_.evaluate(c);
    trace_.note_result(r);
    if (!r.ok) {
      if (budget_.note(r)) trace_.set_stop_reason(budget_.reason());
      cache_.emplace(h, std::nullopt);
      return std::nullopt;
    }
    budget_.note(r);
    trace_.record(c, r.seconds, trace_.size());
    cache_.emplace(h, r.seconds);
    return r.seconds;
  }

 private:
  Evaluator& eval_;
  SearchTrace& trace_;
  std::size_t max_evals_;
  FailureBudgetTracker budget_;
  std::unordered_map<std::uint64_t, std::optional<double>> cache_;
};

}  // namespace

SearchTrace genetic_search(Evaluator& eval, const GeneticOptions& opt) {
  PT_REQUIRE(opt.population >= 2, "population too small");
  SearchTrace trace("GA", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  struct Member {
    ParamConfig config;
    double fitness;  // run time; lower is better
  };
  std::vector<Member> pop;
  for (auto& c : seeded_starts(space, opt.surrogate, opt.seed_pool,
                               opt.population, rng)) {
    if (auto y = run(c)) pop.push_back({std::move(c), *y});
    if (run.exhausted()) return trace;
  }
  if (pop.size() < 2) return trace;

  const auto tournament = [&]() -> const Member& {
    const Member* best = &pop[rng.below(pop.size())];
    for (std::size_t i = 1; i < opt.tournament; ++i) {
      const Member& challenger = pop[rng.below(pop.size())];
      if (challenger.fitness < best->fitness) best = &challenger;
    }
    return *best;
  };

  const std::size_t max_steps = opt.max_evals * 200;
  for (std::size_t step = 0; step < max_steps && !run.exhausted();
       ++step) {
    const Member& a = tournament();
    const Member& b = tournament();
    ParamConfig child = a.config;
    if (rng.uniform() < opt.crossover_rate) {
      for (std::size_t g = 0; g < child.size(); ++g)
        if (rng.uniform() < 0.5) child[g] = b.config[g];
    }
    for (std::size_t g = 0; g < child.size(); ++g)
      if (rng.uniform() < opt.mutation_rate)
        child[g] = static_cast<int>(
            rng.below(space.param(g).values.size()));
    const auto y = run(child);
    if (!y) continue;
    // Steady state: replace the worst member if the child beats it.
    auto worst = std::max_element(
        pop.begin(), pop.end(),
        [](const Member& l, const Member& r) { return l.fitness < r.fitness; });
    if (*y < worst->fitness) *worst = {std::move(child), *y};
  }
  return trace;
}

SearchTrace annealing_search(Evaluator& eval, const AnnealingOptions& opt) {
  SearchTrace trace("SA", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  auto starts = seeded_starts(space, opt.surrogate, opt.seed_pool, 1, rng);
  ParamConfig current = starts.front();
  std::optional<double> current_y = run(current);
  // If the start fails, retry with fresh random points.
  while (!current_y && !run.exhausted()) {
    current = space.random_config(rng);
    current_y = run(current);
  }
  if (!current_y) return trace;

  double temp = opt.initial_temp * *current_y;
  // Proposal cap: cached duplicates cost no budget, so an exhausted local
  // neighborhood at low temperature would otherwise loop forever.
  const std::size_t max_steps = opt.max_evals * 200;
  for (std::size_t step = 0; step < max_steps && !run.exhausted();
       ++step) {
    // Neighbor: one parameter stepped by +-1.
    ParamConfig next = current;
    const std::size_t g = rng.below(space.num_params());
    const auto card = space.param(g).values.size();
    if (card > 1) {
      int step = rng.uniform() < 0.5 ? -1 : 1;
      int v = next[g] + step;
      if (v < 0) v = 1;
      if (static_cast<std::size_t>(v) >= card)
        v = static_cast<int>(card) - 2;
      next[g] = v;
    }
    const auto y = run(next);
    if (!y) {
      temp *= opt.cooling;
      continue;
    }
    const double delta = *y - *current_y;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temp, 1e-12))) {
      current = std::move(next);
      current_y = *y;
    }
    temp *= opt.cooling;
  }
  return trace;
}

SearchTrace pattern_search(Evaluator& eval, const PatternSearchOptions& opt) {
  SearchTrace trace("PS", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  auto starts = seeded_starts(space, opt.surrogate, opt.seed_pool, 4, rng);
  std::size_t start_idx = 0;

  const std::size_t max_restarts = opt.max_evals * 50;
  for (std::size_t restart = 0;
       restart < max_restarts && !run.exhausted(); ++restart) {
    ParamConfig center = start_idx < starts.size()
                             ? starts[start_idx++]
                             : space.random_config(rng);
    auto center_y = run(center);
    if (!center_y) continue;

    bool improved = true;
    while (improved && !run.exhausted()) {
      improved = false;
      ParamConfig best_n;
      double best_y = *center_y;
      for (const auto& n : space.neighbors(center)) {
        if (run.exhausted()) break;
        const auto y = run(n);
        if (y && *y < best_y) {
          best_y = *y;
          best_n = n;
          improved = true;
        }
      }
      if (improved) {
        center = std::move(best_n);
        center_y = best_y;
      }
    }
  }
  return trace;
}

SearchTrace ensemble_search(Evaluator& eval, const EnsembleOptions& opt) {
  SearchTrace trace("Ensemble", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  // Shared incumbent across techniques.
  ParamConfig best_config;
  double best_y = std::numeric_limits<double>::infinity();

  const auto consider = [&](const ParamConfig& c,
                            double y) {  // track the incumbent
    if (y < best_y) {
      best_y = y;
      best_config = c;
      return true;
    }
    return false;
  };

  enum { kRandom = 0, kMutate = 1, kStep = 2, kNumTechniques = 3 };
  double wins[kNumTechniques] = {};
  double plays[kNumTechniques] = {};

  // Seed the incumbent (surrogate-guided when available).
  for (auto& c :
       seeded_starts(space, opt.surrogate, 2000, 3, rng)) {
    if (auto y = run(c)) consider(c, *y);
    if (run.exhausted()) return trace;
  }

  std::size_t round = 0;
  const std::size_t max_rounds = opt.max_evals * 200;
  while (!run.exhausted() && round < max_rounds) {
    ++round;
    // UCB1 technique selection.
    int pick = 0;
    double best_score = -1.0;
    for (int t = 0; t < kNumTechniques; ++t) {
      const double mean = plays[t] > 0 ? wins[t] / plays[t] : 1.0;
      const double bonus =
          plays[t] > 0
              ? opt.exploration *
                    std::sqrt(std::log(static_cast<double>(round)) /
                              plays[t])
              : 10.0;
      if (mean + bonus > best_score) {
        best_score = mean + bonus;
        pick = t;
      }
    }

    ParamConfig candidate;
    if (pick == kRandom || best_config.empty()) {
      candidate = space.random_config(rng);
    } else if (pick == kMutate) {
      candidate = best_config;
      for (std::size_t g = 0; g < candidate.size(); ++g)
        if (rng.uniform() < 0.15)
          candidate[g] =
              static_cast<int>(rng.below(space.param(g).values.size()));
    } else {
      const auto neighbors = space.neighbors(best_config);
      candidate = neighbors.empty()
                      ? space.random_config(rng)
                      : neighbors[rng.below(neighbors.size())];
    }
    plays[pick] += 1.0;
    if (const auto y = run(candidate))
      if (consider(candidate, *y)) wins[pick] += 1.0;
  }
  return trace;
}

namespace {

/// Round a continuous index-coordinate point to a valid configuration.
ParamConfig round_to_config(const ParamSpace& space,
                            std::span<const double> x) {
  ParamConfig c(space.num_params());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    const auto card = static_cast<double>(space.param(p).values.size());
    double v = std::round(x[p]);
    if (v < 0) v = 0;
    if (v > card - 1) v = card - 1;
    c[p] = static_cast<int>(v);
  }
  return c;
}

}  // namespace

SearchTrace nelder_mead_search(Evaluator& eval,
                               const NelderMeadOptions& opt) {
  SearchTrace trace("NM", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  const std::size_t dim = space.num_params();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  using Point = std::vector<double>;
  struct Vertex {
    Point x;
    double y;
  };

  const auto eval_point = [&](const Point& x) -> std::optional<double> {
    return run(round_to_config(space, x));
  };
  const auto random_point = [&] {
    Point x(dim);
    for (std::size_t p = 0; p < dim; ++p)
      x[p] = rng.uniform(0.0, static_cast<double>(
                                  space.param(p).values.size() - 1));
    return x;
  };

  auto starts = seeded_starts(space, opt.surrogate, opt.seed_pool, 1, rng);
  const std::size_t max_restarts = opt.max_evals * 20;
  for (std::size_t restart = 0;
       restart < max_restarts && !run.exhausted(); ++restart) {
    // Initial simplex: start point + dim vertices offset along each axis.
    std::vector<Vertex> simplex;
    Point base(dim);
    if (restart == 0 && !starts.empty()) {
      for (std::size_t p = 0; p < dim; ++p)
        base[p] = static_cast<double>(starts[0][p]);
    } else {
      base = random_point();
    }
    for (std::size_t v = 0; v <= dim && !run.exhausted(); ++v) {
      Point x = base;
      if (v > 0) {
        const auto card =
            static_cast<double>(space.param(v - 1).values.size());
        x[v - 1] = std::min(card - 1.0, x[v - 1] + std::max(1.0, card / 4));
      }
      if (const auto y = eval_point(x)) simplex.push_back({x, *y});
    }
    if (simplex.size() < 3) continue;

    const std::size_t max_iters = opt.max_evals * 4;
    for (std::size_t it = 0; it < max_iters && !run.exhausted(); ++it) {
      std::sort(simplex.begin(), simplex.end(),
                [](const Vertex& a, const Vertex& b) { return a.y < b.y; });
      Vertex& worst = simplex.back();

      // Centroid of all but the worst vertex.
      Point centroid(dim, 0.0);
      for (std::size_t v = 0; v + 1 < simplex.size(); ++v)
        for (std::size_t p = 0; p < dim; ++p)
          centroid[p] += simplex[v].x[p];
      for (auto& c : centroid)
        c /= static_cast<double>(simplex.size() - 1);

      const auto blend = [&](double coeff) {
        Point x(dim);
        for (std::size_t p = 0; p < dim; ++p)
          x[p] = centroid[p] + coeff * (centroid[p] - worst.x[p]);
        return x;
      };

      const Point reflected = blend(opt.reflection);
      const auto yr = eval_point(reflected);
      if (!yr) break;  // budget or persistent failure
      if (*yr < simplex.front().y) {
        const Point expanded = blend(opt.expansion);
        const auto ye = eval_point(expanded);
        if (ye && *ye < *yr)
          worst = {expanded, *ye};
        else
          worst = {reflected, *yr};
      } else if (*yr < simplex[simplex.size() - 2].y) {
        worst = {reflected, *yr};
      } else {
        const Point contracted = blend(-opt.contraction);
        const auto yc = eval_point(contracted);
        if (yc && *yc < worst.y) {
          worst = {contracted, *yc};
        } else {
          // Shrink toward the best vertex.
          for (std::size_t v = 1; v < simplex.size(); ++v) {
            for (std::size_t p = 0; p < dim; ++p)
              simplex[v].x[p] =
                  simplex[0].x[p] +
                  opt.shrink * (simplex[v].x[p] - simplex[0].x[p]);
            if (const auto y = eval_point(simplex[v].x))
              simplex[v].y = *y;
          }
        }
      }
      // Collapse test: restart once the simplex spans < 1 index step.
      double span = 0.0;
      for (std::size_t p = 0; p < dim; ++p) {
        double lo = simplex[0].x[p], hi = simplex[0].x[p];
        for (const auto& v : simplex) {
          lo = std::min(lo, v.x[p]);
          hi = std::max(hi, v.x[p]);
        }
        span = std::max(span, hi - lo);
      }
      if (span < 1.0) break;
    }
  }
  return trace;
}

SearchTrace orthogonal_search(Evaluator& eval,
                              const OrthogonalSearchOptions& opt) {
  SearchTrace trace("OS", eval.problem_name(), eval.machine_name());
  SearchSpanGuard span(trace);
  const ParamSpace& space = eval.space();
  Rng rng(opt.seed);
  BudgetedEvaluator run(eval, trace, opt.max_evals, opt.failure_budget);

  auto starts = seeded_starts(space, opt.surrogate, opt.seed_pool, 2, rng);
  std::size_t start_idx = 0;
  const std::size_t max_restarts = opt.max_evals * 20;
  for (std::size_t restart = 0;
       restart < max_restarts && !run.exhausted(); ++restart) {
    ParamConfig current = start_idx < starts.size()
                              ? starts[start_idx++]
                              : space.random_config(rng);
    auto current_y = run(current);
    if (!current_y) continue;

    bool improved_any = true;
    while (improved_any && !run.exhausted()) {
      improved_any = false;
      for (std::size_t p = 0; p < space.num_params() && !run.exhausted();
           ++p) {
        // Sweep every value of parameter p (the "orthogonal array" row).
        int best_v = current[p];
        double best_y = *current_y;
        for (std::size_t v = 0; v < space.param(p).values.size(); ++v) {
          if (static_cast<int>(v) == current[p]) continue;
          if (run.exhausted()) break;
          ParamConfig candidate = current;
          candidate[p] = static_cast<int>(v);
          const auto y = run(candidate);
          if (y && *y < best_y) {
            best_y = *y;
            best_v = static_cast<int>(v);
          }
        }
        if (best_v != current[p]) {
          current[p] = best_v;
          current_y = best_y;
          improved_any = true;
        }
      }
    }
  }
  return trace;
}

}  // namespace portatune::tuner

