#include "tuner/faults.hpp"

#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune::tuner {

namespace {

// Distinct salts keep the fault channels statistically independent even
// though they share the (seed, config, attempt) key.
constexpr std::uint64_t kDeterministicSalt = 0xdead0001u;
constexpr std::uint64_t kTransientSalt = 0xdead0002u;
constexpr std::uint64_t kHangSalt = 0xdead0003u;
constexpr std::uint64_t kSpikeSalt = 0xdead0004u;

double channel_unit(std::uint64_t seed, std::uint64_t salt,
                    std::uint64_t config_hash, std::uint64_t attempt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = hash_combine(h, config_hash);
  h = hash_combine(h, attempt);
  return hash_to_unit(h);
}

void check_rate(double rate, const char* name) {
  PT_REQUIRE(rate >= 0.0 && rate <= 1.0,
             std::string(name) + " rate must lie in [0, 1]");
}

}  // namespace

FaultInjectingEvaluator::FaultInjectingEvaluator(Evaluator& inner,
                                                 FaultProfile profile)
    : inner_(inner), profile_(profile) {
  check_rate(profile_.transient_rate, "transient");
  check_rate(profile_.deterministic_rate, "deterministic");
  check_rate(profile_.hang_rate, "hang");
  check_rate(profile_.spike_rate, "spike");
  PT_REQUIRE(profile_.spike_factor >= 1.0, "spike factor must be >= 1");
}

bool FaultInjectingEvaluator::is_deterministically_failing(
    const ParamConfig& config) const {
  const auto h = inner_.space().config_hash(config);
  return channel_unit(profile_.seed, kDeterministicSalt, h, 0) <
         profile_.deterministic_rate;
}

EvalResult FaultInjectingEvaluator::evaluate(const ParamConfig& config) {
  const std::uint64_t h = inner_.space().config_hash(config);

  // Deterministic channel: a function of the configuration only — the
  // same config fails on every attempt, in every run, forever.
  if (is_deterministically_failing(config)) {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
    ++stats_.deterministic_injected;
    return EvalResult::failure("injected deterministic failure");
  }

  std::uint64_t attempt = 0;
  bool hang = false, transient = false;
  {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
    attempt = attempt_counts_[h]++;
    hang = channel_unit(profile_.seed, kHangSalt, h, attempt) <
           profile_.hang_rate;
    transient = channel_unit(profile_.seed, kTransientSalt, h, attempt) <
                profile_.transient_rate;
    if (hang) ++stats_.hangs_injected;
    if (transient) ++stats_.transient_injected;
  }

  // Hang channel: block for hang_seconds of real wall-clock time, then
  // fall through to the real evaluation. Under a ResilientEvaluator
  // deadline shorter than hang_seconds this attempt times out. The sleep
  // happens outside the lock so a hang stalls one thread, not the batch.
  if (hang)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(profile_.hang_seconds));

  // Transient channel: fails this attempt; a retry draws a fresh value.
  if (transient)
    return EvalResult::transient_failure(
        "injected transient failure (attempt " + std::to_string(attempt) +
        ")");

  EvalResult r = inner_.evaluate(config);

  // Spike channel: the run "succeeds" but the measurement is an outlier.
  if (r.ok && channel_unit(profile_.seed, kSpikeSalt, h, attempt) <
                  profile_.spike_rate) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.spikes_injected;
    }
    r.seconds *= profile_.spike_factor;
  }
  return r;
}

}  // namespace portatune::tuner
