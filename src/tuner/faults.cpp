#include "tuner/faults.hpp"

#include <chrono>
#include <thread>

#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace portatune::tuner {

namespace {

// Distinct salts keep the fault channels statistically independent even
// though they share the (seed, config, attempt) key.
constexpr std::uint64_t kDeterministicSalt = 0xdead0001u;
constexpr std::uint64_t kTransientSalt = 0xdead0002u;
constexpr std::uint64_t kDelaySalt = 0xdead0003u;
constexpr std::uint64_t kSpikeSalt = 0xdead0004u;
constexpr std::uint64_t kHangSalt = 0xdead0005u;

double channel_unit(std::uint64_t seed, std::uint64_t salt,
                    std::uint64_t config_hash, std::uint64_t attempt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = hash_combine(h, config_hash);
  h = hash_combine(h, attempt);
  return hash_to_unit(h);
}

void check_rate(double rate, const char* name) {
  PT_REQUIRE(rate >= 0.0 && rate <= 1.0,
             std::string(name) + " rate must lie in [0, 1]");
}

}  // namespace

FaultProfile parse_fault_spec(const std::string& spec, FaultProfile base) {
  PT_REQUIRE(!spec.empty(), "empty fault spec");
  FaultProfile p = base;
  // Historic spelling: a bare number is the transient rate.
  if (spec.find(':') == std::string::npos) {
    try {
      p.transient_rate = std::stod(spec);
    } catch (const std::exception&) {
      throw Error("bad fault spec: " + spec);
    }
    return p;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string item = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const auto colon = item.find(':');
    PT_REQUIRE(colon != std::string::npos,
               "fault spec entry '" + item + "' is missing a ':'");
    const std::string key = item.substr(0, colon);
    const std::string value = item.substr(colon + 1);
    double v = 0.0;
    try {
      v = std::stod(value);
    } catch (const std::exception&) {
      throw Error("bad value in fault spec entry '" + item + "'");
    }
    if (key == "transient") p.transient_rate = v;
    else if (key == "deterministic" || key == "det") p.deterministic_rate = v;
    else if (key == "hang") p.hang_rate = v;
    else if (key == "hang-stall") p.hang_stall_seconds = v;
    else if (key == "delay") p.delay_rate = v;
    else if (key == "delay-seconds") p.delay_seconds = v;
    else if (key == "spike") p.spike_rate = v;
    else if (key == "spike-factor") p.spike_factor = v;
    else if (key == "seed") p.seed = static_cast<std::uint64_t>(v);
    else throw Error("unknown fault spec key: " + key);
  }
  return p;
}

FaultInjectingEvaluator::FaultInjectingEvaluator(Evaluator& inner,
                                                 FaultProfile profile)
    : inner_(inner), profile_(profile) {
  check_rate(profile_.transient_rate, "transient");
  check_rate(profile_.deterministic_rate, "deterministic");
  check_rate(profile_.hang_rate, "hang");
  check_rate(profile_.delay_rate, "delay");
  check_rate(profile_.spike_rate, "spike");
  PT_REQUIRE(profile_.spike_factor >= 1.0, "spike factor must be >= 1");
  PT_REQUIRE(profile_.hang_stall_seconds >= 0.0,
             "hang stall must be >= 0 seconds");
}

bool FaultInjectingEvaluator::is_deterministically_failing(
    const ParamConfig& config) const {
  const auto h = inner_.space().config_hash(config);
  return channel_unit(profile_.seed, kDeterministicSalt, h, 0) <
         profile_.deterministic_rate;
}

EvalResult FaultInjectingEvaluator::evaluate(const ParamConfig& config) {
  const std::uint64_t h = inner_.space().config_hash(config);

  // Deterministic channel: a function of the configuration only — the
  // same config fails on every attempt, in every run, forever.
  if (is_deterministically_failing(config)) {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
    ++stats_.deterministic_injected;
    return EvalResult::failure("injected deterministic failure");
  }

  std::uint64_t attempt = 0;
  bool hang = false, delay = false, transient = false;
  {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
    attempt = attempt_counts_[h]++;
    hang = channel_unit(profile_.seed, kHangSalt, h, attempt) <
           profile_.hang_rate;
    delay = channel_unit(profile_.seed, kDelaySalt, h, attempt) <
            profile_.delay_rate;
    transient = channel_unit(profile_.seed, kTransientSalt, h, attempt) <
                profile_.transient_rate;
    if (hang) ++stats_.hangs_injected;
    else if (delay) ++stats_.delays_injected;
    if (!hang && transient) ++stats_.transient_injected;
  }

  // Hang channel: the attempt is stuck. Park on the ambient cancellation
  // token — a deadline watchdog (or process shutdown) wakes it early,
  // otherwise the full stall elapses — and return a Timeout failure
  // either way. The *result* is a pure function of the fault schedule;
  // only the wall-clock cost depends on who (if anyone) rescued it, so
  // serial, parallel, and watchdog-rescued traces all record the same
  // thing. The stall happens outside the lock so one hung attempt stalls
  // one thread, not the whole window.
  if (hang) {
    const CancellationToken token = current_cancellation_token();
    token.wait_for(profile_.hang_stall_seconds);
    return EvalResult::failure(
        "injected hang (attempt " + std::to_string(attempt) + ")",
        FailureKind::Timeout);
  }

  // Delay channel: slow motion. Sleep, then evaluate normally.
  if (delay)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(profile_.delay_seconds));

  // Transient channel: fails this attempt; a retry draws a fresh value.
  if (transient)
    return EvalResult::transient_failure(
        "injected transient failure (attempt " + std::to_string(attempt) +
        ")");

  EvalResult r = inner_.evaluate(config);

  // Spike channel: the run "succeeds" but the measurement is an outlier.
  if (r.ok && channel_unit(profile_.seed, kSpikeSalt, h, attempt) <
                  profile_.spike_rate) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.spikes_injected;
    }
    r.seconds *= profile_.spike_factor;
  }
  return r;
}

}  // namespace portatune::tuner
